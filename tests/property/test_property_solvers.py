"""Property-based tests for the linear solvers."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph
from repro.solvers import AMGSolver, DirectSolver, pcg, jacobi_preconditioner

from tests.property.test_property_trees import connected_graphs


class TestDirectSolverProperties:
    @given(connected_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_laplacian_pseudo_solve(self, graph, seed):
        L = graph.laplacian()
        solver = DirectSolver(L.tocsc())
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(graph.n)
        b -= b.mean()
        x = solver.solve(b)
        scale = max(1.0, float(np.abs(b).max()), float(np.abs(x).max()))
        assert np.abs(L @ x - b).max() < 1e-6 * scale

    @given(connected_graphs(), st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_sdd_solve(self, graph, slack):
        A = (graph.laplacian() + sp.diags(np.full(graph.n, slack))).tocsc()
        solver = DirectSolver(A)
        b = np.ones(graph.n)
        x = solver.solve(b)
        assert np.abs(A @ x - b).max() < 1e-7 * max(1.0, float(np.abs(x).max()))


class TestPCGProperties:
    @given(connected_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_pcg_matches_direct(self, graph, seed):
        L = graph.laplacian()
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(graph.n)
        b -= b.mean()
        direct = DirectSolver(L.tocsc()).solve(b)
        A = (L + sp.diags(np.full(graph.n, 0.1))).tocsr()
        b2 = rng.standard_normal(graph.n)
        result = pcg(A, b2, jacobi_preconditioner(A), tol=1e-10, maxiter=10000)
        assert result.converged
        ref = DirectSolver(A.tocsc()).solve(b2)
        scale = max(1.0, float(np.abs(ref).max()))
        assert np.abs(result.x - ref).max() < 1e-5 * scale
        # Also sanity: direct Laplacian solve produced a mean-free solution.
        assert abs(direct.mean()) < 1e-8 * max(1.0, float(np.abs(direct).max()))

    @given(connected_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_amg_preconditioned_pcg_converges(self, graph, seed):
        L = graph.laplacian()
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(graph.n)
        b -= b.mean()
        amg = AMGSolver(L, coarse_size=8)
        result = pcg(L, b, amg, tol=1e-7, maxiter=500, project_nullspace=True)
        assert result.converged
