"""Property-based tests of the per-iteration edge-cap knobs.

The paper's §3.7 adds off-tree edges in "small portions";
``max_edges_per_iteration`` (surfaced to stages as ``ctx.edge_cap()``)
is that portion size.  These tests fuzz the cap over random connected
graphs and every kernel backend: the additions per iteration never
exceed the cap, degenerate caps (0, 1) stay graceful, and negative
caps are rejected eagerly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import available_backends
from repro.sparsify import densify, sparsify_graph
from repro.trees.lsst import low_stretch_tree

from tests.property.test_property_trees import connected_graphs

BACKENDS = sorted(available_backends())


class TestEdgeCapProperties:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(
        graph=connected_graphs(),
        cap=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_additions_never_exceed_cap(self, backend, graph, cap, seed):
        tree = low_stretch_tree(graph, method="akpw", seed=seed)
        result = densify(
            graph, tree, sigma2=2.0, seed=seed, max_iterations=5,
            max_edges_per_iteration=cap, kernel_backend=backend,
        )
        for iteration in result.iterations:
            assert iteration.num_added <= cap
        # The mask can only grow tree + cap * iterations edges.
        assert result.num_edges <= tree.size + cap * len(result.iterations)
        # Every tree edge survives in the mask.
        assert bool(result.edge_mask[tree].all())

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(graph=connected_graphs(), seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_cap_zero_freezes_the_backbone(self, backend, graph, seed):
        tree = low_stretch_tree(graph, method="akpw", seed=seed)
        result = densify(
            graph, tree, sigma2=2.0, seed=seed, max_iterations=5,
            max_edges_per_iteration=0, kernel_backend=backend,
        )
        expected = np.zeros(graph.num_edges, dtype=bool)
        expected[tree] = True
        assert np.array_equal(result.edge_mask, expected)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(graph=connected_graphs(), seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_cap_one_adds_at_most_one_per_iteration(
        self, backend, graph, seed
    ):
        result = sparsify_graph(
            graph, sigma2=2.0, seed=seed, max_iterations=4,
            max_edges_per_iteration=1, kernel_backend=backend,
        )
        for iteration in result.iterations:
            assert iteration.num_added <= 1

    def test_negative_cap_rejected(self):
        from repro.graphs import generators

        graph = generators.grid2d(10, 10, weights="uniform", seed=0)
        tree = low_stretch_tree(graph, method="akpw", seed=0)
        with pytest.raises(ValueError):
            densify(
                graph, tree, sigma2=2.0, seed=0,
                max_edges_per_iteration=-1,
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(
        graph=connected_graphs(),
        cap=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=20, deadline=None)
    def test_capped_runs_backend_invariant(self, backend, graph, cap, seed):
        """The cap interacts with scoring windows; parity must survive."""
        tree = low_stretch_tree(graph, method="akpw", seed=seed)
        ref = densify(
            graph, tree, sigma2=2.0, seed=seed, max_iterations=4,
            max_edges_per_iteration=cap,
        )
        got = densify(
            graph, tree, sigma2=2.0, seed=seed, max_iterations=4,
            max_edges_per_iteration=cap, kernel_backend=backend,
        )
        assert np.array_equal(got.edge_mask, ref.edge_mask)
