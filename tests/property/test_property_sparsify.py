"""Property-based tests for the sparsification pipeline invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.solvers import DirectSolver
from repro.sparsify import (
    SparsifierState,
    exact_condition_number,
    heat_threshold,
    normalized_heats,
    quadratic_form_ratios,
    sparsify_graph,
)
from repro.trees import kruskal

from tests.property.test_property_trees import connected_graphs


class TestThresholdProperties:
    @given(
        st.floats(min_value=1.01, max_value=1e6),
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.1, max_value=1e8),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_threshold_in_unit_interval(self, sigma2, lmin, lmax, t):
        value = heat_threshold(sigma2, lmin, lmax, t=t)
        assert 0.0 <= value <= 1.0

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.1, max_value=1e8),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_threshold_monotone_in_sigma2(self, lmin, lmax, t):
        low = heat_threshold(2.0, lmin, lmax, t=t)
        high = heat_threshold(200.0, lmin, lmax, t=t)
        assert high >= low


class TestNormalizationProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e12), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_normalized_in_unit_interval(self, heats):
        norm = normalized_heats(np.array(heats))
        assert np.all(norm >= 0.0)
        assert np.all(norm <= 1.0 + 1e-12)


class TestPipelineInvariants:
    @given(connected_graphs(max_n=16), st.integers(min_value=0, max_value=10**4))
    @settings(max_examples=12, deadline=None)
    def test_sparsifier_subgraph_and_bounds(self, graph, seed):
        result = sparsify_graph(graph, sigma2=50.0, seed=seed)
        # Subgraph with original weights.
        idx = graph.edge_indices(result.sparsifier.u, result.sparsifier.v)
        assert np.all(idx >= 0)
        assert np.allclose(result.sparsifier.w, graph.w[idx])
        # Pencil bounds: every sampled Rayleigh quotient within exact extremes.
        kappa = exact_condition_number(graph, result.sparsifier)
        ratios = quadratic_form_ratios(graph, result.sparsifier,
                                       num_samples=8, seed=seed)
        assert np.all(ratios >= 1.0 - 1e-6)
        assert np.all(ratios <= kappa * (1.0 + 1e-6))

    @given(connected_graphs(max_n=14))
    @settings(max_examples=10, deadline=None)
    def test_monotone_in_sigma2(self, graph):
        tight = sparsify_graph(graph, sigma2=5.0, seed=0)
        loose = sparsify_graph(graph, sigma2=500.0, seed=0)
        assert tight.sparsifier.num_edges >= loose.sparsifier.num_edges


class TestIncrementalStateProperties:
    @given(connected_graphs(max_n=18), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_incremental_laplacian_matches_from_scratch(self, graph, seed):
        """After every batch, the state's Laplacian and degrees equal the
        from-scratch ``edge_subgraph(mask).laplacian()`` rebuild."""
        tree = kruskal(graph)
        state = SparsifierState(graph, tree)
        rng = np.random.default_rng(seed)
        while True:
            off = np.flatnonzero(~state.edge_mask)
            if off.size == 0:
                break
            batch = rng.choice(
                off, size=int(rng.integers(1, off.size + 1)), replace=False
            )
            state.add_edges(batch)
            ref = graph.edge_subgraph(state.edge_mask)
            assert np.allclose(
                state.pruned_laplacian().toarray(),
                ref.laplacian().toarray(),
                rtol=1e-12,
                atol=1e-12,
            )
            assert np.allclose(
                state.weighted_degrees(), ref.weighted_degrees(), rtol=1e-12
            )

    @given(connected_graphs(max_n=16), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_woodbury_solves_match_fresh_factorization(self, graph, seed):
        """Woodbury-updated solves agree with a fresh factorization of
        the updated Laplacian to 1e-8."""
        tree = kruskal(graph)
        mask = np.zeros(graph.num_edges, dtype=bool)
        mask[tree] = True
        off = np.flatnonzero(~mask)
        if off.size == 0:
            return
        solver = DirectSolver(
            graph.edge_subgraph(mask).laplacian().tocsc(),
            max_update_rank=off.size,
        )
        rng = np.random.default_rng(seed)
        batch = rng.choice(
            off, size=int(rng.integers(1, off.size + 1)), replace=False
        )
        assert solver.update(graph.u[batch], graph.v[batch], graph.w[batch])
        mask[batch] = True
        fresh = DirectSolver(graph.edge_subgraph(mask).laplacian().tocsc())
        b = rng.standard_normal(graph.n)
        b -= b.mean()
        assert np.allclose(solver.solve(b), fresh.solve(b), atol=1e-8)
