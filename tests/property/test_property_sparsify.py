"""Property-based tests for the sparsification pipeline invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.solvers import DirectSolver
from repro.sparsify import (
    SparsifierState,
    approx_effective_resistances,
    exact_condition_number,
    exact_effective_resistances,
    heat_threshold,
    normalized_heats,
    quadratic_form_ratios,
    sparsify_graph,
)
from repro.trees import kruskal

from tests.property.test_property_trees import connected_graphs


class TestThresholdProperties:
    @given(
        st.floats(min_value=1.01, max_value=1e6),
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.1, max_value=1e8),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_threshold_in_unit_interval(self, sigma2, lmin, lmax, t):
        value = heat_threshold(sigma2, lmin, lmax, t=t)
        assert 0.0 <= value <= 1.0

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.1, max_value=1e8),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_threshold_monotone_in_sigma2(self, lmin, lmax, t):
        low = heat_threshold(2.0, lmin, lmax, t=t)
        high = heat_threshold(200.0, lmin, lmax, t=t)
        assert high >= low


class TestNormalizationProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e12), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_normalized_in_unit_interval(self, heats):
        norm = normalized_heats(np.array(heats))
        assert np.all(norm >= 0.0)
        assert np.all(norm <= 1.0 + 1e-12)


class TestPipelineInvariants:
    @given(connected_graphs(max_n=16), st.integers(min_value=0, max_value=10**4))
    @settings(max_examples=12, deadline=None)
    def test_sparsifier_subgraph_and_bounds(self, graph, seed):
        result = sparsify_graph(graph, sigma2=50.0, seed=seed)
        # Subgraph with original weights.
        idx = graph.edge_indices(result.sparsifier.u, result.sparsifier.v)
        assert np.all(idx >= 0)
        assert np.allclose(result.sparsifier.w, graph.w[idx])
        # Pencil bounds: every sampled Rayleigh quotient within exact extremes.
        kappa = exact_condition_number(graph, result.sparsifier)
        ratios = quadratic_form_ratios(graph, result.sparsifier,
                                       num_samples=8, seed=seed)
        assert np.all(ratios >= 1.0 - 1e-6)
        assert np.all(ratios <= kappa * (1.0 + 1e-6))

    @given(connected_graphs(max_n=14))
    @settings(max_examples=10, deadline=None)
    def test_monotone_in_sigma2(self, graph):
        tight = sparsify_graph(graph, sigma2=5.0, seed=0)
        loose = sparsify_graph(graph, sigma2=500.0, seed=0)
        assert tight.sparsifier.num_edges >= loose.sparsifier.num_edges


class TestJLSketchProperties:
    """The JL sketch tracks exact resistances within ``(1 ± ε)``.

    The implementation quarters the conservative ``24 log n / ε²``
    union-bound constant, which halves the *certified* accuracy: a
    sketch built at width ``ε/2`` carries the full-constant guarantee
    for ``ε``.  The property is therefore asserted in that certified
    form — every edge (and arbitrary queried pair) within ``(1 ± ε)``
    of exact, across random connected graphs, sketch seeds and ε.
    """

    @given(
        connected_graphs(max_n=30),
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.2, max_value=0.5),
    )
    @settings(max_examples=20, deadline=None)
    def test_edges_within_epsilon_of_exact(self, graph, seed, epsilon):
        exact = exact_effective_resistances(graph)
        approx = approx_effective_resistances(
            graph, epsilon=epsilon / 2.0, seed=seed
        )
        rel = np.abs(approx - exact) / exact
        assert rel.max() <= epsilon

    @given(
        connected_graphs(max_n=24),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_pairs_within_epsilon_of_exact(self, graph, seed):
        """The same sketch certifies non-edge pairs (serving workload)."""
        epsilon = 0.3
        rng = np.random.default_rng(seed)
        pairs = rng.integers(0, graph.n, size=(12, 2))
        exact = exact_effective_resistances(graph, pairs)
        approx = approx_effective_resistances(
            graph, epsilon=epsilon / 2.0, seed=seed, pairs=pairs
        )
        distinct = pairs[:, 0] != pairs[:, 1]
        assert np.array_equal(approx[~distinct], np.zeros((~distinct).sum()))
        rel = np.abs(approx[distinct] - exact[distinct]) / exact[distinct]
        if distinct.any():
            assert rel.max() <= epsilon

    @given(connected_graphs(max_n=20), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_foster_sum_tracks_n_minus_one(self, graph, seed):
        """Foster's theorem transfers to the sketch within ε."""
        approx = approx_effective_resistances(graph, epsilon=0.15, seed=seed)
        total = float((graph.w * approx).sum())
        assert abs(total - (graph.n - 1)) <= 0.3 * (graph.n - 1) + 1e-9


class TestIncrementalStateProperties:
    @given(connected_graphs(max_n=18), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_incremental_laplacian_matches_from_scratch(self, graph, seed):
        """After every batch, the state's Laplacian and degrees equal the
        from-scratch ``edge_subgraph(mask).laplacian()`` rebuild."""
        tree = kruskal(graph)
        state = SparsifierState(graph, tree)
        rng = np.random.default_rng(seed)
        while True:
            off = np.flatnonzero(~state.edge_mask)
            if off.size == 0:
                break
            batch = rng.choice(
                off, size=int(rng.integers(1, off.size + 1)), replace=False
            )
            state.add_edges(batch)
            ref = graph.edge_subgraph(state.edge_mask)
            assert np.allclose(
                state.pruned_laplacian().toarray(),
                ref.laplacian().toarray(),
                rtol=1e-12,
                atol=1e-12,
            )
            assert np.allclose(
                state.weighted_degrees(), ref.weighted_degrees(), rtol=1e-12
            )

    @given(connected_graphs(max_n=16), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_woodbury_solves_match_fresh_factorization(self, graph, seed):
        """Woodbury-updated solves agree with a fresh factorization of
        the updated Laplacian to 1e-8."""
        tree = kruskal(graph)
        mask = np.zeros(graph.num_edges, dtype=bool)
        mask[tree] = True
        off = np.flatnonzero(~mask)
        if off.size == 0:
            return
        solver = DirectSolver(
            graph.edge_subgraph(mask).laplacian().tocsc(),
            max_update_rank=off.size,
        )
        rng = np.random.default_rng(seed)
        batch = rng.choice(
            off, size=int(rng.integers(1, off.size + 1)), replace=False
        )
        assert solver.update(graph.u[batch], graph.v[batch], graph.w[batch])
        mask[batch] = True
        fresh = DirectSolver(graph.edge_subgraph(mask).laplacian().tocsc())
        b = rng.standard_normal(graph.n)
        b -= b.mean()
        assert np.allclose(solver.solve(b), fresh.solve(b), atol=1e-8)
