"""Property-based tests for spanning trees, stretch and the tree solver."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph, is_connected
from repro.trees import (
    RootedTree,
    TreeSolver,
    akpw,
    edge_stretches,
    kruskal,
    low_stretch_tree,
)


@st.composite
def connected_graphs(draw, max_n=20):
    """Random connected graph: random tree backbone + extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    # Random recursive tree: parent[i] < i.
    parents = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)]
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = np.random.default_rng(seed)
    eu = rng.integers(0, n, size=extra)
    ev = rng.integers(0, n, size=extra)
    u = np.concatenate([np.arange(1, n), eu])
    v = np.concatenate([np.array(parents, dtype=np.int64), ev])
    w = rng.uniform(0.1, 10.0, size=u.size)
    return Graph(n, u, v, w)


class TestSpanningTreeProperties:
    @given(connected_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_akpw_spans(self, graph, seed):
        idx = akpw(graph, seed=seed)
        assert idx.size == graph.n - 1
        assert is_connected(graph.edge_subgraph(idx))

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_kruskal_optimality_vs_scipy(self, graph):
        from repro.trees import minimum_spanning_tree

        lengths = 1.0 / graph.w
        ours = lengths[kruskal(graph)].sum()
        ref = lengths[minimum_spanning_tree(graph)].sum()
        assert abs(ours - ref) <= 1e-9 * max(ref, 1.0)

    @given(connected_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_stretch_invariants(self, graph, seed):
        idx = low_stretch_tree(graph, method="akpw", seed=seed)
        report = edge_stretches(graph, idx)
        # Tree edges: exactly 1; off-tree: positive; total >= m_tree.
        assert np.allclose(report.stretches[report.tree_mask], 1.0)
        assert np.all(report.off_tree_stretches > 0)
        assert report.total >= graph.n - 1 - 1e-9


class TestTreeSolverProperties:
    @given(connected_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_solver_inverts_tree_laplacian(self, graph, seed):
        idx = low_stretch_tree(graph, method="maxw")
        tree = RootedTree.from_graph(graph, idx)
        solver = TreeSolver(tree)
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(graph.n)
        b -= b.mean()
        x = solver.solve(b)
        L = graph.edge_subgraph(idx).laplacian()
        scale = max(1.0, float(np.abs(b).max()), float(np.abs(x).max()))
        assert np.abs(L @ x - b).max() < 1e-6 * scale
        assert abs(x.mean()) < 1e-9 * scale
