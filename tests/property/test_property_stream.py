"""Property-based tests for the streaming subsystem invariants.

The acceptance property: replaying *any* valid event stream (including
spanning-tree/backbone deletions) leaves a sparsifier that certifies
the same σ² target a from-scratch run on the final graph certifies, and
checkpointing mid-stream never changes the produced masks.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs.components import is_connected
from repro.sparsify import sparsify_graph
from repro.stream import (
    DynamicSparsifier,
    apply_events,
    coalesce,
    load_dynamic,
    random_event_stream,
    save_dynamic,
)
from repro.trees import RootedTree

from tests.property.test_property_trees import connected_graphs

SIGMA2 = 60.0


class TestReplayProperties:
    @given(
        connected_graphs(max_n=14),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=60),
        st.sampled_from([0.2, 0.5]),  # delete pressure incl. backbone
    )
    @settings(max_examples=15, deadline=None)
    def test_replay_certifies_like_from_scratch(
        self, graph, seed, num_events, p_delete
    ):
        events = random_event_stream(
            graph, num_events, seed=seed, p_insert=0.3, p_delete=p_delete
        )
        dyn = DynamicSparsifier(graph, sigma2=SIGMA2, seed=seed)
        dyn.apply_log(events, batch_size=16)

        # Structural invariants.
        final = apply_events(graph, events)
        assert dyn.graph == final
        assert np.all(dyn.edge_mask[dyn.tree_indices])
        RootedTree.from_graph(dyn.graph, dyn.tree_indices)
        assert is_connected(dyn.sparsifier())
        assert np.allclose(dyn._deg_p, dyn.sparsifier().weighted_degrees())

        # Quality: same certificate as recomputing from scratch.  The
        # streaming estimate is checked at every batch (check_every=1),
        # so the final state either certifies sigma2 or from-scratch
        # could not certify it either.
        scratch = sparsify_graph(final, sigma2=SIGMA2, seed=0)
        if scratch.converged and dyn.graph.num_edges > 0:
            assert dyn.last_estimate <= SIGMA2 * (1 + 1e-9)

    @given(
        connected_graphs(max_n=12),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_checkpoint_continue_bit_identical(
        self, tmp_path_factory, graph, seed, num_events, cut
    ):
        events = random_event_stream(graph, num_events, seed=seed,
                                     p_delete=0.4)
        batches = [events[i:i + 8] for i in range(0, len(events), 8)]
        if not batches:
            return
        cut = min(cut, len(batches) - 1)
        tmp = tmp_path_factory.mktemp("ckpt")

        solo = DynamicSparsifier(graph, sigma2=SIGMA2, seed=seed)
        for batch in batches:
            solo.apply(batch)

        interrupted = DynamicSparsifier(graph, sigma2=SIGMA2, seed=seed)
        for k, batch in enumerate(batches):
            interrupted.apply(batch)
            if k == cut:
                save_dynamic(tmp / f"ck{seed}_{k}", interrupted)
                interrupted = load_dynamic(tmp / f"ck{seed}_{k}")

        assert interrupted.graph == solo.graph
        assert np.array_equal(interrupted.edge_mask, solo.edge_mask)
        assert np.array_equal(interrupted.tree_indices, solo.tree_indices)
        assert (interrupted._rng.bit_generator.state
                == solo._rng.bit_generator.state)


class TestCoalesceProperties:
    @given(
        connected_graphs(max_n=10),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_coalesced_stream_is_equivalent(self, graph, seed, num_events):
        """Applying the coalesced batch equals applying the raw batch."""
        events = random_event_stream(graph, num_events, seed=seed,
                                     p_delete=0.35)
        assert apply_events(graph, events) == apply_events(graph, coalesce(events))

    @given(
        connected_graphs(max_n=10),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_coalesce_is_idempotent(self, graph, seed, num_events):
        events = random_event_stream(graph, num_events, seed=seed,
                                     p_delete=0.35)
        once = coalesce(events)
        assert coalesce(once) == once
