"""Property-based tests (hypothesis) for the graph container and Laplacians."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph, graph_from_laplacian


@st.composite
def edge_lists(draw, max_n=24, max_m=60):
    """Random (n, u, v, w) with arbitrary duplicates and orientations."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    u = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m)
    )
    v = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m)
    )
    w = draw(
        st.lists(
            st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
            min_size=m,
            max_size=m,
        )
    )
    return n, np.array(u, dtype=np.int64), np.array(v, dtype=np.int64), np.array(w)


class TestCanonicalInvariants:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_canonical_form(self, data):
        n, u, v, w = data
        g = Graph(n, u, v, w)
        # Endpoints ordered, keys strictly increasing, no self loops.
        assert np.all(g.u < g.v)
        keys = g.u * np.int64(n) + g.v
        assert np.all(np.diff(keys) > 0)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_total_weight_preserved(self, data):
        n, u, v, w = data
        g = Graph(n, u, v, w)
        expected = float(w[u != v].sum())
        assert abs(g.total_weight - expected) <= 1e-9 * max(expected, 1.0)

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_laplacian_psd_and_singular(self, data):
        n, u, v, w = data
        g = Graph(n, u, v, w)
        L = g.laplacian().toarray()
        vals = np.linalg.eigvalsh(L)
        assert vals.min() > -1e-8 * max(vals.max(), 1.0)
        assert np.abs(L @ np.ones(n)).max() < 1e-9 * max(g.total_weight, 1.0)

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_laplacian_roundtrip(self, data):
        n, u, v, w = data
        g = Graph(n, u, v, w)
        g2 = graph_from_laplacian(g.laplacian())
        assert g2.num_edges == g.num_edges
        assert np.allclose(g2.w, g.w, rtol=1e-9)

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_degrees_are_adjacency_row_sums(self, data):
        n, u, v, w = data
        g = Graph(n, u, v, w)
        row_sums = np.asarray(g.adjacency().sum(axis=1)).ravel()
        assert np.allclose(g.weighted_degrees(), row_sums)

    @given(edge_lists(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_edge_subgraph_subset(self, data, seed):
        n, u, v, w = data
        g = Graph(n, u, v, w)
        rng = np.random.default_rng(seed)
        mask = rng.random(g.num_edges) < 0.5
        sub = g.edge_subgraph(mask)
        assert sub.num_edges == int(mask.sum())
        if sub.num_edges:
            assert np.all(g.has_edges(sub.u, sub.v))
