"""Integration tests: the full pipeline across subsystems.

These tests tie together generators → LSST → embedding → filtering →
densification → solver/partitioner/eigensolver exactly the way the
paper's evaluation does, with exact dense references as ground truth.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps import SimilarityAwareSolver, partition_graph, simplify_network
from repro.graphs import generators, sdd_split
from repro.solvers import DirectSolver, pcg
from repro.sparsify import (
    exact_condition_number,
    sparsify_graph,
)
from repro.spectral import (
    exact_extreme_generalized_eigs,
    partition_disagreement,
)


class TestSimilarityGuarantee:
    """The headline contract: requested σ² is (approximately) delivered."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: generators.circuit_grid(12, 12, seed=61),
            lambda: generators.ecology_grid(12, 12, seed=62),
            lambda: generators.fem_mesh_2d(200, seed=63),
            lambda: generators.knn_graph(
                generators.gaussian_mixture_points(200, seed=64), k=8
            ),
        ],
    )
    def test_kappa_tracks_target(self, factory):
        graph = factory()
        for sigma2 in (30.0, 120.0):
            result = sparsify_graph(graph, sigma2=sigma2, seed=0)
            kappa = exact_condition_number(graph, result.sparsifier)
            # The λmax estimator is a modest under-estimate, so allow 60%.
            assert kappa <= 1.6 * sigma2
            # And the sparsifier must stay non-trivially sparse unless the
            # target forced near-complete recovery.
            assert result.sparsifier.num_edges <= graph.num_edges

    def test_estimates_bracket_exact(self):
        graph = generators.circuit_grid(10, 10, seed=65)
        result = sparsify_graph(graph, sigma2=80.0, seed=1)
        lmin, lmax = exact_extreme_generalized_eigs(
            graph.laplacian(), result.sparsifier.laplacian()
        )
        last = result.iterations[-1]
        assert last.lambda_max <= lmax * 1.001
        assert last.lambda_min >= lmin - 1e-9


class TestSolverPipeline:
    def test_pcg_iterations_scale_with_sigma(self):
        """κ(L_G, L_P) controls PCG convergence — the σ² knob works."""
        graph = generators.triangulated_grid(36, 36, weights="uniform", seed=66)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(graph.n)
        b -= b.mean()
        iters = {}
        for sigma2 in (20.0, 400.0):
            report = SimilarityAwareSolver(graph, sigma2=sigma2, seed=0).solve(
                b, tol=1e-6
            )
            assert report.solve.converged
            iters[sigma2] = report.iterations
        assert iters[20.0] < iters[400.0]

    def test_sdd_system_from_split_roundtrips(self):
        """sdd_split + sparsifier preconditioner solve an external SDD system."""
        graph = generators.grid2d(24, 24, weights="uniform", seed=67)
        slack = np.linspace(0.0, 0.5, graph.n)
        A = (graph.laplacian() + sp.diags(slack)).tocsr()
        g2, s2 = sdd_split(A)
        assert g2 == graph
        solver = SimilarityAwareSolver(A, sigma2=50.0, seed=0)
        b = np.sin(np.arange(graph.n))
        report = solver.solve(b, tol=1e-8)
        assert report.solve.converged
        assert np.linalg.norm(A @ report.solve.x - b) <= 1e-7 * np.linalg.norm(b)


class TestPartitionPipeline:
    def test_direct_vs_iterative_agree_and_save_memory(self):
        graph = generators.grid2d(48, 16, weights="uniform", seed=68)
        direct = partition_graph(graph, method="direct", seed=0)
        iterative = partition_graph(graph, method="sparsifier", sigma2=150.0, seed=0)
        assert partition_disagreement(direct.labels, iterative.labels) <= 0.05
        assert iterative.memory_bytes < direct.memory_bytes


class TestNetworkPipeline:
    def test_sparsified_fiedler_usable_directly(self):
        """§4.3: 'if the sparsifier is a good approximation, its Fiedler
        vector can be directly used for partitioning the original'."""
        from repro.spectral import fiedler_vector, sign_cut

        pts = generators.gaussian_mixture_points(
            240, dim=3, clusters=2, separation=8.0, seed=69
        )
        graph = generators.knn_graph(pts, k=10)
        result = sparsify_graph(graph, sigma2=60.0, seed=0)
        fied_g = fiedler_vector(
            graph.laplacian(), DirectSolver(graph.laplacian().tocsc()), seed=1
        )
        fied_p = fiedler_vector(
            result.sparsifier.laplacian(),
            DirectSolver(result.sparsifier.laplacian().tocsc()),
            seed=1,
        )
        err = partition_disagreement(sign_cut(fied_g.vector), sign_cut(fied_p.vector))
        assert err <= 0.02

    def test_simplify_network_full_report(self):
        graph = generators.erdos_renyi_gnm(500, 6000, seed=70)
        report = simplify_network(graph, sigma2=100.0, seed=0)
        assert report.edge_reduction > 3.0
        assert report.lambda1_ratio > 10.0
        assert report.eig_seconds_original > 0.0
        assert report.eig_seconds_sparsified > 0.0
