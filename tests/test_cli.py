"""Unit tests for the command-line interface."""

import threading
import time

import numpy as np
import pytest

from repro import __version__
from repro.cli import EXIT_INVALID_DATA, EXIT_MISSING_INPUT, main
from repro.graphs import generators
from repro.graphs.io import load_graph_matrix_market, write_matrix_market


@pytest.fixture
def graph_file(tmp_path):
    graph = generators.circuit_grid(12, 12, seed=3)
    path = tmp_path / "graph.mtx"
    write_matrix_market(path, graph.adjacency(), symmetric=True)
    return path, graph


class TestSparsifyCommand:
    def test_writes_sparsifier(self, graph_file, tmp_path, capsys):
        path, graph = graph_file
        out = tmp_path / "sparse.mtx"
        code = main(["sparsify", str(path), "-o", str(out), "--sigma2", "100"])
        assert code == 0
        assert out.exists()
        sparsifier = load_graph_matrix_market(out)
        assert sparsifier.n == graph.n
        assert sparsifier.num_edges <= graph.num_edges
        assert "sparsifier" in capsys.readouterr().out

    def test_tree_method_flag(self, graph_file, tmp_path):
        path, _ = graph_file
        out = tmp_path / "sparse.mtx"
        assert main(["sparsify", str(path), "-o", str(out), "--tree", "maxw"]) == 0

    def test_sparsifier_is_subgraph(self, graph_file, tmp_path):
        path, graph = graph_file
        out = tmp_path / "sparse.mtx"
        main(["sparsify", str(path), "-o", str(out)])
        sparsifier = load_graph_matrix_market(out)
        assert np.all(graph.has_edges(sparsifier.u, sparsifier.v))

    def test_profile_flag_prints_stage_table(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        out = tmp_path / "sparse.mtx"
        code = main(["sparsify", str(path), "-o", str(out), "--profile"])
        assert code == 0
        printed = capsys.readouterr().out
        for name in ("stage", "tree", "densify", "embedding", "filter",
                     "similarity", "total"):
            assert name in printed

    def test_no_profile_without_flag(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        out = tmp_path / "sparse.mtx"
        assert main(["sparsify", str(path), "-o", str(out)]) == 0
        assert "embedding" not in capsys.readouterr().out


class TestSparsifyDisconnected:
    @pytest.fixture
    def disconnected_file(self, tmp_path):
        from repro.graphs.operations import disjoint_union

        graph = disjoint_union(
            disjoint_union(
                generators.grid2d(8, 8, weights="uniform", seed=0),
                generators.grid2d(7, 7, weights="uniform", seed=1),
            ),
            generators.grid2d(6, 6, weights="uniform", seed=2),
        )
        path = tmp_path / "multi.mtx"
        write_matrix_market(path, graph.adjacency(), symmetric=True)
        return path, graph

    def test_three_component_graph_succeeds(self, disconnected_file, tmp_path, capsys):
        path, graph = disconnected_file
        out = tmp_path / "sparse.mtx"
        code = main(["sparsify", str(path), "-o", str(out)])
        assert code == 0
        sparsifier = load_graph_matrix_market(out)
        assert sparsifier.n == graph.n  # every component kept, none dropped
        assert np.all(graph.has_edges(sparsifier.u, sparsifier.v))
        assert "3 components" in capsys.readouterr().out

    def test_workers_flag(self, disconnected_file, tmp_path):
        path, _ = disconnected_file
        serial = tmp_path / "serial.mtx"
        parallel = tmp_path / "parallel.mtx"
        assert main(["sparsify", str(path), "-o", str(serial)]) == 0
        assert main(["sparsify", str(path), "-o", str(parallel),
                     "--workers", "2", "--backend", "thread"]) == 0
        a = load_graph_matrix_market(serial)
        b = load_graph_matrix_market(parallel)
        assert a == b  # worker count must not change the sparsifier

    def test_profile_flag_on_sharded_run(self, disconnected_file, tmp_path,
                                         capsys):
        path, _ = disconnected_file
        out = tmp_path / "sparse.mtx"
        code = main(["sparsify", str(path), "-o", str(out), "--profile"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "tree" in printed and "densify" in printed

    def test_shard_max_nodes_flag(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        out = tmp_path / "sparse.mtx"
        code = main(["sparsify", str(path), "-o", str(out),
                     "--shard-max-nodes", "60"])
        assert code == 0
        assert "shards" in capsys.readouterr().out


class TestStreamCommand:
    @pytest.fixture
    def stream_files(self, tmp_path):
        from repro.stream import random_event_stream, write_event_log

        graph = generators.grid2d(10, 10, weights="uniform", seed=5)
        graph_path = tmp_path / "g.mtx"
        write_matrix_market(graph_path, graph.adjacency(), symmetric=True)
        events = random_event_stream(graph, 60, seed=2, p_delete=0.35)
        log_path = tmp_path / "events.jsonl"
        write_event_log(log_path, events)
        return graph_path, log_path, graph, events

    def test_replays_and_reports(self, stream_files, capsys):
        graph_path, log_path, _, events = stream_files
        code = main(["stream", str(log_path), "--graph", str(graph_path),
                     "--sigma2", "150", "--batch-size", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"replaying {len(events)} events" in out
        assert "batch    3:" in out
        assert "sigma2 estimate" in out

    def test_writes_output_and_checkpoint(self, stream_files, tmp_path, capsys):
        graph_path, log_path, graph, _ = stream_files
        out = tmp_path / "sparse.mtx"
        ckpt = tmp_path / "state"
        code = main(["stream", str(log_path), "--graph", str(graph_path),
                     "-o", str(out), "--checkpoint-out", str(ckpt)])
        assert code == 0
        assert out.exists()
        assert (tmp_path / "state.npz").exists()
        assert (tmp_path / "state.json").exists()
        sparsifier = load_graph_matrix_market(out)
        assert sparsifier.n == graph.n

    def test_resume_from_checkpoint(self, stream_files, tmp_path, capsys):
        from repro.stream import load_dynamic, random_event_stream, write_event_log

        graph_path, log_path, _, _ = stream_files
        ckpt = tmp_path / "state"
        main(["stream", str(log_path), "--graph", str(graph_path),
              "--checkpoint-out", str(ckpt)])
        # Events valid against the *checkpointed* (mutated) graph.
        mutated = load_dynamic(ckpt).graph
        log2 = tmp_path / "more.npz"
        write_event_log(log2, random_event_stream(mutated, 20, seed=9))
        capsys.readouterr()
        code = main(["stream", str(log2), "--resume", str(ckpt)])
        assert code == 0
        assert "resumed" in capsys.readouterr().out

    def test_requires_graph_or_resume(self, stream_files, capsys):
        _, log_path, _, _ = stream_files
        assert main(["stream", str(log_path)]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_graph_and_resume_mutually_exclusive(self, stream_files, tmp_path):
        graph_path, log_path, _, _ = stream_files
        assert main(["stream", str(log_path), "--graph", str(graph_path),
                     "--resume", str(tmp_path / "nope")]) == 2


class TestSimilarityCommand:
    def test_reports_estimates(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        out = tmp_path / "sparse.mtx"
        main(["sparsify", str(path), "-o", str(out), "--sigma2", "50"])
        capsys.readouterr()
        code = main(["similarity", str(path), str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "kappa" in text
        kappa = float(
            [ln for ln in text.splitlines() if "kappa" in ln][0].split("~=")[1]
        )
        assert 1.0 <= kappa <= 200.0


class TestGenerateCommand:
    @pytest.mark.parametrize("family", ["grid2d", "circuit_grid", "barabasi_albert"])
    def test_generates_workload(self, family, tmp_path, capsys):
        out = tmp_path / "g.mtx"
        code = main(["generate", family, "--out", str(out), "--size", "8"])
        assert code == 0
        graph = load_graph_matrix_market(out)
        assert graph.n >= 64
        assert "written" in capsys.readouterr().out

    def test_unknown_family_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "mystery", "--out", str(tmp_path / "g.mtx")])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestExitCodes:
    """Invalid inputs map to distinct non-zero exit codes: 2 usage,
    3 missing input file, 4 invalid input data."""

    @pytest.fixture
    def bad_mtx(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("this is not a matrix market header\n1 2 3\n")
        return path

    def test_missing_input_is_3(self, tmp_path, capsys):
        out = str(tmp_path / "o.mtx")
        missing = str(tmp_path / "nope.mtx")
        assert main(["sparsify", missing, "-o", out]) == EXIT_MISSING_INPUT
        assert main(["stream", missing, "--graph", missing]) == EXIT_MISSING_INPUT
        assert main(["similarity", missing, missing]) == EXIT_MISSING_INPUT
        assert main(["serve", "--graph", missing]) == EXIT_MISSING_INPUT
        assert "not found" in capsys.readouterr().err

    def test_invalid_data_is_4(self, bad_mtx, tmp_path, capsys):
        out = str(tmp_path / "o.mtx")
        assert main(["sparsify", str(bad_mtx), "-o", out]) == EXIT_INVALID_DATA
        assert main(["similarity", str(bad_mtx), str(bad_mtx)]) == EXIT_INVALID_DATA
        assert "invalid input" in capsys.readouterr().err

    def test_invalid_events_log_is_4(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        log = tmp_path / "events.jsonl"
        log.write_text('{"type": "warp", "u": 0, "v": 1}\n')
        code = main(["stream", str(log), "--graph", str(path)])
        assert code == EXIT_INVALID_DATA
        assert "invalid input" in capsys.readouterr().err

    def test_usage_error_still_2(self, graph_file, tmp_path):
        _, _ = graph_file
        log = tmp_path / "missing.jsonl"
        assert main(["stream", str(log)]) == 2  # neither --graph nor --resume


class TestServeCommand:
    def test_serve_register_query_shutdown(self, graph_file, tmp_path, capsys):
        from repro.serve import ServeClient

        path, graph = graph_file
        port_file = tmp_path / "port"
        codes = {}

        def run():
            codes["exit"] = main([
                "serve", "--port", "0", "--graph", str(path),
                "--sigma2", "150", "--spool-dir", str(tmp_path / "spool"),
                "--port-file", str(port_file),
            ])

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        for _ in range(200):
            if port_file.exists() and port_file.read_text():
                break
            time.sleep(0.05)
        else:
            pytest.fail("server never wrote its port file")

        client = ServeClient(f"http://127.0.0.1:{port_file.read_text()}")
        stats = client.stats()
        (key,) = stats["artifacts"]
        values = client.resistance(key, [[0, graph.n - 1]])
        assert values.shape == (1,) and values[0] > 0
        client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert codes["exit"] == 0
        out = capsys.readouterr().out
        assert "registered" in out and "server stopped" in out


class TestObsCommand:
    @pytest.fixture
    def traced_run(self, graph_file, tmp_path):
        """One sparsify run with both a trace and a ledger captured."""
        path, _ = graph_file
        trace = tmp_path / "trace.json"
        ledger = tmp_path / "runs.jsonl"
        out = tmp_path / "sparse.mtx"
        assert main([
            "sparsify", str(path), "-o", str(out),
            "--trace", str(trace), "--ledger", str(ledger),
        ]) == 0
        return trace, ledger

    def test_report_text(self, traced_run, capsys):
        trace, _ = traced_run
        capsys.readouterr()
        assert main(["obs", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "wall clock" in out

    def test_report_json_critical_path_invariant(self, traced_run, capsys):
        import json as json_mod

        trace, _ = traced_run
        capsys.readouterr()
        assert main(["obs", "report", str(trace), "--format", "json"]) == 0
        report = json_mod.loads(capsys.readouterr().out)
        path = report["critical_path"]
        assert sum(e["path_seconds"] for e in path["entries"]) == \
            pytest.approx(path["total_seconds"])

    def test_diff_two_traces(self, graph_file, traced_run, tmp_path, capsys):
        path, _ = graph_file
        trace_a, _ = traced_run
        trace_b = tmp_path / "b.json"
        assert main([
            "sparsify", str(path), "-o", str(tmp_path / "b.mtx"),
            "--sigma2", "50", "--trace", str(trace_b),
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "diff", str(trace_a), str(trace_b)]) == 0
        assert "wall clock" in capsys.readouterr().out

    def test_report_missing_trace_exit_code(self, tmp_path, capsys):
        assert main(
            ["obs", "report", str(tmp_path / "absent.json")]
        ) == EXIT_MISSING_INPUT

    def test_report_invalid_trace_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope", encoding="utf-8")
        assert main(["obs", "report", str(bad)]) == EXIT_INVALID_DATA

    def test_runs_list_and_show(self, traced_run, capsys):
        import json as json_mod

        _, ledger = traced_run
        capsys.readouterr()
        assert main(["obs", "runs", "list", str(ledger)]) == 0
        listed = capsys.readouterr().out
        assert "[0]" in listed and "sparsify" in listed
        assert main(["obs", "runs", "show", str(ledger)]) == 0
        record = json_mod.loads(capsys.readouterr().out)
        assert record["kind"] == "sparsify"
        assert record["env"]["python"]
        assert record["stages"]  # per-stage profile captured
        assert record["config"]["tree"] == "akpw"

    def test_runs_diff(self, graph_file, traced_run, tmp_path, capsys):
        import json as json_mod

        path, _ = graph_file
        _, ledger = traced_run
        assert main([
            "sparsify", str(path), "-o", str(tmp_path / "c.mtx"),
            "--sigma2", "50", "--ledger", str(ledger),
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "runs", "diff", str(ledger)]) == 0
        diff = json_mod.loads(capsys.readouterr().out)
        assert diff["config"]["sigma2"] == [100.0, 50.0]

    def test_runs_missing_ledger_exit_code(self, tmp_path, capsys):
        assert main(
            ["obs", "runs", "list", str(tmp_path / "absent.jsonl")]
        ) == EXIT_MISSING_INPUT

    def test_runs_bad_index_exit_code(self, traced_run, capsys):
        _, ledger = traced_run
        capsys.readouterr()
        assert main(
            ["obs", "runs", "show", str(ledger), "--index", "99"]
        ) == EXIT_INVALID_DATA

    def test_broken_pipe_exits_cleanly(self, traced_run, monkeypatch):
        # `repro obs report trace.json | head` must not traceback when
        # the reader closes the pipe early.
        import builtins

        trace, _ = traced_run

        def dead_pipe(*args, **kwargs):
            raise BrokenPipeError

        monkeypatch.setattr(builtins, "print", dead_pipe)
        assert main(["obs", "report", str(trace)]) == 0

    def test_stream_ledger_flag(self, graph_file, tmp_path, capsys):
        import json as json_mod

        path, graph = graph_file
        events = tmp_path / "events.jsonl"
        events.write_text(
            json_mod.dumps({"type": "insert", "u": 0, "v": int(graph.n - 1),
                            "w": 2.0}) + "\n",
            encoding="utf-8",
        )
        ledger = tmp_path / "runs.jsonl"
        assert main([
            "stream", str(events), "--graph", str(path),
            "--sigma2", "150", "--ledger", str(ledger),
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "runs", "show", str(ledger)]) == 0
        record = json_mod.loads(capsys.readouterr().out)
        assert record["kind"] == "stream"
        assert record["metrics"]["num_events"] == 1
        assert record["metrics"]["batches"] == 1
