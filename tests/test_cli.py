"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import generators
from repro.graphs.io import load_graph_matrix_market, write_matrix_market


@pytest.fixture
def graph_file(tmp_path):
    graph = generators.circuit_grid(12, 12, seed=3)
    path = tmp_path / "graph.mtx"
    write_matrix_market(path, graph.adjacency(), symmetric=True)
    return path, graph


class TestSparsifyCommand:
    def test_writes_sparsifier(self, graph_file, tmp_path, capsys):
        path, graph = graph_file
        out = tmp_path / "sparse.mtx"
        code = main(["sparsify", str(path), "-o", str(out), "--sigma2", "100"])
        assert code == 0
        assert out.exists()
        sparsifier = load_graph_matrix_market(out)
        assert sparsifier.n == graph.n
        assert sparsifier.num_edges <= graph.num_edges
        assert "sparsifier" in capsys.readouterr().out

    def test_tree_method_flag(self, graph_file, tmp_path):
        path, _ = graph_file
        out = tmp_path / "sparse.mtx"
        assert main(["sparsify", str(path), "-o", str(out), "--tree", "maxw"]) == 0

    def test_sparsifier_is_subgraph(self, graph_file, tmp_path):
        path, graph = graph_file
        out = tmp_path / "sparse.mtx"
        main(["sparsify", str(path), "-o", str(out)])
        sparsifier = load_graph_matrix_market(out)
        assert np.all(graph.has_edges(sparsifier.u, sparsifier.v))


class TestSparsifyDisconnected:
    @pytest.fixture
    def disconnected_file(self, tmp_path):
        from repro.graphs.operations import disjoint_union

        graph = disjoint_union(
            disjoint_union(
                generators.grid2d(8, 8, weights="uniform", seed=0),
                generators.grid2d(7, 7, weights="uniform", seed=1),
            ),
            generators.grid2d(6, 6, weights="uniform", seed=2),
        )
        path = tmp_path / "multi.mtx"
        write_matrix_market(path, graph.adjacency(), symmetric=True)
        return path, graph

    def test_three_component_graph_succeeds(self, disconnected_file, tmp_path, capsys):
        path, graph = disconnected_file
        out = tmp_path / "sparse.mtx"
        code = main(["sparsify", str(path), "-o", str(out)])
        assert code == 0
        sparsifier = load_graph_matrix_market(out)
        assert sparsifier.n == graph.n  # every component kept, none dropped
        assert np.all(graph.has_edges(sparsifier.u, sparsifier.v))
        assert "3 components" in capsys.readouterr().out

    def test_workers_flag(self, disconnected_file, tmp_path):
        path, _ = disconnected_file
        serial = tmp_path / "serial.mtx"
        parallel = tmp_path / "parallel.mtx"
        assert main(["sparsify", str(path), "-o", str(serial)]) == 0
        assert main(["sparsify", str(path), "-o", str(parallel),
                     "--workers", "2", "--backend", "thread"]) == 0
        a = load_graph_matrix_market(serial)
        b = load_graph_matrix_market(parallel)
        assert a == b  # worker count must not change the sparsifier

    def test_shard_max_nodes_flag(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        out = tmp_path / "sparse.mtx"
        code = main(["sparsify", str(path), "-o", str(out),
                     "--shard-max-nodes", "60"])
        assert code == 0
        assert "shards" in capsys.readouterr().out


class TestSimilarityCommand:
    def test_reports_estimates(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        out = tmp_path / "sparse.mtx"
        main(["sparsify", str(path), "-o", str(out), "--sigma2", "50"])
        capsys.readouterr()
        code = main(["similarity", str(path), str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "kappa" in text
        kappa = float(
            [ln for ln in text.splitlines() if "kappa" in ln][0].split("~=")[1]
        )
        assert 1.0 <= kappa <= 200.0


class TestGenerateCommand:
    @pytest.mark.parametrize("family", ["grid2d", "circuit_grid", "barabasi_albert"])
    def test_generates_workload(self, family, tmp_path, capsys):
        out = tmp_path / "g.mtx"
        code = main(["generate", family, "--out", str(out), "--size", "8"])
        assert code == 0
        graph = load_graph_matrix_market(out)
        assert graph.n >= 64
        assert "written" in capsys.readouterr().out

    def test_unknown_family_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "mystery", "--out", str(tmp_path / "g.mtx")])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
