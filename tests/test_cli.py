"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import generators
from repro.graphs.io import load_graph_matrix_market, write_matrix_market


@pytest.fixture
def graph_file(tmp_path):
    graph = generators.circuit_grid(12, 12, seed=3)
    path = tmp_path / "graph.mtx"
    write_matrix_market(path, graph.adjacency(), symmetric=True)
    return path, graph


class TestSparsifyCommand:
    def test_writes_sparsifier(self, graph_file, tmp_path, capsys):
        path, graph = graph_file
        out = tmp_path / "sparse.mtx"
        code = main(["sparsify", str(path), "-o", str(out), "--sigma2", "100"])
        assert code == 0
        assert out.exists()
        sparsifier = load_graph_matrix_market(out)
        assert sparsifier.n == graph.n
        assert sparsifier.num_edges <= graph.num_edges
        assert "sparsifier" in capsys.readouterr().out

    def test_tree_method_flag(self, graph_file, tmp_path):
        path, _ = graph_file
        out = tmp_path / "sparse.mtx"
        assert main(["sparsify", str(path), "-o", str(out), "--tree", "maxw"]) == 0

    def test_sparsifier_is_subgraph(self, graph_file, tmp_path):
        path, graph = graph_file
        out = tmp_path / "sparse.mtx"
        main(["sparsify", str(path), "-o", str(out)])
        sparsifier = load_graph_matrix_market(out)
        assert np.all(graph.has_edges(sparsifier.u, sparsifier.v))


class TestSparsifyDisconnected:
    @pytest.fixture
    def disconnected_file(self, tmp_path):
        from repro.graphs.operations import disjoint_union

        graph = disjoint_union(
            disjoint_union(
                generators.grid2d(8, 8, weights="uniform", seed=0),
                generators.grid2d(7, 7, weights="uniform", seed=1),
            ),
            generators.grid2d(6, 6, weights="uniform", seed=2),
        )
        path = tmp_path / "multi.mtx"
        write_matrix_market(path, graph.adjacency(), symmetric=True)
        return path, graph

    def test_three_component_graph_succeeds(self, disconnected_file, tmp_path, capsys):
        path, graph = disconnected_file
        out = tmp_path / "sparse.mtx"
        code = main(["sparsify", str(path), "-o", str(out)])
        assert code == 0
        sparsifier = load_graph_matrix_market(out)
        assert sparsifier.n == graph.n  # every component kept, none dropped
        assert np.all(graph.has_edges(sparsifier.u, sparsifier.v))
        assert "3 components" in capsys.readouterr().out

    def test_workers_flag(self, disconnected_file, tmp_path):
        path, _ = disconnected_file
        serial = tmp_path / "serial.mtx"
        parallel = tmp_path / "parallel.mtx"
        assert main(["sparsify", str(path), "-o", str(serial)]) == 0
        assert main(["sparsify", str(path), "-o", str(parallel),
                     "--workers", "2", "--backend", "thread"]) == 0
        a = load_graph_matrix_market(serial)
        b = load_graph_matrix_market(parallel)
        assert a == b  # worker count must not change the sparsifier

    def test_shard_max_nodes_flag(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        out = tmp_path / "sparse.mtx"
        code = main(["sparsify", str(path), "-o", str(out),
                     "--shard-max-nodes", "60"])
        assert code == 0
        assert "shards" in capsys.readouterr().out


class TestStreamCommand:
    @pytest.fixture
    def stream_files(self, tmp_path):
        from repro.stream import random_event_stream, write_event_log

        graph = generators.grid2d(10, 10, weights="uniform", seed=5)
        graph_path = tmp_path / "g.mtx"
        write_matrix_market(graph_path, graph.adjacency(), symmetric=True)
        events = random_event_stream(graph, 60, seed=2, p_delete=0.35)
        log_path = tmp_path / "events.jsonl"
        write_event_log(log_path, events)
        return graph_path, log_path, graph, events

    def test_replays_and_reports(self, stream_files, capsys):
        graph_path, log_path, _, events = stream_files
        code = main(["stream", str(log_path), "--graph", str(graph_path),
                     "--sigma2", "150", "--batch-size", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"replaying {len(events)} events" in out
        assert "batch    3:" in out
        assert "sigma2 estimate" in out

    def test_writes_output_and_checkpoint(self, stream_files, tmp_path, capsys):
        graph_path, log_path, graph, _ = stream_files
        out = tmp_path / "sparse.mtx"
        ckpt = tmp_path / "state"
        code = main(["stream", str(log_path), "--graph", str(graph_path),
                     "-o", str(out), "--checkpoint-out", str(ckpt)])
        assert code == 0
        assert out.exists()
        assert (tmp_path / "state.npz").exists()
        assert (tmp_path / "state.json").exists()
        sparsifier = load_graph_matrix_market(out)
        assert sparsifier.n == graph.n

    def test_resume_from_checkpoint(self, stream_files, tmp_path, capsys):
        from repro.stream import load_dynamic, random_event_stream, write_event_log

        graph_path, log_path, _, _ = stream_files
        ckpt = tmp_path / "state"
        main(["stream", str(log_path), "--graph", str(graph_path),
              "--checkpoint-out", str(ckpt)])
        # Events valid against the *checkpointed* (mutated) graph.
        mutated = load_dynamic(ckpt).graph
        log2 = tmp_path / "more.npz"
        write_event_log(log2, random_event_stream(mutated, 20, seed=9))
        capsys.readouterr()
        code = main(["stream", str(log2), "--resume", str(ckpt)])
        assert code == 0
        assert "resumed" in capsys.readouterr().out

    def test_requires_graph_or_resume(self, stream_files, capsys):
        _, log_path, _, _ = stream_files
        assert main(["stream", str(log_path)]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_graph_and_resume_mutually_exclusive(self, stream_files, tmp_path):
        graph_path, log_path, _, _ = stream_files
        assert main(["stream", str(log_path), "--graph", str(graph_path),
                     "--resume", str(tmp_path / "nope")]) == 2


class TestSimilarityCommand:
    def test_reports_estimates(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        out = tmp_path / "sparse.mtx"
        main(["sparsify", str(path), "-o", str(out), "--sigma2", "50"])
        capsys.readouterr()
        code = main(["similarity", str(path), str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "kappa" in text
        kappa = float(
            [ln for ln in text.splitlines() if "kappa" in ln][0].split("~=")[1]
        )
        assert 1.0 <= kappa <= 200.0


class TestGenerateCommand:
    @pytest.mark.parametrize("family", ["grid2d", "circuit_grid", "barabasi_albert"])
    def test_generates_workload(self, family, tmp_path, capsys):
        out = tmp_path / "g.mtx"
        code = main(["generate", family, "--out", str(out), "--size", "8"])
        assert code == 0
        graph = load_graph_matrix_market(out)
        assert graph.n >= 64
        assert "written" in capsys.readouterr().out

    def test_unknown_family_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "mystery", "--out", str(tmp_path / "g.mtx")])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
