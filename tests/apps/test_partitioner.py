"""Unit tests for the spectral partitioner application."""

import numpy as np
import pytest

from repro.apps import partition_graph
from repro.graphs import generators
from repro.spectral import partition_disagreement


@pytest.fixture
def mesh():
    """Rectangular mesh with isolated Fiedler mode."""
    return generators.grid2d(40, 14, weights="uniform", seed=3)


class TestDirectPartitioner:
    def test_balance_near_one_on_mesh(self, mesh):
        report = partition_graph(mesh, method="direct", seed=0)
        assert 0.8 <= report.balance <= 1.25

    def test_memory_and_time_recorded(self, mesh):
        report = partition_graph(mesh, method="direct", seed=0)
        assert report.memory_bytes > 0
        assert report.solve_seconds >= 0.0
        assert report.method == "direct"


class TestSparsifierPartitioner:
    def test_agrees_with_direct(self, mesh):
        direct = partition_graph(mesh, method="direct", seed=0)
        iterative = partition_graph(mesh, method="sparsifier", sigma2=200.0, seed=0)
        err = partition_disagreement(direct.labels, iterative.labels)
        assert err <= 0.05  # the paper's Rel.Err column is <= a few %

    def test_memory_below_direct(self):
        """Table 3's M_I << M_D claim (needs a mesh with real fill-in)."""
        g = generators.grid2d(45, 45, weights="uniform", seed=4)
        direct = partition_graph(g, method="direct", seed=0)
        iterative = partition_graph(g, method="sparsifier", sigma2=200.0, seed=0)
        assert iterative.memory_bytes < direct.memory_bytes

    def test_unknown_method_rejected(self, mesh):
        with pytest.raises(ValueError, match="unknown method"):
            partition_graph(mesh, method="metis")

    def test_cut_quality_reasonable(self, mesh):
        """Sign cut of the Fiedler vector yields a low-conductance cut."""
        from repro.spectral import conductance

        report = partition_graph(mesh, method="sparsifier", sigma2=200.0, seed=0)
        assert conductance(mesh, report.labels) < 0.1

    def test_two_community_graph_recovered(self):
        pts = generators.gaussian_mixture_points(
            240, dim=3, clusters=2, separation=8.0, seed=5
        )
        g = generators.knn_graph(pts, k=8)
        report = partition_graph(g, method="sparsifier", sigma2=100.0, seed=0)
        direct = partition_graph(g, method="direct", seed=0)
        assert partition_disagreement(report.labels, direct.labels) < 0.02
