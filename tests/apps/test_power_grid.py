"""Unit tests for vectorless power-grid verification."""

import numpy as np
import pytest
import scipy.optimize
import scipy.sparse as sp

from repro.apps.power_grid import (
    VectorlessVerifier,
    worst_case_drop,
)
from repro.graphs import generators


class TestKnapsack:
    def test_matches_linprog_oracle(self, rng):
        """Greedy == LP optimum for box + budget constraints."""
        n = 40
        c = rng.standard_normal(n)
        i_max = rng.uniform(0.0, 2.0, n)
        budget = 5.0
        greedy = worst_case_drop(c, i_max, budget)
        # LP: maximize c @ i  <=>  minimize -c @ i.
        lp = scipy.optimize.linprog(
            -c,
            A_ub=np.ones((1, n)),
            b_ub=[budget],
            bounds=list(zip(np.zeros(n), i_max)),
            method="highs",
        )
        assert lp.status == 0
        assert greedy == pytest.approx(-lp.fun, rel=1e-9, abs=1e-12)

    def test_zero_budget_zero_drop(self, rng):
        c = rng.random(10)
        assert worst_case_drop(c, np.ones(10), 0.0) == 0.0

    def test_budget_not_binding(self):
        c = np.array([2.0, 1.0])
        assert worst_case_drop(c, np.array([1.0, 1.0]), 10.0) == pytest.approx(3.0)

    def test_budget_binding_takes_best_first(self):
        c = np.array([2.0, 1.0])
        assert worst_case_drop(c, np.array([1.0, 1.0]), 1.5) == pytest.approx(
            2.0 * 1.0 + 1.0 * 0.5
        )

    def test_negative_coefficients_ignored(self):
        c = np.array([-1.0, 3.0])
        assert worst_case_drop(c, np.array([5.0, 1.0]), 10.0) == pytest.approx(3.0)

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            worst_case_drop(np.ones(2), np.array([-1.0, 1.0]), 1.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="total_budget"):
            worst_case_drop(np.ones(2), np.ones(2), -1.0)


class TestVerifier:
    @pytest.fixture
    def grid(self):
        return generators.circuit_grid(10, 10, layers=1, seed=5)

    def test_pcg_matches_direct(self, grid):
        pads = {0: 50.0, grid.n - 1: 50.0}
        observed = np.array([grid.n // 2, grid.n // 3])
        direct = VectorlessVerifier(grid, pads, mode="direct").verify(
            observed, i_max=0.1, total_budget=1.0
        )
        pcg = VectorlessVerifier(grid, pads, mode="pcg", sigma2=50.0, seed=0).verify(
            observed, i_max=0.1, total_budget=1.0, tol=1e-10
        )
        assert np.allclose(direct.drops, pcg.drops, rtol=1e-6)
        assert pcg.pcg_iterations > 0

    def test_drops_positive_and_monotone_in_budget(self, grid):
        pads = {0: 50.0}
        verifier = VectorlessVerifier(grid, pads, mode="direct")
        observed = np.array([grid.n - 1])
        small = verifier.verify(observed, i_max=0.1, total_budget=0.5)
        large = verifier.verify(observed, i_max=0.1, total_budget=2.0)
        assert small.drops[0] > 0
        assert large.drops[0] >= small.drops[0]

    def test_far_node_drops_more(self, grid):
        """Nodes electrically farther from the pad see larger drops."""
        pads = {0: 100.0}
        verifier = VectorlessVerifier(grid, pads, mode="direct")
        result = verifier.verify(
            np.array([1, grid.n - 1]), i_max=0.05, total_budget=1.0
        )
        assert result.drops[1] > result.drops[0]

    def test_worst_node_reported(self, grid):
        pads = {0: 100.0}
        result = VectorlessVerifier(grid, pads, mode="direct").verify(
            np.array([1, grid.n - 1]), i_max=0.05, total_budget=1.0
        )
        assert result.worst_node == grid.n - 1
        assert result.worst_drop == pytest.approx(result.drops.max())

    def test_no_pads_rejected(self, grid):
        with pytest.raises(ValueError, match="pad"):
            VectorlessVerifier(grid, {})

    def test_nonpositive_pad_rejected(self, grid):
        with pytest.raises(ValueError, match="positive"):
            VectorlessVerifier(grid, {0: 0.0})

    def test_unknown_mode_rejected(self, grid):
        with pytest.raises(ValueError, match="mode"):
            VectorlessVerifier(grid, {0: 1.0}, mode="spice")
