"""Unit tests for the complex-network simplification application."""

import numpy as np
import pytest

from repro.apps import simplify_network
from repro.graphs import generators


class TestSimplifyNetwork:
    def test_report_fields(self):
        g = generators.barabasi_albert(600, 5, seed=1)
        report = simplify_network(g, sigma2=100.0, seed=0)
        assert report.total_seconds > 0.0
        assert report.edge_reduction > 1.0
        assert report.lambda1_ratio >= 1.0
        assert np.isfinite(report.eig_seconds_original)
        assert np.isfinite(report.eig_seconds_sparsified)

    def test_dense_graph_large_reduction(self):
        """Table 4 shape: dense random graphs reduce ~10-40x."""
        g = generators.erdos_renyi_gnm(400, 8000, seed=2)
        report = simplify_network(g, sigma2=100.0, seed=0,
                                  time_eigensolves=False)
        assert report.edge_reduction > 5.0

    def test_lambda1_drops_dramatically(self):
        """Table 4 shape: adding filtered edges slashes λ₁ by >> 10x."""
        g = generators.erdos_renyi_gnm(400, 8000, seed=3)
        report = simplify_network(g, sigma2=100.0, seed=0,
                                  time_eigensolves=False)
        assert report.lambda1_ratio > 10.0

    def test_eig_timing_skippable(self):
        g = generators.barabasi_albert(300, 4, seed=4)
        report = simplify_network(g, sigma2=100.0, seed=0,
                                  time_eigensolves=False)
        assert np.isnan(report.eig_seconds_original)
        assert np.isnan(report.eig_seconds_sparsified)

    def test_sparsifier_preserves_clustering(self):
        """The RCV-80NN use case: clustering on the sparsifier matches
        clustering on the original."""
        from repro.spectral import spectral_clustering

        pts = generators.gaussian_mixture_points(
            300, dim=4, clusters=3, separation=10.0, seed=5
        )
        g = generators.knn_graph(pts, k=12)
        report = simplify_network(g, sigma2=100.0, seed=0,
                                  time_eigensolves=False)
        labels_orig = spectral_clustering(g, 3, seed=1)
        labels_sparse = spectral_clustering(report.result.sparsifier, 3, seed=1)
        # Compare partitions with a pairwise Rand-style agreement.
        same_a = labels_orig[:, None] == labels_orig[None, :]
        same_b = labels_sparse[:, None] == labels_sparse[None, :]
        agreement = float(
            np.triu(same_a == same_b, k=1).sum()
            / (g.n * (g.n - 1) / 2)
        )
        assert agreement > 0.9


class TestDisconnectedNetworks:
    def test_disconnected_routes_through_shards(self):
        from repro.graphs.operations import disjoint_union
        from repro.sparsify import ShardedSparsifyResult

        g = disjoint_union(
            generators.barabasi_albert(300, 5, seed=1),
            generators.grid2d(12, 12, weights="uniform", seed=2),
        )
        report = simplify_network(g, sigma2=100.0, seed=0, workers=2,
                                  backend="thread", time_eigensolves=False)
        assert isinstance(report.result, ShardedSparsifyResult)
        assert report.edge_reduction >= 1.0

    def test_lambda1_ratio_uses_per_shard_extremes(self):
        """λ1 of a block-diagonal pencil is the max over shards; the
        ratio must never mix the tree estimate of one shard with the
        final estimate of another."""
        from repro.graphs.operations import disjoint_union

        # Dense component (λ1 drops a lot) + sparse grid (barely moves).
        g = disjoint_union(
            generators.erdos_renyi_gnm(300, 6000, seed=3),
            generators.grid2d(10, 10, weights="uniform", seed=4),
        )
        report = simplify_network(g, sigma2=100.0, seed=0,
                                  time_eigensolves=False)
        stats = report.result.shards
        firsts = [s.lambda_max_first for s in stats
                  if np.isfinite(s.lambda_max_first)]
        lasts = [s.lambda_max_last for s in stats
                 if np.isfinite(s.lambda_max_last)]
        assert report.lambda1_ratio == pytest.approx(max(firsts) / max(lasts))
        assert report.lambda1_ratio >= 1.0
