"""Unit tests for the similarity-aware SDD solver application."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps import SimilarityAwareSolver
from repro.graphs import generators


@pytest.fixture
def grid():
    return generators.grid2d(30, 30, weights="uniform", seed=2)


@pytest.fixture
def rhs(grid, rng):
    b = rng.standard_normal(grid.n)
    return b - b.mean()


class TestLaplacianSolve:
    def test_converges_to_paper_tolerance(self, grid, rhs):
        solver = SimilarityAwareSolver(grid, sigma2=50.0, seed=0)
        report = solver.solve(rhs, tol=1e-3)
        assert report.solve.converged
        L = grid.laplacian()
        residual = np.linalg.norm(L @ report.solve.x - rhs)
        assert residual <= 1e-3 * np.linalg.norm(rhs) * 1.01

    def test_table2_shape_n50_below_n200(self, grid, rhs):
        """The paper's headline trade-off: tighter σ² => fewer iterations."""
        n50 = SimilarityAwareSolver(grid, sigma2=50.0, seed=0).solve(rhs).iterations
        n200 = SimilarityAwareSolver(grid, sigma2=200.0, seed=0).solve(rhs).iterations
        assert n50 < n200

    def test_table2_shape_density_ordering(self, grid):
        d50 = SimilarityAwareSolver(grid, sigma2=50.0, seed=0).density
        d200 = SimilarityAwareSolver(grid, sigma2=200.0, seed=0).density
        assert d50 >= d200
        assert 1.0 < d200 < 2.0  # ultra-sparse preconditioner

    def test_factor_once_solve_many(self, grid, rng):
        solver = SimilarityAwareSolver(grid, sigma2=50.0, seed=0)
        for _ in range(3):
            b = rng.standard_normal(grid.n)
            b -= b.mean()
            assert solver.solve(b, tol=1e-3).solve.converged

    def test_report_fields(self, grid, rhs):
        report = SimilarityAwareSolver(grid, sigma2=100.0, seed=0).solve(rhs)
        assert report.sparsify_seconds >= 0.0
        assert report.precondition_seconds >= 0.0
        assert report.solve_seconds >= 0.0
        assert report.sigma2 == 100.0
        assert report.density > 1.0


class TestSDDMatrixSolve:
    def test_strictly_dominant_system(self, grid, rhs):
        A = (grid.laplacian() + sp.diags(0.1 * np.ones(grid.n))).tocsr()
        solver = SimilarityAwareSolver(A, sigma2=50.0, seed=0)
        assert not solver.singular
        report = solver.solve(rhs, tol=1e-8)
        assert report.solve.converged
        assert np.linalg.norm(A @ report.solve.x - rhs) <= 1e-7 * np.linalg.norm(rhs)

    def test_laplacian_matrix_detected_singular(self, grid):
        solver = SimilarityAwareSolver(grid.laplacian().tocsr(), sigma2=100.0, seed=0)
        assert solver.singular

    def test_amg_preconditioner_variant(self, grid, rhs):
        solver = SimilarityAwareSolver(
            grid, sigma2=50.0, precond_method="amg", seed=0
        )
        assert solver.solve(rhs, tol=1e-3).solve.converged
