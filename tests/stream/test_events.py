"""Unit tests for edge events, coalescing and event-log round-trips."""

import numpy as np
import pytest

from repro.graphs import Graph, generators
from repro.stream import (
    EdgeDelete,
    EdgeInsert,
    WeightUpdate,
    apply_events,
    coalesce,
    random_event_stream,
    read_event_log,
    write_event_log,
)


class TestEventValidation:
    def test_insert_fields(self):
        e = EdgeInsert(3, 1, 2.5)
        assert e.endpoints == (1, 3)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="loop"):
            EdgeInsert(2, 2, 1.0)
        with pytest.raises(ValueError, match="loop"):
            EdgeDelete(0, 0)

    def test_negative_endpoint_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EdgeDelete(-1, 2)

    @pytest.mark.parametrize("w", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_weight_rejected(self, w):
        with pytest.raises(ValueError):
            EdgeInsert(0, 1, w)
        with pytest.raises(ValueError):
            WeightUpdate(0, 1, w)

    def test_events_are_hashable_and_comparable(self):
        assert EdgeInsert(0, 1, 2.0) == EdgeInsert(0, 1, 2.0)
        assert len({EdgeDelete(0, 1), EdgeDelete(0, 1)}) == 1


class TestCoalesce:
    def test_insert_then_delete_cancels(self):
        assert coalesce([EdgeInsert(0, 1, 2.0), EdgeDelete(1, 0)]) == []

    def test_insert_then_update_folds(self):
        net = coalesce([EdgeInsert(0, 1, 2.0), WeightUpdate(0, 1, 5.0)])
        assert net == [EdgeInsert(0, 1, 5.0)]

    def test_delete_then_insert_becomes_update(self):
        net = coalesce([EdgeDelete(0, 1), EdgeInsert(1, 0, 3.0)])
        assert net == [WeightUpdate(1, 0, 3.0)]

    def test_update_chain_keeps_last(self):
        net = coalesce([WeightUpdate(0, 1, 2.0), WeightUpdate(0, 1, 7.0)])
        assert net == [WeightUpdate(0, 1, 7.0)]

    def test_update_then_delete_is_delete(self):
        net = coalesce([WeightUpdate(0, 1, 2.0), EdgeDelete(0, 1)])
        assert net == [EdgeDelete(0, 1)]

    def test_cancelled_pair_allows_fresh_insert(self):
        net = coalesce(
            [EdgeInsert(0, 1, 2.0), EdgeDelete(0, 1), EdgeInsert(0, 1, 4.0)]
        )
        assert net == [EdgeInsert(0, 1, 4.0)]

    def test_double_insert_rejected(self):
        with pytest.raises(ValueError, match="duplicate insert"):
            coalesce([EdgeInsert(0, 1, 2.0), EdgeInsert(0, 1, 3.0)])

    def test_double_delete_rejected(self):
        with pytest.raises(ValueError, match="already-deleted"):
            coalesce([EdgeDelete(0, 1), EdgeDelete(0, 1)])

    def test_update_after_delete_rejected(self):
        with pytest.raises(ValueError, match="already-deleted"):
            coalesce([EdgeDelete(0, 1), WeightUpdate(0, 1, 2.0)])

    def test_update_after_cancelled_pair_rejected(self):
        with pytest.raises(ValueError, match="already-deleted"):
            coalesce([EdgeInsert(0, 1, 1.0), EdgeDelete(0, 1),
                      WeightUpdate(0, 1, 2.0)])

    def test_first_touch_order_preserved(self):
        net = coalesce(
            [EdgeDelete(5, 6), EdgeInsert(0, 1, 1.0), WeightUpdate(2, 3, 4.0)]
        )
        assert [e.endpoints for e in net] == [(5, 6), (0, 1), (2, 3)]

    def test_distinct_edges_untouched(self):
        events = [EdgeInsert(0, 1, 1.0), EdgeDelete(2, 3)]
        assert coalesce(events) == events


class TestEventLogRoundTrip:
    @pytest.fixture
    def stream(self):
        return [
            EdgeInsert(0, 5, 0.1234567890123456789),
            EdgeDelete(3, 1),
            WeightUpdate(2, 7, 1e-12),
            EdgeInsert(100000, 4, 7.5),
        ]

    @pytest.mark.parametrize("suffix", [".jsonl", ".npz"])
    def test_roundtrip_exact(self, tmp_path, stream, suffix):
        path = tmp_path / f"log{suffix}"
        write_event_log(path, stream)
        assert read_event_log(path) == stream

    def test_jsonl_is_line_oriented(self, tmp_path, stream):
        path = tmp_path / "log.jsonl"
        write_event_log(path, stream)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(stream)
        assert '"type"' in lines[0]

    def test_empty_log(self, tmp_path):
        for suffix in (".jsonl", ".npz"):
            path = tmp_path / f"empty{suffix}"
            write_event_log(path, [])
            assert read_event_log(path) == []

    def test_unknown_suffix_rejected(self, tmp_path, stream):
        with pytest.raises(ValueError, match="suffix"):
            write_event_log(tmp_path / "log.csv", stream)
        with pytest.raises(ValueError, match="suffix"):
            read_event_log(tmp_path / "log.csv")

    def test_unknown_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "merge", "u": 0, "v": 1}\n')
        with pytest.raises(ValueError, match="unknown event type"):
            read_event_log(path)

    def test_malformed_record_rejected_with_location(self, tmp_path):
        """A missing field raises ValueError with file:line context,
        not a bare KeyError."""
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type": "insert", "u": 0, "v": 1, "w": 2.0}\n'
            '{"type": "insert", "u": 0, "v": 2}\n'  # no "w"
        )
        with pytest.raises(ValueError, match=r"bad\.jsonl:2.*malformed"):
            read_event_log(path)


class TestApplyEvents:
    def test_fold_semantics(self):
        g = Graph(4, [0, 1, 2], [1, 2, 3], [1.0, 1.0, 1.0])
        final = apply_events(g, [
            EdgeInsert(0, 3, 2.0),
            EdgeDelete(1, 2),
            WeightUpdate(2, 3, 5.0),
        ])
        assert final.num_edges == 3
        assert not final.has_edges([1], [2])[0]
        idx = final.edge_indices(np.array([2]), np.array([3]))[0]
        assert final.w[idx] == 5.0

    def test_source_graph_unmodified(self, grid_small):
        before = grid_small.copy()
        apply_events(grid_small, [EdgeInsert(0, 37, 1.0)])
        assert grid_small == before

    def test_invalid_events_rejected(self, grid_small):
        with pytest.raises(ValueError, match="existing edge"):
            apply_events(grid_small, [EdgeInsert(0, 1, 1.0)])
        with pytest.raises(ValueError, match="absent edge"):
            apply_events(grid_small, [EdgeDelete(0, 37)])
        with pytest.raises(ValueError, match="out of range"):
            apply_events(grid_small, [EdgeInsert(0, 64, 1.0)])


class TestRandomEventStream:
    def test_stream_is_applicable(self):
        """Functionally applying the stream never hits an invalid event
        and keeps the graph connected."""
        from repro.graphs.components import is_connected

        g = generators.grid2d(8, 8, weights="uniform", seed=0)
        events = random_event_stream(g, 150, seed=1, p_delete=0.4)
        edges = {(int(a), int(b)): float(w)
                 for a, b, w in zip(g.u, g.v, g.w)}
        for e in events:
            key = e.endpoints
            if isinstance(e, EdgeInsert):
                assert key not in edges
                edges[key] = e.w
            elif isinstance(e, EdgeDelete):
                assert key in edges
                del edges[key]
            else:
                assert key in edges
                edges[key] = e.w
        final = Graph(g.n, [k[0] for k in edges], [k[1] for k in edges],
                      list(edges.values()))
        assert is_connected(final)

    def test_deterministic_under_seed(self):
        g = generators.grid2d(6, 6, seed=0)
        assert (random_event_stream(g, 40, seed=9)
                == random_event_stream(g, 40, seed=9))

    def test_bad_probabilities_rejected(self):
        g = generators.grid2d(4, 4, seed=0)
        with pytest.raises(ValueError, match="probabilities"):
            random_event_stream(g, 5, seed=0, p_insert=0.8, p_delete=0.3)
