"""Unit tests for the DynamicSparsifier three-tier repair policy."""

import numpy as np
import pytest

from repro.graphs import Graph, generators
from repro.graphs.components import is_connected
from repro.sparsify import estimate_condition_number, sparsify_graph
from repro.stream import (
    DynamicSparsifier,
    EdgeDelete,
    EdgeInsert,
    WeightUpdate,
    apply_events,
    random_event_stream,
)
from repro.trees import RootedTree


@pytest.fixture
def grid():
    return generators.grid2d(10, 10, weights="uniform", seed=3)


@pytest.fixture
def dyn(grid):
    return DynamicSparsifier(grid, sigma2=150.0, seed=0)


def assert_invariants(dyn):
    """Structural invariants every post-batch state must satisfy."""
    # Mask contains the full backbone, backbone spans the graph.
    assert np.all(dyn.edge_mask[dyn.tree_indices])
    RootedTree.from_graph(dyn.graph, dyn.tree_indices)  # raises if not a tree
    assert is_connected(dyn.sparsifier())
    # Cached degrees agree with a recomputation.
    assert np.allclose(dyn._deg_p, dyn.sparsifier().weighted_degrees())


class TestConstruction:
    def test_initial_state_matches_batch_pipeline(self, grid):
        dyn = DynamicSparsifier(grid, sigma2=150.0, seed=0)
        assert_invariants(dyn)
        assert dyn.last_estimate <= 150.0
        assert dyn.batches_applied == 0

    def test_from_result(self, grid):
        result = sparsify_graph(grid, sigma2=150.0, seed=5)
        dyn = DynamicSparsifier.from_result(result, seed=1)
        assert np.array_equal(dyn.edge_mask, result.edge_mask)
        assert dyn.sigma2 == result.sigma2_target
        assert_invariants(dyn)
        dyn.apply([EdgeInsert(0, 55, 1.0)])
        assert_invariants(dyn)

    def test_disconnected_rejected(self):
        from repro.graphs.operations import disjoint_union

        g = disjoint_union(generators.grid2d(4, 4), generators.grid2d(3, 3))
        with pytest.raises(ValueError, match="connected"):
            DynamicSparsifier(g, sigma2=100.0, seed=0)

    def test_bad_options_rejected(self, grid):
        with pytest.raises(ValueError, match="sigma2"):
            DynamicSparsifier(grid, sigma2=0.5)
        with pytest.raises(ValueError, match="drift_tolerance"):
            DynamicSparsifier(grid, drift_tolerance=0.5)
        with pytest.raises(ValueError, match="check_every"):
            DynamicSparsifier(grid, check_every=0)
        with pytest.raises(ValueError, match="solver method"):
            DynamicSparsifier(grid, solver_method="magic")


class TestTier1Absorption:
    def test_insert_joins_graph_and_sparsifier(self, grid, dyn):
        assert not grid.has_edges([0], [77])[0]
        report = dyn.apply([EdgeInsert(0, 77, 2.5)])
        assert report.inserted == 1
        assert dyn.graph.has_edges([0], [77])[0]
        idx = dyn.graph.edge_indices(np.array([0]), np.array([77]))[0]
        assert dyn.edge_mask[idx]
        assert_invariants(dyn)

    def test_insert_without_absorption_stays_out(self, grid):
        dyn = DynamicSparsifier(grid, sigma2=150.0, seed=0,
                                absorb_inserts=False)
        dyn.apply([EdgeInsert(0, 77, 2.5)])
        idx = dyn.graph.edge_indices(np.array([0]), np.array([77]))[0]
        assert dyn.graph.has_edges([0], [77])[0]
        assert not dyn.edge_mask[idx]
        assert_invariants(dyn)

    def test_off_tree_delete_and_reweight(self, grid, dyn):
        off = np.flatnonzero(dyn.edge_mask)
        tree_set = set(dyn.tree_indices.tolist())
        off = [e for e in off if e not in tree_set]
        e0, e1 = off[0], off[1]
        events = [
            EdgeDelete(int(grid.u[e0]), int(grid.v[e0])),
            WeightUpdate(int(grid.u[e1]), int(grid.v[e1]), 9.0),
        ]
        report = dyn.apply(events)
        assert report.deleted == 1 and report.reweighted == 1
        assert report.tree_repairs == 0 and not report.tree_rebuilt
        assert not dyn.graph.has_edges([grid.u[e0]], [grid.v[e0]])[0]
        idx = dyn.graph.edge_indices(grid.u[e1:e1 + 1], grid.v[e1:e1 + 1])[0]
        assert dyn.graph.w[idx] == 9.0
        assert_invariants(dyn)

    def test_noop_reweight_filtered(self, grid, dyn):
        e = int(dyn.tree_indices[0])
        report = dyn.apply([WeightUpdate(int(grid.u[e]), int(grid.v[e]),
                                         float(grid.w[e]))])
        assert report.reweighted == 0

    def test_solver_absorbs_small_batches(self, grid, dyn):
        dyn.apply([EdgeInsert(0, 77, 1.0)])   # builds the solver lazily
        report = dyn.apply([EdgeInsert(1, 88, 1.0)])
        assert report.solver_absorbed
        assert dyn.solver_rebuilds == 1

    def test_oracle_parity_over_mixed_stream(self, grid, dyn):
        events = random_event_stream(grid, 120, seed=8, p_delete=0.35)
        dyn.apply_log(events, batch_size=24)
        assert dyn.graph == apply_events(grid, events)
        assert_invariants(dyn)


class TestValidation:
    def test_insert_existing_rejected(self, grid, dyn):
        with pytest.raises(ValueError, match="already in the graph"):
            dyn.apply([EdgeInsert(int(grid.u[0]), int(grid.v[0]), 1.0)])

    def test_invalid_cancelled_pair_rejected(self, grid, dyn):
        """An invalid insert must raise even when a later delete in the
        same batch would coalesce the pair to net zero."""
        u, v = int(grid.u[0]), int(grid.v[0])
        with pytest.raises(ValueError, match="already in the graph"):
            dyn.apply([EdgeInsert(u, v, 1.0), EdgeDelete(u, v)])

    def test_delete_reinserted_absent_edge_rejected(self, grid, dyn):
        """delete→insert of an edge absent from the graph is invalid at
        the delete, even though the pair nets to a WeightUpdate."""
        with pytest.raises(ValueError, match="delete of absent edge"):
            dyn.apply([EdgeDelete(0, 77), EdgeInsert(0, 77, 1.0)])

    def test_delete_absent_rejected(self, dyn):
        with pytest.raises(ValueError, match="absent edge"):
            dyn.apply([EdgeDelete(0, 77)])

    def test_update_absent_rejected(self, dyn):
        with pytest.raises(ValueError, match="absent edge"):
            dyn.apply([WeightUpdate(0, 77, 2.0)])

    def test_endpoint_out_of_range_rejected(self, dyn):
        with pytest.raises(ValueError, match="out of range"):
            dyn.apply([EdgeInsert(0, 100, 1.0)])

    def test_disconnecting_delete_rejected(self):
        g = generators.path_graph(5)
        dyn = DynamicSparsifier(g, sigma2=100.0, seed=0)
        with pytest.raises(ValueError, match="disconnected"):
            dyn.apply([EdgeDelete(2, 3)])


class TestTier2BackboneRepair:
    def test_tree_deletion_repaired(self, grid, dyn):
        e = int(dyn.tree_indices[5])
        report = dyn.apply([EdgeDelete(int(grid.u[e]), int(grid.v[e]))])
        assert report.tree_repairs >= 1
        assert not report.tree_rebuilt
        assert report.checked  # backbone damage forces a drift check
        assert_invariants(dyn)

    def test_many_tree_deletions_fall_back_to_rebuild(self, grid):
        dyn = DynamicSparsifier(grid, sigma2=150.0, seed=0,
                                tree_rebuild_threshold=2)
        picked = dyn.tree_indices[[3, 10, 20, 30]]
        events = [EdgeDelete(int(grid.u[e]), int(grid.v[e])) for e in picked]
        report = dyn.apply(events)
        assert report.tree_rebuilt
        assert report.tree_repairs == 0
        assert_invariants(dyn)

    def test_repair_prefers_heavy_replacement(self):
        """The bridge is chosen by maximum conductance across the cut."""
        # Two triangles joined by a tree edge (2,3) plus two parallel
        # candidate bridges of different weights.
        g = Graph(
            6,
            [0, 0, 1, 3, 3, 4, 2, 1, 0],
            [1, 2, 2, 4, 5, 5, 3, 4, 5],
            [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0, 0.5],
        )
        dyn = DynamicSparsifier(g, sigma2=200.0, seed=0)
        dyn.apply([EdgeDelete(2, 3)])
        bridge = dyn.graph.edge_indices(np.array([1]), np.array([4]))[0]
        assert bridge in set(dyn.tree_indices.tolist())
        assert_invariants(dyn)


class TestTier3DriftMonitor:
    def test_check_cadence(self, grid):
        dyn = DynamicSparsifier(grid, sigma2=150.0, seed=0, check_every=3)
        r1 = dyn.apply([EdgeInsert(0, 77, 1.0)])
        r2 = dyn.apply([EdgeInsert(1, 88, 1.0)])
        r3 = dyn.apply([EdgeInsert(2, 99, 1.0)])
        assert [r1.checked, r2.checked, r3.checked] == [False, False, True]
        assert np.isnan(r1.sigma2_estimate)
        assert r3.sigma2_estimate > 0

    def test_redensify_restores_certificate(self, grid):
        """Heavy inserts without absorption drift past sigma2; tier 3
        must pull the estimate back under the target."""
        dyn = DynamicSparsifier(grid, sigma2=40.0, seed=2,
                                absorb_inserts=False)
        events = random_event_stream(grid, 400, seed=6, p_insert=0.9,
                                     p_delete=0.05)
        reports = dyn.apply_log(events, batch_size=50)
        assert dyn.redensify_count >= 1
        assert any(r.redensified and r.densify_added > 0 for r in reports)
        scratch = sparsify_graph(dyn.graph, sigma2=40.0, seed=0)
        if scratch.converged:
            assert dyn.last_estimate <= 40.0
        assert_invariants(dyn)

    def test_quality_probe_is_side_effect_free(self, dyn):
        state_before = dyn._rng.bit_generator.state
        est1 = dyn.quality()
        est2 = dyn.quality()
        assert est1 == est2
        assert dyn._rng.bit_generator.state == state_before
        # And it agrees with the offline estimator on the same pencil.
        offline = estimate_condition_number(dyn.graph, dyn.sparsifier(), seed=0)
        assert est1.lambda_min == pytest.approx(offline.lambda_min)


class TestApplyLog:
    def test_batching(self, grid, dyn):
        events = random_event_stream(grid, 50, seed=4)
        reports = dyn.apply_log(events, batch_size=20)
        assert [r.num_events for r in reports] == [20, 20, 10]
        assert reports[-1].batch == 3

    def test_bad_batch_size(self, dyn):
        with pytest.raises(ValueError, match="batch_size"):
            dyn.apply_log([], batch_size=0)

    def test_empty_batch_is_cheap_noop(self, grid, dyn):
        before = dyn.graph
        report = dyn.apply([])
        assert report.num_net_events == 0
        assert dyn.graph == before
        assert_invariants(dyn)
