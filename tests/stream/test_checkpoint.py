"""Unit tests for streaming checkpoint save/restore."""

import json

import numpy as np
import pytest

from repro.graphs import generators
from repro.sparsify import sparsify_graph
from repro.stream import (
    DynamicSparsifier,
    checkpoint_paths,
    load_dynamic,
    load_result,
    random_event_stream,
    save_dynamic,
    save_result,
)


@pytest.fixture
def grid():
    return generators.grid2d(9, 9, weights="lognormal", seed=4)


class TestCheckpointPaths:
    @pytest.mark.parametrize("given", ["state", "state.npz", "state.json"])
    def test_suffix_normalization(self, tmp_path, given):
        npz, js = checkpoint_paths(tmp_path / given)
        assert npz == tmp_path / "state.npz"
        assert js == tmp_path / "state.json"

    def test_dotted_names_do_not_collide(self, tmp_path, grid):
        """ckpt.day1 and ckpt.day2 must map to distinct files."""
        npz1, _ = checkpoint_paths(tmp_path / "ckpt.day1")
        npz2, _ = checkpoint_paths(tmp_path / "ckpt.day2")
        assert npz1 == tmp_path / "ckpt.day1.npz"
        assert npz1 != npz2
        dyn = DynamicSparsifier(grid, sigma2=90.0, seed=0)
        save_dynamic(tmp_path / "ckpt.day1", dyn)
        dyn.apply(random_event_stream(grid, 5, seed=1))
        save_dynamic(tmp_path / "ckpt.day2", dyn)
        assert load_dynamic(tmp_path / "ckpt.day1").batches_applied == 0
        assert load_dynamic(tmp_path / "ckpt.day2").batches_applied == 1


class TestDynamicRoundTrip:
    def test_full_state_restored(self, tmp_path, grid):
        dyn = DynamicSparsifier(grid, sigma2=90.0, seed=7,
                                drift_tolerance=1.5, check_every=2)
        dyn.apply_log(random_event_stream(grid, 60, seed=2), batch_size=20)
        npz_path, json_path = save_dynamic(tmp_path / "ckpt", dyn)
        assert npz_path.exists() and json_path.exists()

        back = load_dynamic(tmp_path / "ckpt")
        assert back.graph == dyn.graph
        assert np.array_equal(back.edge_mask, dyn.edge_mask)
        assert np.array_equal(back.tree_indices, dyn.tree_indices)
        assert np.array_equal(back._deg_p, dyn._deg_p)
        assert back._rng.bit_generator.state == dyn._rng.bit_generator.state
        assert back.sigma2 == dyn.sigma2
        assert back.drift_tolerance == 1.5
        assert back.check_every == 2
        assert back.batches_applied == dyn.batches_applied
        assert back.events_applied == dyn.events_applied
        assert back._batches_since_check == dyn._batches_since_check
        assert back.last_estimate == dyn.last_estimate

    def test_save_load_continue_bit_identical(self, tmp_path, grid):
        """The acceptance property: checkpointing mid-stream changes
        nothing about the masks the run produces."""
        events = random_event_stream(grid, 120, seed=5, p_delete=0.4)
        batches = [events[i:i + 20] for i in range(0, len(events), 20)]

        solo = DynamicSparsifier(grid, sigma2=90.0, seed=3)
        for batch in batches:
            solo.apply(batch)

        interrupted = DynamicSparsifier(grid, sigma2=90.0, seed=3)
        for k, batch in enumerate(batches):
            interrupted.apply(batch)
            if k in (1, 3):  # checkpoint twice mid-stream
                save_dynamic(tmp_path / f"ck{k}", interrupted)
                interrupted = load_dynamic(tmp_path / f"ck{k}")

        assert interrupted.graph == solo.graph
        assert np.array_equal(interrupted.edge_mask, solo.edge_mask)
        assert np.array_equal(interrupted.tree_indices, solo.tree_indices)
        assert np.array_equal(interrupted._deg_p, solo._deg_p)
        assert (interrupted._rng.bit_generator.state
                == solo._rng.bit_generator.state)

    def test_save_flushes_solver(self, tmp_path, grid):
        dyn = DynamicSparsifier(grid, sigma2=90.0, seed=0)
        dyn.apply(random_event_stream(grid, 10, seed=1))
        assert dyn._solver is not None
        save_dynamic(tmp_path / "ckpt", dyn)
        assert dyn._solver is None

    def test_json_is_human_readable(self, tmp_path, grid):
        dyn = DynamicSparsifier(grid, sigma2=90.0, seed=0)
        save_dynamic(tmp_path / "ckpt", dyn)
        meta = json.loads((tmp_path / "ckpt.json").read_text())
        assert meta["kind"] == "dynamic_sparsifier"
        assert meta["config"]["sigma2"] == 90.0
        assert meta["rng_state"]["bit_generator"] == "PCG64"

    def test_kind_mismatch_rejected(self, tmp_path, grid):
        result = sparsify_graph(grid, sigma2=90.0, seed=0)
        save_result(tmp_path / "res", result)
        with pytest.raises(ValueError, match="not a DynamicSparsifier"):
            load_dynamic(tmp_path / "res")


class TestResultRoundTrip:
    def test_result_restored(self, tmp_path, grid):
        result = sparsify_graph(grid, sigma2=90.0, seed=0)
        save_result(tmp_path / "res", result)
        back = load_result(tmp_path / "res")
        assert back.graph == result.graph
        assert np.array_equal(back.edge_mask, result.edge_mask)
        assert np.array_equal(back.tree_indices, result.tree_indices)
        assert back.sparsifier == result.sparsifier
        assert back.sigma2_target == result.sigma2_target
        assert back.sigma2_estimate == result.sigma2_estimate
        assert back.converged == result.converged
        assert back.tree_seconds == result.tree_seconds
        assert len(back.iterations) == len(result.iterations)
        assert back.iterations[-1] == result.iterations[-1]
        assert back.summary() == result.summary()

    def test_restored_result_feeds_from_result(self, tmp_path, grid):
        """Checkpointed batch results warm-start streaming."""
        result = sparsify_graph(grid, sigma2=90.0, seed=0)
        save_result(tmp_path / "res", result)
        dyn = DynamicSparsifier.from_result(load_result(tmp_path / "res"),
                                            seed=1)
        assert np.array_equal(dyn.edge_mask, result.edge_mask)

    def test_kind_mismatch_rejected(self, tmp_path, grid):
        dyn = DynamicSparsifier(grid, sigma2=90.0, seed=0)
        save_dynamic(tmp_path / "ck", dyn)
        with pytest.raises(ValueError, match="not a SparsifyResult"):
            load_result(tmp_path / "ck")
