"""Unit tests for the aggregation AMG hierarchy."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import generators
from repro.solvers import AMGSolver, heavy_edge_aggregates, pcg


class TestAggregation:
    def test_labels_cover_all_vertices(self, grid_weighted):
        labels = heavy_edge_aggregates(grid_weighted.laplacian())
        assert labels.shape == (grid_weighted.n,)
        assert labels.min() >= 0

    def test_coarsening_reduces_size(self, grid_weighted):
        labels = heavy_edge_aggregates(grid_weighted.laplacian())
        n_coarse = labels.max() + 1
        assert n_coarse < grid_weighted.n
        assert n_coarse >= grid_weighted.n // 4  # pairwise-ish matching

    def test_diagonal_matrix_all_singletons(self):
        D = sp.diags(np.ones(5)).tocsr()
        labels = heavy_edge_aggregates(D)
        assert len(np.unique(labels)) == 5

    def test_heavy_pairs_merged(self):
        """Dominant edges of a weighted path must be contracted pairwise."""
        from repro.graphs import Graph

        g = Graph(4, [0, 1, 2], [1, 2, 3], [100.0, 1.0, 100.0])
        labels = heavy_edge_aggregates(g.laplacian())
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_straggler_adopts_strongest_neighbor(self):
        """A vertex left unmatched joins its strongest neighbour's aggregate."""
        from repro.graphs import Graph

        g = Graph(3, [0, 1], [1, 2], [100.0, 1.0])
        labels = heavy_edge_aggregates(g.laplacian())
        assert labels[0] == labels[1] == labels[2]


class TestHierarchy:
    def test_multiple_levels_on_large_grid(self):
        g = generators.grid2d(40, 40, seed=1)
        amg = AMGSolver(g.laplacian(), coarse_size=50)
        assert amg.num_levels >= 3

    def test_galerkin_coarse_operators_are_laplacians(self):
        g = generators.grid2d(20, 20, weights="uniform", seed=2)
        amg = AMGSolver(g.laplacian(), coarse_size=20)
        for level in amg.levels:
            sums = np.asarray(level["A"].sum(axis=1)).ravel()
            assert np.abs(sums).max() < 1e-9

    def test_operator_bytes_positive(self, grid_weighted):
        amg = AMGSolver(grid_weighted.laplacian())
        assert amg.operator_bytes > 0

    def test_invalid_omega(self, grid_small):
        with pytest.raises(ValueError, match="omega"):
            AMGSolver(grid_small.laplacian(), omega=2.5)

    def test_small_problem_direct_only(self, path5):
        amg = AMGSolver(path5.laplacian(), coarse_size=100)
        assert amg.num_levels == 1


class TestSolving:
    def test_vcycle_reduces_residual(self, rng):
        g = generators.grid2d(30, 30, weights="uniform", seed=3)
        L = g.laplacian()
        amg = AMGSolver(L)
        b = rng.standard_normal(g.n)
        b -= b.mean()
        x = amg.solve(b)
        assert np.linalg.norm(L @ x - b) < 0.7 * np.linalg.norm(b)

    def test_pcg_preconditioner_fast_convergence(self, rng):
        g = generators.grid2d(40, 40, weights="uniform", seed=4)
        L = g.laplacian()
        b = rng.standard_normal(g.n)
        b -= b.mean()
        amg = AMGSolver(L)
        result = pcg(L, b, amg, tol=1e-8, maxiter=120, project_nullspace=True)
        assert result.converged
        assert result.iterations < 60

    def test_nonsingular_sdd(self, rng):
        g = generators.grid2d(20, 20, seed=5)
        A = (g.laplacian() + sp.diags(0.2 * np.ones(g.n))).tocsr()
        amg = AMGSolver(A)
        assert not amg.singular
        b = rng.standard_normal(g.n)
        result = pcg(A, b, amg, tol=1e-9, maxiter=200)
        assert result.converged

    def test_multi_rhs(self, grid_weighted, rng):
        amg = AMGSolver(grid_weighted.laplacian())
        B = rng.standard_normal((grid_weighted.n, 3))
        X = amg.solve(B)
        assert X.shape == B.shape

    def test_multiple_cycles_stronger(self, rng):
        g = generators.grid2d(25, 25, weights="uniform", seed=6)
        L = g.laplacian()
        b = rng.standard_normal(g.n)
        b -= b.mean()
        one = AMGSolver(L, cycles=1).solve(b)
        three = AMGSolver(L, cycles=3).solve(b)
        assert np.linalg.norm(L @ three - b) < np.linalg.norm(L @ one - b)

    def test_multiple_cycles_exact_on_coarse_only_hierarchy(self, rng):
        """Regression: with zero levels (n <= coarse_size) extra cycles
        used to re-add the full solve instead of a residual correction,
        returning ``cycles * A⁺ b``."""
        g = generators.grid2d(6, 6, weights="uniform", seed=6)
        L = g.laplacian()
        b = rng.standard_normal(g.n)
        b -= b.mean()
        amg = AMGSolver(L, cycles=2)
        assert amg.num_levels == 1
        x = amg.solve(b)
        assert np.linalg.norm(L @ x - b) < 1e-8 * np.linalg.norm(b)
