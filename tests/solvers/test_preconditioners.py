"""Unit tests for the preconditioner factory."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import generators
from repro.solvers import (
    conjugate_gradient,
    factorized_preconditioner,
    identity_preconditioner,
    jacobi_preconditioner,
    pcg,
    sparsifier_preconditioner,
    tree_preconditioner,
)
from repro.sparsify import sparsify_graph
from repro.trees import low_stretch_tree


@pytest.fixture
def laplacian_system(rng):
    g = generators.grid2d(30, 30, weights="uniform", seed=8)
    b = rng.standard_normal(g.n)
    b -= b.mean()
    return g, g.laplacian(), b


class TestIdentity:
    def test_noop(self, rng):
        M = identity_preconditioner()
        r = rng.standard_normal(7)
        assert np.array_equal(M(r), r)


class TestJacobi:
    def test_applies_inverse_diagonal(self, triangle):
        L = triangle.laplacian() + sp.eye(3)
        M = jacobi_preconditioner(L.tocsr())
        r = np.ones(3)
        assert np.allclose(M(r), 1.0 / L.diagonal())

    def test_nonpositive_diagonal_rejected(self):
        A = sp.diags([1.0, 0.0, 2.0]).tocsr()
        with pytest.raises(ValueError, match="positive diagonal"):
            jacobi_preconditioner(A)


class TestTreePreconditioner:
    def test_pcg_converges(self, laplacian_system):
        g, L, b = laplacian_system
        M = tree_preconditioner(g, low_stretch_tree(g, seed=0))
        result = pcg(L, b, M, tol=1e-8, maxiter=3000, project_nullspace=True)
        assert result.converged


class TestFactorized:
    def test_exact_preconditioner_one_iteration(self, laplacian_system):
        _, L, b = laplacian_system
        M = factorized_preconditioner(L.tocsc())
        result = pcg(L, b, M, tol=1e-10, maxiter=10, project_nullspace=True)
        assert result.converged
        assert result.iterations <= 2


class TestSparsifierPreconditioner:
    def test_beats_plain_cg(self, laplacian_system):
        g, L, b = laplacian_system
        sparsifier = sparsify_graph(g, sigma2=50.0, seed=0).sparsifier
        M = sparsifier_preconditioner(sparsifier, method="cholesky")
        plain = conjugate_gradient(L, b, tol=1e-6, maxiter=3000,
                                   project_nullspace=True)
        precond = pcg(L, b, M, tol=1e-6, maxiter=3000, project_nullspace=True)
        assert precond.converged
        assert precond.iterations < 0.5 * plain.iterations

    def test_amg_method(self, laplacian_system):
        g, L, b = laplacian_system
        sparsifier = sparsify_graph(g, sigma2=50.0, seed=0).sparsifier
        M = sparsifier_preconditioner(sparsifier, method="amg")
        result = pcg(L, b, M, tol=1e-6, maxiter=500, project_nullspace=True)
        assert result.converged

    def test_slack_carried_into_preconditioner(self, laplacian_system, rng):
        g, L, _ = laplacian_system
        slack = 0.5 * np.ones(g.n)
        A = (L + sp.diags(slack)).tocsr()
        sparsifier = sparsify_graph(g, sigma2=50.0, seed=0).sparsifier
        M = sparsifier_preconditioner(sparsifier, method="cholesky", slack=slack)
        b = rng.standard_normal(g.n)
        result = pcg(A, b, M, tol=1e-8, maxiter=200)
        assert result.converged

    def test_unknown_method_rejected(self, laplacian_system):
        g, _, _ = laplacian_system
        sparsifier = sparsify_graph(g, sigma2=100.0, seed=0).sparsifier
        with pytest.raises(ValueError, match="unknown preconditioner"):
            sparsifier_preconditioner(sparsifier, method="qr")
