"""Tests for the incremental ``Solver.update`` hooks (Woodbury + AMG)."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.solvers import AMGSolver, DirectSolver, Solver, csr_value_positions
from repro.trees import RootedTree, TreeSolver, low_stretch_tree


@pytest.fixture
def grid():
    return generators.grid2d(14, 14, weights="lognormal", seed=5)


def _full_pattern_laplacian(graph, mask):
    """Sparsifier Laplacian stored on the host graph's full pattern —
    how :class:`SparsifierState` feeds the AMG so edge updates can be
    patched in place."""
    out = graph.laplacian().tocsr()
    base = graph.edge_subgraph(mask).laplacian().tocoo()
    data = np.zeros_like(out.data)
    pos = csr_value_positions(out, base.row, base.col)
    data[pos] = base.data
    import scipy.sparse as sp

    return sp.csr_matrix((data, out.indices, out.indptr), shape=out.shape)


def _split(graph, num_extra, seed=0):
    """Tree-backbone mask plus the first off-tree edges as the update."""
    tree = low_stretch_tree(graph, seed=seed)
    mask = np.zeros(graph.num_edges, dtype=bool)
    mask[tree] = True
    off = np.flatnonzero(~mask)[:num_extra]
    base_mask = mask.copy()
    base_mask[off[: num_extra // 2]] = True
    updated_mask = base_mask.copy()
    updated_mask[off[num_extra // 2:]] = True
    update = off[num_extra // 2:]
    return base_mask, updated_mask, update


class TestDirectSolverWoodbury:
    def test_update_matches_fresh_factorization(self, grid):
        base_mask, updated_mask, update = _split(grid, 24)
        base = grid.edge_subgraph(base_mask)
        solver = DirectSolver(base.laplacian().tocsc())
        assert solver.update(grid.u[update], grid.v[update], grid.w[update])
        fresh = DirectSolver(grid.edge_subgraph(updated_mask).laplacian().tocsc())
        rng = np.random.default_rng(1)
        b = rng.standard_normal((grid.n, 4))
        b -= b.mean(axis=0, keepdims=True)
        assert np.allclose(solver.solve(b), fresh.solve(b), atol=1e-8)
        assert np.allclose(solver.solve(b[:, 0]), fresh.solve(b[:, 0]), atol=1e-8)

    def test_accumulated_updates_stay_exact(self, grid):
        base_mask, updated_mask, update = _split(grid, 30)
        solver = DirectSolver(grid.edge_subgraph(base_mask).laplacian().tocsc())
        for chunk in np.array_split(update, 3):
            assert solver.update(grid.u[chunk], grid.v[chunk], grid.w[chunk])
        assert solver.update_rank == update.size
        fresh = DirectSolver(grid.edge_subgraph(updated_mask).laplacian().tocsc())
        b = np.zeros(grid.n)
        b[0], b[-1] = 1.0, -1.0
        assert np.allclose(solver.solve(b), fresh.solve(b), atol=1e-8)

    def test_rank_threshold_requests_rebuild(self, grid):
        base_mask, _, update = _split(grid, 20)
        solver = DirectSolver(
            grid.edge_subgraph(base_mask).laplacian().tocsc(), max_update_rank=4
        )
        big = update[:6]
        assert not solver.update(grid.u[big], grid.v[big], grid.w[big])
        assert solver.update_rank == 0  # rejected batches leave state intact

    def test_empty_batch_accepted(self, grid):
        base_mask, _, _ = _split(grid, 10)
        solver = DirectSolver(grid.edge_subgraph(base_mask).laplacian().tocsc())
        empty = np.array([], dtype=np.int64)
        assert solver.update(empty, empty, np.array([]))
        assert solver.update_rank == 0

    def test_nonsingular_sdd_update(self):
        """Woodbury also applies to grounded/regularized SDD systems."""
        g = generators.grid2d(6, 6, seed=2)
        import scipy.sparse as sp

        A = g.laplacian() + sp.eye(g.n)
        solver = DirectSolver(A.tocsc())
        assert not solver.singular
        u, v, w = np.array([0, 5]), np.array([7, 20]), np.array([2.0, 1.5])
        assert solver.update(u, v, w)
        rows = np.concatenate([u, v, u, v])
        cols = np.concatenate([v, u, u, v])
        vals = np.concatenate([-w, -w, w, w])
        A2 = (A + sp.csr_matrix((vals, (rows, cols)), shape=A.shape)).tocsc()
        fresh = DirectSolver(A2)
        b = np.random.default_rng(0).standard_normal(g.n)
        assert np.allclose(solver.solve(b), fresh.solve(b), atol=1e-8)


class TestDirectSolverSignedUpdates:
    """The weight-decrease / deletion path: negative Woodbury deltas."""

    def test_weight_decrease_matches_fresh_factorization(self, grid):
        base_mask, _, _ = _split(grid, 24)
        base = grid.edge_subgraph(base_mask)
        solver = DirectSolver(base.laplacian().tocsc())
        # Halve the weight of a few sparsifier edges: delta = -w/2.
        picked = np.flatnonzero(base_mask)[:5]
        delta = -0.5 * grid.w[picked]
        assert solver.update(grid.u[picked], grid.v[picked], delta)
        new_w = grid.w.copy()
        new_w[picked] *= 0.5
        reference = grid.reweighted(new_w).edge_subgraph(base_mask)
        fresh = DirectSolver(reference.laplacian().tocsc())
        b = np.random.default_rng(2).standard_normal((grid.n, 3))
        b -= b.mean(axis=0, keepdims=True)
        assert np.allclose(solver.solve(b), fresh.solve(b), atol=1e-8)

    def test_edge_deletion_matches_fresh_factorization(self, grid):
        """Delta −w removes the edge entirely (off-tree, stays connected)."""
        base_mask, updated_mask, update = _split(grid, 24)
        solver = DirectSolver(grid.edge_subgraph(updated_mask).laplacian().tocsc())
        drop = update[:6]
        assert solver.update(grid.u[drop], grid.v[drop], -grid.w[drop])
        smaller_mask = updated_mask.copy()
        smaller_mask[drop] = False
        fresh = DirectSolver(grid.edge_subgraph(smaller_mask).laplacian().tocsc())
        b = np.random.default_rng(3).standard_normal(grid.n)
        b -= b.mean()
        assert np.allclose(solver.solve(b), fresh.solve(b), atol=1e-8)

    def test_mixed_sign_batch(self, grid):
        """Additions and deletions in one batch (the streaming shape)."""
        base_mask, _, update = _split(grid, 24)
        mask = base_mask.copy()
        mask[update[:4]] = True
        solver = DirectSolver(grid.edge_subgraph(mask).laplacian().tocsc())
        add, drop = update[4:8], update[:2]
        us = np.concatenate([grid.u[add], grid.u[drop]])
        vs = np.concatenate([grid.v[add], grid.v[drop]])
        ws = np.concatenate([grid.w[add], -grid.w[drop]])
        assert solver.update(us, vs, ws)
        final_mask = mask.copy()
        final_mask[add] = True
        final_mask[drop] = False
        fresh = DirectSolver(grid.edge_subgraph(final_mask).laplacian().tocsc())
        b = np.random.default_rng(4).standard_normal(grid.n)
        b -= b.mean()
        assert np.allclose(solver.solve(b), fresh.solve(b), atol=1e-8)

    def test_zero_delta_rejected(self, grid):
        base_mask, _, update = _split(grid, 10)
        solver = DirectSolver(grid.edge_subgraph(base_mask).laplacian().tocsc())
        e = update[:1]
        with pytest.raises(ValueError, match="nonzero"):
            solver.update(grid.u[e], grid.v[e], np.array([0.0]))

    def test_disconnecting_deletion_requests_rebuild(self):
        """Deleting a bridge makes the Laplacian extra-singular; the
        capacitance turns singular and update must refuse, not corrupt."""
        g = generators.path_graph(6)
        solver = DirectSolver(g.laplacian().tocsc())
        before_rank = solver.update_rank
        ok = solver.update(np.array([2]), np.array([3]), np.array([-1.0]))
        assert not ok
        assert solver.update_rank == before_rank

    def test_positive_batches_still_use_cholesky(self, grid):
        """The pre-existing all-positive path keeps its Cholesky
        capacitance (bit-compatibility with the densification engine)."""
        base_mask, _, update = _split(grid, 12)
        solver = DirectSolver(grid.edge_subgraph(base_mask).laplacian().tocsc())
        e = update[:3]
        assert solver.update(grid.u[e], grid.v[e], grid.w[e])
        assert solver._cap_is_cholesky
        d = update[3:4]
        assert solver.update(grid.u[d], grid.v[d], -0.5 * grid.w[d])
        assert not solver._cap_is_cholesky


class TestTreeSolverUpdate:
    def test_any_edge_forces_rebuild(self, grid):
        tree = low_stretch_tree(grid, seed=0)
        solver = TreeSolver(RootedTree.from_graph(grid, tree))
        assert not solver.update(np.array([0]), np.array([1]), np.array([1.0]))

    def test_empty_batch_accepted(self, grid):
        tree = low_stretch_tree(grid, seed=0)
        solver = TreeSolver(RootedTree.from_graph(grid, tree))
        empty = np.array([], dtype=np.int64)
        assert solver.update(empty, empty, np.array([]))


class TestAMGUpdate:
    def test_hierarchy_patched_exactly(self, grid):
        base_mask, updated_mask, update = _split(grid, 26)
        base_lap = _full_pattern_laplacian(grid, base_mask)
        solver = AMGSolver(base_lap, cycles=2, coarse_size=32)
        assert solver.num_levels >= 2
        assert solver.update(grid.u[update], grid.v[update], grid.w[update])
        new_lap = grid.edge_subgraph(updated_mask).laplacian()
        diff = solver.levels[0]["A"] - new_lap
        assert (np.abs(diff.data).max() if diff.nnz else 0.0) < 1e-12
        # Galerkin consistency of the patched second level.
        P = solver.levels[0]["P"]
        coarse_ref = (P.T @ new_lap @ P).toarray()
        coarse = (
            solver.levels[1]["A"] if len(solver.levels) > 1 else solver._coarse_A
        ).toarray()
        assert np.allclose(coarse, coarse_ref, atol=1e-10)

    def test_out_of_pattern_update_requests_rebuild(self, grid):
        """Built from a pruned matrix, new edges fall outside the
        fine-level pattern — update must refuse, not corrupt."""
        base_mask, _, update = _split(grid, 26)
        solver = AMGSolver(
            grid.edge_subgraph(base_mask).laplacian(), cycles=2, coarse_size=32
        )
        before = solver.levels[0]["A"].data.copy()
        assert not solver.update(grid.u[update], grid.v[update], grid.w[update])
        assert np.array_equal(solver.levels[0]["A"].data, before)

    def test_patched_solve_matches_fresh_hierarchy_quality(self, grid):
        base_mask, updated_mask, update = _split(grid, 26)
        solver = AMGSolver(
            _full_pattern_laplacian(grid, base_mask), cycles=2, coarse_size=32
        )
        assert solver.update(grid.u[update], grid.v[update], grid.w[update])
        new_lap = grid.edge_subgraph(updated_mask).laplacian()
        fresh = AMGSolver(new_lap, cycles=2, coarse_size=32)
        b = np.random.default_rng(3).standard_normal(grid.n)
        b -= b.mean()
        res_patched = np.linalg.norm(new_lap @ solver.solve(b) - b)
        res_fresh = np.linalg.norm(new_lap @ fresh.solve(b) - b)
        assert res_patched <= 2.0 * res_fresh + 1e-12

    def test_rebuild_every_budget(self, grid):
        base_mask, _, update = _split(grid, 20)
        solver = AMGSolver(
            _full_pattern_laplacian(grid, base_mask),
            rebuild_every=2,
            coarse_size=32,
        )
        chunks = np.array_split(update, 4)
        results = [
            solver.update(grid.u[c], grid.v[c], grid.w[c]) for c in chunks[:3]
        ]
        assert results[:2] == [True, True]
        assert results[2] is False

    def test_coarse_only_hierarchy_delegates_to_direct(self, grid):
        """n below coarse_size: the AMG is a direct solve; updates route
        through the coarse solver's Woodbury hook."""
        base_mask, updated_mask, update = _split(grid, 16)
        solver = AMGSolver(_full_pattern_laplacian(grid, base_mask), cycles=1)
        assert solver.num_levels == 1
        assert solver.update(grid.u[update], grid.v[update], grid.w[update])
        new_lap = grid.edge_subgraph(updated_mask).laplacian()
        b = np.random.default_rng(5).standard_normal(grid.n)
        b -= b.mean()
        x = solver.solve(b)
        assert np.linalg.norm(new_lap @ x - b) < 1e-8 * np.linalg.norm(b)

    def test_negative_deltas_patched_exactly(self, grid):
        """The deletion path: signed deltas flow through the hierarchy
        (streaming on large graphs routes deletions through AMG)."""
        base_mask, updated_mask, update = _split(grid, 26)
        solver = AMGSolver(
            _full_pattern_laplacian(grid, updated_mask), cycles=2,
            coarse_size=32,
        )
        drop, shrink = update[:4], update[4:7]
        us = np.concatenate([grid.u[drop], grid.u[shrink]])
        vs = np.concatenate([grid.v[drop], grid.v[shrink]])
        ws = np.concatenate([-grid.w[drop], -0.5 * grid.w[shrink]])
        assert solver.update(us, vs, ws)
        final_w = grid.w.copy()
        final_w[shrink] *= 0.5
        final_mask = updated_mask.copy()
        final_mask[drop] = False
        reference = grid.reweighted(final_w).edge_subgraph(final_mask)
        new_lap = reference.laplacian()
        diff = solver.levels[0]["A"] - new_lap
        assert (np.abs(diff.data).max() if diff.nnz else 0.0) < 1e-12
        b = np.random.default_rng(6).standard_normal(grid.n)
        b -= b.mean()
        x = solver.solve(b)
        fresh = AMGSolver(new_lap, cycles=2, coarse_size=32)
        res_patched = np.linalg.norm(new_lap @ x - b)
        res_fresh = np.linalg.norm(new_lap @ fresh.solve(b) - b)
        assert res_patched <= 2.0 * res_fresh + 1e-12

    def test_batched_matrix_solve_matches_columnwise(self, grid):
        solver = AMGSolver(grid.laplacian(), cycles=2)
        b = np.random.default_rng(4).standard_normal((grid.n, 5))
        b -= b.mean(axis=0, keepdims=True)
        batched = solver.solve(b)
        for j in range(b.shape[1]):
            assert np.allclose(batched[:, j], solver.solve(b[:, j]), atol=1e-12)


class TestProtocol:
    def test_all_solvers_satisfy_protocol(self, grid):
        tree = low_stretch_tree(grid, seed=0)
        solvers = [
            TreeSolver(RootedTree.from_graph(grid, tree)),
            DirectSolver(grid.laplacian().tocsc()),
            AMGSolver(grid.laplacian()),
        ]
        for s in solvers:
            assert isinstance(s, Solver)

    def test_csr_value_positions(self, grid):
        L = grid.laplacian().tocsr()
        pos = csr_value_positions(L, grid.u[:10], grid.v[:10])
        assert np.all(pos >= 0)
        assert np.allclose(L.data[pos], -grid.w[:10])
        missing = csr_value_positions(
            L, np.array([0]), np.array([grid.n - 1])
        )
        assert missing[0] == -1
