"""Unit tests for the CG/PCG engine."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import generators
from repro.solvers import conjugate_gradient, jacobi_preconditioner, pcg


@pytest.fixture
def spd_system(rng):
    """Random well-conditioned SPD system."""
    n = 40
    M = rng.standard_normal((n, n))
    A = sp.csr_matrix(M @ M.T + n * np.eye(n))
    b = rng.standard_normal(n)
    return A, b


class TestPlainCG:
    def test_solves_spd(self, spd_system):
        A, b = spd_system
        result = conjugate_gradient(A, b, tol=1e-10, maxiter=500)
        assert result.converged
        assert np.linalg.norm(A @ result.x - b) <= 1e-9 * np.linalg.norm(b)

    def test_exact_in_n_iterations(self, spd_system):
        A, b = spd_system
        result = conjugate_gradient(A, b, tol=1e-12, maxiter=A.shape[0] + 5)
        assert result.converged

    def test_residual_history_recorded(self, spd_system):
        A, b = spd_system
        result = conjugate_gradient(A, b, tol=1e-8)
        assert len(result.residual_norms) == result.iterations + 1
        assert result.final_residual <= 1e-8 * np.linalg.norm(b)

    def test_zero_rhs(self, spd_system):
        A, _ = spd_system
        result = conjugate_gradient(A, np.zeros(A.shape[0]))
        assert result.converged
        assert result.iterations == 0
        assert np.all(result.x == 0.0)

    def test_initial_guess(self, spd_system):
        A, b = spd_system
        exact = conjugate_gradient(A, b, tol=1e-12).x
        warm = conjugate_gradient(A, b, tol=1e-12, x0=exact)
        assert warm.iterations == 0

    def test_maxiter_respected(self, spd_system):
        A, b = spd_system
        result = conjugate_gradient(A, b, tol=1e-16, maxiter=3)
        assert not result.converged
        assert result.iterations == 3


class TestPCG:
    def test_jacobi_accelerates_scaled_system(self, rng):
        # Badly diagonally scaled SPD system: Jacobi helps a lot.
        n = 80
        scale = np.logspace(0, 4, n)
        g = generators.path_graph(n, weights="uniform", seed=1)
        A = (g.laplacian() + sp.eye(n)).multiply(np.outer(scale, scale)).tocsr()
        b = rng.standard_normal(n)
        plain = conjugate_gradient(A, b, tol=1e-8, maxiter=2000)
        jacobi = pcg(A, b, jacobi_preconditioner(A), tol=1e-8, maxiter=2000)
        assert jacobi.converged
        assert jacobi.iterations < plain.iterations

    def test_laplacian_with_projection(self, grid_weighted, rng):
        L = grid_weighted.laplacian()
        b = rng.standard_normal(grid_weighted.n)
        b -= b.mean()
        result = pcg(L, b, tol=1e-8, maxiter=2000, project_nullspace=True)
        assert result.converged
        assert np.linalg.norm(L @ result.x - b) <= 1e-7 * np.linalg.norm(b)
        assert abs(result.x.mean()) < 1e-10

    def test_callable_operator(self, spd_system):
        A, b = spd_system
        result = pcg(lambda x: A @ x, b, tol=1e-8)
        assert result.converged

    def test_matvec_object(self, spd_system):
        import scipy.sparse.linalg as spla

        A, b = spd_system
        op = spla.aslinearoperator(A)
        result = pcg(op, b, tol=1e-8)
        assert result.converged

    def test_invalid_tol(self, spd_system):
        A, b = spd_system
        with pytest.raises(ValueError, match="tol"):
            pcg(A, b, tol=0.0)

    def test_invalid_maxiter(self, spd_system):
        A, b = spd_system
        with pytest.raises(ValueError, match="maxiter"):
            pcg(A, b, maxiter=0)

    def test_invalid_operator_type(self, spd_system):
        _, b = spd_system
        with pytest.raises(TypeError, match="linear operator"):
            pcg("not an operator", b)

    def test_indefinite_breakdown_detected(self, rng):
        A = sp.csr_matrix(np.diag([1.0, -1.0, 1.0]))
        b = np.array([1.0, 1.0, 1.0])
        result = pcg(A, b, tol=1e-10, maxiter=10)
        assert not result.converged
