"""Unit tests for the grounded direct solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import generators
from repro.solvers import DirectSolver


class TestSingularLaplacian:
    def test_solution_matches_pseudoinverse(self, grid_weighted, rng):
        L = grid_weighted.laplacian()
        solver = DirectSolver(L.tocsc())
        assert solver.singular
        pinv = np.linalg.pinv(L.toarray())
        b = rng.standard_normal(grid_weighted.n)
        b -= b.mean()
        assert np.allclose(solver.solve(b), pinv @ b, atol=1e-8)

    def test_residual_tiny(self, mesh_medium, rng):
        L = mesh_medium.laplacian()
        solver = DirectSolver(L.tocsc())
        b = rng.standard_normal(mesh_medium.n)
        b -= b.mean()
        x = solver.solve(b)
        assert np.abs(L @ x - b).max() < 1e-8

    def test_custom_ground_vertex(self, grid_small, rng):
        L = grid_small.laplacian()
        a = DirectSolver(L.tocsc(), ground_vertex=0)
        c = DirectSolver(L.tocsc(), ground_vertex=17)
        b = rng.standard_normal(grid_small.n)
        b -= b.mean()
        assert np.allclose(a.solve(b), c.solve(b), atol=1e-9)

    def test_rhs_with_mean_is_projected(self, grid_small):
        solver = DirectSolver(grid_small.laplacian().tocsc())
        x = solver.solve(np.ones(grid_small.n))
        assert np.abs(x).max() < 1e-10

    def test_single_vertex_graph(self):
        from repro.graphs import Graph

        solver = DirectSolver(Graph(1).laplacian().tocsc())
        assert solver.solve(np.array([0.5]))[0] == 0.0


class TestNonsingularSDD:
    def test_exact_solve(self, grid_weighted, rng):
        A = (grid_weighted.laplacian() + sp.diags(
            np.linspace(0.1, 1.0, grid_weighted.n))).tocsc()
        solver = DirectSolver(A)
        assert not solver.singular
        b = rng.standard_normal(grid_weighted.n)
        assert np.abs(A @ solver.solve(b) - b).max() < 1e-9


class TestInterface:
    def test_multi_rhs(self, grid_weighted, rng):
        L = grid_weighted.laplacian()
        solver = DirectSolver(L.tocsc())
        B = rng.standard_normal((grid_weighted.n, 4))
        B -= B.mean(axis=0, keepdims=True)
        X = solver.solve(B)
        assert np.abs(L @ X - B).max() < 1e-8

    def test_callable_alias(self, grid_small, rng):
        solver = DirectSolver(grid_small.laplacian().tocsc())
        b = rng.standard_normal(grid_small.n)
        b -= b.mean()
        assert np.allclose(solver(b), solver.solve(b))

    def test_factor_bytes_positive(self, grid_weighted):
        solver = DirectSolver(grid_weighted.laplacian().tocsc())
        assert solver.factor_bytes > 0
        assert solver.factor_nnz > grid_weighted.n

    def test_wrong_rhs_size(self, grid_small):
        solver = DirectSolver(grid_small.laplacian().tocsc())
        with pytest.raises(ValueError, match="rows"):
            solver.solve(np.ones(5))

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            DirectSolver(sp.csr_matrix((2, 3)))
