"""Unit tests for graph and Matrix Market I/O."""

import io

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import Graph, generators
from repro.graphs.io import (
    load_graph_npz,
    load_graph_matrix_market,
    read_edge_list,
    read_matrix_market,
    save_graph_npz,
    write_edge_list,
    write_matrix_market,
)


class TestMatrixMarket:
    def test_symmetric_roundtrip(self, grid_weighted, tmp_path):
        path = tmp_path / "grid.mtx"
        write_matrix_market(path, grid_weighted.adjacency(), symmetric=True)
        back = read_matrix_market(path)
        assert np.allclose(
            back.toarray(), grid_weighted.adjacency().toarray()
        )

    def test_general_roundtrip(self, tmp_path):
        matrix = sp.random(6, 6, density=0.4, random_state=0).tocsr()
        path = tmp_path / "general.mtx"
        write_matrix_market(path, matrix, symmetric=False)
        assert np.allclose(read_matrix_market(path).toarray(), matrix.toarray())

    def test_pattern_file_gets_unit_weights(self):
        text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 1\n"
        matrix = read_matrix_market(io.StringIO(text))
        assert matrix.nnz == 4  # symmetric expansion
        assert np.all(matrix.tocoo().data == 1.0)

    def test_comment_lines_skipped(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n2 2 1\n1 2 3.5\n"
        )
        matrix = read_matrix_market(io.StringIO(text))
        assert matrix.toarray()[0, 1] == pytest.approx(3.5)

    def test_skew_symmetric_expansion(self):
        text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 4.0\n"
        matrix = read_matrix_market(io.StringIO(text)).toarray()
        assert matrix[1, 0] == pytest.approx(4.0)
        assert matrix[0, 1] == pytest.approx(-4.0)

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="MatrixMarket"):
            read_matrix_market(io.StringIO("garbage\n"))

    def test_array_layout_rejected(self):
        text = "%%MatrixMarket matrix array real general\n2 2\n"
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(io.StringIO(text))

    def test_complex_field_rejected(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"
        with pytest.raises(ValueError, match="field"):
            read_matrix_market(io.StringIO(text))

    def test_comment_written(self, tmp_path, triangle):
        path = tmp_path / "c.mtx"
        write_matrix_market(path, triangle.adjacency(), comment="hello\nworld")
        content = path.read_text()
        assert "% hello" in content and "% world" in content

    def test_load_graph_applies_paper_rule(self, tmp_path, grid_weighted):
        # Write the Laplacian; loading should recover the graph via the
        # absolute-value-of-lower-triangle rule.
        path = tmp_path / "lap.mtx"
        write_matrix_market(path, grid_weighted.laplacian(), symmetric=True)
        g = load_graph_matrix_market(path)
        assert g == grid_weighted


class TestEdgeList:
    def test_roundtrip(self, tmp_path, grid_weighted):
        path = tmp_path / "edges.txt"
        write_edge_list(path, grid_weighted)
        back = read_edge_list(path)
        assert back == grid_weighted

    def test_unweighted_lines_default_to_one(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edge_list(path)
        assert np.all(g.w == 1.0)

    def test_explicit_vertex_count(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, num_vertices=5)
        assert g.n == 5


class TestAdversarialMatrixMarket:
    """Round-trips on the awkward corners of the format."""

    def test_pattern_symmetric_with_comments(self):
        """Comment lines between the header and the dims line, pattern
        field, symmetric storage — all at once."""
        text = (
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "% SuiteSparse-style provenance comment\n"
            "% another comment line\n"
            "4 4 3\n"
            "2 1\n"
            "3 2\n"
            "4 3\n"
        )
        m = read_matrix_market(io.StringIO(text))
        dense = m.toarray()
        assert np.array_equal(dense, dense.T)
        assert dense[1, 0] == 1.0 and dense[0, 1] == 1.0
        g = Graph.from_sparse(m.tocsr())
        assert g.num_edges == 3
        assert np.all(g.w == 1.0)

    def test_symmetric_diagonal_not_duplicated(self):
        """Diagonal entries of a symmetric file must not be doubled."""
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 2\n"
            "1 1 5.0\n"
            "2 1 -1.0\n"
        )
        m = read_matrix_market(io.StringIO(text)).toarray()
        assert m[0, 0] == 5.0
        assert m[0, 1] == m[1, 0] == -1.0

    def test_write_read_preserves_exact_weights(self, tmp_path):
        """repr-based writing keeps every float64 bit-exact."""
        g = generators.grid2d(5, 5, weights="lognormal", seed=13)
        path = tmp_path / "exact.mtx"
        write_matrix_market(path, g.adjacency(), symmetric=True)
        back = Graph.from_sparse(read_matrix_market(path).tocsr())
        assert np.array_equal(back.w, g.w)


class TestEdgeListIsolatedVertices:
    def test_roundtrip_keeps_trailing_isolated_vertices(self, tmp_path):
        """Vertices 3 and 4 have no edges; the header must keep them."""
        g = Graph(5, [0, 1], [1, 2], [2.0, 3.0])
        path = tmp_path / "iso.txt"
        write_edge_list(path, g)
        back = read_edge_list(path)
        assert back.n == 5
        assert back == g

    def test_explicit_count_overrides_header(self, tmp_path):
        g = Graph(5, [0], [1], [1.0])
        path = tmp_path / "iso.txt"
        write_edge_list(path, g)
        assert read_edge_list(path, num_vertices=7).n == 7

    def test_headerless_file_still_infers_from_labels(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("# free-form comment\n0 3\n")
        assert read_edge_list(path).n == 4


class TestNpz:
    def test_roundtrip(self, tmp_path):
        g = generators.fem_mesh_2d(120, seed=3)
        path = tmp_path / "graph.npz"
        save_graph_npz(path, g)
        assert load_graph_npz(path) == g

    def test_roundtrip_preserves_dtypes_and_bits(self, tmp_path):
        g = generators.grid2d(6, 6, weights="lognormal", seed=1)
        path = tmp_path / "graph.npz"
        save_graph_npz(path, g)
        back = load_graph_npz(path)
        assert back.u.dtype == np.int64 and back.v.dtype == np.int64
        assert back.w.dtype == np.float64
        assert np.array_equal(back.w, g.w)  # bit-exact, not approx
        assert isinstance(back.n, int)

    def test_isolated_vertices_survive(self, tmp_path):
        g = Graph(6, [0], [1], [0.5])
        path = tmp_path / "iso.npz"
        save_graph_npz(path, g)
        assert load_graph_npz(path).n == 6
