"""Unit tests for the Graph container and its canonical edge form."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import Graph


class TestCanonicalization:
    def test_endpoints_ordered(self):
        g = Graph(4, [3, 2], [0, 1], [1.0, 2.0])
        assert np.all(g.u < g.v)

    def test_edges_sorted_lexicographically(self):
        g = Graph(5, [4, 0, 2], [3, 1, 1], [1.0, 1.0, 1.0])
        keys = g.u * g.n + g.v
        assert np.all(np.diff(keys) > 0)

    def test_parallel_edges_merge_by_weight_sum(self):
        g = Graph(3, [0, 1, 0], [1, 0, 1], [1.0, 2.0, 3.0])
        assert g.num_edges == 1
        assert g.w[0] == pytest.approx(6.0)

    def test_self_loops_dropped(self):
        g = Graph(3, [0, 1, 2], [0, 2, 2], [1.0, 1.0, 1.0])
        assert g.num_edges == 1
        assert (g.u[0], g.v[0]) == (1, 2)

    def test_empty_graph(self):
        g = Graph(3)
        assert g.num_edges == 0
        assert g.laplacian().shape == (3, 3)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Graph(2, [0], [1], [-1.0])

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Graph(2, [0], [1], [0.0])

    def test_nan_weight_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Graph(2, [0], [1], [np.nan])

    def test_endpoint_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, [0], [2], [1.0])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            Graph(3, [0, 1], [1], [1.0])

    def test_invalid_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(0)


class TestConstructors:
    def test_from_edges(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_edges == 3
        assert np.all(g.w == 1.0)

    def test_from_edges_empty(self):
        g = Graph.from_edges(3, [])
        assert g.num_edges == 0

    def test_from_edges_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(m, 2\)"):
            Graph.from_edges(3, np.array([[0, 1, 2]]))

    def test_from_sparse_symmetric(self, triangle):
        g = Graph.from_sparse(triangle.adjacency())
        assert g == triangle

    def test_from_sparse_upper_triangle_only(self):
        a = sp.csr_matrix(np.array([[0.0, 2.0], [0.0, 0.0]]))
        g = Graph.from_sparse(a)
        assert g.num_edges == 1
        assert g.w[0] == pytest.approx(2.0)

    def test_from_sparse_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            Graph.from_sparse(sp.csr_matrix((2, 3)))

    def test_from_sparse_mixed_triangles(self):
        """Regression: an upper-only edge must survive alongside a
        lower-only edge instead of being silently dropped."""
        a = sp.coo_matrix(
            (np.array([2.0, 3.0]), (np.array([0, 2]), np.array([1, 1]))),
            shape=(3, 3),
        )  # (0,1) stored upper-only, (1,2) stored lower-only
        g = Graph.from_sparse(a)
        assert g.num_edges == 2
        assert g.edge_indices(np.array([0, 1]), np.array([1, 2])).min() >= 0
        idx = g.edge_indices(np.array([0]), np.array([1]))[0]
        assert g.w[idx] == pytest.approx(2.0)

    def test_from_sparse_both_triangles_not_doubled(self, triangle):
        """An edge stored symmetrically keeps its weight (not 2w)."""
        g = Graph.from_sparse(triangle.adjacency())
        assert g == triangle

    def test_from_sparse_conflicting_weights_raise(self):
        a = sp.coo_matrix(
            (np.array([1.0, 5.0]), (np.array([0, 1]), np.array([1, 0]))),
            shape=(2, 2),
        )
        with pytest.raises(ValueError, match="asymmetric"):
            Graph.from_sparse(a)

    def test_from_sparse_duplicate_entries_summed_per_triangle(self):
        a = sp.coo_matrix(
            (np.array([1.0, 2.0]), (np.array([1, 1]), np.array([0, 0]))),
            shape=(2, 2),
        )
        g = Graph.from_sparse(a)
        assert g.num_edges == 1
        assert g.w[0] == pytest.approx(3.0)


class TestMatrixViews:
    def test_adjacency_symmetric(self, grid_weighted):
        a = grid_weighted.adjacency()
        assert (a != a.T).nnz == 0

    def test_laplacian_row_sums_zero(self, grid_weighted):
        sums = np.asarray(grid_weighted.laplacian().sum(axis=1)).ravel()
        assert np.abs(sums).max() < 1e-12

    def test_laplacian_matches_incidence_form(self, triangle):
        B = triangle.incidence()
        W = sp.diags(triangle.w)
        L = (B.T @ W @ B).toarray()
        assert np.allclose(L, triangle.laplacian().toarray())

    def test_weighted_degrees_match_adjacency(self, grid_weighted):
        deg = grid_weighted.weighted_degrees()
        row_sums = np.asarray(grid_weighted.adjacency().sum(axis=1)).ravel()
        assert np.allclose(deg, row_sums)

    def test_unweighted_degrees(self, path5):
        assert list(path5.unweighted_degrees()) == [1, 2, 2, 2, 1]

    def test_total_weight(self, triangle):
        assert triangle.total_weight == pytest.approx(6.0)

    def test_density(self, path5):
        assert path5.density == pytest.approx(4 / 5)


class TestEdgeQueries:
    def test_has_edges_both_orientations(self, triangle):
        assert bool(triangle.has_edges([1], [0])[0])
        assert bool(triangle.has_edges([0], [1])[0])

    def test_has_edges_absent(self, path5):
        assert not bool(path5.has_edges([0], [4])[0])

    def test_edge_indices_roundtrip(self, grid_weighted):
        idx = grid_weighted.edge_indices(grid_weighted.u, grid_weighted.v)
        assert np.array_equal(idx, np.arange(grid_weighted.num_edges))

    def test_edge_indices_missing_is_minus_one(self, path5):
        assert path5.edge_indices([0], [3])[0] == -1

    def test_neighbors_sorted(self, grid_small):
        nbrs = grid_small.neighbors(9)
        assert np.all(np.diff(nbrs) > 0)
        assert len(nbrs) == 4

    def test_has_edges_empty_graph(self):
        g = Graph(3)
        assert not bool(g.has_edges([0], [1])[0])


class TestDerivedGraphs:
    def test_edge_subgraph_by_mask(self, triangle):
        sub = triangle.edge_subgraph(np.array([True, False, True]))
        assert sub.num_edges == 2
        assert sub.n == 3

    def test_edge_subgraph_by_indices(self, triangle):
        sub = triangle.edge_subgraph(np.array([0, 2]))
        assert sub.num_edges == 2

    def test_edge_subgraph_wrong_mask_length(self, triangle):
        with pytest.raises(ValueError, match="mask length"):
            triangle.edge_subgraph(np.array([True, False]))

    def test_with_edges_merges_duplicates(self, path5):
        g = path5.with_edges(np.array([0]), np.array([1]), np.array([2.0]))
        assert g.num_edges == path5.num_edges
        assert g.w[0] == pytest.approx(3.0)

    def test_with_edges_adds_new(self, path5):
        g = path5.with_edges(np.array([0]), np.array([4]))
        assert g.num_edges == path5.num_edges + 1

    def test_reweighted(self, triangle):
        g = triangle.reweighted(np.array([5.0, 5.0, 5.0]))
        assert np.all(g.w == 5.0)
        assert g.num_edges == 3

    def test_reweighted_wrong_shape(self, triangle):
        with pytest.raises(ValueError, match="weights"):
            triangle.reweighted(np.array([1.0]))

    def test_copy_independent(self, triangle):
        c = triangle.copy()
        assert c == triangle
        c.w[0] = 99.0
        assert triangle.w[0] == pytest.approx(1.0)

    def test_equality(self, triangle):
        assert triangle == Graph(3, [0, 0, 1], [1, 2, 2], [1.0, 2.0, 3.0])
        assert triangle != Graph(3, [0, 0, 1], [1, 2, 2], [1.0, 2.0, 4.0])
        assert triangle.__eq__(42) is NotImplemented

    def test_repr(self, triangle):
        assert repr(triangle) == "Graph(n=3, m=3)"
