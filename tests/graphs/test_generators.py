"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.graphs import generators, is_connected


class TestElementary:
    def test_path_edge_count(self):
        g = generators.path_graph(10)
        assert g.num_edges == 9 and is_connected(g)

    def test_cycle_edge_count(self):
        g = generators.cycle_graph(10)
        assert g.num_edges == 10

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_star_degrees(self):
        g = generators.star_graph(6)
        assert g.unweighted_degrees()[0] == 5

    def test_complete_edge_count(self):
        g = generators.complete_graph(7)
        assert g.num_edges == 21


class TestGrids:
    def test_grid2d_counts(self):
        g = generators.grid2d(5, 7)
        assert g.n == 35
        assert g.num_edges == 4 * 7 + 5 * 6
        assert is_connected(g)

    def test_grid3d_counts(self):
        g = generators.grid3d(3, 4, 5)
        assert g.n == 60
        assert g.num_edges == 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4

    def test_triangulated_grid_has_diagonals(self):
        base = generators.grid2d(6, 6)
        tri = generators.triangulated_grid(6, 6)
        assert tri.num_edges == base.num_edges + 25

    def test_weight_schemes(self):
        for scheme in ("unit", "uniform", "lognormal", 2.5):
            g = generators.grid2d(4, 4, weights=scheme, seed=0)
            assert np.all(g.w > 0)

    def test_unknown_weight_scheme(self):
        with pytest.raises(ValueError, match="unknown weight scheme"):
            generators.grid2d(4, 4, weights="bogus")

    def test_deterministic_with_seed(self):
        a = generators.grid2d(5, 5, weights="uniform", seed=3)
        b = generators.grid2d(5, 5, weights="uniform", seed=3)
        assert a == b


class TestFEMMeshes:
    def test_fem_mesh_2d_connected(self):
        g = generators.fem_mesh_2d(200, seed=1)
        assert is_connected(g)

    def test_fem_mesh_2d_graded(self):
        g = generators.fem_mesh_2d(200, seed=1, graded=True)
        assert is_connected(g)

    def test_airfoil_connected(self):
        g = generators.airfoil_mesh(800, seed=2)
        assert is_connected(g)
        assert g.n > 400  # most sampled points survive

    def test_fem_mesh_3d_shapes(self):
        for shape in ("cube", "annulus"):
            g = generators.fem_mesh_3d(300, seed=3, shape=shape)
            assert is_connected(g)

    def test_fem_mesh_3d_bad_shape(self):
        with pytest.raises(ValueError, match="unknown shape"):
            generators.fem_mesh_3d(100, shape="sphere")

    def test_shell_mesh_stencil(self):
        g = generators.shell_mesh(10, 10, seed=4)
        assert is_connected(g)
        # Extended stencil: noticeably denser than a 4-neighbour grid.
        assert g.num_edges > generators.grid2d(10, 10).num_edges * 2


class TestPhysicalGraphs:
    def test_circuit_grid_layers(self):
        g = generators.circuit_grid(8, 8, layers=3, seed=5)
        assert g.n == 192
        assert is_connected(g)

    def test_circuit_grid_single_layer(self):
        g = generators.circuit_grid(6, 6, layers=1, seed=5)
        assert g.n == 36

    def test_circuit_grid_bad_layers(self):
        with pytest.raises(ValueError, match="layers"):
            generators.circuit_grid(4, 4, layers=0)

    def test_thermal_stack_anisotropy(self):
        iso = generators.grid3d(6, 6, 4, weights="uniform", seed=6, spread=0.3)
        aniso = generators.thermal_stack(6, 6, 4, anisotropy=4.0, seed=6)
        # Same topology, smaller total weight due to weakened z edges.
        assert aniso.num_edges == iso.num_edges
        assert aniso.total_weight < iso.total_weight

    def test_ecology_grid_heterogeneous(self):
        g = generators.ecology_grid(12, 12, seed=7)
        assert is_connected(g)
        assert g.w.max() / g.w.min() > 2.0

    def test_protein_contact_connected(self):
        g = generators.protein_contact_graph(200, seed=8)
        assert is_connected(g)
        assert g.num_edges >= g.n - 1


class TestDataGraphs:
    def test_knn_connected_despite_clusters(self):
        pts = generators.gaussian_mixture_points(
            300, clusters=5, separation=8.0, seed=9
        )
        g = generators.knn_graph(pts, k=6)
        assert g.n == 300
        assert is_connected(g)

    def test_knn_unit_weights(self):
        pts = generators.gaussian_mixture_points(100, seed=10)
        g = generators.knn_graph(pts, k=5, weight="unit")
        assert np.all(g.w == 1.0)

    def test_knn_bad_k(self):
        pts = generators.gaussian_mixture_points(50, seed=11)
        with pytest.raises(ValueError, match="k must be"):
            generators.knn_graph(pts, k=50)

    def test_knn_bad_weight(self):
        pts = generators.gaussian_mixture_points(50, seed=11)
        with pytest.raises(ValueError, match="unknown weight"):
            generators.knn_graph(pts, k=5, weight="bogus")

    def test_barabasi_albert_heavy_tail(self):
        g = generators.barabasi_albert(800, 3, seed=12)
        assert is_connected(g)
        deg = g.unweighted_degrees()
        assert deg.max() > 5 * deg.mean()

    def test_barabasi_albert_bad_attach(self):
        with pytest.raises(ValueError, match="attach"):
            generators.barabasi_albert(10, 10)

    def test_erdos_renyi_exact_edges(self):
        g = generators.erdos_renyi_gnm(100, 500, seed=13)
        assert g.num_edges == 500
        assert is_connected(g)

    def test_erdos_renyi_bad_m(self):
        with pytest.raises(ValueError, match="m must be"):
            generators.erdos_renyi_gnm(10, 5)

    def test_random_geometric_connected(self):
        g = generators.random_geometric(300, seed=14)
        assert is_connected(g)

    def test_watts_strogatz(self):
        g = generators.watts_strogatz(100, k=4, rewire=0.2, seed=15)
        assert is_connected(g)

    def test_watts_strogatz_odd_k_rejected(self):
        with pytest.raises(ValueError, match="even"):
            generators.watts_strogatz(20, k=3)

    def test_gaussian_mixture_shape(self):
        pts = generators.gaussian_mixture_points(64, dim=5, clusters=4, seed=16)
        assert pts.shape == (64, 5)
