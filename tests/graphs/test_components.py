"""Unit tests for connectivity utilities."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    bfs_order,
    bfs_tree_edges,
    connected_components,
    disjoint_union,
    generators,
    is_connected,
    largest_component,
)


class TestComponents:
    def test_connected_graph_single_component(self, grid_small):
        count, labels = connected_components(grid_small)
        assert count == 1
        assert np.all(labels == 0)

    def test_disjoint_union_two_components(self, path5, cycle6):
        g = disjoint_union(path5, cycle6)
        count, labels = connected_components(g)
        assert count == 2
        assert len(np.unique(labels[:5])) == 1
        assert len(np.unique(labels[5:])) == 1

    def test_edgeless_graph(self):
        count, labels = connected_components(Graph(4))
        assert count == 4
        assert np.array_equal(labels, np.arange(4))

    def test_is_connected(self, grid_small, path5, cycle6):
        assert is_connected(grid_small)
        assert not is_connected(disjoint_union(path5, cycle6))

    def test_single_vertex_connected(self):
        assert is_connected(Graph(1))


class TestLargestComponent:
    def test_identity_when_connected(self, grid_small):
        sub, vertices = largest_component(grid_small)
        assert sub is grid_small
        assert np.array_equal(vertices, np.arange(grid_small.n))

    def test_keeps_bigger_piece(self, path5, cycle6):
        g = disjoint_union(cycle6, path5)  # cycle first: vertices 0..5
        sub, vertices = largest_component(g)
        assert sub.n == 6
        assert sub.num_edges == 6
        assert np.array_equal(vertices, np.arange(6))

    def test_vertex_map_valid(self, path5, cycle6):
        g = disjoint_union(path5, cycle6)
        sub, vertices = largest_component(g)
        # Mapped edges must exist in the original graph.
        assert np.all(g.has_edges(vertices[sub.u], vertices[sub.v]))


class TestBFS:
    def test_order_starts_at_source(self, grid_small):
        order = bfs_order(grid_small, source=3)
        assert order[0] == 3
        assert order.size == grid_small.n

    def test_tree_edges_span(self, grid_weighted):
        idx = bfs_tree_edges(grid_weighted, source=0)
        assert idx.size == grid_weighted.n - 1
        tree = grid_weighted.edge_subgraph(idx)
        assert is_connected(tree)

    def test_tree_edges_unique(self, mesh_medium):
        idx = bfs_tree_edges(mesh_medium)
        assert len(np.unique(idx)) == idx.size
