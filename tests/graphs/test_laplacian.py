"""Unit tests for Laplacian algebra and SDD conversion."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import (
    Graph,
    graph_from_laplacian,
    graph_from_matrix,
    ground_matrix,
    is_laplacian,
    is_sdd,
    laplacian,
    normalized_laplacian,
    project_out_ones,
    sdd_split,
)


class TestLaplacian:
    def test_row_sums_zero(self, grid_weighted):
        sums = np.asarray(laplacian(grid_weighted).sum(axis=1)).ravel()
        assert np.abs(sums).max() < 1e-12

    def test_psd(self, triangle):
        vals = np.linalg.eigvalsh(laplacian(triangle).toarray())
        assert vals.min() > -1e-12

    def test_null_space_is_ones(self, grid_small):
        L = laplacian(grid_small).toarray()
        assert np.abs(L @ np.ones(grid_small.n)).max() < 1e-12


class TestGraphFromLaplacian:
    def test_roundtrip(self, grid_weighted):
        g = graph_from_laplacian(grid_weighted.laplacian())
        assert g == grid_weighted

    def test_positive_offdiagonal_rejected(self):
        bad = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError, match="off-diagonal"):
            graph_from_laplacian(bad)

    def test_empty_laplacian(self):
        g = graph_from_laplacian(sp.csr_matrix((3, 3)))
        assert g.num_edges == 0


class TestGraphFromMatrix:
    def test_absolute_value_rule(self):
        # Paper Section 4: edge weight = |lower-triangular entry|.
        matrix = sp.csr_matrix(np.array([[2.0, -3.0], [-3.0, 2.0]]))
        g = graph_from_matrix(matrix)
        assert g.w[0] == pytest.approx(3.0)

    def test_positive_offdiagonal_folded(self):
        matrix = sp.csr_matrix(np.array([[2.0, 1.5], [1.5, 2.0]]))
        g = graph_from_matrix(matrix)
        assert g.w[0] == pytest.approx(1.5)

    def test_diagonal_ignored(self):
        matrix = sp.diags([1.0, 2.0, 3.0]).tocsr()
        assert graph_from_matrix(matrix).num_edges == 0

    def test_upper_triangle_only_matrix(self):
        matrix = sp.csr_matrix(np.triu(np.ones((3, 3)), k=1))
        g = graph_from_matrix(matrix)
        assert g.num_edges == 3


class TestSDDSplit:
    def test_laplacian_gives_zero_slack(self, grid_weighted):
        g, slack = sdd_split(grid_weighted.laplacian())
        assert g == grid_weighted
        assert np.all(slack == 0.0)

    def test_slack_recovered(self, grid_small):
        extra = np.linspace(0.1, 1.0, grid_small.n)
        A = grid_small.laplacian() + sp.diags(extra)
        g, slack = sdd_split(A.tocsr())
        assert g == grid_small
        assert np.allclose(slack, extra)

    def test_non_dominant_rejected(self):
        A = sp.csr_matrix(np.array([[0.5, -1.0], [-1.0, 0.5]]))
        with pytest.raises(ValueError, match="diagonally dominant"):
            sdd_split(A)

    def test_asymmetric_rejected(self):
        A = sp.csr_matrix(np.array([[1.0, -1.0], [0.0, 1.0]]))
        with pytest.raises(ValueError, match="symmetric"):
            sdd_split(A)


class TestPredicates:
    def test_is_laplacian_true(self, grid_weighted):
        assert is_laplacian(grid_weighted.laplacian())

    def test_is_laplacian_false_for_sdd(self, grid_small):
        A = grid_small.laplacian() + sp.eye(grid_small.n)
        assert not is_laplacian(A.tocsr())

    def test_is_sdd_accepts_laplacian(self, grid_small):
        assert is_sdd(grid_small.laplacian())

    def test_is_sdd_rejects_indefinite(self):
        A = sp.csr_matrix(np.array([[0.1, -1.0], [-1.0, 0.1]]))
        assert not is_sdd(A)

    def test_is_sdd_rejects_asymmetric(self):
        A = sp.csr_matrix(np.array([[2.0, -1.0], [0.0, 2.0]]))
        assert not is_sdd(A)


class TestGrounding:
    def test_shape_reduced(self, grid_small):
        reduced = ground_matrix(grid_small.laplacian(), 0)
        assert reduced.shape == (grid_small.n - 1, grid_small.n - 1)

    def test_reduced_is_positive_definite(self, grid_weighted):
        reduced = ground_matrix(grid_weighted.laplacian(), 5)
        vals = np.linalg.eigvalsh(reduced.toarray())
        assert vals.min() > 0

    def test_bad_vertex_rejected(self, grid_small):
        with pytest.raises(ValueError, match="out of range"):
            ground_matrix(grid_small.laplacian(), grid_small.n)


class TestProjection:
    def test_vector_mean_removed(self, rng):
        x = rng.standard_normal(10) + 5.0
        assert abs(project_out_ones(x).mean()) < 1e-12

    def test_matrix_columns_mean_removed(self, rng):
        X = rng.standard_normal((10, 3)) + 2.0
        assert np.abs(project_out_ones(X).mean(axis=0)).max() < 1e-12

    def test_idempotent(self, rng):
        x = rng.standard_normal(10)
        once = project_out_ones(x)
        assert np.allclose(project_out_ones(once), once)


class TestNormalizedLaplacian:
    def test_spectrum_in_unit_interval_times_two(self, grid_weighted):
        N = normalized_laplacian(grid_weighted).toarray()
        vals = np.linalg.eigvalsh(N)
        assert vals.min() > -1e-10
        assert vals.max() < 2.0 + 1e-10

    def test_isolated_vertex_zero_row(self):
        g = Graph(3, [0], [1], [1.0])
        N = normalized_laplacian(g)
        assert np.abs(N.toarray()[2]).max() == 0.0
