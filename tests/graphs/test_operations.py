"""Unit tests for structural graph operations."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    contract,
    degree_statistics,
    disjoint_union,
    generators,
    induced_subgraph,
    relabel,
    remove_edges,
    union,
)


class TestInducedSubgraph:
    def test_keeps_internal_edges(self, grid_small):
        sub, vertices = induced_subgraph(grid_small, np.arange(8))  # first row
        assert sub.n == 8
        assert sub.num_edges == 7

    def test_vertex_map(self, triangle):
        sub, vertices = induced_subgraph(triangle, np.array([0, 2]))
        assert sub.num_edges == 1
        assert sub.w[0] == pytest.approx(2.0)
        assert np.array_equal(vertices, np.array([0, 2]))

    def test_out_of_range_rejected(self, triangle):
        with pytest.raises(ValueError, match="out of range"):
            induced_subgraph(triangle, np.array([0, 5]))


class TestUnion:
    def test_weights_sum_on_overlap(self, path5):
        g = union(path5, path5)
        assert g.num_edges == path5.num_edges
        assert np.all(g.w == 2.0)

    def test_size_mismatch_rejected(self, path5, cycle6):
        with pytest.raises(ValueError, match="vertex counts"):
            union(path5, cycle6)

    def test_disjoint_union_offsets(self, path5, cycle6):
        g = disjoint_union(path5, cycle6)
        assert g.n == 11
        assert g.num_edges == path5.num_edges + cycle6.num_edges


class TestContract:
    def test_two_clusters(self, grid_small):
        labels = (np.arange(grid_small.n) % 2).astype(np.int64)
        q = contract(grid_small, labels)
        assert q.n == 2
        assert q.num_edges == 1  # all crossing edges merge into one

    def test_intra_cluster_edges_vanish(self, triangle):
        q = contract(triangle, np.array([0, 0, 1]))
        assert q.n == 2
        assert q.num_edges == 1
        assert q.w[0] == pytest.approx(2.0 + 3.0)

    def test_wrong_label_shape_rejected(self, triangle):
        with pytest.raises(ValueError, match="shape"):
            contract(triangle, np.array([0, 1]))

    def test_negative_labels_rejected(self, triangle):
        with pytest.raises(ValueError, match="non-negative"):
            contract(triangle, np.array([0, -1, 1]))


class TestRelabel:
    def test_laplacian_permuted(self, grid_weighted, rng):
        perm = rng.permutation(grid_weighted.n)
        g = relabel(grid_weighted, perm)
        L0 = grid_weighted.laplacian().toarray()
        L1 = g.laplacian().toarray()
        assert np.allclose(L1[np.ix_(perm, perm)], L0)

    def test_non_bijection_rejected(self, triangle):
        with pytest.raises(ValueError, match="bijection"):
            relabel(triangle, np.array([0, 0, 1]))


class TestRemoveEdges:
    def test_removal(self, triangle):
        g = remove_edges(triangle, np.array([1]))
        assert g.num_edges == 2
        assert not bool(g.has_edges([0], [2])[0])

    def test_empty_batch_is_noop(self, triangle):
        g = remove_edges(triangle, np.array([], dtype=np.int64))
        assert g == triangle

    def test_out_of_range_rejected(self, triangle):
        with pytest.raises(ValueError, match="out of range"):
            remove_edges(triangle, np.array([3]))

    def test_negative_index_rejected(self, triangle):
        """Negative indices would silently wrap via fancy indexing."""
        with pytest.raises(ValueError, match="out of range"):
            remove_edges(triangle, np.array([-1]))

    def test_duplicate_indices_rejected(self, triangle):
        """A double deletion is a caller bug, not an idempotent no-op."""
        with pytest.raises(ValueError, match="duplicate"):
            remove_edges(triangle, np.array([1, 1]))


class TestDegreeStatistics:
    def test_path_statistics(self, path5):
        stats = degree_statistics(path5)
        assert stats["min"] == 1.0
        assert stats["max"] == 2.0

    def test_empty_graph(self):
        stats = degree_statistics(Graph(3))
        assert stats["max"] == 0.0
