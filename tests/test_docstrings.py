"""Docstring checks: ``sparsify``, ``solvers``, ``stream``, ``serve``,
``core``, ``analysis``, ``kernels``, ``obs``.

The public-docstring completeness contract — summary punctuation
(pydocstyle D415) plus numpydoc ``Parameters``/``Returns``/``Raises``
sections — is owned by the R403 rule of the ``repro lint`` static
analyzer (:mod:`repro.analysis.hygiene`); this suite asserts *through*
that rule so there is a single source of truth.  The audited API
surface is still enumerated by runtime reflection (one parametrized
case per public function, same test IDs as before the linter existed),
which doubles as a live cross-check that the AST rule sees exactly the
functions the import system exposes.
"""

from __future__ import annotations

import functools
import importlib
import inspect
import pkgutil
import sys

import pytest

import repro.analysis
import repro.core
import repro.kernels
import repro.obs
import repro.serve
import repro.solvers
import repro.sparsify
import repro.stream
from repro.analysis import LintConfig, lint_files

PACKAGES = (repro.sparsify, repro.solvers, repro.stream, repro.serve,
            repro.core, repro.analysis, repro.kernels, repro.obs)


def _iter_modules():
    for package in PACKAGES:
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.name.startswith("_"):
                continue
            yield importlib.import_module(f"{package.__name__}.{info.name}")


def _public_functions():
    """Yield ``(qualified_name, function)`` pairs under audit."""
    seen: set[int] = set()
    for module in _iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or id(obj) in seen:
                continue
            if inspect.isfunction(obj) and obj.__module__ == module.__name__:
                seen.add(id(obj))
                yield f"{module.__name__}.{name}", obj
            elif inspect.isclass(obj) and obj.__module__ == module.__name__:
                seen.add(id(obj))
                for attr, member in vars(obj).items():
                    is_public = not attr.startswith("_") or attr == "__call__"
                    if is_public and inspect.isfunction(member):
                        yield f"{module.__name__}.{name}.{attr}", member


@functools.lru_cache(maxsize=None)
def _docstring_findings(path: str):
    """R403 findings of one module file, keyed by offending symbol."""
    result = lint_files([path], LintConfig(rules=("R403",)))
    by_symbol: dict[str, list[str]] = {}
    for finding in result.findings:
        by_symbol.setdefault(finding.symbol, []).append(finding.format())
    return by_symbol


CASES = sorted(_public_functions(), key=lambda item: item[0])


def test_audit_is_not_vacuous():
    """The walker must see the real API surface, not an empty set."""
    names = [name for name, _ in CASES]
    assert len(names) > 40
    assert any("similarity_aware.sparsify_graph" in n for n in names)
    assert any("cholesky.DirectSolver.update" in n for n in names)
    assert any("engine.QueryEngine.resistance" in n for n in names)
    assert any("registry.SparsifierRegistry.register" in n for n in names)
    assert any("pipeline.SparsifyPipeline.run" in n for n in names)
    assert any("stages.DensifyStage.run" in n for n in names)
    assert any("framework.lint_paths" in n for n in names)


@pytest.mark.parametrize("qualified,func", CASES, ids=[n for n, _ in CASES])
def test_public_function_docstring(qualified, func):
    """Every audited function is clean under the R403 AST rule."""
    module = sys.modules[func.__module__]
    symbol = qualified.removeprefix(func.__module__ + ".")
    findings = _docstring_findings(module.__file__).get(symbol, [])
    assert not findings, (
        f"{qualified} fails the R403 docstring contract:\n"
        + "\n".join(findings)
    )
