"""Docstring checks: ``sparsify``, ``solvers``, ``stream``, ``serve``, ``core``.

A lightweight, dependency-free stand-in for ``pydocstyle`` plus numpydoc
section enforcement.  For every public function — module-level functions
and public methods of public classes — in the audited packages the
checks require:

- a docstring whose summary line ends in ``.``, ``?``, ``!`` or ``:``
  (pydocstyle D415);
- a numpydoc ``Parameters`` section when the signature takes arguments
  (properties and zero-argument callables are exempt);
- a ``Returns`` section when the return annotation is not ``None``;
- a ``Raises`` section when the body contains an unconditional-path
  ``raise`` (statements marked ``pragma: no cover`` — defensive
  internal errors — are exempt).

The rules are enforced with zero exceptions: an entry in a module is
either private (underscore name) or fully documented.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import textwrap

import pytest

import repro.core
import repro.serve
import repro.solvers
import repro.sparsify
import repro.stream

PACKAGES = (repro.sparsify, repro.solvers, repro.stream, repro.serve,
            repro.core)

_SECTION_UNDERLINE = "---"


def _iter_modules():
    for package in PACKAGES:
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.name.startswith("_"):
                continue
            yield importlib.import_module(f"{package.__name__}.{info.name}")


def _public_functions():
    """Yield ``(qualified_name, function)`` pairs under audit."""
    seen: set[int] = set()
    for module in _iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or id(obj) in seen:
                continue
            if inspect.isfunction(obj) and obj.__module__ == module.__name__:
                seen.add(id(obj))
                yield f"{module.__name__}.{name}", obj
            elif inspect.isclass(obj) and obj.__module__ == module.__name__:
                seen.add(id(obj))
                for attr, member in vars(obj).items():
                    is_public = not attr.startswith("_") or attr == "__call__"
                    if is_public and inspect.isfunction(member):
                        yield f"{module.__name__}.{name}.{attr}", member


def _has_section(doc: str, title: str) -> bool:
    lines = doc.splitlines()
    for i, line in enumerate(lines[:-1]):
        if line.strip() == title and lines[i + 1].strip().startswith(
            _SECTION_UNDERLINE
        ):
            return True
    return False


def _wants_parameters(func) -> bool:
    params = [
        p
        for p in inspect.signature(func).parameters.values()
        if p.name not in ("self", "cls")
    ]
    return bool(params)


def _wants_returns(func) -> bool:
    annotation = inspect.signature(func).return_annotation
    return annotation not in (inspect.Signature.empty, None, "None")


def _wants_raises(func) -> bool:
    try:
        source = textwrap.dedent(inspect.getsource(func))
    except OSError:  # pragma: no cover - source always available in repo
        return False
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("raise") and "pragma: no cover" not in stripped:
            return True
    return False


CASES = sorted(_public_functions(), key=lambda item: item[0])


def test_audit_is_not_vacuous():
    """The walker must see the real API surface, not an empty set."""
    names = [name for name, _ in CASES]
    assert len(names) > 40
    assert any("similarity_aware.sparsify_graph" in n for n in names)
    assert any("cholesky.DirectSolver.update" in n for n in names)
    assert any("engine.QueryEngine.resistance" in n for n in names)
    assert any("registry.SparsifierRegistry.register" in n for n in names)
    assert any("pipeline.SparsifyPipeline.run" in n for n in names)
    assert any("stages.DensifyStage.run" in n for n in names)


@pytest.mark.parametrize("qualified,func", CASES, ids=[n for n, _ in CASES])
def test_public_function_docstring(qualified, func):
    doc = inspect.getdoc(func)
    assert doc, f"{qualified} has no docstring"
    summary = doc.splitlines()[0].strip()
    assert summary and summary[-1] in ".?!:", (
        f"{qualified}: summary line must end with punctuation (D415): "
        f"{summary!r}"
    )
    if _wants_parameters(func):
        assert _has_section(doc, "Parameters"), (
            f"{qualified}: takes arguments but has no numpydoc "
            f"'Parameters' section"
        )
    if _wants_returns(func):
        assert _has_section(doc, "Returns"), (
            f"{qualified}: returns a value but has no numpydoc "
            f"'Returns' section"
        )
    if _wants_raises(func):
        assert _has_section(doc, "Raises"), (
            f"{qualified}: raises but has no numpydoc 'Raises' section"
        )
