"""Unit tests for the batched spectral query engine."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import QueryEngine
from repro.solvers import DirectSolver
from repro.sparsify import exact_effective_resistances
from repro.spectral.embedding import spectral_coordinates
from repro.stream import DynamicSparsifier, EdgeDelete, EdgeInsert


SIGMA2 = 150.0


@pytest.fixture
def grid():
    return generators.grid2d(10, 10, weights="uniform", seed=3)


@pytest.fixture
def engine(grid):
    return QueryEngine(DynamicSparsifier(grid, sigma2=SIGMA2, seed=0))


class TestResistance:
    def test_matches_exact_on_sparsifier(self, engine):
        pairs = np.array([[0, 1], [0, 99], [42, 57], [3, 30]])
        got = engine.resistance(pairs)
        ref = exact_effective_resistances(engine.dynamic.sparsifier(), pairs)
        assert np.allclose(got, ref)

    def test_self_pairs_are_zero(self, engine):
        got = engine.resistance([[7, 7], [0, 1], [99, 99]])
        assert got[0] == 0.0 and got[2] == 0.0
        assert got[1] > 0.0

    def test_out_of_range_pair_raises(self, engine):
        with pytest.raises(ValueError, match="out of range"):
            engine.resistance([[0, 100]])

    def test_malformed_pairs_raise(self, engine):
        with pytest.raises(ValueError, match=r"\(k, 2\)"):
            engine.resistance([0, 1, 2])

    def test_internal_batching_consistent(self, grid):
        small = QueryEngine(
            DynamicSparsifier(grid, sigma2=SIGMA2, seed=0), batch_size=3
        )
        big = QueryEngine(DynamicSparsifier(grid, sigma2=SIGMA2, seed=0))
        pairs = np.column_stack([np.zeros(11, dtype=int), np.arange(1, 12)])
        assert np.allclose(small.resistance(pairs), big.resistance(pairs))


class TestSolve:
    def test_matches_direct_solver(self, engine):
        n = engine.dynamic.graph.n
        rhs = np.zeros(n)
        rhs[0], rhs[-1] = 1.0, -1.0
        ref = DirectSolver(engine.dynamic.sparsifier().laplacian().tocsc()).solve(rhs)
        assert np.allclose(engine.solve(rhs), ref)

    def test_matrix_rhs(self, engine):
        n = engine.dynamic.graph.n
        rng = np.random.default_rng(0)
        rhs = rng.standard_normal((n, 3))
        x = engine.solve(rhs)
        assert x.shape == (n, 3)
        cols = [engine.solve(rhs[:, j]) for j in range(3)]
        assert np.allclose(x, np.column_stack(cols))

    def test_wrong_rows_raise(self, engine):
        with pytest.raises(ValueError, match="rows"):
            engine.solve(np.ones(5))


class TestSimilarity:
    def test_is_weight_times_resistance(self, engine):
        g = engine.dynamic.graph
        pairs = np.column_stack([g.u[:6], g.v[:6]])
        scores = engine.similarity(pairs)
        assert np.allclose(scores, g.w[:6] * engine.resistance(pairs))

    def test_non_edge_rejected(self, engine):
        g = engine.dynamic.graph
        assert g.edge_indices(np.array([0]), np.array([99]))[0] == -1
        with pytest.raises(ValueError, match="not an edge"):
            engine.similarity([[0, 99]])

    def test_tree_edge_of_sparsifier_has_high_score(self, grid):
        """A host bridge must score ~1: all current flows through it."""
        from repro.graphs import Graph

        bridged = Graph(
            grid.n + 1,
            np.concatenate([grid.u, [0]]),
            np.concatenate([grid.v, [grid.n]]),
            np.concatenate([grid.w, [2.5]]),
        )
        engine = QueryEngine(DynamicSparsifier(bridged, sigma2=SIGMA2, seed=0))
        score = engine.similarity([[0, grid.n]])
        assert score[0] == pytest.approx(1.0, rel=1e-9)


class TestEmbedding:
    def test_matches_spectral_coordinates(self, engine):
        coords = engine.embedding(dim=2)
        ref = spectral_coordinates(engine.dynamic.sparsifier(), dim=2, seed=0)
        assert np.allclose(coords, ref)

    def test_node_selection(self, engine):
        full = engine.embedding(dim=2)
        rows = engine.embedding(nodes=[5, 0, 5], dim=2)
        assert np.array_equal(rows, full[[5, 0, 5]])

    def test_cached_between_calls(self, engine):
        a = engine.embedding(dim=2)
        b = engine.embedding(dim=2)
        assert a is not b or True  # rows are views of one cached matrix
        assert np.array_equal(a, b)
        assert engine.stats.cache_invalidations == 0

    def test_bad_nodes_raise(self, engine):
        with pytest.raises(ValueError, match="out of range"):
            engine.embedding(nodes=[0, 100])


class TestMicroBatching:
    def test_one_flush_serves_all_pending(self, engine):
        handles = [engine.submit_resistance(0, i) for i in range(1, 9)]
        handles.append(engine.submit_solve(_dipole(engine, 0, 50)))
        assert engine.pending == 9
        first = handles[0].result()  # triggers the flush for everyone
        assert engine.pending == 0
        assert all(h.ready for h in handles)
        assert engine.stats.flushes == 1
        assert engine.stats.flushed_columns == 9
        assert first == pytest.approx(float(engine.resistance([[0, 1]])[0]))

    def test_batched_answers_match_direct(self, engine):
        pairs = [(0, 9), (13, 77), (4, 4)]
        handles = [engine.submit_resistance(u, v) for u, v in pairs]
        engine.flush()
        direct = engine.resistance(np.array(pairs))
        assert np.allclose([h.result() for h in handles], direct)

    def test_batched_solve_matches_direct(self, engine):
        rhs = _dipole(engine, 3, 42)
        handle = engine.submit_solve(rhs)
        assert np.allclose(handle.result(), engine.solve(rhs))

    def test_flush_empty_is_noop(self, engine):
        assert engine.flush() == 0
        assert engine.stats.flushes == 0

    def test_submit_validates_eagerly(self, engine):
        with pytest.raises(ValueError, match="out of range"):
            engine.submit_resistance(0, 100)
        with pytest.raises(ValueError, match="entries"):
            engine.submit_solve(np.ones(3))


class TestFreshness:
    def test_event_batch_changes_answers(self, engine):
        before = float(engine.resistance([[0, 99]])[0])
        engine.dynamic.apply([EdgeInsert(0, 99, 10.0)])
        after = float(engine.resistance([[0, 99]])[0])
        assert after < before  # a direct heavy edge shorts the pair
        assert after <= 1.0 / 10.0 + 1e-9

    def test_embedding_cache_invalidated(self, engine):
        engine.embedding(dim=2)
        g = engine.dynamic.graph
        engine.dynamic.apply([EdgeDelete(int(g.u[-1]), int(g.v[-1]))])
        engine.embedding(dim=2)
        assert engine.stats.cache_invalidations == 1

    def test_quality_stays_certified_after_events(self, engine):
        engine.dynamic.apply([EdgeInsert(0, 57, 2.0), EdgeInsert(1, 98, 0.5)])
        estimate = engine.dynamic.last_estimate
        assert np.isfinite(estimate)
        assert estimate <= SIGMA2 * engine.dynamic.drift_tolerance + 1e-9


def _dipole(engine, a, b):
    rhs = np.zeros(engine.dynamic.graph.n)
    rhs[a], rhs[b] = 1.0, -1.0
    return rhs
