"""`GET /health` SLO gating on the HTTP service (200 ⇄ 503)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.graphs import generators
from repro.obs.alerts import AlertRule
from repro.serve import (
    ServeClient,
    ServiceError,
    SparsifierRegistry,
    SparsifierService,
)
from repro.stream import EdgeInsert, WeightUpdate

SIGMA2 = 150.0

#: A drift-ratio ceiling no live sparsifier can satisfy: any positive
#: σ² estimate trips it, so real event churn must flip /health.
HAIR_TRIGGER = AlertRule(
    name="stream_drift_ratio",
    kind="gauge_max",
    metric="repro_stream_drift_ratio",
    threshold=1e-6,
)


@pytest.fixture
def grid():
    return generators.grid2d(9, 9, weights="uniform", seed=2)


def _service(tmp_path, **kwargs):
    registry = SparsifierRegistry(tmp_path / "spool", max_resident=4)
    return SparsifierService(registry, **kwargs)


def _raw_status(url: str) -> tuple[int, dict]:
    request = urllib.request.Request(url + "/health", method="GET")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHealthEndpoint:
    def test_fresh_service_is_healthy(self, tmp_path):
        with _service(tmp_path) as service:
            status, payload = _raw_status(service.url)
        assert status == 200
        assert payload["healthy"] is True
        rules = {r["rule"]: r for r in payload["rules"]}
        assert set(rules) == {
            "stream_drift_ratio", "http_p99_latency",
            "registry_eviction_churn", "stream_tier3_repairs",
        }
        assert all(r["ok"] for r in payload["rules"])

    def test_churn_flips_200_to_503(self, tmp_path, grid):
        # The acceptance flip: healthy before traffic, unhealthy once a
        # drift check under real event churn publishes the ratio gauge.
        with _service(tmp_path, alert_rules=(HAIR_TRIGGER,)) as service:
            client = ServeClient(service.url)
            status, _ = _raw_status(service.url)
            assert status == 200  # gauge not yet published

            key = client.register(grid, sigma2=SIGMA2, seed=0)
            g = service.registry.engine(key).dynamic.graph
            client.events(key, [
                EdgeInsert(0, 80, 5.0),
                WeightUpdate(int(g.u[0]), int(g.v[0]), 3.0),
            ])

            status, payload = _raw_status(service.url)
        assert status == 503
        assert payload["healthy"] is False
        drift = next(
            r for r in payload["rules"] if r["rule"] == "stream_drift_ratio"
        )
        assert drift["ok"] is False
        assert drift["value"] > 0

    def test_client_health_returns_both_verdicts(self, tmp_path, grid):
        with _service(tmp_path, alert_rules=(HAIR_TRIGGER,)) as service:
            client = ServeClient(service.url)
            assert client.health()["healthy"] is True
            key = client.register(grid, sigma2=SIGMA2, seed=0)
            client.events(key, [EdgeInsert(0, 80, 5.0)])
            unhealthy = client.health()  # 503 must not raise
        assert unhealthy["healthy"] is False
        assert unhealthy["rules"][0]["rule"] == "stream_drift_ratio"

    def test_other_errors_still_raise(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServeClient(service.url)
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", "/nope")
        assert excinfo.value.status == 404
        assert excinfo.value.body == {"error": "unknown path '/nope'"}

    def test_empty_rule_set_is_always_healthy(self, tmp_path, grid):
        with _service(tmp_path, alert_rules=()) as service:
            client = ServeClient(service.url)
            key = client.register(grid, sigma2=SIGMA2, seed=0)
            client.events(key, [EdgeInsert(0, 80, 5.0)])
            status, payload = _raw_status(service.url)
        assert status == 200
        assert payload == {"healthy": True, "rules": []}

    def test_stats_embeds_health(self, tmp_path):
        with _service(tmp_path) as service:
            stats = ServeClient(service.url).stats()
        assert stats["health"]["healthy"] is True
        assert isinstance(stats["health"]["rules"], list)

    def test_health_requests_count_toward_latency_histogram(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServeClient(service.url)
            client.health()
            metrics = client.metrics()
        assert 'endpoint="/health"' in metrics
