"""Unit tests for the content-addressed sparsifier registry."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import (
    SparsifierRegistry,
    artifact_key,
    graph_fingerprint,
)
from repro.sparsify import sparsify_graph
from repro.stream import DynamicSparsifier, random_event_stream


SIGMA2 = 120.0


@pytest.fixture
def grids():
    return [
        generators.grid2d(8, 8, weights="uniform", seed=s) for s in range(3)
    ]


@pytest.fixture
def registry(tmp_path):
    return SparsifierRegistry(tmp_path / "spool", max_resident=2)


class TestContentAddressing:
    def test_fingerprint_deterministic(self, grids):
        assert graph_fingerprint(grids[0]) == graph_fingerprint(grids[0].copy())

    def test_fingerprint_sensitive_to_weights(self, grids):
        g = grids[0]
        other = g.reweighted(g.w * 2.0)
        assert graph_fingerprint(g) != graph_fingerprint(other)

    def test_key_sensitive_to_params(self, grids):
        fp = graph_fingerprint(grids[0])
        assert artifact_key(fp, {"sigma2": 100.0}) != artifact_key(
            fp, {"sigma2": 150.0}
        )
        assert artifact_key(fp, {"a": 1, "b": 2}) == artifact_key(
            fp, {"b": 2, "a": 1}
        )

    def test_reregister_is_hit_not_rebuild(self, registry, grids):
        key = registry.register(grids[0], sigma2=SIGMA2, seed=0)
        again = registry.register(grids[0], sigma2=SIGMA2, seed=0)
        assert again == key
        assert registry.stats.builds == 1
        assert registry.stats.hits == 1
        assert len(registry) == 1

    def test_different_params_different_artifact(self, registry, grids):
        k1 = registry.register(grids[0], sigma2=SIGMA2, seed=0)
        k2 = registry.register(grids[0], sigma2=SIGMA2, seed=1)
        assert k1 != k2
        assert registry.stats.builds == 2

    def test_register_result_warm_path(self, registry, grids):
        result = sparsify_graph(grids[0], sigma2=SIGMA2, seed=0)
        key = registry.register_result(result, seed=1)
        entry = registry.get(key)
        assert np.array_equal(entry.dynamic.edge_mask, result.edge_mask)
        assert registry.register_result(result, seed=1) == key
        assert registry.stats.builds == 1


class TestLRUResidency:
    def test_eviction_spills_checkpoint_to_disk(self, registry, grids):
        k1 = registry.register(grids[0], sigma2=SIGMA2, seed=0)
        registry.register(grids[1], sigma2=SIGMA2, seed=0)
        registry.register(grids[2], sigma2=SIGMA2, seed=0)
        assert len(registry.resident_keys()) == 2
        assert k1 not in registry.resident_keys()
        assert (registry.spool_dir / f"{k1}.npz").exists()
        assert (registry.spool_dir / f"{k1}.json").exists()
        assert registry.stats.evictions == 1

    def test_lru_order_respects_touches(self, registry, grids):
        k1 = registry.register(grids[0], sigma2=SIGMA2, seed=0)
        k2 = registry.register(grids[1], sigma2=SIGMA2, seed=0)
        registry.get(k1)  # touch k1 so k2 becomes the LRU entry
        registry.register(grids[2], sigma2=SIGMA2, seed=0)
        assert k2 not in registry.resident_keys()
        assert k1 in registry.resident_keys()

    def test_get_reloads_spilled_entry(self, registry, grids):
        k1 = registry.register(grids[0], sigma2=SIGMA2, seed=0)
        registry.register(grids[1], sigma2=SIGMA2, seed=0)
        registry.register(grids[2], sigma2=SIGMA2, seed=0)
        entry = registry.get(k1)
        assert entry.resident
        assert entry.engine is not None
        assert registry.stats.reloads == 1
        # Reloading k1 must itself have evicted the then-LRU entry.
        assert len(registry.resident_keys()) == 2

    def test_unknown_key_raises(self, registry):
        with pytest.raises(KeyError, match="unknown artifact"):
            registry.get("deadbeef00000000")
        with pytest.raises(KeyError, match="unknown artifact"):
            registry.evict("deadbeef00000000")

    def test_spill_reload_roundtrip_bit_identical(self, tmp_path, grids):
        """The checkpoint-parity property applied to LRU eviction:
        spill → reload must equal a never-evicted control exactly."""
        g = grids[0]
        events = random_event_stream(g, 40, seed=5, p_delete=0.4)

        control = DynamicSparsifier(g, sigma2=SIGMA2, seed=3)
        control.apply(events[:20])
        control.apply(events[20:])

        registry = SparsifierRegistry(tmp_path / "spool", max_resident=1)
        key = registry.register(g, sigma2=SIGMA2, seed=3)
        registry.apply_events(key, events[:20])
        # Admitting a second artifact forces key's eviction to disk...
        registry.register(grids[1], sigma2=SIGMA2, seed=0)
        assert key not in registry.resident_keys()
        # ...and touching it reloads the checkpoint; continue streaming.
        registry.apply_events(key, events[20:])
        back = registry.get(key).dynamic

        assert back.graph == control.graph
        assert np.array_equal(back.edge_mask, control.edge_mask)
        assert np.array_equal(back.tree_indices, control.tree_indices)
        assert np.array_equal(back._deg_p, control._deg_p)
        assert (back._rng.bit_generator.state
                == control._rng.bit_generator.state)
        assert back.batches_applied == control.batches_applied

    def test_explicit_evict_then_query_roundtrip(self, registry, grids):
        key = registry.register(grids[0], sigma2=SIGMA2, seed=0)
        before = registry.engine(key).resistance([[0, 63]])
        registry.evict(key)
        assert key not in registry.resident_keys()
        registry.evict(key)  # idempotent on spilled entries
        after = registry.engine(key).resistance([[0, 63]])
        assert np.allclose(before, after)


class TestConcurrency:
    def test_eviction_races_with_queries_and_events(self, tmp_path):
        """Hammering three artifacts through a max_resident=1 registry
        from concurrent threads must never crash on an eviction race or
        checkpoint a half-applied batch (every update lands exactly
        once)."""
        import threading

        from repro.stream import WeightUpdate

        graphs = [
            generators.grid2d(6, 6 + i, weights="uniform", seed=i)
            for i in range(3)
        ]
        registry = SparsifierRegistry(tmp_path / "spool", max_resident=1)
        keys = [registry.register(g, sigma2=SIGMA2, seed=0) for g in graphs]
        iterations = 12
        errors = []

        def hammer(key, graph):
            try:
                u0, v0 = int(graph.u[0]), int(graph.v[0])
                for i in range(iterations):
                    registry.engine(key).resistance([[0, graph.n - 1]])
                    registry.apply_events(
                        key, [WeightUpdate(u0, v0, 1.0 + 0.1 * i)]
                    )
            except Exception as exc:  # noqa: BLE001 - the assertion target
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(key, graph))
            for key, graph in zip(keys, graphs)
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        for key in keys:
            # 2 threads x iterations batches each, none lost to a spill.
            assert registry.get(key).dynamic.batches_applied == 2 * iterations


class TestEventsAndIntrospection:
    def test_apply_events_advances_state(self, registry, grids):
        key = registry.register(grids[0], sigma2=SIGMA2, seed=0)
        events = random_event_stream(grids[0], 10, seed=1)
        report = registry.apply_events(key, events)
        assert report.batch == 1
        assert registry.get(key).dynamic.batches_applied == 1

    def test_describe_is_json_ready(self, registry, grids):
        import json

        k1 = registry.register(grids[0], sigma2=SIGMA2, seed=0)
        registry.register(grids[1], sigma2=SIGMA2, seed=0)
        registry.register(grids[2], sigma2=SIGMA2, seed=0)
        snapshot = registry.describe()
        json.dumps(snapshot)  # must not raise
        assert snapshot["stats"]["builds"] == 3
        info = snapshot["artifacts"][k1]
        assert info["resident"] is False
        assert info["checkpoint"].endswith(f"{k1}.npz")

    def test_max_resident_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_resident"):
            SparsifierRegistry(tmp_path, max_resident=0)

    def test_describe_exposes_build_profile(self, registry, grids):
        import json

        key = registry.register(grids[0], sigma2=SIGMA2, seed=0)
        profile = registry.describe()["artifacts"][key]["profile"]
        json.dumps(profile)  # must not raise
        assert profile["tree"]["calls"] == 1
        assert profile["densify"]["calls"] == 1
        assert profile["densify"]["seconds"] >= 0.0
        assert "densify.embedding" in profile

    def test_build_profile_survives_spill_and_reload(self, registry, grids):
        k1 = registry.register(grids[0], sigma2=SIGMA2, seed=0)
        before = registry.describe()["artifacts"][k1]["profile"]
        registry.register(grids[1], sigma2=SIGMA2, seed=0)
        registry.register(grids[2], sigma2=SIGMA2, seed=0)  # evicts k1
        spilled = registry.describe()["artifacts"][k1]
        assert spilled["resident"] is False
        assert spilled["profile"] == before
        registry.get(k1)  # reload re-seeds the live profile
        assert registry.describe()["artifacts"][k1]["profile"] == before

    def test_register_result_adopts_batch_profile(self, registry, grids):
        result = sparsify_graph(grids[0], sigma2=SIGMA2, seed=0)
        key = registry.register_result(result, seed=0)
        profile = registry.describe()["artifacts"][key]["profile"]
        assert profile["tree"]["calls"] == 1
        assert profile["densify"]["counters"] == \
            result.profile.as_dict()["densify"]["counters"]
