"""End-to-end tests for the HTTP query service and its client."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import (
    ServeClient,
    ServiceError,
    SparsifierRegistry,
    SparsifierService,
)
from repro.stream import EdgeDelete, EdgeInsert, WeightUpdate


SIGMA2 = 150.0


@pytest.fixture
def grid():
    return generators.grid2d(9, 9, weights="uniform", seed=2)


@pytest.fixture
def service(tmp_path):
    registry = SparsifierRegistry(tmp_path / "spool", max_resident=4)
    with SparsifierService(registry) as svc:
        yield svc


@pytest.fixture
def client(service):
    return ServeClient(service.url)


class TestLifecycle:
    def test_register_query_stream_query_sigma2_fresh(self, service, client, grid):
        """The acceptance path: register → query → stream events → query,
        with answers σ²-fresh after the updates."""
        key = client.register(grid, sigma2=SIGMA2, seed=0)
        engine = service.registry.engine(key)

        pairs = [[0, 80], [4, 44]]
        before = client.resistance(key, pairs)
        assert np.allclose(before, engine.resistance(pairs))

        g = engine.dynamic.graph
        report = client.events(key, [
            EdgeInsert(0, 80, 5.0),
            EdgeDelete(int(g.u[-1]), int(g.v[-1])),
            WeightUpdate(int(g.u[0]), int(g.v[0]), 3.0),
        ])
        assert report["inserted"] == 1
        assert report["deleted"] == 1
        assert report["reweighted"] == 1

        after = client.resistance(key, pairs)
        # The direct heavy edge must short pair (0, 80)...
        assert after[0] < before[0]
        assert after[0] <= 1.0 / 5.0 + 1e-9
        # ...and the served certificate stays fresh: the event batch was
        # drift-checked and the estimate still certifies the target.
        assert report["checked"] is True
        dyn = engine.dynamic
        assert report["sigma2_estimate"] == pytest.approx(dyn.last_estimate)
        assert dyn.last_estimate <= SIGMA2 * dyn.drift_tolerance + 1e-9

    def test_register_is_content_addressed_over_http(self, client, grid):
        k1 = client.register(grid, sigma2=SIGMA2, seed=0)
        k2 = client.register(grid, sigma2=SIGMA2, seed=0)
        assert k1 == k2

    def test_stats_snapshot(self, client, grid):
        key = client.register(grid, sigma2=SIGMA2, seed=0)
        stats = client.stats()
        assert key in stats["artifacts"]
        assert stats["artifacts"][key]["resident"] is True
        assert stats["stats"]["builds"] == 1

    def test_shutdown_stops_server(self, tmp_path, grid):
        registry = SparsifierRegistry(tmp_path / "spool")
        service = SparsifierService(registry)
        service.start()
        client = ServeClient(service.url)
        client.shutdown()
        service.wait()  # returns promptly once the loop exits
        service.stop()


class TestQueries:
    def test_solve_roundtrip(self, service, client, grid):
        key = client.register(grid, sigma2=SIGMA2, seed=0)
        rhs = np.zeros(grid.n)
        rhs[0], rhs[-1] = 1.0, -1.0
        x = client.solve(key, rhs)
        engine = service.registry.engine(key)
        assert np.allclose(x, engine.solve(rhs))

    def test_similarity_roundtrip(self, service, client, grid):
        key = client.register(grid, sigma2=SIGMA2, seed=0)
        pairs = np.column_stack([grid.u[:5], grid.v[:5]])
        scores = client.similarity(key, pairs)
        assert np.allclose(
            scores, service.registry.engine(key).similarity(pairs)
        )

    def test_embedding_roundtrip(self, service, client, grid):
        key = client.register(grid, sigma2=SIGMA2, seed=0)
        coords = client.embedding(key, nodes=[0, 1, 2], dim=2)
        assert coords.shape == (3, 2)
        assert np.allclose(
            coords,
            service.registry.engine(key).embedding(nodes=[0, 1, 2], dim=2),
        )

    def test_event_records_accepted_raw(self, client, grid):
        key = client.register(grid, sigma2=SIGMA2, seed=0)
        report = client.events(
            key, [{"type": "insert", "u": 0, "v": 44, "w": 1.5}]
        )
        assert report["inserted"] == 1


class TestErrors:
    def test_unknown_key_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.resistance("deadbeef00000000", [[0, 1]])
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/query/unknown", {})
        assert excinfo.value.status == 404

    def test_invalid_pairs_is_400(self, client, grid):
        key = client.register(grid, sigma2=SIGMA2, seed=0)
        with pytest.raises(ServiceError) as excinfo:
            client.resistance(key, [[0, grid.n]])
        assert excinfo.value.status == 400
        assert "out of range" in str(excinfo.value)

    def test_missing_field_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/query/resistance", {"pairs": [[0, 1]]})
        assert excinfo.value.status == 400
        assert "key" in str(excinfo.value)

    def test_invalid_event_is_400(self, client, grid):
        key = client.register(grid, sigma2=SIGMA2, seed=0)
        with pytest.raises(ServiceError) as excinfo:
            client.events(key, [{"type": "warp", "u": 0, "v": 1}])
        assert excinfo.value.status == 400

    def test_unexpected_register_param_is_400(self, client, grid):
        """Wrong-shaped-but-valid-JSON payloads must map to 400, not 500."""
        with pytest.raises(ServiceError) as excinfo:
            client.register(grid, sigma2=SIGMA2, bogus_knob=1)
        assert excinfo.value.status == 400

    def test_non_object_event_record_is_400(self, client, grid):
        key = client.register(grid, sigma2=SIGMA2, seed=0)
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST", "/events", {"key": key, "events": ["not-a-record"]}
            )
        assert excinfo.value.status == 400

    def test_malformed_json_is_400(self, client):
        import urllib.request

        request = urllib.request.Request(
            client.url + "/graphs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
