"""Smoke tests for every experiment regenerator (tiny scale)."""

import numpy as np
import pytest

from repro.experiments import common
from repro.experiments import (
    ablations,
    figure1,
    figure2,
    table1,
    table2,
    table3,
    table4,
)


@pytest.fixture(autouse=True)
def isolate_results(tmp_path, monkeypatch):
    """Route CSV artifacts into the test's temp directory."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


class TestCommon:
    def test_env_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert common.env_scale() == 1.0

    def test_env_scale_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert common.env_scale() == 2.5

    def test_env_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "abc")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            common.env_scale()

    def test_env_scale_negative(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError, match="positive"):
            common.env_scale()

    def test_scaled_size_minimum(self):
        assert common.scaled_size(100, 0.001, minimum=16) == 16

    def test_write_csv(self, isolate_results):
        path = common.write_csv("x.csv", ["a", "b"], [[1, 2], [3, 4]])
        assert path.exists()
        assert path.read_text().startswith("a,b")


class TestTable1:
    def test_rows_and_error_bounds(self):
        rows = table1.run(scale=0.25, seed=0)
        assert len(rows) == 5
        for row in rows:
            assert len(row) == len(table1.HEADERS)
            lmin_exact, lmin_est = float(row[2]), float(row[3])
            lmax_exact, lmax_est = float(row[5]), float(row[6])
            # One-sided estimator properties (paper Section 3.6).
            assert lmin_est >= lmin_exact - 1e-6
            assert lmax_est <= lmax_exact * 1.001
            # Errors in the paper's ballpark (few percent to ~15%).
            assert abs(lmin_est - lmin_exact) / lmin_exact < 0.35
            assert abs(lmax_est - lmax_exact) / lmax_exact < 0.35


class TestTable2:
    def test_rows_and_iteration_ordering(self):
        rows = table2.run(scale=0.2, seed=0)
        assert len(rows) == 5
        for row in rows:
            assert len(row) == len(table2.HEADERS)
            d50, n50 = float(row[4]), int(row[5])
            d200, n200 = float(row[7]), int(row[8])
            assert n50 <= n200  # Table 2's headline ordering
            assert d50 >= d200 * 0.98
            assert n50 < 200


class TestTable3:
    def test_rows_and_quality(self):
        rows = table3.run(scale=0.2, seed=0)
        assert len(rows) == 8
        for row in rows:
            assert len(row) == len(table3.HEADERS)
            balance = float(row[3])
            rel_err = float(row[8])
            assert 0.5 <= balance <= 2.0
            assert rel_err <= 0.10


class TestTable4:
    def test_rows_and_reductions(self):
        rows = table4.run(scale=0.12, seed=0, time_eigensolves=False)
        assert len(rows) == 5
        for row in rows:
            assert len(row) == len(table4.HEADERS)
            reduction = float(row[5].rstrip("x"))
            lam_ratio = float(row[6].rstrip("x").replace(",", ""))
            assert reduction > 1.0
            assert lam_ratio >= 1.0
        # The dense random case must show a large reduction.
        dense_row = [r for r in rows if r[1] == "appu"][0]
        assert float(dense_row[5].rstrip("x")) > 5.0


class TestFigure1:
    def test_alignment_metrics(self, isolate_results):
        output = figure1.run(scale=0.15, seed=0)
        assert output["coords_original"].shape == output["coords_sparsifier"].shape
        err = float(output["row"][5])
        assert err < 1.0
        assert (isolate_results / "figure1_original.csv").exists()
        assert (isolate_results / "figure1_sparsifier.csv").exists()


class TestFigure2:
    def test_series_and_thresholds(self, isolate_results):
        output = figure2.run(scale=0.3, seed=0)
        assert len(output["rows"]) == 2
        for name, data in output["series"].items():
            norm = data["sorted_normalized_heats"]
            assert norm[0] == pytest.approx(1.0)
            assert np.all(np.diff(norm) <= 1e-15)  # descending
            th = data["thresholds"]
            assert th[500.0] > th[100.0]  # larger sigma2 -> higher threshold
        assert (isolate_results / "figure2_circuit_grid.csv").exists()


class TestAblations:
    def test_sweeps_present(self):
        rows = ablations.run(scale=0.5, seed=0)
        sweeps = {row[0] for row in rows}
        assert sweeps == {"tree", "t", "r", "similarity", "baseline", "rescale"}
        # The similarity-aware pipeline must beat uniform at equal budget.
        by_setting = {(r[0], r[1]): r for r in rows}
        kappa_sa = float(by_setting[("baseline", "similarity_aware")][3])
        kappa_uniform = float(by_setting[("baseline", "uniform")][3])
        assert kappa_sa < kappa_uniform
        # Global rescaling improves the two-sided Eq. 2 sigma.
        sigma_off = float(by_setting[("rescale", "off (sigma Eq.2)")][4])
        sigma_global = float(by_setting[("rescale", "global (sigma Eq.2)")][4])
        assert sigma_global < sigma_off
