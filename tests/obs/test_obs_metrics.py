"""Unit tests for the in-process metrics registry (`repro.obs.metrics`)."""

from __future__ import annotations

import json
import math
import re
import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
)


@pytest.fixture
def reg() -> MetricsRegistry:
    return MetricsRegistry()


# ----------------------------------------------------------------------
# Counters and gauges
# ----------------------------------------------------------------------

class TestCounter:
    def test_inc_and_value(self, reg):
        c = reg.counter("repro_test_total", "A test counter.")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_increment_rejected(self, reg):
        c = reg.counter("repro_test_total", "A test counter.")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_labeled_children_are_independent(self, reg):
        c = reg.counter(
            "repro_calls_total", "Calls.", labelnames=("kernel", "backend")
        )
        c.inc(kernel="lsst", backend="reference")
        c.inc(3, kernel="lsst", backend="vectorized")
        assert c.value(kernel="lsst", backend="reference") == 1.0
        assert c.value(kernel="lsst", backend="vectorized") == 3.0
        assert c.value(kernel="embedding", backend="reference") == 0.0

    def test_label_mismatch_rejected(self, reg):
        c = reg.counter("repro_calls_total", "Calls.", labelnames=("kernel",))
        with pytest.raises(ValueError):
            c.inc()  # missing label
        with pytest.raises(ValueError):
            c.inc(kernel="lsst", backend="oops")  # extra label

    def test_family_accessor_is_get_or_create(self, reg):
        a = reg.counter("repro_x_total", "X.")
        b = reg.counter("repro_x_total", "X.")
        assert a is b

    def test_kind_conflict_rejected(self, reg):
        reg.counter("repro_x_total", "X.")
        with pytest.raises(ValueError):
            reg.gauge("repro_x_total", "X as a gauge?")

    def test_labelnames_conflict_rejected(self, reg):
        reg.counter("repro_x_total", "X.", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("repro_x_total", "X.", labelnames=("b",))


class TestGauge:
    def test_set_and_inc(self, reg):
        g = reg.gauge("repro_level", "A level.")
        g.set(4.5)
        assert g.value() == 4.5
        g.inc(-1.5)
        assert g.value() == 3.0
        g.set(0.25)
        assert g.value() == 0.25


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------

class TestHistogram:
    def test_bucketing_boundaries(self, reg):
        h = reg.histogram("repro_h", "H.", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 3.0, 100.0):
            h.observe(v)
        snap = reg.snapshot()["repro_h"]
        # Per-bucket (non-cumulative) counts: <=1, <=2, <=4, overflow.
        key = json.dumps([])
        assert snap["values"][key]["counts"] == [2, 2, 1, 1]
        assert snap["values"][key]["count"] == 6
        assert snap["values"][key]["sum"] == pytest.approx(108.0)
        assert snap["buckets"] == [1.0, 2.0, 4.0]

    def test_default_buckets_cover_subsecond_latencies(self, reg):
        h = reg.histogram("repro_h", "H.")
        h.observe(0.003)
        assert h.count() == 1
        assert DEFAULT_BUCKETS[0] < 0.003 < DEFAULT_BUCKETS[-1]

    def test_quantile(self, reg):
        h = reg.histogram("repro_h", "H.", buckets=(1.0, 2.0, 4.0, 8.0))
        for v in [0.5] * 50 + [1.5] * 30 + [3.0] * 15 + [6.0] * 5:
            h.observe(v)
        assert h.quantile(0.0) <= 1.0
        assert h.quantile(0.5) <= 1.0  # 50th sample sits in the first bucket
        assert 1.0 <= h.quantile(0.8) <= 2.0
        assert h.quantile(1.0) <= 8.0

    def test_quantile_empty_is_nan(self, reg):
        h = reg.histogram("repro_h", "H.")
        assert math.isnan(h.quantile(0.5))

    def test_quantile_overflow_clamps_to_last_bound(self, reg):
        h = reg.histogram("repro_h", "H.", buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.99) == 2.0

    def test_labeled_histogram(self, reg):
        h = reg.histogram(
            "repro_h", "H.", labelnames=("endpoint",), buckets=(1.0,)
        )
        h.observe(0.5, endpoint="/stats")
        h.observe(0.25, endpoint="/stats")
        h.observe(0.5, endpoint="/metrics")
        assert h.count(endpoint="/stats") == 2
        assert h.count(endpoint="/metrics") == 1


# ----------------------------------------------------------------------
# Snapshot / merge / reset
# ----------------------------------------------------------------------

class TestSnapshotMerge:
    def test_merge_accumulates_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_c_total", "C.").inc(2)
        b.counter("repro_c_total", "C.").inc(3)
        a.histogram("repro_h", "H.", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("repro_h", "H.", buckets=(1.0, 2.0)).observe(1.5)
        b.gauge("repro_g", "G.").set(7.0)

        a.merge(b.snapshot())
        assert a.counter("repro_c_total", "C.").value() == 5.0
        assert a.histogram("repro_h", "H.", buckets=(1.0, 2.0)).count() == 2
        assert a.gauge("repro_g", "G.").value() == 7.0  # created on merge

    def test_merge_gauge_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("repro_g", "G.").set(1.0)
        b.gauge("repro_g", "G.").set(9.0)
        a.merge(b.snapshot())
        assert a.gauge("repro_g", "G.").value() == 9.0

    def test_merge_labeled_families(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_c_total", "C.", labelnames=("k",)).inc(k="x")
        b.counter("repro_c_total", "C.", labelnames=("k",)).inc(2, k="x")
        b.counter("repro_c_total", "C.", labelnames=("k",)).inc(5, k="y")
        a.merge(b.snapshot())
        fam = a.counter("repro_c_total", "C.", labelnames=("k",))
        assert fam.value(k="x") == 3.0
        assert fam.value(k="y") == 5.0

    def test_merge_shape_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_c_total", "C.")
        b.gauge("repro_c_total", "C but a gauge.")
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_merge_snapshot_roundtrip_is_json_safe(self):
        a = MetricsRegistry()
        a.counter("repro_c_total", "C.", labelnames=("k",)).inc(k="x")
        a.histogram("repro_h", "H.").observe(0.01)
        restored = json.loads(json.dumps(a.snapshot()))
        fresh = MetricsRegistry()
        fresh.merge(restored)
        assert fresh.counter(
            "repro_c_total", "C.", labelnames=("k",)
        ).value(k="x") == 1.0

    def test_reset(self, reg):
        reg.counter("repro_c_total", "C.").inc(5)
        reg.reset()
        assert reg.counter("repro_c_total", "C.").value() == 0.0


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------

_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
)


class TestPrometheus:
    def test_exposition_is_line_valid(self, reg):
        reg.counter("repro_c_total", "C.", labelnames=("k",)).inc(k="x")
        reg.gauge("repro_g", "G.").set(1.5)
        reg.histogram("repro_h", "H.", buckets=(0.5, 1.0)).observe(0.75)
        text = reg.render_prometheus()
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][\w:]* ", line)
            else:
                assert _SAMPLE.match(line), line

    def test_histogram_samples_cumulative_and_terminated(self, reg):
        h = reg.histogram("repro_h", "H.", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        text = reg.render_prometheus()
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="2"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_sum 11" in text
        assert "repro_h_count 3" in text

    def test_histogram_bucket_le_joins_existing_labels(self, reg):
        h = reg.histogram(
            "repro_h", "H.", labelnames=("endpoint",), buckets=(1.0,)
        )
        h.observe(0.5, endpoint="/stats")
        text = reg.render_prometheus()
        assert 'repro_h_bucket{endpoint="/stats",le="1"} 1' in text
        assert 'repro_h_count{endpoint="/stats"} 1' in text

    def test_label_value_escaping(self, reg):
        c = reg.counter("repro_c_total", "C.", labelnames=("path",))
        c.inc(path='a"b\\c\nd')
        text = reg.render_prometheus()
        assert '{path="a\\"b\\\\c\\nd"}' in text

    def test_help_and_type_lines_present(self, reg):
        reg.counter("repro_c_total", "Counts things.").inc()
        text = reg.render_prometheus()
        assert "# HELP repro_c_total Counts things." in text
        assert "# TYPE repro_c_total counter" in text

    def test_counter_without_observations_still_renders_family(self, reg):
        reg.counter("repro_c_total", "C.")
        text = reg.render_prometheus()
        assert "# TYPE repro_c_total counter" in text


# ----------------------------------------------------------------------
# Null registry and thread safety
# ----------------------------------------------------------------------

class TestNullMetrics:
    def test_all_updaters_are_noops(self):
        NULL_METRICS.counter("repro_x_total", "X.").inc()
        NULL_METRICS.gauge("repro_g", "G.").set(1.0)
        NULL_METRICS.histogram("repro_h", "H.").observe(0.5)
        assert NULL_METRICS.counter("repro_x_total", "X.").value() == 0.0
        assert NULL_METRICS.histogram("repro_h", "H.").count() == 0
        assert math.isnan(NULL_METRICS.histogram("repro_h", "H.").quantile(0.5))

    def test_disabled_surface(self):
        assert not NULL_METRICS.enabled
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.render_prometheus() == ""
        NULL_METRICS.merge({"anything": {}})  # ignored, no error
        NULL_METRICS.reset()


class TestThreadSafety:
    def test_concurrent_increments_are_not_lost(self, reg):
        c = reg.counter("repro_c_total", "C.", labelnames=("t",))
        h = reg.histogram("repro_h", "H.", buckets=(0.5,))

        def work(tag: str) -> None:
            for _ in range(500):
                c.inc(t=tag)
                h.observe(0.1)

        threads = [
            threading.Thread(target=work, args=(str(i % 2),))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(t="0") + c.value(t="1") == 2000.0
        assert h.count() == 2000
