"""Unit tests for the run ledger (`repro.obs.ledger`)."""

from __future__ import annotations

import json

import pytest

from repro.graphs import generators
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    diff_runs,
    environment_fingerprint,
)
from repro.sparsify import sparsify_graph


class TestEnvironmentFingerprint:
    def test_required_fields(self):
        env = environment_fingerprint()
        for key in ("git_commit", "python", "implementation", "platform",
                    "machine", "numpy", "scipy", "numba"):
            assert key in env
        assert isinstance(env["numba"], bool)

    def test_cached(self):
        assert environment_fingerprint() is environment_fingerprint()

    def test_json_serializable(self):
        json.dumps(environment_fingerprint())


class TestRunRecord:
    def test_capture_stamps_time_and_env(self):
        record = RunRecord.capture(
            "sparsify", config={"sigma2": 100.0}, seed=7,
            metrics={"edges": 42},
        )
        assert record.kind == "sparsify"
        assert record.recorded_at  # ISO timestamp present
        assert record.seed == 7
        assert record.env == environment_fingerprint()

    def test_dict_round_trip(self):
        record = RunRecord.capture("stream", seed=None, metrics={"x": 1.5})
        back = RunRecord.from_dict(json.loads(json.dumps(record.as_dict())))
        assert back.as_dict() == record.as_dict()

    def test_from_dict_defaults_missing_keys(self):
        record = RunRecord.from_dict({"kind": "benchmark"})
        assert record.kind == "benchmark"
        assert record.seed is None
        assert record.metrics == {}

    def test_summary_is_one_line(self):
        record = RunRecord.capture(
            "sparsify", seed=0, metrics={"sigma2_estimate": 12.5},
        )
        line = record.summary()
        assert "\n" not in line
        assert "sparsify" in line
        assert "sigma2_estimate=12.5" in line

    def test_from_result_captures_pipeline(self):
        graph = generators.grid2d(8, 8, seed=0)
        result = sparsify_graph(graph, sigma2=50.0, seed=0)
        record = RunRecord.from_result(
            result, config={"sigma2": 50.0}, seed=0
        )
        assert record.kind == "sparsify"
        assert record.metrics["num_vertices"] == graph.n
        assert record.metrics["sparsifier_edges"] == result.sparsifier.num_edges
        assert record.metrics["sigma2_estimate"] == pytest.approx(
            result.sigma2_estimate
        )
        assert record.stages  # per-stage timings from PipelineProfile
        json.dumps(record.as_dict())


class TestRunLedger:
    def test_append_and_read_back(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(RunRecord.capture("sparsify", seed=0))
        ledger.append(RunRecord.capture("stream", seed=1))
        records = ledger.records()
        assert [r.kind for r in records] == ["sparsify", "stream"]
        assert len(ledger) == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert RunLedger(tmp_path / "absent.jsonl").records() == []

    def test_creates_parent_directories(self, tmp_path):
        ledger = RunLedger(tmp_path / "deep" / "dir" / "runs.jsonl")
        ledger.append(RunRecord.capture("benchmark"))
        assert len(ledger.records()) == 1

    def test_corrupt_line_warns_and_skips(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        ledger.append(RunRecord.capture("sparsify", seed=0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{this is not json\n")
        ledger.append(RunRecord.capture("sparsify", seed=1))
        with pytest.warns(UserWarning, match="corrupt ledger line"):
            records = ledger.records()
        assert [r.seed for r in records] == [0, 1]

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        ledger.append(RunRecord.capture("sparsify"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert len(ledger.records()) == 1


class TestDiffRuns:
    def test_reports_config_env_metric_changes(self):
        a = RunRecord(
            kind="sparsify", recorded_at="t0",
            config={"sigma2": 50.0, "tree": "akpw"},
            metrics={"edges": 100, "solve_s": 1.0},
            env={"git_commit": "aaa", "python": "3.11"},
            stages={"tree": {"seconds": 0.5}},
        )
        b = RunRecord(
            kind="sparsify", recorded_at="t1",
            config={"sigma2": 80.0, "tree": "akpw"},
            metrics={"edges": 90, "solve_s": 1.0},
            env={"git_commit": "bbb", "python": "3.11"},
            stages={"tree": {"seconds": 0.7}},
        )
        diff = diff_runs(a, b)
        assert diff["config"] == {"sigma2": [50.0, 80.0]}
        assert diff["env"] == {"git_commit": ["aaa", "bbb"]}
        assert diff["metrics"] == {
            "edges": {"a": 100, "b": 90, "delta": -10}
        }
        assert diff["stages"]["tree"]["delta"] == pytest.approx(0.2)

    def test_one_sided_keys_survive(self):
        a = RunRecord(kind="a", metrics={"old": 1.0})
        b = RunRecord(kind="b", metrics={"new": 2.0})
        diff = diff_runs(a, b)
        assert diff["metrics"]["old"] == {"a": 1.0, "b": None}
        assert diff["metrics"]["new"] == {"a": None, "b": 2.0}
        assert diff["kind"] == ["a", "b"]
