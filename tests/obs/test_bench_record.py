"""Benchmark recording satellites: corrupt backup, env stamp, ledger mirror.

``benchmarks/conftest.py`` is a pytest plugin, not a package module, so
it is loaded here by file path.  These tests pin the behaviours the
regression gate depends on: trajectories carry an environment
fingerprint, corrupt history is quarantined (never silently reset), and
every record is mirrored into a ``repro obs runs``-readable ledger.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.ledger import RunLedger, environment_fingerprint

_CONFTEST = Path(__file__).parents[2] / "benchmarks" / "conftest.py"


@pytest.fixture(scope="module")
def bench_conftest():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest_under_test", _CONFTEST
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRecordMetrics:
    def test_writes_trajectory_with_env(self, bench_conftest, tmp_path):
        path = bench_conftest.record_metrics(
            "demo", {"solve_s": 0.5}, tmp_path
        )
        assert path == tmp_path / "BENCH_demo.json"
        history = json.loads(path.read_text(encoding="utf-8"))
        assert len(history) == 1
        record = history[0]
        assert record["metrics"] == {"solve_s": 0.5}
        assert record["smoke"] is False
        assert record["recorded_at"]
        assert record["env"] == environment_fingerprint()

    def test_appends_across_runs(self, bench_conftest, tmp_path):
        bench_conftest.record_metrics("demo", {"solve_s": 0.5}, tmp_path)
        bench_conftest.record_metrics("demo", {"solve_s": 0.6}, tmp_path)
        history = json.loads(
            (tmp_path / "BENCH_demo.json").read_text(encoding="utf-8")
        )
        assert [r["metrics"]["solve_s"] for r in history] == [0.5, 0.6]

    def test_mirrors_into_ledger(self, bench_conftest, tmp_path):
        bench_conftest.record_metrics(
            "demo", {"solve_s": 0.5}, tmp_path, smoke_run=True
        )
        records = RunLedger(tmp_path / "BENCH_LEDGER.jsonl").records()
        assert len(records) == 1
        record = records[0]
        assert record.kind == "benchmark"
        assert record.config["bench"] == "demo"
        assert record.config["smoke"] is True
        assert record.metrics == {"solve_s": 0.5}
        assert record.env == environment_fingerprint()

    def test_creates_missing_directory(self, bench_conftest, tmp_path):
        target = tmp_path / "deep" / "nested"
        path = bench_conftest.record_metrics("demo", {"x": 1.0}, target)
        assert path.exists()


class TestCorruptHistoryBackup:
    def test_corrupt_json_backed_up_not_reset(self, bench_conftest, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text("{definitely not json", encoding="utf-8")
        with pytest.warns(UserWarning, match="backed up to"):
            bench_conftest.record_metrics("demo", {"x": 1.0}, tmp_path)
        backups = list(tmp_path.glob("BENCH_demo.json.corrupt-*"))
        assert len(backups) == 1
        assert backups[0].read_text(encoding="utf-8") == \
            "{definitely not json"
        history = json.loads(path.read_text(encoding="utf-8"))
        assert len(history) == 1  # fresh trajectory, old bytes preserved

    def test_non_list_json_also_quarantined(self, bench_conftest, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps({"not": "a list"}), encoding="utf-8")
        with pytest.warns(UserWarning, match="corrupt"):
            bench_conftest.record_metrics("demo", {"x": 1.0}, tmp_path)
        assert list(tmp_path.glob("BENCH_demo.json.corrupt-*"))

    def test_valid_history_untouched(self, bench_conftest, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps([
            {"recorded_at": "t0", "scale": 0.6, "smoke": False,
             "metrics": {"x": 9.0}},
        ]), encoding="utf-8")
        bench_conftest.record_metrics("demo", {"x": 1.0}, tmp_path)
        history = json.loads(path.read_text(encoding="utf-8"))
        assert len(history) == 2
        assert history[0]["metrics"]["x"] == 9.0
        assert not list(tmp_path.glob("*.corrupt-*"))
