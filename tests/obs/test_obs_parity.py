"""Observability-parity suite: collectors must never change results.

Instrumentation is strictly passive: running any consumer of the filter
loop with a live tracer *and* metrics registry must produce bit-identical
masks, backbones, σ² estimates and RNG streams to a run with collectors
disabled.  The scenarios mirror the golden-parity suite's four consumers
(batch, shard-parallel, streaming, serving registry build), plus the
"profile is a view over the trace" contract: the per-stage seconds the
pipeline writes into its :class:`~repro.core.profile.PipelineProfile`
are the *same numbers* its stage spans record, so a profile
reconstructed from the trace matches the inline one exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.core.profile import PipelineProfile
from repro.graphs import generators
from repro.graphs.operations import disjoint_union
from repro.obs import MetricsRegistry, Tracer
from repro.sparsify import sparsify_graph
from repro.sparsify.parallel import ShardedSparsifier
from repro.stream import DynamicSparsifier, random_event_stream


def _observed_pair():
    """A fresh (tracer, metrics) pair for an enabled run."""
    return Tracer(), MetricsRegistry()


def _grid():
    return generators.grid2d(10, 10, weights="lognormal", seed=3)


def _assert_results_match(a, b) -> None:
    assert np.array_equal(a.edge_mask, b.edge_mask)
    assert np.array_equal(a.tree_indices, b.tree_indices)
    assert a.sigma2_estimate == b.sigma2_estimate


class TestBatchParity:
    def test_batch_bit_identical_and_rng_stream_untouched(self):
        obs.disable()
        rng_off = np.random.default_rng(7)
        off = sparsify_graph(_grid(), sigma2=50.0, seed=rng_off)

        tracer, metrics = _observed_pair()
        rng_on = np.random.default_rng(7)
        with obs.observed(tracer=tracer, metrics=metrics):
            on = sparsify_graph(_grid(), sigma2=50.0, seed=rng_on)

        _assert_results_match(off, on)
        # Instrumentation consumed no randomness: the streams advance in
        # lockstep and their next draws agree.
        assert (
            rng_off.bit_generator.state == rng_on.bit_generator.state
        )
        assert tracer.records(category="stage"), "stages must emit spans"
        assert metrics.counter(
            "repro_kernel_calls_total",
            "Kernel dispatches through the registry, by kernel and "
            "concrete backend.",
            labelnames=("kernel", "backend"),
        ).value(kernel="lsst", backend="reference") >= 1.0

    def test_profile_is_a_view_over_the_trace(self):
        tracer, metrics = _observed_pair()
        with obs.observed(tracer=tracer, metrics=metrics):
            result = sparsify_graph(_grid(), sigma2=50.0, seed=0)

        rebuilt = PipelineProfile.from_trace(tracer)
        inline = result.profile
        assert rebuilt.reports, "trace must contain stage spans"
        for name, report in rebuilt.reports.items():
            reference = inline.reports[name]
            assert report.calls == reference.calls
            # Same span objects feed both sinks: bit-equal, not approx.
            assert report.seconds == reference.seconds
        recorded = {n for n, r in inline.reports.items() if r.calls}
        assert set(rebuilt.reports) == recorded


class TestShardParity:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_sharded_bit_identical(self, backend):
        graph = disjoint_union(
            generators.grid2d(7, 7, weights="uniform", seed=0),
            generators.grid2d(6, 6, weights="uniform", seed=1),
        )
        kwargs = dict(sigma2=60.0, workers=2, backend=backend, seed=11)

        obs.disable()
        off = ShardedSparsifier(**kwargs).sparsify(graph)

        tracer, metrics = _observed_pair()
        with obs.observed(tracer=tracer, metrics=metrics):
            on = ShardedSparsifier(**kwargs).sparsify(graph)

        _assert_results_match(off, on)
        assert [s.sparsifier_edges for s in off.shards] == [
            s.sparsifier_edges for s in on.shards
        ]
        # Per-shard spans are present in the parent trace: natively for
        # serial/thread, merged from the workers for process pools.
        stage_spans = tracer.records(category="stage")
        assert sum(1 for r in stage_spans if r.name == "tree") >= 2
        assert {r.name for r in tracer.records(category="shard")} == {
            "shards.plan", "shards.run", "shards.stitch",
        }
        # Worker metrics merged back into the parent registry.
        assert metrics.counter(
            "repro_kernel_calls_total",
            "Kernel dispatches through the registry, by kernel and "
            "concrete backend.",
            labelnames=("kernel", "backend"),
        ).value(kernel="lsst", backend="reference") >= 2.0


class TestStreamParity:
    def test_streaming_bit_identical(self):
        graph = generators.grid2d(9, 9, weights="uniform", seed=2)
        events = random_event_stream(
            graph, 200, seed=9, p_insert=0.5, p_delete=0.3
        )

        def run():
            dyn = DynamicSparsifier(
                graph, sigma2=30.0, seed=5, drift_tolerance=1.0,
                absorb_inserts=False,
            )
            dyn.apply_log(events, batch_size=40)
            return dyn

        obs.disable()
        off = run()
        tracer, metrics = _observed_pair()
        with obs.observed(tracer=tracer, metrics=metrics):
            on = run()

        assert off.redensify_count > 0, "scenario must exercise tier 3"
        assert on.redensify_count == off.redensify_count
        assert np.array_equal(on.edge_mask, off.edge_mask)
        assert np.array_equal(on.tree_indices, off.tree_indices)
        assert on.last_estimate == off.last_estimate
        assert (
            on._rng.bit_generator.state == off._rng.bit_generator.state
        )
        assert tracer.records(category="stream")
        batches = metrics.counter(
            "repro_stream_batches_total",
            "Event batches applied by DynamicSparsifier.",
        ).value()
        assert batches == on.batches_applied
        drift = metrics.gauge(
            "repro_stream_drift_ratio",
            "Tracked σ² estimate over the target σ² at the most "
            "recent drift check (tier 3 fires above "
            "drift_tolerance).",
        ).value()
        assert drift == pytest.approx(on.last_estimate / on.sigma2)


class TestServeParity:
    def test_registry_build_bit_identical(self, tmp_path):
        from repro.serve import SparsifierRegistry

        graph = generators.grid2d(8, 8, weights="uniform", seed=4)

        obs.disable()
        reg_off = SparsifierRegistry(tmp_path / "off")
        key_off = reg_off.register(graph, sigma2=80.0, seed=3)

        tracer, metrics = _observed_pair()
        with obs.observed(tracer=tracer, metrics=metrics):
            reg_on = SparsifierRegistry(tmp_path / "on")
            key_on = reg_on.register(graph, sigma2=80.0, seed=3)

        assert key_on == key_off  # same content address
        off_dyn = reg_off.get(key_off).dynamic
        on_dyn = reg_on.get(key_on).dynamic
        assert np.array_equal(on_dyn.edge_mask, off_dyn.edge_mask)
        assert np.array_equal(on_dyn.tree_indices, off_dyn.tree_indices)
        assert on_dyn.last_estimate == off_dyn.last_estimate
        assert metrics.counter(
            "repro_registry_events_total",
            "Registry traffic by event: hit (register/get without a "
            "build), build (registry miss), eviction (LRU spill to "
            "disk), reload (checkpoint restore).",
            labelnames=("event",),
        ).value(event="build") == 1.0
