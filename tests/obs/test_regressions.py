"""Regression-gate tests: median+MAD baselines over BENCH trajectories."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.ledger import (
    check_bench_file,
    check_regressions,
    metric_direction,
)

FIXTURE = Path(__file__).parent / "fixtures" / "BENCH_gate_demo.json"


def _copy_fixture(directory: Path) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / FIXTURE.name
    shutil.copy(FIXTURE, target)
    return target


def _append_record(path: Path, metrics: dict) -> None:
    history = json.loads(path.read_text(encoding="utf-8"))
    history.append({
        "recorded_at": "2026-08-05T10:00:00+00:00",
        "scale": 0.6,
        "smoke": False,
        "metrics": metrics,
    })
    path.write_text(json.dumps(history), encoding="utf-8")


class TestMetricDirection:
    @pytest.mark.parametrize("name", [
        "sparsify_s", "solve_seconds", "null_event_ns", "flush_ms",
        "p99_latency", "enabled_overhead", "query_p50",
    ])
    def test_up_is_bad(self, name):
        assert metric_direction(name) == "up_is_bad"

    @pytest.mark.parametrize("name", [
        "speedup", "throughput_qps", "vectorized_speedup",
        "speedup_seconds",  # speedup wins over the timing suffix
    ])
    def test_down_is_bad(self, name):
        assert metric_direction(name) == "down_is_bad"

    @pytest.mark.parametrize("name", ["edges", "events_per_run", "converged"])
    def test_ungated(self, name):
        assert metric_direction(name) is None


class TestCheckBenchFile:
    def test_injected_2x_slowdown_flags(self, tmp_path):
        path = _copy_fixture(tmp_path)
        _append_record(path, {
            "sparsify_s": 2.0, "solve_s": 0.2, "speedup": 4.2,
            "edges": 5120,
        })
        regressions, status = check_bench_file(path)
        assert [r.metric for r in regressions] == ["sparsify_s"]
        finding = regressions[0]
        assert finding.direction == "up_is_bad"
        assert finding.value == pytest.approx(2.0)
        assert finding.baseline == pytest.approx(1.01)
        assert finding.history == 4
        assert "sparsify_s" in finding.describe()
        assert status["gated"] == 3  # sparsify_s, solve_s, speedup

    def test_within_noise_stays_quiet(self, tmp_path):
        path = _copy_fixture(tmp_path)
        _append_record(path, {
            "sparsify_s": 1.03, "solve_s": 0.203, "speedup": 4.15,
            "edges": 5121,
        })
        regressions, _ = check_bench_file(path)
        assert regressions == []

    def test_speedup_collapse_flags_downward(self, tmp_path):
        path = _copy_fixture(tmp_path)
        _append_record(path, {
            "sparsify_s": 1.0, "solve_s": 0.2, "speedup": 1.1,
            "edges": 5120,
        })
        regressions, _ = check_bench_file(path)
        assert [r.metric for r in regressions] == ["speedup"]
        assert regressions[0].direction == "down_is_bad"

    def test_ungated_metric_never_flags(self, tmp_path):
        path = _copy_fixture(tmp_path)
        _append_record(path, {
            "sparsify_s": 1.0, "solve_s": 0.2, "speedup": 4.2,
            "edges": 99999,
        })
        regressions, _ = check_bench_file(path)
        assert regressions == []

    def test_thin_history_skipped(self, tmp_path):
        path = tmp_path / "BENCH_thin.json"
        path.write_text(json.dumps([
            {"recorded_at": "t0", "scale": 0.6, "smoke": False,
             "metrics": {"solve_s": 1.0}},
            {"recorded_at": "t1", "scale": 0.6, "smoke": False,
             "metrics": {"solve_s": 5.0}},
        ]), encoding="utf-8")
        regressions, status = check_bench_file(path)
        assert regressions == []
        assert "skipped" in status

    def test_priors_filtered_by_scale_and_smoke(self, tmp_path):
        path = tmp_path / "BENCH_mixed.json"
        # Two smoke priors at a different scale must not pollute the
        # baseline of the full-scale newest record.
        path.write_text(json.dumps(
            [{"recorded_at": f"t{i}", "scale": 0.1, "smoke": True,
              "metrics": {"solve_s": 99.0}} for i in range(3)]
            + [{"recorded_at": "t9", "scale": 0.6, "smoke": False,
                "metrics": {"solve_s": 1.0}}]
        ), encoding="utf-8")
        regressions, status = check_bench_file(path)
        assert regressions == []
        assert "skipped" in status  # no comparable priors at all

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            check_bench_file(path)
        path.write_text(json.dumps({"not": "a list"}), encoding="utf-8")
        with pytest.raises(ValueError, match="JSON list"):
            check_bench_file(path)


class TestCheckRegressions:
    def test_sweeps_directory(self, tmp_path):
        path = _copy_fixture(tmp_path)
        _append_record(path, {
            "sparsify_s": 2.0, "solve_s": 0.2, "speedup": 4.2,
            "edges": 5120,
        })
        report = check_regressions(tmp_path)
        assert not report.ok
        assert len(report.regressions) == 1
        assert "REGRESSIONS" in report.render()
        payload = report.as_dict()
        assert payload["ok"] is False
        assert payload["regressions"][0]["metric"] == "sparsify_s"
        json.dumps(payload)

    def test_quiet_on_real_benchmarks_history(self):
        # The repo's own trajectories must pass the gate as shipped.
        report = check_regressions(Path(__file__).parents[2] / "benchmarks")
        assert report.ok, report.render()

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            check_regressions(tmp_path / "absent")

    def test_tolerance_widens_the_band(self, tmp_path):
        path = _copy_fixture(tmp_path)
        _append_record(path, {
            "sparsify_s": 2.0, "solve_s": 0.2, "speedup": 4.2,
            "edges": 5120,
        })
        assert not check_regressions(tmp_path).ok
        assert check_regressions(tmp_path, rel_tolerance=1.5).ok

    def test_abs_tolerance_floors_near_zero_baselines(self, tmp_path):
        # Overhead *ratios* jitter across zero at smoke scale: a
        # relative band prices that at ~nothing, the absolute floor
        # absorbs it without loosening second-scale metrics.
        path = tmp_path / "BENCH_overhead.json"
        path.write_text(json.dumps([
            {"recorded_at": "t0", "scale": 0.6, "smoke": True,
             "metrics": {"enabled_overhead": -0.006}},
            {"recorded_at": "t1", "scale": 0.6, "smoke": True,
             "metrics": {"enabled_overhead": 0.26}},
        ]), encoding="utf-8")
        assert not check_regressions(tmp_path, min_history=1).ok
        assert check_regressions(
            tmp_path, min_history=1, abs_tolerance=1.0
        ).ok


class TestGateCli:
    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        path = _copy_fixture(tmp_path)
        _append_record(path, {
            "sparsify_s": 2.0, "solve_s": 0.2, "speedup": 4.2,
            "edges": 5120,
        })
        code = main(["obs", "check-regressions", str(tmp_path)])
        assert code == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_exit_zero_when_quiet(self, tmp_path, capsys):
        _copy_fixture(tmp_path)
        code = main(["obs", "check-regressions", str(tmp_path)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        _copy_fixture(tmp_path)
        code = main([
            "obs", "check-regressions", str(tmp_path), "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_missing_directory_exit_code(self, tmp_path, capsys):
        code = main(["obs", "check-regressions", str(tmp_path / "absent")])
        assert code == 3
