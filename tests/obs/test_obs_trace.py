"""Unit tests for the span tracer (`repro.obs.trace`) and ambient wiring."""

from __future__ import annotations

import json
import pickle
import threading
import time

import pytest

import repro.obs as obs
from repro.obs import NULL_TRACER, Span, Tracer
from repro.utils.timing import Timer


# ----------------------------------------------------------------------
# Span as the repo-wide timing primitive (the old Timer)
# ----------------------------------------------------------------------

class TestSpanAsTimer:
    def test_timer_is_span(self):
        assert Timer is Span

    def test_elapsed(self):
        with Timer() as t:
            time.sleep(0.001)
        assert t.elapsed >= 0.001

    def test_restart_clears_previous_interval(self):
        with Timer() as t:
            pass
        t.restart()
        assert t.elapsed == 0.0
        assert t.lap() >= 0.0

    def test_lap_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Span().lap()

    def test_unreported_span_annotate_is_noop(self):
        with Span("x") as s:
            s.annotate({"k": 1}, extra=2)  # no tracer: silently dropped
        assert s.elapsed >= 0.0


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------

class TestTracer:
    def test_nesting_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer", category="stage"):
            with tracer.span("inner", category="kernel"):
                pass
        inner, outer = tracer.records()
        assert (inner.name, inner.depth, inner.parent) == ("inner", 1, "outer")
        assert (outer.name, outer.depth, outer.parent) == ("outer", 0, None)

    def test_category_filter(self):
        tracer = Tracer()
        with tracer.span("a", category="stage"):
            pass
        with tracer.span("b", category="kernel"):
            pass
        assert [r.name for r in tracer.records(category="kernel")] == ["b"]

    def test_annotations_and_initial_args(self):
        tracer = Tracer()
        with tracer.span("s", category="stage", backend="reference") as span:
            span.annotate({"edges": 5}, added=2)
        (record,) = tracer.records()
        assert record.args == {"backend": "reference", "edges": 5, "added": 2}

    def test_span_recorded_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert [r.name for r in tracer.records()] == ["failing"]

    def test_threads_get_distinct_tids(self):
        tracer = Tracer()
        barrier = threading.Barrier(3)

        def work():
            barrier.wait()  # all threads alive at once: idents are distinct
            with tracer.span("worker"):
                pass

        threads = [threading.Thread(target=work) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tids = {r.tid for r in tracer.records()}
        assert len(tids) == 3

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.records() == []

    def test_now_is_monotone(self):
        tracer = Tracer()
        a = tracer.now()
        b = tracer.now()
        assert 0.0 <= a <= b


class TestChromeTrace:
    def test_event_shape(self):
        tracer = Tracer()
        with tracer.span("outer", category="stage"):
            with tracer.span("inner", category="kernel", backend="reference"):
                pass
        doc = tracer.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 2
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["pid"] == 0
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        assert by_name["inner"]["cat"] == "kernel"
        assert by_name["inner"]["args"] == {"backend": "reference"}
        # The outer complete-event interval contains the inner one.
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert [e["name"] for e in doc["traceEvents"]] == ["s"]


class TestMerge:
    def test_merge_offsets_and_remaps_tids(self):
        parent, child = Tracer(), Tracer()
        with parent.span("local"):
            pass
        with child.span("remote"):
            pass
        (remote,) = child.records()
        parent.merge(child.records(), offset=10.0)
        merged = {r.name: r for r in parent.records()}
        assert merged["remote"].start == pytest.approx(remote.start + 10.0)
        assert merged["remote"].tid != merged["local"].tid
        # A later local thread must not collide with the merged tid.
        done = threading.Event()

        def work():
            with parent.span("later"):
                pass
            done.set()

        threading.Thread(target=work).start()
        done.wait(5.0)
        tids = [r.tid for r in parent.records()]
        assert len(tids) == len(set(tids)) or len(set(tids)) == 3

    def test_records_survive_pickling(self):
        # The process-pool shard path ships SpanRecords across pickling.
        tracer = Tracer()
        with tracer.span("s", category="stage", edges=3):
            pass
        restored = pickle.loads(pickle.dumps(tracer.records()))
        fresh = Tracer()
        fresh.merge(restored)
        (record,) = fresh.records()
        assert record.name == "s"
        assert record.args == {"edges": 3}


# ----------------------------------------------------------------------
# Null tracer and ambient wiring
# ----------------------------------------------------------------------

class TestNullTracer:
    def test_null_span_still_times(self):
        with NULL_TRACER.span("ignored") as s:
            time.sleep(0.001)
        assert s.elapsed >= 0.001

    def test_disabled_surface(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.chrome_trace() == {
            "traceEvents": [], "displayTimeUnit": "ms",
        }
        assert NULL_TRACER.now() == 0.0
        NULL_TRACER.merge([], offset=1.0)
        NULL_TRACER.clear()


class TestAmbientWiring:
    def test_defaults_are_null(self):
        obs.disable()
        assert not obs.get_tracer().enabled
        assert not obs.get_metrics().enabled

    def test_observed_scopes_and_restores(self):
        obs.disable()
        tracer = Tracer()
        with obs.observed(tracer=tracer):
            assert obs.get_tracer() is tracer
            assert not obs.get_metrics().enabled  # untouched
        assert not obs.get_tracer().enabled

    def test_observed_restores_on_exception(self):
        obs.disable()
        with pytest.raises(RuntimeError):
            with obs.observed(tracer=Tracer()):
                raise RuntimeError("boom")
        assert not obs.get_tracer().enabled

    def test_enable_metrics_is_idempotent(self):
        obs.disable()
        first = obs.enable_metrics()
        second = obs.enable_metrics()
        assert first is second
        assert obs.get_metrics() is first

    def test_configure_partial_update(self):
        obs.disable()
        tracer = Tracer()
        obs.configure(tracer=tracer)
        assert obs.get_tracer() is tracer
        obs.configure(metrics=None)
        assert obs.get_tracer() is tracer  # unchanged by metrics update
        obs.configure(tracer=None)
        assert not obs.get_tracer().enabled
