"""Unit tests for trace analytics (`repro.obs.analyze`)."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs import SpanRecord, Tracer
from repro.obs.analyze import (
    aggregate,
    build_report,
    critical_path,
    diff_traces,
    load_trace,
    render_diff,
    render_report,
    wall_clock,
)


def rec(name, start, dur, tid=0, category="stage", depth=0, parent=None):
    return SpanRecord(name, category, start, dur, tid, depth, parent, {})


#: A deterministic nested trace: two roots on one thread.
#:   root [0.0, 1.0]: a [0.0, 0.6] (a1 [0.1, 0.3]), b [0.6, 0.9]
#:   root2 [1.0, 1.5]: no children
NESTED = [
    rec("root", 0.0, 1.0),
    rec("a", 0.0, 0.6, depth=1, parent="root"),
    rec("a1", 0.1, 0.2, depth=2, parent="a"),
    rec("b", 0.6, 0.3, depth=1, parent="root"),
    rec("root2", 1.0, 0.5),
]


class TestAggregate:
    def test_self_time_subtracts_direct_children(self):
        stats = aggregate(NESTED)
        assert stats["root"]["self_seconds"] == pytest.approx(0.1)  # 1-.6-.3
        assert stats["a"]["self_seconds"] == pytest.approx(0.4)
        assert stats["a1"]["self_seconds"] == pytest.approx(0.2)
        assert stats["root2"]["self_seconds"] == pytest.approx(0.5)

    def test_self_times_sum_to_wall_clock(self):
        stats = aggregate(NESTED)
        total_self = sum(e["self_seconds"] for e in stats.values())
        assert total_self == pytest.approx(wall_clock(NESTED))

    def test_calls_and_max(self):
        records = NESTED + [rec("a", 2.0, 0.2)]
        stats = aggregate(records)
        assert stats["a"]["calls"] == 2
        assert stats["a"]["max_seconds"] == pytest.approx(0.6)

    def test_empty(self):
        assert aggregate([]) == {}
        assert wall_clock([]) == 0.0


class TestCriticalPath:
    def test_entries_sum_to_wall_clock_on_nested_fixture(self):
        # The acceptance invariant: path_seconds is a disjoint cover of
        # the busiest thread's top-level wall clock.
        path = critical_path(NESTED)
        assert path.total_seconds == pytest.approx(1.5)
        assert sum(e["path_seconds"] for e in path.entries) == pytest.approx(
            path.total_seconds
        )

    def test_descends_into_longest_child(self):
        path = critical_path(NESTED)
        assert [e["name"] for e in path.entries] == [
            "root", "a", "a1", "root2"
        ]
        by_name = {e["name"]: e for e in path.entries}
        assert by_name["root"]["path_seconds"] == pytest.approx(0.4)  # 1-.6
        assert by_name["a"]["path_seconds"] == pytest.approx(0.4)  # .6-.2
        assert by_name["a1"]["path_seconds"] == pytest.approx(0.2)

    def test_empty_trace(self):
        path = critical_path([])
        assert path.total_seconds == 0.0
        assert path.entries == []

    def test_picks_busiest_thread(self):
        records = NESTED + [rec("other", 0.0, 9.0, tid=7)]
        path = critical_path(records)
        assert path.tid == 7
        assert path.total_seconds == pytest.approx(9.0)

    def test_thread_tie_breaks_deterministically(self):
        records = [rec("x", 0.0, 1.0, tid=3), rec("y", 0.0, 1.0, tid=1)]
        assert critical_path(records).tid == 1


class TestMultiThreadMerge:
    """Critical path on tid-remapped `Tracer.merge` output (the shape
    shard process workers ship back)."""

    def _worker_records(self, name, dur):
        worker = Tracer()
        with worker.span(name, category="shard"):
            with worker.span(f"{name}.inner", category="kernel"):
                time.sleep(dur)
        return worker.records()

    def test_merged_lanes_get_fresh_tids(self):
        parent = Tracer()
        with parent.span("driver", category="stage"):
            pass
        parent.merge(self._worker_records("shard0", 0.002))
        parent.merge(self._worker_records("shard1", 0.001))
        tids = {r.tid for r in parent.records()}
        assert len(tids) == 3  # driver lane + one lane per worker

    def test_critical_path_follows_busiest_merged_lane(self):
        parent = Tracer()
        with parent.span("driver", category="stage"):
            pass
        parent.merge(self._worker_records("shard_fast", 0.001))
        parent.merge(self._worker_records("shard_slow", 0.02), offset=1.0)
        path = critical_path(parent.records())
        assert [e["name"] for e in path.entries] == [
            "shard_slow", "shard_slow.inner"
        ]
        assert sum(e["path_seconds"] for e in path.entries) == pytest.approx(
            path.total_seconds
        )

    def test_wall_clock_sums_all_lanes(self):
        parent = Tracer()
        parent.merge(self._worker_records("s0", 0.001))
        parent.merge(self._worker_records("s1", 0.001))
        records = parent.records()
        roots = [r for r in records if r.depth == 0]
        assert wall_clock(records) == pytest.approx(
            sum(r.duration for r in roots)
        )


class TestLoadTrace:
    def test_round_trips_live_records(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", category="stage"):
            with tracer.span("inner", category="kernel"):
                time.sleep(0.001)
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        loaded = load_trace(path)
        live = aggregate(tracer.records())
        back = aggregate(loaded)
        assert set(live) == set(back)
        for name in live:
            assert back[name]["calls"] == live[name]["calls"]
            assert back[name]["total_seconds"] == pytest.approx(
                live[name]["total_seconds"], abs=1e-5
            )

    def test_reconstructs_depth_and_parent(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", category="stage"):
            with tracer.span("inner", category="kernel"):
                pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        by_name = {r.name: r for r in load_trace(path)}
        assert by_name["outer"].depth == 0
        assert by_name["outer"].parent is None
        assert by_name["inner"].depth == 1
        assert by_name["inner"].parent == "outer"

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_trace(path)

    def test_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"foo": 1}), encoding="utf-8")
        with pytest.raises(ValueError, match="traceEvents"):
            load_trace(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "absent.json")


class TestDiffTraces:
    def test_overlapping_names_attribute_the_full_delta(self):
        slower = [
            rec("root", 0.0, 1.4),
            rec("a", 0.0, 0.9, depth=1, parent="root"),
            rec("a1", 0.1, 0.2, depth=2, parent="a"),
            rec("b", 0.9, 0.4, depth=1, parent="root"),
            rec("root2", 1.4, 0.5),
        ]
        diff = diff_traces(NESTED, slower)
        assert diff["wall_clock_delta"] == pytest.approx(0.4)
        assert all(row["status"] == "both" for row in diff["rows"])
        # Self-time attribution sums to the wall-clock delta over a
        # shared name set — no double counting of nested spans.
        assert sum(r["self_delta"] for r in diff["rows"]) == pytest.approx(
            diff["wall_clock_delta"]
        )
        worst = diff["rows"][0]
        assert worst["name"] == "a"  # 0.9-0.2 self vs 0.6-0.2
        assert worst["self_delta"] == pytest.approx(0.3)

    def test_disjoint_names_marked_only_a_only_b(self):
        a = [rec("old_stage", 0.0, 1.0)]
        b = [rec("new_stage", 0.0, 2.0)]
        diff = diff_traces(a, b)
        status = {row["name"]: row["status"] for row in diff["rows"]}
        assert status == {"old_stage": "only_a", "new_stage": "only_b"}
        by_name = {row["name"]: row for row in diff["rows"]}
        assert by_name["old_stage"]["self_b"] == 0.0
        assert by_name["new_stage"]["calls_a"] == 0
        assert diff["wall_clock_delta"] == pytest.approx(1.0)

    def test_rows_sorted_by_absolute_delta(self):
        diff = diff_traces(
            [rec("x", 0.0, 1.0), rec("y", 1.0, 0.1)],
            [rec("x", 0.0, 0.2), rec("y", 0.2, 0.4)],
        )
        assert [r["name"] for r in diff["rows"]] == ["x", "y"]


class TestReportRendering:
    def test_build_report_shape(self):
        report = build_report(NESTED, top=3)
        assert report["span_count"] == 5
        assert report["name_count"] == 5
        assert len(report["by_name"]) == 3
        assert report["by_name"][0]["name"] == "root"
        assert report["wall_clock_seconds"] == pytest.approx(1.5)
        assert report["critical_path"]["total_seconds"] == pytest.approx(1.5)
        json.dumps(report)  # must be JSON-serializable as-is

    def test_render_report_text(self):
        text = render_report(build_report(NESTED))
        assert "critical path" in text
        assert "root" in text and "a1" in text

    def test_render_diff_text(self):
        text = render_diff(diff_traces(NESTED, NESTED), top=2)
        assert "wall clock" in text
        assert "more span names" in text
