"""Unit tests for the SLO alert engine (`repro.obs.alerts`)."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.alerts import (
    AlertRule,
    default_serving_rules,
    evaluate,
    evaluate_rules,
)
from repro.obs.metrics import quantile_from_counts


class TestQuantileFromCounts:
    def test_matches_histogram_quantile(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_q_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        snap = registry.snapshot()["repro_q_seconds"]
        child = snap["values"]["[]"]
        for q in (0.0, 0.5, 0.9, 1.0):
            assert quantile_from_counts(
                tuple(snap["buckets"]), child["counts"], child["count"], q
            ) == pytest.approx(hist.quantile(q))

    def test_empty_is_nan(self):
        import math
        assert math.isnan(quantile_from_counts((1.0,), [0, 0], 0, 0.5))

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            quantile_from_counts((1.0,), [1, 0], 1, 1.5)


class TestAlertRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown alert kind"):
            AlertRule(name="x", kind="median_max", metric="m", threshold=1.0)

    def test_ratio_requires_denominator(self):
        with pytest.raises(ValueError, match="denominator"):
            AlertRule(name="x", kind="ratio_max", metric="m", threshold=1.0)

    def test_quantile_bounds(self):
        with pytest.raises(ValueError, match="quantile"):
            AlertRule(name="x", kind="quantile_max", metric="m",
                      threshold=1.0, quantile=2.0)


class TestGaugeAndCounterRules:
    def test_gauge_within_and_exceeding(self):
        registry = MetricsRegistry()
        registry.gauge("repro_stream_drift_ratio").set(1.2)
        rule = AlertRule(name="drift", kind="gauge_max",
                         metric="repro_stream_drift_ratio", threshold=1.5)
        assert evaluate(rule, registry.snapshot()).ok
        registry.gauge("repro_stream_drift_ratio").set(2.0)
        result = evaluate(rule, registry.snapshot())
        assert not result.ok
        assert result.value == pytest.approx(2.0)
        assert "EXCEEDS" in result.detail

    def test_gauge_worst_child_decides(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_shard_lag", labelnames=("shard",))
        gauge.set(0.1, shard="0")
        gauge.set(9.0, shard="1")
        rule = AlertRule(name="lag", kind="gauge_max",
                         metric="repro_shard_lag", threshold=1.0)
        result = evaluate(rule, registry.snapshot())
        assert not result.ok
        assert "shard=1" in result.detail

    def test_counter_sums_children(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_errors_total", labelnames=("kind",))
        counter.inc(3, kind="a")
        counter.inc(4, kind="b")
        rule = AlertRule(name="errors", kind="counter_max",
                         metric="repro_errors_total", threshold=5)
        result = evaluate(rule, registry.snapshot())
        assert not result.ok
        assert result.value == pytest.approx(7.0)

    def test_absent_metric_passes(self):
        rule = AlertRule(name="drift", kind="gauge_max",
                         metric="repro_stream_drift_ratio", threshold=1.5)
        result = evaluate(rule, {})
        assert result.ok
        assert result.value is None
        assert "absent" in result.detail

    def test_label_filter(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total", labelnames=("kind",))
        counter.inc(100, kind="noise")
        counter.inc(1, kind="fatal")
        rule = AlertRule(name="fatal", kind="counter_max",
                         metric="repro_events_total",
                         labels=(("kind", "fatal"),), threshold=5)
        assert evaluate(rule, registry.snapshot()).ok


class TestQuantileRules:
    def _registry(self, slow_endpoint_samples=0):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_http_request_seconds", labelnames=("endpoint",)
        )
        for _ in range(50):
            hist.observe(0.01, endpoint="/query/resistance")
        for _ in range(slow_endpoint_samples):
            hist.observe(3.0, endpoint="/query/solve")
        return registry

    def test_worst_endpoint_decides(self):
        registry = self._registry(slow_endpoint_samples=50)
        rule = AlertRule(name="p99", kind="quantile_max",
                         metric="repro_http_request_seconds",
                         threshold=0.5, quantile=0.99, min_count=30)
        result = evaluate(rule, registry.snapshot())
        assert not result.ok
        assert "/query/solve" in result.detail

    def test_min_count_guards_thin_endpoints(self):
        registry = self._registry(slow_endpoint_samples=5)
        rule = AlertRule(name="p99", kind="quantile_max",
                         metric="repro_http_request_seconds",
                         threshold=0.5, quantile=0.99, min_count=30)
        # The slow endpoint has too few samples to trip the rule; the
        # fast one is within the ceiling.
        assert evaluate(rule, registry.snapshot()).ok

    def test_not_a_histogram_passes(self):
        registry = MetricsRegistry()
        registry.gauge("repro_http_request_seconds").set(9.0)
        rule = AlertRule(name="p99", kind="quantile_max",
                         metric="repro_http_request_seconds", threshold=0.5)
        assert evaluate(rule, registry.snapshot()).ok


class TestRatioRules:
    def _rule(self, threshold=0.5, min_count=10):
        return AlertRule(
            name="churn", kind="ratio_max",
            metric="repro_registry_events_total",
            labels=(("event", "eviction"),),
            denominator="repro_registry_events_total",
            threshold=threshold, min_count=min_count,
        )

    def test_eviction_churn(self):
        registry = MetricsRegistry()
        events = registry.counter(
            "repro_registry_events_total", labelnames=("event",)
        )
        events.inc(8, event="hit")
        events.inc(2, event="eviction")
        assert evaluate(self._rule(), registry.snapshot()).ok
        events.inc(10, event="eviction")
        result = evaluate(self._rule(), registry.snapshot())
        assert not result.ok
        assert result.value == pytest.approx(12 / 20)

    def test_min_count_guards_cold_start(self):
        registry = MetricsRegistry()
        events = registry.counter(
            "repro_registry_events_total", labelnames=("event",)
        )
        events.inc(2, event="eviction")
        result = evaluate(self._rule(), registry.snapshot())
        assert result.ok
        assert "min_count" in result.detail

    def test_absent_denominator_passes(self):
        registry = MetricsRegistry()
        registry.counter("repro_stream_repairs_total",
                         labelnames=("tier",)).inc(5, tier="redensify")
        rule = AlertRule(
            name="tier3", kind="ratio_max",
            metric="repro_stream_repairs_total",
            labels=(("tier", "redensify"),),
            denominator="repro_stream_batches_total", threshold=0.25,
        )
        assert evaluate(rule, registry.snapshot()).ok


class TestHealthReport:
    def test_all_rules_evaluated_in_order(self):
        registry = MetricsRegistry()
        registry.gauge("repro_stream_drift_ratio").set(99.0)
        report = evaluate_rules(default_serving_rules(), registry.snapshot())
        assert not report.healthy
        names = [r.rule for r in report.results]
        assert names == [
            "stream_drift_ratio", "http_p99_latency",
            "registry_eviction_churn", "stream_tier3_repairs",
        ]
        payload = report.as_dict()
        assert payload["healthy"] is False
        assert payload["rules"][0]["ok"] is False
        json.dumps(payload)

    def test_empty_rule_set_is_healthy(self):
        assert evaluate_rules((), {}).healthy

    def test_default_rules_healthy_on_quiet_registry(self):
        report = evaluate_rules(
            default_serving_rules(), MetricsRegistry().snapshot()
        )
        assert report.healthy
