"""Unit tests for the graph signal processing module."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.spectral import (
    GraphFourier,
    chebyshev_filter,
    heat_kernel,
    low_pass,
    smoothness,
)


@pytest.fixture
def fourier(grid_small):
    return GraphFourier(grid_small)


class TestGraphFourier:
    def test_transform_roundtrip(self, fourier, rng):
        x = rng.standard_normal(fourier.n)
        assert np.allclose(fourier.inverse(fourier.transform(x)), x, atol=1e-10)

    def test_frequencies_sorted_nonnegative(self, fourier):
        assert fourier.frequencies[0] == pytest.approx(0.0, abs=1e-10)
        assert np.all(np.diff(fourier.frequencies) >= -1e-12)

    def test_identity_filter(self, fourier, rng):
        x = rng.standard_normal(fourier.n)
        assert np.allclose(fourier.filter(x, lambda lam: np.ones_like(lam)), x)

    def test_low_pass_keeps_constant(self, fourier):
        x = np.ones(fourier.n)
        assert np.allclose(fourier.filter(x, low_pass(0.5)), x, atol=1e-10)

    def test_low_pass_kills_high_frequency(self, fourier):
        # The highest-frequency eigenvector must be annihilated.
        x = fourier.modes[:, -1]
        cutoff = fourier.frequencies[-1] * 0.5
        assert np.abs(fourier.filter(x, low_pass(cutoff))).max() < 1e-10


class TestFilters:
    def test_low_pass_response(self):
        h = low_pass(1.0)
        assert np.array_equal(h(np.array([0.5, 1.0, 2.0])), [1.0, 1.0, 0.0])

    def test_low_pass_negative_cutoff(self):
        with pytest.raises(ValueError, match="cutoff"):
            low_pass(-1.0)

    def test_heat_kernel_response(self):
        h = heat_kernel(2.0)
        assert h(np.array([0.0]))[0] == pytest.approx(1.0)
        assert h(np.array([1.0]))[0] == pytest.approx(np.exp(-2.0))

    def test_heat_kernel_negative_tau(self):
        with pytest.raises(ValueError, match="tau"):
            heat_kernel(-0.1)


class TestChebyshev:
    def test_matches_exact_heat_kernel(self, grid_small, rng):
        gf = GraphFourier(grid_small)
        x = rng.standard_normal(grid_small.n)
        exact = gf.filter(x, heat_kernel(0.4))
        approx = chebyshev_filter(grid_small, x, heat_kernel(0.4), order=40)
        assert np.linalg.norm(exact - approx) < 1e-6 * np.linalg.norm(exact)

    def test_order_improves_accuracy(self, grid_small, rng):
        gf = GraphFourier(grid_small)
        x = rng.standard_normal(grid_small.n)
        exact = gf.filter(x, heat_kernel(1.0))
        err5 = np.linalg.norm(exact - chebyshev_filter(grid_small, x, heat_kernel(1.0), order=5))
        err40 = np.linalg.norm(exact - chebyshev_filter(grid_small, x, heat_kernel(1.0), order=40))
        assert err40 < err5

    def test_bad_order(self, grid_small, rng):
        with pytest.raises(ValueError, match="order"):
            chebyshev_filter(grid_small, np.ones(grid_small.n),
                             heat_kernel(1.0), order=0)


class TestSmoothness:
    def test_constant_signal_zero(self, grid_small):
        assert smoothness(grid_small, np.ones(grid_small.n)) == pytest.approx(0.0)

    def test_smooth_below_random(self, grid_small, rng):
        gf = GraphFourier(grid_small)
        smooth = gf.modes[:, 1]
        noisy = rng.standard_normal(grid_small.n)
        assert smoothness(grid_small, smooth) < smoothness(grid_small, noisy)

    def test_zero_signal_rejected(self, grid_small):
        with pytest.raises(ValueError, match="nonzero"):
            smoothness(grid_small, np.zeros(grid_small.n))

    def test_sparsifier_is_low_pass(self):
        """Section 3.4: the sparsifier acts as a low-pass graph filter —
        low-frequency eigenvectors survive sparsification nearly intact
        while the highest-frequency mode is badly distorted."""
        from repro.sparsify import sparsify_graph

        pts = generators.gaussian_mixture_points(
            260, dim=3, clusters=2, separation=7.0, seed=3
        )
        g = generators.knn_graph(pts, k=10)
        p = sparsify_graph(g, sigma2=100.0, seed=0).sparsifier
        assert p.num_edges < 0.4 * g.num_edges  # real sparsification
        modes_g = GraphFourier(g).modes
        modes_p = GraphFourier(p).modes
        fiedler_cos = abs(float(modes_g[:, 1] @ modes_p[:, 1]))
        top_cos = abs(float(modes_g[:, -1] @ modes_p[:, -1]))
        assert fiedler_cos > 0.99
        assert top_cos < 0.9
        assert fiedler_cos > top_cos
