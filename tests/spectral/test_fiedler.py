"""Unit tests for the inverse-power-iteration Fiedler solver."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.solvers import DirectSolver
from repro.spectral import (
    dense_generalized_eigs,
    fiedler_vector,
    sign_cut,
)


@pytest.fixture
def rect_grid():
    """Rectangular grid: isolated λ₂, fast inverse iteration."""
    return generators.grid2d(24, 7, seed=0)


class TestConvergence:
    def test_matches_dense_lambda2(self, rect_grid):
        L = rect_grid.laplacian()
        result = fiedler_vector(L, DirectSolver(L.tocsc()), iterations=60,
                                tol=1e-12, seed=1)
        lam2 = dense_generalized_eigs(L, np.eye(rect_grid.n))[0]
        assert result.value == pytest.approx(lam2, rel=1e-7)

    def test_eigen_residual_small(self, rect_grid):
        L = rect_grid.laplacian()
        result = fiedler_vector(L, DirectSolver(L.tocsc()), iterations=60,
                                tol=1e-12, seed=1)
        assert result.residual < 1e-8

    def test_vector_unit_and_mean_free(self, rect_grid):
        L = rect_grid.laplacian()
        result = fiedler_vector(L, DirectSolver(L.tocsc()), seed=2)
        assert abs(np.linalg.norm(result.vector) - 1.0) < 1e-10
        assert abs(result.vector.mean()) < 1e-10

    def test_early_exit_records_iterations(self, rect_grid):
        L = rect_grid.laplacian()
        result = fiedler_vector(L, DirectSolver(L.tocsc()), iterations=100,
                                tol=1e-10, seed=3)
        assert result.iterations < 100

    def test_path_graph_sign_cut_splits_in_half(self):
        """The Fiedler vector of a path is monotone: sign cut = middle cut."""
        g = generators.path_graph(20)
        L = g.laplacian()
        result = fiedler_vector(L, DirectSolver(L.tocsc()), iterations=80,
                                tol=1e-13, seed=4)
        labels = sign_cut(result.vector)
        # One contiguous block of True and one of False.
        flips = int(np.sum(labels[1:] != labels[:-1]))
        assert flips == 1
        assert 8 <= labels.sum() <= 12

    def test_pcg_solver_agrees_with_direct(self, rect_grid):
        from repro.solvers import pcg
        from repro.sparsify import sparsify_graph

        L = rect_grid.laplacian()
        direct = fiedler_vector(L, DirectSolver(L.tocsc()), iterations=40, seed=5)
        precond = DirectSolver(
            sparsify_graph(rect_grid, sigma2=100.0, seed=0)
            .sparsifier.laplacian().tocsc()
        )

        def solve(b):
            return pcg(L, b, precond, tol=1e-8, maxiter=500,
                       project_nullspace=True).x

        iterative = fiedler_vector(L, solve, iterations=40, seed=5)
        assert iterative.value == pytest.approx(direct.value, rel=1e-4)
