"""Unit tests for spectral drawing and alignment metrics."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.spectral import (
    procrustes_alignment_error,
    spectral_coordinates,
    subspace_angles_degrees,
)


class TestSpectralCoordinates:
    def test_shape(self, grid_small):
        coords = spectral_coordinates(grid_small, dim=2)
        assert coords.shape == (grid_small.n, 2)

    def test_columns_are_eigenvectors(self, grid_small):
        coords = spectral_coordinates(grid_small, dim=2)
        L = grid_small.laplacian()
        for j in range(2):
            v = coords[:, j]
            lam = float(v @ (L @ v)) / float(v @ v)
            assert np.linalg.norm(L @ v - lam * v) < 1e-8

    def test_bad_dim(self, grid_small):
        with pytest.raises(ValueError, match="dim"):
            spectral_coordinates(grid_small, dim=0)


class TestProcrustes:
    def test_zero_for_rotated_copy(self, rng):
        X = rng.standard_normal((50, 2))
        theta = 1.1
        Q = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        assert procrustes_alignment_error(X, X @ Q) < 1e-12

    def test_zero_for_reflection(self, rng):
        X = rng.standard_normal((50, 2))
        R = np.diag([1.0, -1.0])
        assert procrustes_alignment_error(X, X @ R) < 1e-12

    def test_positive_for_noise(self, rng):
        X = rng.standard_normal((50, 2))
        Y = X + 0.5 * rng.standard_normal((50, 2))
        assert procrustes_alignment_error(X, Y) > 0.05

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="shapes"):
            procrustes_alignment_error(
                rng.standard_normal((5, 2)), rng.standard_normal((6, 2))
            )


class TestSubspaceAngles:
    def test_zero_for_same_span(self, rng):
        X = rng.standard_normal((40, 2))
        Y = X @ np.array([[2.0, 1.0], [0.0, 3.0]])  # same column span
        assert subspace_angles_degrees(X, Y).max() < 1e-6

    def test_ninety_for_orthogonal(self):
        X = np.eye(4)[:, :1]
        Y = np.eye(4)[:, 1:2]
        assert subspace_angles_degrees(X, Y).max() == pytest.approx(90.0)

    def test_sparsifier_preserves_drawing_subspace(self):
        """The Fig. 1 claim: drawings of G and its sparsifier align."""
        from repro.sparsify import sparsify_graph

        g = generators.fem_mesh_2d(350, seed=6)
        result = sparsify_graph(g, sigma2=30.0, seed=0)
        cg = spectral_coordinates(g, dim=2, seed=0)
        cp = spectral_coordinates(result.sparsifier, dim=2, seed=0)
        assert subspace_angles_degrees(cg, cp).max() < 30.0
