"""Unit tests for the Section 3.6 extreme eigenvalue estimators."""

import numpy as np
import pytest

from repro.graphs import Graph, generators
from repro.solvers import DirectSolver
from repro.spectral import (
    estimate_lambda_max,
    estimate_lambda_min,
    exact_extreme_generalized_eigs,
    generalized_power_iteration,
)
from repro.sparsify import sparsify_graph
from repro.trees import RootedTree, TreeSolver, low_stretch_tree


@pytest.fixture
def pencil(grid_weighted):
    """Graph, sparsifier and exact pencil extremes."""
    result = sparsify_graph(grid_weighted, sigma2=100.0, seed=3)
    lmin, lmax = exact_extreme_generalized_eigs(
        grid_weighted.laplacian(), result.sparsifier.laplacian()
    )
    return grid_weighted, result.sparsifier, lmin, lmax


class TestLambdaMax:
    def test_close_to_exact(self, pencil):
        graph, sparsifier, _, lmax = pencil
        solver = DirectSolver(sparsifier.laplacian().tocsc())
        est = estimate_lambda_max(graph, sparsifier, solver, iterations=10, seed=0)
        assert est == pytest.approx(lmax, rel=0.15)

    def test_underestimates(self, pencil):
        """The Rayleigh quotient of any iterate is at most λmax."""
        graph, sparsifier, _, lmax = pencil
        solver = DirectSolver(sparsifier.laplacian().tocsc())
        for seed in range(4):
            est = estimate_lambda_max(graph, sparsifier, solver, seed=seed)
            assert est <= lmax * (1 + 1e-9)

    def test_more_iterations_monotone_toward_lmax(self, pencil):
        graph, sparsifier, _, lmax = pencil
        solver = DirectSolver(sparsifier.laplacian().tocsc())
        few = estimate_lambda_max(graph, sparsifier, solver, iterations=2, seed=1)
        many = estimate_lambda_max(graph, sparsifier, solver, iterations=25, seed=1)
        assert many >= few - 1e-9
        assert many == pytest.approx(lmax, rel=0.02)

    def test_tree_solver_backend(self, grid_weighted):
        idx = low_stretch_tree(grid_weighted, seed=0)
        sparsifier = grid_weighted.edge_subgraph(idx)
        solver = TreeSolver(RootedTree.from_graph(grid_weighted, idx))
        _, lmax = exact_extreme_generalized_eigs(
            grid_weighted.laplacian(), sparsifier.laplacian()
        )
        est = estimate_lambda_max(grid_weighted, sparsifier, solver,
                                  iterations=15, seed=2)
        assert est == pytest.approx(lmax, rel=0.1)

    def test_invalid_iterations(self, pencil):
        graph, sparsifier, _, _ = pencil
        solver = DirectSolver(sparsifier.laplacian().tocsc())
        with pytest.raises(ValueError, match="iterations"):
            generalized_power_iteration(
                graph.laplacian(), sparsifier.laplacian(), solver, iterations=0
            )

    def test_return_vector(self, pencil):
        graph, sparsifier, _, _ = pencil
        solver = DirectSolver(sparsifier.laplacian().tocsc())
        value, vector = generalized_power_iteration(
            graph.laplacian(), sparsifier.laplacian(), solver,
            iterations=5, seed=0, return_vector=True,
        )
        assert vector.shape == (graph.n,)
        assert abs(np.linalg.norm(vector) - 1.0) < 1e-9


class TestLambdaMin:
    def test_overestimates(self, pencil):
        """Eq. 18 restricts Courant–Fischer, so it upper-bounds λmin."""
        graph, sparsifier, lmin, _ = pencil
        est = estimate_lambda_min(graph, sparsifier)
        assert est >= lmin - 1e-9

    def test_reasonably_close(self, pencil):
        graph, sparsifier, lmin, _ = pencil
        est = estimate_lambda_min(graph, sparsifier)
        assert est <= 1.6 * lmin  # paper reports ~4-11% errors

    def test_exactly_one_when_vertex_keeps_all_edges(self):
        """A vertex with its full neighbourhood inside P forces λmin = 1."""
        g = generators.grid2d(6, 6, seed=0)
        # Sparsifier = everything: degree ratios are all exactly 1.
        assert estimate_lambda_min(g, g) == pytest.approx(1.0)

    def test_size_mismatch_rejected(self, path5, cycle6):
        with pytest.raises(ValueError, match="sizes differ"):
            estimate_lambda_min(path5, cycle6)

    def test_isolated_vertex_rejected(self, path5):
        bad = Graph(5, [0], [1], [1.0])
        with pytest.raises(ValueError, match="isolated"):
            estimate_lambda_min(path5, bad)

    def test_simple_ratio_by_hand(self):
        """Triangle vs one-edge-removed: min degree ratio computed by hand."""
        g = Graph(3, [0, 0, 1], [1, 2, 2], [1.0, 1.0, 1.0])
        p = g.edge_subgraph(np.array([0, 1]))  # drop edge (1,2)
        # Degrees G: [2,2,2]; P: [2,1,1]; ratios [1,2,2] -> min 1.
        assert estimate_lambda_min(g, p) == pytest.approx(1.0)
