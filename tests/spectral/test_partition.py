"""Unit tests for sign-cut partitioning metrics."""

import numpy as np
import pytest

from repro.graphs import Graph, generators
from repro.spectral import (
    balance_ratio,
    conductance,
    cut_weight,
    partition_disagreement,
    sign_cut,
)


class TestSignCut:
    def test_zero_goes_positive(self):
        labels = sign_cut(np.array([-1.0, 0.0, 2.0]))
        assert list(labels) == [False, True, True]


class TestBalance:
    def test_even_split(self):
        assert balance_ratio(np.array([True, True, False, False])) == 1.0

    def test_empty_negative_side_is_inf(self):
        assert balance_ratio(np.array([True, True])) == float("inf")

    def test_ratio(self):
        assert balance_ratio(np.array([True, False, False, False])) == pytest.approx(1 / 3)


class TestCutWeight:
    def test_manual_triangle(self, triangle):
        labels = np.array([True, False, False])
        # Crossing edges: (0,1) w=1 and (0,2) w=2.
        assert cut_weight(triangle, labels) == pytest.approx(3.0)

    def test_no_cut(self, triangle):
        assert cut_weight(triangle, np.ones(3, dtype=bool)) == 0.0

    def test_wrong_length_rejected(self, triangle):
        with pytest.raises(ValueError, match="length"):
            cut_weight(triangle, np.array([True]))


class TestConductance:
    def test_manual_value(self, triangle):
        labels = np.array([True, False, False])
        # vol(V+) = deg(0) = 3, vol(V-) = 3+5 = 8; cut = 3.
        assert conductance(triangle, labels) == pytest.approx(1.0)

    def test_empty_side_is_inf(self, triangle):
        assert conductance(triangle, np.zeros(3, dtype=bool)) == float("inf")

    def test_grid_halves_have_low_conductance(self, grid_small):
        labels = np.arange(grid_small.n) < grid_small.n // 2
        assert conductance(grid_small, labels) < 0.2


class TestDisagreement:
    def test_identical_zero(self):
        a = np.array([True, False, True])
        assert partition_disagreement(a, a) == 0.0

    def test_sign_flip_invariant(self):
        a = np.array([True, False, True, False])
        assert partition_disagreement(a, ~a) == 0.0

    def test_partial(self):
        a = np.array([True, True, True, True])
        b = np.array([True, True, True, False])
        assert partition_disagreement(a, b) == pytest.approx(0.25)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes"):
            partition_disagreement(np.array([True]), np.array([True, False]))
