"""Unit tests for k-means and spectral clustering."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.spectral import kmeans, spectral_clustering


def pairwise_agreement(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of point pairs on which two clusterings agree (Rand index)."""
    same_a = a[:, None] == a[None, :]
    same_b = b[:, None] == b[None, :]
    n = a.size
    total = n * (n - 1) / 2
    agree = (np.triu(same_a == same_b, k=1)).sum()
    return float(agree / total)


class TestKMeans:
    def test_recovers_separated_blobs(self):
        pts = generators.gaussian_mixture_points(
            240, dim=2, clusters=3, separation=20.0, seed=1
        )
        result = kmeans(pts, 3, seed=0)
        sizes = np.bincount(result.labels, minlength=3)
        assert sizes.min() > 40

    def test_deterministic_given_seed(self, rng):
        pts = rng.standard_normal((100, 3))
        a = kmeans(pts, 4, seed=9)
        b = kmeans(pts, 4, seed=9)
        assert np.array_equal(a.labels, b.labels)

    def test_inertia_decreases_with_more_clusters(self, rng):
        pts = rng.standard_normal((150, 2))
        inertia2 = kmeans(pts, 2, seed=0).inertia
        inertia8 = kmeans(pts, 8, seed=0).inertia
        assert inertia8 < inertia2

    def test_k_equals_n(self, rng):
        pts = rng.standard_normal((10, 2))
        result = kmeans(pts, 10, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_k_one(self, rng):
        pts = rng.standard_normal((30, 2))
        result = kmeans(pts, 1, seed=0)
        assert np.allclose(result.centers[0], pts.mean(axis=0))

    def test_bad_k(self, rng):
        with pytest.raises(ValueError, match="k must be"):
            kmeans(rng.standard_normal((5, 2)), 6)

    def test_duplicate_points_handled(self):
        pts = np.zeros((20, 2))
        result = kmeans(pts, 3, seed=0)
        assert result.inertia == pytest.approx(0.0)


class TestSpectralClustering:
    def test_recovers_mixture_clusters(self):
        pts = generators.gaussian_mixture_points(
            300, dim=4, clusters=3, separation=10.0, seed=2
        )
        g = generators.knn_graph(pts, k=10)
        labels = spectral_clustering(g, 3, seed=0)
        # Ground truth from generator assignment is unknown here; check
        # self-consistency instead: clustering twice agrees (Rand > 0.95)
        labels2 = spectral_clustering(g, 3, seed=1)
        assert pairwise_agreement(labels, labels2) > 0.95

    def test_two_cliques_split(self):
        from repro.graphs import Graph, disjoint_union, generators as gen

        a = gen.complete_graph(12)
        b = gen.complete_graph(12)
        g = disjoint_union(a, b).with_edges(
            np.array([0]), np.array([12]), np.array([0.01])
        )
        labels = spectral_clustering(g, 2, seed=0)
        assert len(set(labels[:12])) == 1
        assert len(set(labels[12:])) == 1
        assert labels[0] != labels[12]

    def test_bad_k(self, grid_small):
        with pytest.raises(ValueError, match="k must be"):
            spectral_clustering(grid_small, 1)
