"""Unit tests for generalized eigenvalue utilities."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.spectral import (
    dense_generalized_eigs,
    exact_extreme_generalized_eigs,
    ones_complement_basis,
    smallest_laplacian_eigs,
)
from repro.sparsify import sparsify_graph


class TestBasis:
    def test_orthonormal(self):
        U = ones_complement_basis(17)
        assert np.allclose(U.T @ U, np.eye(16), atol=1e-12)

    def test_orthogonal_to_ones(self):
        U = ones_complement_basis(17)
        assert np.abs(U.T @ np.ones(17)).max() < 1e-12

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="n >= 2"):
            ones_complement_basis(1)


class TestDenseGeneralizedEigs:
    def test_pencil_with_itself_all_ones(self, grid_weighted):
        L = grid_weighted.laplacian()
        vals = dense_generalized_eigs(L, L)
        assert np.allclose(vals, 1.0, atol=1e-8)

    def test_subgraph_pencil_at_least_one(self, grid_weighted):
        result = sparsify_graph(grid_weighted, sigma2=100.0, seed=0)
        vals = dense_generalized_eigs(
            grid_weighted.laplacian(), result.sparsifier.laplacian()
        )
        assert vals.min() > 1.0 - 1e-8

    def test_eigenvectors_satisfy_pencil(self, grid_small):
        result = sparsify_graph(grid_small, sigma2=100.0, seed=1)
        LG = grid_small.laplacian()
        LP = result.sparsifier.laplacian()
        vals, vecs = dense_generalized_eigs(LG, LP, return_vectors=True)
        # Check the extreme pair: L_G u = lambda L_P u.
        for k in (0, len(vals) - 1):
            residual = LG @ vecs[:, k] - vals[k] * (LP @ vecs[:, k])
            assert np.linalg.norm(residual) < 1e-7 * max(vals[k], 1.0)

    def test_count_is_n_minus_one(self, path5):
        vals = dense_generalized_eigs(path5.laplacian(), path5.laplacian())
        assert len(vals) == path5.n - 1

    def test_shape_mismatch_rejected(self, path5, cycle6):
        with pytest.raises(ValueError, match="pencil"):
            dense_generalized_eigs(path5.laplacian(), cycle6.laplacian())

    def test_extremes_helper(self, grid_small):
        result = sparsify_graph(grid_small, sigma2=50.0, seed=2)
        lmin, lmax = exact_extreme_generalized_eigs(
            grid_small.laplacian(), result.sparsifier.laplacian()
        )
        vals = dense_generalized_eigs(
            grid_small.laplacian(), result.sparsifier.laplacian()
        )
        assert lmin == pytest.approx(vals[0])
        assert lmax == pytest.approx(vals[-1])


class TestSmallestLaplacianEigs:
    def test_dense_path_matches_eigh(self, grid_small):
        L = grid_small.laplacian()
        vals, vecs = smallest_laplacian_eigs(L, k=4)
        ref = np.linalg.eigvalsh(L.toarray())[1:5]
        assert np.allclose(vals, ref, atol=1e-10)
        assert vecs.shape == (grid_small.n, 4)

    def test_lobpcg_matches_dense(self):
        g = generators.grid2d(28, 28, seed=1)
        L = g.laplacian()
        vals_iter, _ = smallest_laplacian_eigs(L, k=3, seed=0, dense_threshold=10)
        vals_dense, _ = smallest_laplacian_eigs(L, k=3, dense_threshold=5000)
        assert np.allclose(vals_iter, vals_dense, rtol=1e-4)

    def test_preconditioner_accepted(self):
        from repro.solvers import AMGSolver

        g = generators.grid2d(30, 30, seed=2)
        L = g.laplacian()
        vals, _ = smallest_laplacian_eigs(
            L, k=2, preconditioner=AMGSolver(L), seed=0, dense_threshold=10
        )
        ref, _ = smallest_laplacian_eigs(L, k=2, dense_threshold=5000)
        assert np.allclose(vals, ref, rtol=1e-4)

    def test_eigenvectors_orthogonal_to_ones(self, grid_small):
        _, vecs = smallest_laplacian_eigs(grid_small.laplacian(), k=3)
        assert np.abs(vecs.T @ np.ones(grid_small.n)).max() < 1e-8

    def test_bad_k_rejected(self, path5):
        with pytest.raises(ValueError, match="k must be"):
            smallest_laplacian_eigs(path5.laplacian(), k=4)
