"""Unit tests of the stage-pipeline core (`repro.core`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DensifyStage,
    PipelineContext,
    PipelineProfile,
    PipelineValidationError,
    RescaleStage,
    SparsifyPipeline,
    Stage,
    TreeStage,
)
from repro.graphs import generators
from repro.sparsify import SimilarityAwareSparsifier, sparsify_graph
from repro.stream import DynamicSparsifier


def grid(side=12, seed=0):
    return generators.grid2d(side, side, weights="uniform", seed=seed)


def batch_context(graph, sigma2=80.0, seed=0, **knobs):
    return PipelineContext(graph=graph, rng=seed, sigma2=sigma2, **knobs)


class TestContext:
    def test_sigma2_must_exceed_one(self):
        with pytest.raises(ValueError, match="sigma2 must exceed 1"):
            batch_context(grid(4), sigma2=1.0)

    def test_max_iterations_validated(self):
        with pytest.raises(ValueError, match="max_iterations must be >= 1"):
            batch_context(grid(4), max_iterations=0)

    def test_seed_coerced_to_generator(self):
        ctx = batch_context(grid(4), seed=3)
        assert isinstance(ctx.rng, np.random.Generator)

    def test_has_treats_nan_and_none_as_absent(self):
        ctx = batch_context(grid(4))
        assert ctx.has("graph") and ctx.has("rng") and ctx.has("sigma2")
        assert not ctx.has("tree_indices")
        assert not ctx.has("lambda_max")
        assert not ctx.has("no_such_name")
        ctx.lambda_max = 2.0
        assert ctx.has("lambda_max")

    def test_ensure_state_requires_tree(self):
        ctx = batch_context(grid(4))
        with pytest.raises(ValueError, match="without tree_indices"):
            ctx.ensure_state()

    def test_edge_cap_default_and_override(self):
        g = grid(50)  # 2500 vertices -> 5% = 125
        assert batch_context(g).edge_cap() == 125
        assert batch_context(g, max_edges_per_iteration=7).edge_cap() == 7
        assert batch_context(grid(4)).edge_cap() == 100


class TestValidation:
    def test_densify_without_tree_fails_fast(self):
        pipeline = SparsifyPipeline([DensifyStage()])
        with pytest.raises(PipelineValidationError, match="'densify'"):
            pipeline.run(batch_context(grid(4)))

    def test_wired_composition_validates(self):
        pipeline = SparsifyPipeline([TreeStage(), DensifyStage()])
        pipeline.validate(batch_context(grid(4)))  # no raise

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            SparsifyPipeline([])

    def test_unknown_densify_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown densify mode"):
            DensifyStage(mode="nope")

    def test_unknown_rescale_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown rescale scheme"):
            RescaleStage(scheme="nope")

    def test_missing_names_listed(self):
        with pytest.raises(PipelineValidationError, match="lambda_max"):
            SparsifyPipeline([DensifyStage(mode="drift")]).run(
                batch_context(grid(4))
            )


class TestHooksAndRun:
    def test_hooks_fire_in_order(self):
        calls = []
        pipeline = SparsifyPipeline(
            [TreeStage(), DensifyStage()],
            before_stage=lambda stage, ctx: calls.append(f"before:{stage.name}"),
            after_stage=lambda stage, ctx: calls.append(f"after:{stage.name}"),
        )
        pipeline.run(batch_context(grid(8)))
        assert calls == [
            "before:tree", "after:tree", "before:densify", "after:densify",
        ]

    def test_run_returns_same_context(self):
        ctx = batch_context(grid(8))
        out = SparsifyPipeline([TreeStage(), DensifyStage()]).run(ctx)
        assert out is ctx
        assert ctx.edge_mask is not None
        assert ctx.tree_indices is not None
        assert np.isfinite(ctx.sigma2_estimate)

    def test_stage_names_property(self):
        pipeline = SparsifyPipeline([TreeStage(), DensifyStage()])
        assert pipeline.stage_names == ("tree", "densify")

    def test_base_stage_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Stage().run(batch_context(grid(4)))


class TestProfile:
    def test_record_and_accumulate(self):
        profile = PipelineProfile()
        assert not profile
        profile.record("tree", 0.5, {"edges": 10})
        profile.record("tree", 0.25, {"edges": 5})
        report = profile.reports["tree"]
        assert report.calls == 2
        assert report.seconds == pytest.approx(0.75)
        assert report.counters["edges"] == 15
        assert profile

    def test_merge_and_total(self):
        a, b = PipelineProfile(), PipelineProfile()
        a.record("tree", 1.0, {"edges": 1})
        b.record("tree", 2.0, {"edges": 2})
        b.record("densify", 3.0, None)
        b.record("densify.filter", 0.5, {"candidates": 9})
        a.merge(b)
        assert a.reports["tree"].seconds == pytest.approx(3.0)
        assert a.reports["tree"].counters["edges"] == 3
        # Dotted sub-stage time is contained in the driver's total.
        assert a.total_seconds() == pytest.approx(6.0)

    def test_dict_round_trip(self):
        profile = PipelineProfile()
        profile.record("densify", 1.5, {"added": 4})
        clone = PipelineProfile.from_dict(profile.as_dict())
        assert clone.as_dict() == profile.as_dict()

    def test_table_lists_stages(self):
        g = grid(10)
        result = sparsify_graph(g, sigma2=80.0, seed=0)
        table = result.profile.table()
        for name in ("tree", "densify", "estimate", "embedding", "filter",
                     "similarity", "total"):
            assert name in table

    def test_pipeline_profile_counters(self):
        result = sparsify_graph(grid(10), sigma2=80.0, seed=0)
        reports = result.profile.reports
        assert reports["tree"].counters["edges"] == result.tree_indices.size
        added = reports["densify"].counters["added"]
        assert added == result.sparsifier.num_edges - result.tree_indices.size
        # Sub-stage order is stable for the table display.
        names = list(reports)
        assert names.index("densify") < names.index("densify.estimate")

    def test_sharded_profile_merges_shards(self):
        from repro.graphs.operations import disjoint_union

        g = disjoint_union(grid(8, seed=0), grid(7, seed=1))
        result = sparsify_graph(g, sigma2=80.0, seed=0)
        assert result.profile.reports["tree"].calls == 2
        assert result.profile.reports["densify"].calls == 2


class TestRescaleStage:
    def test_rescale_similarity_scheme(self):
        g = grid(10)
        plain = SimilarityAwareSparsifier(sigma2=80.0, seed=0).sparsify(g)
        scaled = SimilarityAwareSparsifier(
            sigma2=80.0, seed=0, rescale="similarity"
        ).sparsify(g)
        # The mask is untouched; rescaling only reweights the result.
        assert np.array_equal(plain.edge_mask, scaled.edge_mask)
        assert scaled.rescale is not None
        assert scaled.rescale.scale > 0
        assert scaled.rescale.sparsifier.num_edges == plain.sparsifier.num_edges
        assert scaled.rescale.sigma <= scaled.sigma2_estimate + 1e-9
        assert "rescale" in scaled.profile.reports

    def test_rescale_off_tree_scheme(self):
        g = grid(8)
        result = SimilarityAwareSparsifier(
            sigma2=40.0, seed=1, rescale="off_tree"
        ).sparsify(g)
        assert result.rescale is not None
        assert result.rescale.condition_number > 0

    def test_invalid_scheme_on_kernel(self):
        with pytest.raises(ValueError, match="unknown rescale scheme"):
            SimilarityAwareSparsifier(rescale="global")


class TestConsumersShareThePipeline:
    def test_kernel_exposes_its_composition(self):
        kernel = SimilarityAwareSparsifier(sigma2=50.0, rescale="similarity")
        assert kernel.pipeline().stage_names == ("tree", "densify", "rescale")
        assert SimilarityAwareSparsifier().pipeline().stage_names == (
            "tree", "densify",
        )

    def test_dynamic_build_records_profile(self):
        dyn = DynamicSparsifier(grid(10), sigma2=80.0, seed=0)
        assert dyn.profile.reports["tree"].calls == 1
        assert dyn.profile.reports["densify"].calls == 1

    def test_dynamic_drift_repair_accumulates_profile(self):
        from repro.stream import random_event_stream

        g = generators.grid2d(16, 16, weights="uniform", seed=0)
        dyn = DynamicSparsifier(
            g, sigma2=30.0, seed=5, drift_tolerance=1.0, absorb_inserts=False
        )
        events = random_event_stream(g, 300, seed=9, p_insert=0.5, p_delete=0.3)
        dyn.apply_log(events, batch_size=40)
        assert dyn.redensify_count > 0
        # Drift repairs run through the same densify stage.
        assert dyn.profile.reports["densify"].calls == 1 + dyn.redensify_count

    def test_dynamic_rejects_unknown_densify_option(self):
        with pytest.raises(TypeError, match="unexpected densify option"):
            DynamicSparsifier(grid(6), sigma2=80.0, seed=0,
                              densify_options={"bogus": 1})
