"""Golden-parity regression suite for the stage-pipeline refactor.

The unified pipeline (`repro.core`) replaced four hand-rolled copies of
the paper's filter loop.  These tests pin the refactor bit-exact: a
*frozen* copy of the pre-refactor loop (the reference implementations
below, lifted verbatim from the pre-refactor `densify()` and
`DynamicSparsifier._redensify`) must produce **bit-identical** masks,
trees and RNG states to the pipeline reimplementations for fixed seeds
across grid, random (scale-free) and disconnected graphs, covering all
four consumers: batch, shard-parallel, streaming drift repair and the
serving registry build.
"""

from __future__ import annotations

import types

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.operations import disjoint_union
from repro.sparsify import (
    SimilarityAwareSparsifier,
    SparsifierState,
    refine_sparsifier,
    sparsify_graph,
)
from repro.sparsify.edge_embedding import joule_heats
from repro.sparsify.edge_similarity import select_dissimilar
from repro.sparsify.filtering import filter_edges, heat_threshold
from repro.sparsify.parallel import plan_shards
from repro.spectral.extreme import generalized_power_iteration
from repro.stream import DynamicSparsifier, random_event_stream
from repro.trees.lsst import low_stretch_tree
from repro.utils.rng import as_rng, shard_rngs


# ----------------------------------------------------------------------
# Frozen pre-refactor reference implementations (do not "fix" these —
# they define the golden behaviour the pipeline must reproduce).
# ----------------------------------------------------------------------

def legacy_densify(
    graph,
    tree_indices,
    sigma2=100.0,
    t=2,
    num_vectors=None,
    power_iterations=10,
    max_iterations=50,
    max_edges_per_iteration=None,
    similarity_mode="endpoint",
    solver_method="auto",
    seed=None,
    initial_mask=None,
    max_update_rank=64,
    amg_rebuild_every=8,
):
    """The pre-refactor Section-3.7 batch loop, verbatim."""
    rng = as_rng(seed)
    state = SparsifierState(
        graph,
        tree_indices,
        initial_mask=initial_mask,
        solver_method=solver_method,
        max_update_rank=max_update_rank,
        amg_rebuild_every=amg_rebuild_every,
    )
    if max_edges_per_iteration is None:
        max_edges_per_iteration = max(100, int(0.05 * graph.n))
    LG = state.host_laplacian
    converged = False
    for _ in range(max_iterations):
        solver = state.solver()
        lam_max = generalized_power_iteration(
            LG, state.laplacian, solver, iterations=power_iterations, seed=rng
        )
        lam_min = state.lambda_min()
        if lam_max / lam_min <= sigma2:
            converged = True
            break
        off_tree = np.flatnonzero(~state.edge_mask)
        heats = joule_heats(
            graph, solver, off_tree, t=t, num_vectors=num_vectors, seed=rng,
            LG=LG,
        )
        threshold = heat_threshold(sigma2, lam_min, lam_max, t=t)
        decision = filter_edges(heats, threshold)
        added = select_dissimilar(
            graph, off_tree[decision.passing],
            max_edges=max_edges_per_iteration, mode=similarity_mode,
        )
        state.add_edges(added)
        if added.size == 0:
            break
    return state.edge_mask, converged


def legacy_sparsify(graph, sigma2, seed, tree_method="akpw", **knobs):
    """The pre-refactor serial kernel: LSST backbone + batch loop."""
    rng = as_rng(seed)
    tree = low_stretch_tree(graph, method=tree_method, seed=rng)
    mask, converged = legacy_densify(graph, tree, sigma2=sigma2, seed=rng, **knobs)
    return mask, tree, converged


def legacy_redensify(self, lam_max):
    """The pre-refactor streaming tier-3 drift repair, verbatim."""
    opts = self._densify_options
    t = opts.get("t", 2)
    num_vectors = opts.get("num_vectors")
    similarity_mode = opts.get("similarity_mode", "endpoint")
    max_iterations = opts.get("max_iterations", 50)
    cap = opts.get("max_edges_per_iteration")
    if cap is None:
        cap = max(100, int(0.05 * self.graph.n))
    g = self.graph
    LG = g.laplacian()
    added_total = 0
    estimate = lam_max / self._lambda_min()
    for _ in range(max_iterations):
        if estimate <= self.sigma2:
            break
        solver = self._ensure_solver()
        off_tree = np.flatnonzero(~self.edge_mask)
        if off_tree.size == 0:
            break
        heats = joule_heats(
            g, solver, off_tree, t=t, num_vectors=num_vectors,
            seed=self._rng, LG=LG,
        )
        lam_min = self._lambda_min()
        threshold = heat_threshold(self.sigma2, lam_min, lam_max, t=t)
        decision = filter_edges(heats, threshold)
        added = select_dissimilar(
            g, off_tree[decision.passing], max_edges=cap, mode=similarity_mode,
        )
        if added.size == 0:
            break
        self.edge_mask[added] = True
        au, av, aw = g.u[added], g.v[added], g.w[added]
        np.add.at(self._deg_p, au, aw)
        np.add.at(self._deg_p, av, aw)
        if self._solver is not None and not self._solver.update(au, av, aw):
            self._solver = None
        added_total += int(added.size)
        lam_max = generalized_power_iteration(
            LG,
            self.sparsifier().laplacian(),
            self._ensure_solver(),
            iterations=self.power_iterations,
            seed=self._rng,
        )
        estimate = lam_max / self._lambda_min()
    return estimate, added_total


# ----------------------------------------------------------------------
# Batch kernel parity
# ----------------------------------------------------------------------

GRAPHS = {
    "grid": lambda: generators.grid2d(20, 20, weights="uniform", seed=3),
    "random": lambda: generators.barabasi_albert(250, 4, seed=1),
    "circuit": lambda: generators.circuit_grid(14, 14, seed=2),
}

#: Every selectable kernel backend must reproduce the frozen legacy
#: loop bit-exactly ("numba"/"auto" resolve to "vectorized" where numba
#: is absent — the golden contract covers the resolution too).
BACKENDS = ("reference", "vectorized", "numba", "auto")


class TestBatchParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_mask_and_tree_bit_identical(self, name, seed, backend):
        g = GRAPHS[name]()
        ref_mask, ref_tree, ref_conv = legacy_sparsify(g, sigma2=60.0, seed=seed)
        result = sparsify_graph(
            g, sigma2=60.0, seed=seed, kernel_backend=backend
        )
        assert np.array_equal(result.edge_mask, ref_mask)
        assert np.array_equal(result.tree_indices, ref_tree)
        assert result.converged == ref_conv

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rng_stream_identical_after_run(self, backend):
        """The pipeline consumes the RNG in exactly the legacy order."""
        g = GRAPHS["grid"]()
        rng_legacy = as_rng(11)
        tree = low_stretch_tree(g, method="akpw", seed=rng_legacy)
        legacy_densify(g, tree, sigma2=60.0, seed=rng_legacy)
        rng_pipeline = as_rng(11)
        SimilarityAwareSparsifier(
            sigma2=60.0, seed=rng_pipeline, kernel_backend=backend
        ).sparsify(g)
        assert (
            rng_legacy.bit_generator.state == rng_pipeline.bit_generator.state
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_nondefault_knobs_parity(self, backend):
        g = GRAPHS["grid"]()
        knobs = dict(
            t=3, num_vectors=6, power_iterations=6, max_iterations=9,
            max_edges_per_iteration=37, similarity_mode="neighborhood",
        )
        ref_mask, ref_tree, _ = legacy_sparsify(g, sigma2=40.0, seed=5, **knobs)
        result = sparsify_graph(
            g, sigma2=40.0, seed=5, kernel_backend=backend, **knobs
        )
        assert np.array_equal(result.edge_mask, ref_mask)
        assert np.array_equal(result.tree_indices, ref_tree)

    def test_refine_parity(self):
        g = GRAPHS["grid"]()
        coarse = sparsify_graph(g, sigma2=400.0, seed=2)
        fine = refine_sparsifier(coarse, sigma2=40.0, seed=6)
        ref_mask, _ = legacy_densify(
            g, coarse.tree_indices, sigma2=40.0, seed=6,
            initial_mask=coarse.edge_mask,
        )
        assert np.array_equal(fine.edge_mask, ref_mask)


# ----------------------------------------------------------------------
# Shard-parallel parity (disconnected inputs)
# ----------------------------------------------------------------------

class TestShardParity:
    def test_disconnected_union_bit_identical(self):
        g = disjoint_union(
            generators.grid2d(12, 12, weights="uniform", seed=0),
            generators.grid2d(9, 9, weights="uniform", seed=1),
        )
        result = sparsify_graph(g, sigma2=60.0, seed=4)

        plan = plan_shards(g)
        rngs = shard_rngs(4, len(plan.shards))
        expected = np.zeros(g.num_edges, dtype=bool)
        tree_parts = []
        for shard in plan.shards:
            rng = rngs[shard.index]
            tree = low_stretch_tree(shard.graph, method="akpw", seed=rng)
            mask, _ = legacy_densify(shard.graph, tree, sigma2=60.0, seed=rng)
            host = g.edge_indices(
                shard.vertices[shard.graph.u], shard.vertices[shard.graph.v]
            )
            expected[host[mask]] = True
            tree_parts.append(host[tree])
        assert np.array_equal(result.edge_mask, expected)
        assert np.array_equal(
            result.tree_indices, np.sort(np.concatenate(tree_parts))
        )


# ----------------------------------------------------------------------
# Streaming tier-3 drift repair parity
# ----------------------------------------------------------------------

class TestStreamParity:
    def test_drift_repair_bit_identical(self):
        g = generators.grid2d(16, 16, weights="uniform", seed=0)
        events = random_event_stream(g, 300, seed=9, p_insert=0.5, p_delete=0.3)

        pipe = DynamicSparsifier(
            g, sigma2=30.0, seed=5, drift_tolerance=1.0, absorb_inserts=False
        )
        ref = DynamicSparsifier(
            g, sigma2=30.0, seed=5, drift_tolerance=1.0, absorb_inserts=False
        )
        ref._redensify = types.MethodType(legacy_redensify, ref)

        pipe.apply_log(events, batch_size=40)
        ref.apply_log(events, batch_size=40)

        assert ref.redensify_count > 0, "scenario must exercise tier-3 repair"
        assert pipe.redensify_count == ref.redensify_count
        assert np.array_equal(pipe.edge_mask, ref.edge_mask)
        assert np.array_equal(pipe.tree_indices, ref.tree_indices)
        assert pipe.last_estimate == ref.last_estimate
        assert (
            pipe._rng.bit_generator.state == ref._rng.bit_generator.state
        )


# ----------------------------------------------------------------------
# Serving registry build parity
# ----------------------------------------------------------------------

class TestServeParity:
    def test_registry_build_bit_identical(self, tmp_path):
        from repro.serve import SparsifierRegistry

        g = generators.grid2d(13, 13, weights="uniform", seed=2)
        registry = SparsifierRegistry(tmp_path, max_resident=2)
        key = registry.register(g, sigma2=60.0, seed=8)
        dyn = registry.get(key).dynamic

        ref_mask, ref_tree, _ = legacy_sparsify(g, sigma2=60.0, seed=8)
        assert np.array_equal(dyn.edge_mask, ref_mask)
        assert np.array_equal(dyn.tree_indices, ref_tree)
