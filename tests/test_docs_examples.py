"""Execute the code examples embedded in README.md and docs/*.md.

Documentation examples rot silently unless they run.  This module
extracts every fenced ``python`` block from the Markdown documentation
and executes it:

- blocks written as plain scripts are ``exec``-ed, cumulatively per
  file (later blocks may use names defined by earlier ones);
- blocks written in doctest style (``>>>``) run under
  :mod:`doctest` with output checking.

Lines whose expected output is elided in the docs are conventionally
prefixed with ``# ...`` or shown as comments; plain-script blocks only
fail on exceptions, which is exactly the "does the example still run"
contract.  Shell (```bash```) blocks are out of scope.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = sorted(
    [ROOT / "README.md", *(ROOT / "docs").glob("*.md")],
    key=lambda p: p.name,
)
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks(path: Path) -> list[str]:
    return _FENCE.findall(path.read_text(encoding="utf-8"))


CASES = [
    pytest.param(path, i, id=f"{path.name}-block{i}")
    for path in DOC_FILES
    for i in range(len(_python_blocks(path)))
]


def test_documentation_has_runnable_examples():
    """The extraction must find the real examples, not an empty set."""
    total = sum(len(_python_blocks(path)) for path in DOC_FILES)
    assert total >= 2
    assert any(_python_blocks(ROOT / "README.md"))


# Cumulative per-file namespaces so multi-block examples compose.
_NAMESPACES: dict[Path, dict] = {}


@pytest.mark.parametrize("path,index", CASES)
def test_documentation_example_runs(path, index):
    block = _python_blocks(path)[index]
    namespace = _NAMESPACES.setdefault(path, {"__name__": "__docs__"})
    if ">>>" in block:
        parser = doctest.DocTestParser()
        test = parser.get_doctest(
            block, namespace, f"{path.name}[{index}]", str(path), 0
        )
        runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
        runner.run(test)
        assert runner.failures == 0, (
            f"doctest block {index} of {path.name} failed"
        )
    else:
        exec(compile(block, f"{path.name}[{index}]", "exec"), namespace)
