"""Package-level tests: lazy exports, version, run_all registry."""

import importlib

import pytest

import repro


class TestPackage:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_lazy_exports_resolve(self):
        assert callable(repro.sparsify_graph)
        assert repro.SparsifyResult is not None
        assert repro.SimilarityAwareSparsifier is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist

    def test_graph_exported_eagerly(self):
        from repro import Graph

        assert Graph(2, [0], [1], [1.0]).num_edges == 1


class TestRunAllRegistry:
    def test_all_experiments_importable(self):
        from repro.experiments.run_all import EXPERIMENTS

        assert len(EXPERIMENTS) == 7
        for name in EXPERIMENTS:
            module = importlib.import_module(name)
            assert hasattr(module, "main")
            assert hasattr(module, "run")

    def test_every_experiment_has_headers(self):
        from repro.experiments.run_all import EXPERIMENTS

        for name in EXPERIMENTS:
            module = importlib.import_module(name)
            assert hasattr(module, "HEADERS")
