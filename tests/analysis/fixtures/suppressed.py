"""Suppression fixture: violations silenced per line, one left live."""

import numpy as np


def seeded_for_tests():
    """Two suppressed violations and one live one."""
    np.random.seed(7)   # repro-lint: disable=R101
    np.random.rand(3)   # repro-lint: disable=all
    return np.random.rand(2)
