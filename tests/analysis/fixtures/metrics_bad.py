"""R502 true-positive fixture: metric declarations breaking conventions."""

from repro.obs import get_metrics

metrics = get_metrics()


def non_literal_name(suffix):
    """R502: a computed metric name cannot be grepped or alerted on."""
    get_metrics().counter("repro_" + suffix + "_total").inc()


def missing_prefix():
    """R502: outside the project's Prometheus namespace."""
    get_metrics().gauge("drift_ratio").set(1.0)


def counter_without_total():
    """R502: counter missing the ``_total`` convention suffix."""
    metrics.counter("repro_cache_hits").inc()


def computed_labelnames(names):
    """R502: non-literal labelnames risk unbounded cardinality."""
    metrics.histogram("repro_request_seconds", labelnames=names).observe(0.1)


def bad_case_via_alias():
    """R502: upper case breaks the lower_snake_case requirement."""
    metrics.gauge("repro_DriftRatio").set(2.0)
