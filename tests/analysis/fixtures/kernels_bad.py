"""R205 true-positive fixture: unresolvable ``ctx.kernel`` dispatches.

Parsed by the linter, never imported — the undefined ``Stage`` name
only needs to exist at runtime.
"""


class MistypedStage(Stage):                       # noqa: F821
    """Dispatches to a kernel name the registry does not know."""

    name = "mistyped"
    requires = ("graph",)
    provides = ("tree_indices",)

    def run(self, ctx):
        """R205: 'lssst' is not a registered kernel."""
        return ctx.kernel("lssst")                # R205: unknown kernel


class DynamicStage(Stage):                        # noqa: F821
    """Computes the kernel name at run time."""

    name = "dynamic"
    requires = ("graph",)
    provides = ("tree_indices",)

    def run(self, ctx):
        """R205: the dispatch target is not a string literal."""
        which = "ls" + "st"
        return ctx.kernel(which)                  # R205: non-literal name
