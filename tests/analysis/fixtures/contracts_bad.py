"""R2 true-positive fixture: contract drift and a mis-ordered pipeline.

Parsed by the linter, never imported — the undefined ``Stage`` /
``SparsifyPipeline`` names only need to exist at runtime.
"""


class LeakyStage(Stage):                          # noqa: F821
    """Reads and writes context names it never declares."""

    name = "leaky"
    requires = ("state", "edge_mask")
    provides = ("threshold",)

    def run(self, ctx):
        """R201 (undeclared read), R202 (undeclared write), R203 (dead)."""
        heat = ctx.heats                          # R201: undeclared read
        ctx.candidates = heat * 2                 # R202: undeclared write
        ctx.threshold = 0.5
        return {"n": int(ctx.state.num_edges)}
        # edge_mask declared required but never read -> R203


class ProducerStage(Stage):                       # noqa: F821
    """Provides the heats ConsumerStage needs."""

    name = "producer"
    requires = ("state",)
    provides = ("heats",)

    def run(self, ctx):
        """Write the declared output."""
        ctx.heats = ctx.state.heats()
        return {}


class ConsumerStage(Stage):                       # noqa: F821
    """Thresholds the heats; its own contract is clean."""

    name = "consumer"
    requires = ("heats",)
    provides = ("threshold",)

    def run(self, ctx):
        """Declared read, declared write."""
        ctx.threshold = max(ctx.heats)
        return {}


def build():
    """R204: the consumer runs before the producer of its input."""
    return SparsifyPipeline([ConsumerStage(), ProducerStage()])  # noqa: F821
