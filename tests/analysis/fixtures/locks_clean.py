"""R3 clean fixture: every mutation under the lock or in ``*_locked``."""

import threading


class GuardedStore(object):
    """Same shape as the bad fixture, with the discipline applied."""

    def __init__(self):
        """Create the lock and the shared mappings."""
        self.lock = threading.RLock()
        self.items = {}
        self.count = 0

    def put(self, key, value):
        """Mutations inside ``with self.lock:`` pass."""
        with self.lock:
            self.items[key] = value
            self.count += 1

    def get(self, key):
        """Unguarded reads are not flagged."""
        return self.items.get(key)

    def _drain_locked(self):
        """``*_locked`` helpers assume the caller holds the lock."""
        self.items.clear()
