"""R1 true-positive fixture: global RNG state and set iteration."""

import random

import numpy as np
from numpy.random import default_rng, shuffle


def draw_edges(count):
    """Every statement here violates a determinism rule."""
    np.random.seed(0)                       # R101: legacy global seed
    weights = np.random.rand(count)         # R101: legacy global draw
    jitter = random.random()                # R101: stdlib global stream
    rng = default_rng()                     # R101: argless default_rng
    shuffle(weights)                        # R101: direct-imported global op
    chosen = {1, 2, 3}
    total = 0
    for edge in chosen:                     # R102: set iteration
        total += edge
    doubled = [e * 2 for e in set(range(count))]   # R102: set comprehension
    return weights, jitter, rng, total, doubled
