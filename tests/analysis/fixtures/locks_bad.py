"""R3 true-positive fixture: shared-state mutation outside the lock."""

import threading


class LeakyStore(object):
    """Holds a lock but mutates shared state without taking it."""

    def __init__(self):
        """Create the lock and the shared mappings."""
        self.lock = threading.RLock()
        self.items = {}
        self.count = 0

    def put(self, key, value):
        """R301 twice: dict store and counter bump, both unguarded."""
        self.items[key] = value
        self.count += 1

    def drain(self):
        """R301: in-place mutator call outside the lock."""
        self.items.clear()
