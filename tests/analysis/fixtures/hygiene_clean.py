"""R4 clean fixture: full numpydoc contracts, safe defaults, typed except."""


def documented(values=None, mapping=None):
    """Sum the values plus the sorted mapping keys.

    Parameters
    ----------
    values:
        Optional list of numbers.
    mapping:
        Optional mapping whose keys are summed.

    Returns
    -------
    int
        The combined total.
    """
    values = values if values is not None else []
    mapping = mapping if mapping is not None else {}
    try:
        return sum(values) + sum(sorted(mapping))
    except TypeError:
        return 0


class Widget(object):
    """A fully documented widget."""

    def poke(self, times) -> int:
        """Poke the widget a number of times.

        Parameters
        ----------
        times:
            How many pokes; must be non-negative.

        Returns
        -------
        int
            The number of pokes performed.

        Raises
        ------
        ValueError
            If ``times`` is negative.
        """
        if times < 0:
            raise ValueError("negative")
        return times

    def _internal(self):
        return None
