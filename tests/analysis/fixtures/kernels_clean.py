"""Kernel-dispatch clean fixture: literal names, contracts match.

Each stage's ``requires``/``provides`` mirror the dispatched kernel's
declared dataflow (``KERNEL_DISPATCH_EFFECTS``), so the contract rules
see the delegated reads/writes and stay silent.
"""


class TreeViaKernelStage(Stage):                  # noqa: F821
    """Builds the backbone through the kernel registry."""

    name = "tree_via_kernel"
    requires = ()
    provides = ("tree_indices",)

    def run(self, ctx):
        """Dispatch resolves to the 'lsst' kernel's reads/writes."""
        return ctx.kernel("lsst")


class FilterViaKernelStage(Stage):                # noqa: F821
    """Thresholds off-tree heats through the kernel registry."""

    name = "filter_via_kernel"
    requires = ("state", "off_tree", "heats", "lambda_max")
    provides = ("threshold", "candidates", "lambda_min")

    def run(self, ctx):
        """Dispatch resolves to the 'filtering' kernel's dataflow."""
        return ctx.kernel("filtering")


def build():
    """Tree before filter: wirable left to right."""
    return SparsifyPipeline(                      # noqa: F821
        [TreeViaKernelStage(), FilterViaKernelStage()]
    )
