"""R5 true-positive fixture: spans driven by hand instead of ``with``."""


def manual_enter_exit(tracer):
    """R501: span created, entered and exited manually."""
    span = tracer.span("stage")
    span.__enter__()
    try:
        work()
    finally:
        span.__exit__(None, None, None)
    return span.elapsed


def deferred_with(tracer):
    """R501: the call is not *directly* a with-item (aliased first)."""
    span = tracer.span("stage")
    with span:
        work()


def nested_in_expression(tracer, spans):
    """R501: span call buried in an expression, never a with-item."""
    spans.append(tracer.span("stage"))


def work():
    """Placeholder workload."""
