"""R5 clean fixture: every span call is a direct ``with``-item."""


def traced(tracer):
    """Spans scoped by ``with`` — the interval always records."""
    with tracer.span("outer", category="stage") as outer:
        with tracer.span("inner", category="kernel"):
            work()
        outer.annotate(done=True)
    return outer.elapsed


def multi_item(tracer, lock):
    """Span as one item of a multi-item ``with``."""
    with lock, tracer.span("guarded"):
        work()


def non_span_calls(tracer):
    """Other attribute calls named differently are not the rule's
    business."""
    tracer.clear()
    return tracer.records(category="stage")


def work():
    """Placeholder workload."""
