"""R502 clean fixture: conforming declarations and out-of-scope calls."""

from repro.obs import enable_metrics, get_metrics, get_tracer

tracer, metrics = get_tracer(), get_metrics()


def conforming_calls():
    """Literal names in the project namespace, counters end ``_total``."""
    get_metrics().counter(
        "repro_cache_hits_total", "Cache hits.", labelnames=("tier",)
    ).inc(tier="memory")
    metrics.gauge("repro_stream_drift_ratio").set(1.0)
    enable_metrics().histogram(
        "repro_request_seconds", labelnames=["endpoint"]
    ).observe(0.1, endpoint="/stats")


def not_a_registry(database, name):
    """Same method names on unrelated receivers are not the rule's
    business."""
    database.counter(name).inc()
    database.gauge(name + "_latest").set(0)
