"""R1 clean fixture: seeded generators and ordered iteration."""

from numpy.random import PCG64, Generator, default_rng


def draw_edges(count, seed=0):
    """Deterministic twin of the bad fixture."""
    rng = default_rng(seed)                 # seeded: allowed
    weights = rng.random(count)             # instance draw: allowed
    local = Generator(PCG64(seed))          # explicit bit generator: allowed
    chosen = {1, 2, 3}
    total = 0
    for edge in sorted(chosen):             # ordered: allowed
        total += edge
    doubled = [e * 2 for e in sorted(set(range(count)))]
    return weights, local, total, doubled
