"""R4 true-positive fixture: bare except, mutable default, bad docs."""


def undocumented(x):                              # R403: no docstring
    return x + 1


def sloppy(values=[], mapping={}):                # R402 twice
    """Summary without terminal punctuation"""
    try:                                          # R403: no Parameters section
        return values + sorted(mapping)
    except:                                       # R401: bare except
        return None


class Widget(object):
    """A documented class with an undocumented public method."""

    def poke(self, times) -> int:                 # R403: missing everything
        if times < 0:
            raise ValueError("negative")
        return times
