"""R2 clean fixture: declarations match dataflow, pipeline well-ordered."""


class SourceStage(Stage):                         # noqa: F821
    """Produces heats from the mounted state."""

    name = "source"
    requires = ("state",)
    provides = ("heats",)

    def run(self, ctx):
        """Read what is required, write what is provided."""
        ctx.heats = ctx.state.heats()
        return {}


class SinkStage(Stage):                           # noqa: F821
    """Thresholds the heats into candidates."""

    name = "sink"
    requires = ("heats",)
    provides = ("threshold", "candidates")

    def run(self, ctx):
        """Both writes are declared; the read is required."""
        ctx.threshold = 0.5
        ctx.candidates = [h for h in ctx.heats if h > ctx.threshold]
        return {"kept": len(ctx.candidates)}


def build():
    """Producer before consumer: wirable left to right."""
    return SparsifyPipeline([SourceStage(), SinkStage()])  # noqa: F821
