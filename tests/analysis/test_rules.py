"""Per-family rule tests: one true-positive and one clean fixture each.

The fixture snippets live in ``tests/analysis/fixtures/`` and are only
ever *parsed* — the stage fixtures reference undefined ``Stage`` /
``SparsifyPipeline`` names that never need to resolve.  Path-scoped
rules (R102 order-sensitivity, R403 docstring audit) are pointed at the
fixture directory through a tailored :class:`LintConfig`.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import LintConfig, lint_files

FIXTURES = Path(__file__).parent / "fixtures"

#: Config that treats the fixture dir as order-sensitive and audited.
FIXTURE_CONFIG = LintConfig(
    order_sensitive=("fixtures/",),
    docstring_packages=("fixtures/",),
)


def _rules(path: Path, config: LintConfig = FIXTURE_CONFIG):
    result = lint_files([path], config)
    return [f.rule for f in result.findings], result


def test_determinism_bad_fixture_fires():
    rules, result = _rules(FIXTURES / "det_bad.py")
    assert rules.count("R101") == 5
    assert rules.count("R102") == 2
    for finding in result.findings:
        assert finding.line > 0
        assert str(FIXTURES / "det_bad.py") in finding.path


def test_determinism_clean_fixture_passes():
    rules, _ = _rules(FIXTURES / "det_clean.py")
    assert "R101" not in rules
    assert "R102" not in rules


def test_contracts_bad_fixture_fires():
    rules, result = _rules(FIXTURES / "contracts_bad.py")
    assert "R201" in rules  # undeclared ctx.heats read in LeakyStage
    assert "R202" in rules  # undeclared ctx.candidates write
    assert "R203" in rules  # dead requires=edge_mask
    assert "R204" in rules  # consumer ordered before producer
    by_rule = {f.rule: f for f in result.findings}
    assert by_rule["R201"].symbol == "LeakyStage"
    assert "heats" in by_rule["R201"].message
    assert by_rule["R202"].symbol == "LeakyStage"
    assert "candidates" in by_rule["R202"].message
    assert by_rule["R204"].symbol == "ConsumerStage"


def test_contracts_clean_fixture_passes():
    rules, _ = _rules(FIXTURES / "contracts_clean.py")
    assert not {"R201", "R202", "R203", "R204"} & set(rules)


def test_kernels_bad_fixture_fires():
    rules, result = _rules(FIXTURES / "kernels_bad.py")
    assert rules.count("R205") == 2
    r205 = [f for f in result.findings if f.rule == "R205"]
    by_symbol = {f.symbol: f for f in r205}
    assert "unknown kernel" in by_symbol["MistypedStage"].message
    assert "lssst" in by_symbol["MistypedStage"].message
    assert "non-literal" in by_symbol["DynamicStage"].message
    for finding in r205:
        assert finding.line > 0


def test_kernels_clean_fixture_passes():
    rules, _ = _rules(FIXTURES / "kernels_clean.py")
    assert not {"R201", "R202", "R203", "R204", "R205"} & set(rules)


def test_kernel_dispatch_effects_mirror_registry():
    """The lint table must stay bit-for-bit equal to the live registry."""
    from repro.analysis.framework import KERNEL_DISPATCH_EFFECTS
    from repro.kernels import KERNELS

    assert set(KERNEL_DISPATCH_EFFECTS) == set(KERNELS)
    for name, kernel in KERNELS.items():
        reads, writes = KERNEL_DISPATCH_EFFECTS[name]
        assert reads == kernel.reads, name
        assert writes == kernel.writes, name


def test_locks_bad_fixture_fires():
    rules, result = _rules(FIXTURES / "locks_bad.py")
    assert rules.count("R301") == 3  # dict store, counter bump, .clear()
    symbols = {f.symbol for f in result.findings if f.rule == "R301"}
    assert symbols == {"LeakyStore.put", "LeakyStore.drain"}


def test_locks_clean_fixture_passes():
    rules, _ = _rules(FIXTURES / "locks_clean.py")
    assert "R301" not in rules


def test_hygiene_bad_fixture_fires():
    rules, result = _rules(FIXTURES / "hygiene_bad.py")
    assert "R401" in rules  # bare except
    assert rules.count("R402") == 2  # two mutable defaults
    r403 = [f for f in result.findings if f.rule == "R403"]
    symbols = {f.symbol for f in r403}
    assert {"undocumented", "sloppy", "Widget.poke"} <= symbols


def test_hygiene_clean_fixture_passes():
    rules, _ = _rules(FIXTURES / "hygiene_clean.py")
    assert not {"R401", "R402", "R403"} & set(rules)


def test_rule_subset_filter():
    rules, _ = _rules(
        FIXTURES / "det_bad.py",
        LintConfig(order_sensitive=("fixtures/",), rules=("R102",)),
    )
    assert set(rules) == {"R102"}


def test_observability_bad_fixture_fires():
    rules, result = _rules(FIXTURES / "obs_bad.py")
    assert rules.count("R501") == 3  # manual enter/exit, alias, expression
    for finding in result.findings:
        if finding.rule == "R501":
            assert "with" in finding.message
            assert finding.line > 0


def test_observability_clean_fixture_passes():
    rules, _ = _rules(FIXTURES / "obs_clean.py")
    assert "R501" not in rules


def test_metric_name_bad_fixture_fires():
    rules, result = _rules(FIXTURES / "metrics_bad.py")
    # non-literal name, missing prefix, counter sans _total, computed
    # labelnames, bad case via alias
    assert rules.count("R502") == 5
    messages = [f.message for f in result.findings if f.rule == "R502"]
    assert any("string literal" in m for m in messages)
    assert any("repro_[a-z]" in m for m in messages)
    assert any("_total" in m for m in messages)
    assert any("labelnames" in m for m in messages)


def test_metric_name_clean_fixture_passes():
    rules, _ = _rules(FIXTURES / "metrics_clean.py")
    assert "R502" not in rules
