"""CLI exit-code contract of ``repro lint``.

``0`` clean, ``1`` findings, ``3`` missing target, ``4`` unparsable
input — matching the failure-class partition of the other subcommands.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import (
    EXIT_INVALID_DATA,
    EXIT_LINT_FINDINGS,
    EXIT_MISSING_INPUT,
    main,
)

FIXTURES = Path(__file__).parent / "fixtures"


def test_lint_findings_exit_one(capsys):
    code = main(["lint", str(FIXTURES / "det_bad.py")])
    assert code == EXIT_LINT_FINDINGS == 1
    out = capsys.readouterr().out
    assert "R101" in out
    assert "det_bad.py:" in out


def test_lint_clean_exits_zero(capsys):
    code = main(["lint", str(FIXTURES / "hygiene_clean.py")])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out


def test_lint_missing_target_exits_three(capsys):
    code = main(["lint", str(FIXTURES / "no_such_dir")])
    assert code == EXIT_MISSING_INPUT == 3
    assert "not found" in capsys.readouterr().err


def test_lint_unparsable_input_exits_four(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n", encoding="utf-8")
    code = main(["lint", str(broken)])
    assert code == EXIT_INVALID_DATA == 4
    assert "invalid input" in capsys.readouterr().err


def test_lint_json_format(capsys):
    code = main(["lint", "--format", "json", str(FIXTURES / "det_bad.py")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert any(f["rule"] == "R101" for f in payload["findings"])


def test_lint_rule_filter(capsys):
    code = main(["lint", "--rules", "R401",
                 str(FIXTURES / "det_bad.py")])
    assert code == 0  # det_bad has no bare except
    assert "0 findings" in capsys.readouterr().out
