"""Framework-level tests: suppressions, reporters, and the repo gate.

The last two tests are the teeth of the CI ``static-analysis`` job run
locally: the shipped ``src/`` and ``benchmarks/`` trees must lint clean
under the default config, with zero suppression comments in the
``core`` and ``serve`` packages.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.analysis import (
    CONTEXT_FLOWING,
    CONTEXT_KNOBS,
    RULES,
    Finding,
    LintConfig,
    findings_from_json,
    lint_files,
    lint_paths,
    render_json,
    render_text,
)
from repro.core.context import PipelineContext

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]


def test_registry_covers_all_families():
    lint_files([])  # rule modules register on the driver's deferred import
    families = {rule_id[:2] for rule_id in RULES}
    assert families == {"R1", "R2", "R3", "R4", "R5"}


def test_suppression_comments_silence_findings():
    result = lint_files([FIXTURES / "suppressed.py"])
    assert result.suppressed == 2  # disable=R101 and disable=all
    assert [f.rule for f in result.findings] == ["R101"]  # the live one


def test_text_reporter_format():
    result = lint_files([FIXTURES / "suppressed.py"])
    text = render_text(result)
    finding = result.findings[0]
    assert f"{finding.path}:{finding.line}:{finding.col}: R101" in text
    assert "1 finding" in text
    assert "(2 suppressed)" in text


def test_json_reporter_round_trip():
    result = lint_files(
        [FIXTURES / "det_bad.py"],
        LintConfig(order_sensitive=("fixtures/",)),
    )
    document = render_json(result)
    payload = json.loads(document)
    assert payload["version"] == 1
    assert payload["files"] == 1
    assert payload["suppressed"] == 0
    assert len(payload["findings"]) == len(result.findings)
    restored = findings_from_json(document)
    assert restored == result.findings


def test_json_reporter_rejects_malformed_documents():
    with pytest.raises(ValueError):
        findings_from_json("not json at all {")
    with pytest.raises(ValueError):
        findings_from_json('{"version": 99, "findings": []}')
    with pytest.raises(ValueError):
        findings_from_json('{"version": 1, "findings": [{"path": "x"}]}')


def test_finding_ordering_and_format():
    a = Finding("a.py", 3, 0, "R101", "m")
    b = Finding("a.py", 10, 0, "R102", "m")
    assert sorted([b, a]) == [a, b]
    assert a.format() == "a.py:3:0: R101 m"


def test_missing_path_raises_file_not_found():
    with pytest.raises(FileNotFoundError):
        lint_paths([FIXTURES / "does_not_exist"])


def test_syntax_error_raises_value_error(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n", encoding="utf-8")
    with pytest.raises(ValueError, match="cannot parse"):
        lint_paths([broken])


def test_context_partition_matches_dataclass():
    """KNOBS/FLOWING must stay in sync with PipelineContext's fields."""
    fields = {f.name for f in dataclasses.fields(PipelineContext)}
    assert CONTEXT_KNOBS | CONTEXT_FLOWING == fields
    assert not CONTEXT_KNOBS & CONTEXT_FLOWING


def test_repo_lints_clean_with_default_config():
    """The CI gate, run in-process: zero findings over src+benchmarks."""
    result = lint_paths([REPO / "src", REPO / "benchmarks"])
    formatted = "\n".join(f.format() for f in result.findings)
    assert not result.findings, f"repo lint regressions:\n{formatted}"


def test_core_and_serve_carry_no_suppressions():
    """Satellite guarantee: core/ and serve/ are clean without opt-outs."""
    for package in ("core", "serve"):
        for path in sorted((REPO / "src" / "repro" / package).rglob("*.py")):
            assert "repro-lint:" not in path.read_text(encoding="utf-8"), (
                f"suppression comment found in {path}"
            )
