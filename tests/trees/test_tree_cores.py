"""Differential tests of the nopython-subset tree cores.

The Borůvka union core and the Tarjan LCA core are authored in the
numba ``nopython`` subset and JIT-compiled where numba is installed;
representative ids and LCA answers feed directly into tree identity,
so the contract is bit-identity with the pure-Python references
(:class:`repro.trees.spanning.DisjointSet`,
:class:`repro.trees.BinaryLiftingLCA`), not merely equivalent
partitions.
"""

import numpy as np
import pytest

from repro.graphs import generators
from repro.trees import (
    BinaryLiftingLCA,
    RootedTree,
    akpw,
    edge_stretches,
    low_stretch_tree,
    total_stretch,
)
from repro.trees.lsst import _boruvka_round, boruvka_union_core
from repro.trees.spanning import DisjointSet
from repro.trees.tarjan_lca import tarjan_lca_core


def _disjoint_set_union(k, cu, cv, chosen):
    """The DisjointSet sequence the core must replicate exactly."""
    dsu = DisjointSet(k)
    added = np.zeros(chosen.size, dtype=bool)
    for i, e in enumerate(chosen):
        added[i] = dsu.union(int(cu[e]), int(cv[e]))
    labels = np.array([dsu.find(v) for v in range(k)], dtype=np.int64)
    return labels, added


class TestBoruvkaUnionCore:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [2, 7, 40, 200])
    def test_matches_disjoint_set_reference(self, seed, k):
        rng = np.random.default_rng(seed)
        m = 3 * k
        cu = rng.integers(0, k, size=m).astype(np.int64)
        cv = rng.integers(0, k, size=m).astype(np.int64)
        chosen = rng.permutation(m)[: 2 * k].astype(np.int64)
        labels, added = boruvka_union_core(k, cu, cv, chosen)
        ref_labels, ref_added = _disjoint_set_union(k, cu, cv, chosen)
        # Bit-identical representative ids, not just the same partition.
        assert np.array_equal(labels, ref_labels)
        assert np.array_equal(added, ref_added)

    def test_self_loops_never_added(self):
        cu = np.array([0, 1, 2], dtype=np.int64)
        cv = np.array([0, 1, 2], dtype=np.int64)
        labels, added = boruvka_union_core(3, cu, cv, np.arange(3))
        assert not added.any()
        assert np.array_equal(labels, np.arange(3))

    def test_empty_chosen(self):
        labels, added = boruvka_union_core(
            4,
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
        assert np.array_equal(labels, np.arange(4))
        assert added.size == 0

    def test_boruvka_round_equals_legacy_loop(self):
        rng = np.random.default_rng(11)
        k = 60
        m = 150
        cu = rng.integers(0, k, size=m).astype(np.int64)
        cv = rng.integers(0, k, size=m).astype(np.int64)
        lengths = rng.random(m)
        orig = rng.permutation(1000)[:m].astype(np.int64)
        labels, added = _boruvka_round(k, cu, cv, lengths, orig)
        spy_calls = []

        def spy_core(k_, cu_, cv_, chosen_):
            spy_calls.append(chosen_.copy())
            return _disjoint_set_union(k_, cu_, cv_, chosen_)

        ref_labels, ref_added = _boruvka_round(
            k, cu, cv, lengths, orig, boruvka_core=spy_core
        )
        assert spy_calls, "hook must be exercised"
        assert np.array_equal(labels, ref_labels)
        assert np.array_equal(added, ref_added)

    def test_akpw_accepts_core_hook(self):
        g = generators.fem_mesh_2d(120, seed=3)
        base = akpw(g, seed=7)
        hooked = akpw(g, seed=7, boruvka_core=boruvka_union_core)
        assert np.array_equal(base, hooked)
        routed = low_stretch_tree(
            g, method="akpw", seed=7, boruvka_core=boruvka_union_core
        )
        assert np.array_equal(base, routed)


class TestTarjanCore:
    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_core_matches_binary_lifting(self, seed):
        g = generators.grid2d(9, 9, weights="uniform", seed=seed)
        idx = low_stretch_tree(g, seed=seed)
        tree = RootedTree.from_graph(g, idx, root=0)
        rng = np.random.default_rng(seed)
        us = rng.integers(0, tree.n, size=300).astype(np.int64)
        vs = rng.integers(0, tree.n, size=300).astype(np.int64)
        got = tarjan_lca_core(
            np.asarray(tree.parent, dtype=np.int64), int(tree.root), us, vs
        )
        assert np.array_equal(got, BinaryLiftingLCA(tree).query(us, vs))

    def test_zero_queries(self):
        g = generators.path_graph(5)
        tree = RootedTree.from_graph(g, np.arange(4), root=0)
        out = tarjan_lca_core(
            np.asarray(tree.parent, dtype=np.int64),
            0,
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
        assert out.size == 0


class TestStretchMethods:
    @pytest.mark.parametrize(
        "graph",
        [
            generators.grid2d(12, 12, weights="uniform", seed=2),
            generators.grid2d(10, 10, weights="lognormal", seed=4),
            generators.fem_mesh_2d(200, seed=8),
            generators.circuit_grid(9, 9, seed=6),
        ],
        ids=["grid", "weighted-grid", "fem", "circuit"],
    )
    def test_tarjan_bit_identical_to_lifting(self, graph):
        idx = low_stretch_tree(graph, seed=1)
        lifting = edge_stretches(graph, idx, method="lifting")
        tarjan = edge_stretches(graph, idx, method="tarjan")
        assert np.array_equal(lifting.stretches, tarjan.stretches)
        assert np.array_equal(lifting.tree_mask, tarjan.tree_mask)
        assert total_stretch(graph, idx, method="tarjan") == lifting.total

    def test_no_off_tree_edges(self):
        g = generators.path_graph(9)
        report = edge_stretches(g, np.arange(8), method="tarjan")
        assert np.array_equal(report.stretches, np.ones(8))

    @pytest.mark.parametrize("has_off_tree", [True, False])
    def test_unknown_method_rejected(self, has_off_tree):
        g = (
            generators.grid2d(4, 4, weights="uniform", seed=0)
            if has_off_tree
            else generators.path_graph(5)
        )
        idx = low_stretch_tree(g, seed=0)
        with pytest.raises(ValueError, match="unknown stretch method"):
            edge_stretches(g, idx, method="euler")
