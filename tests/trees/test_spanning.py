"""Unit tests for classical spanning-tree algorithms."""

import numpy as np
import pytest

from repro.graphs import Graph, generators, is_connected
from repro.trees import (
    DisjointSet,
    complete_forest,
    kruskal,
    maximum_weight_spanning_tree,
    minimum_spanning_tree,
    prim,
)


class TestDisjointSet:
    def test_initial_singletons(self):
        dsu = DisjointSet(4)
        assert dsu.count == 4
        assert dsu.find(2) == 2

    def test_union_merges(self):
        dsu = DisjointSet(4)
        assert dsu.union(0, 1)
        assert dsu.find(0) == dsu.find(1)
        assert dsu.count == 3

    def test_union_idempotent(self):
        dsu = DisjointSet(4)
        dsu.union(0, 1)
        assert not dsu.union(1, 0)
        assert dsu.count == 3

    def test_chain_merges_to_one(self):
        dsu = DisjointSet(10)
        for i in range(9):
            dsu.union(i, i + 1)
        assert dsu.count == 1


class TestAgreement:
    """Kruskal, Prim and scipy MST must agree on the optimum."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_total_length_agreement(self, seed):
        g = generators.grid2d(12, 12, weights="lognormal", seed=seed)
        lengths = 1.0 / g.w
        totals = [
            lengths[kruskal(g)].sum(),
            lengths[prim(g)].sum(),
            lengths[minimum_spanning_tree(g)].sum(),
        ]
        assert totals[0] == pytest.approx(totals[1], rel=1e-12)
        assert totals[0] == pytest.approx(totals[2], rel=1e-12)

    def test_unique_weights_identical_trees(self):
        g = generators.fem_mesh_2d(150, seed=4)  # distinct float weights
        assert np.array_equal(kruskal(g), prim(g))
        assert np.array_equal(kruskal(g), minimum_spanning_tree(g))


class TestTreeProperties:
    @pytest.mark.parametrize("algorithm", [kruskal, prim, minimum_spanning_tree])
    def test_result_is_spanning_tree(self, algorithm, mesh_medium):
        idx = algorithm(mesh_medium)
        assert idx.size == mesh_medium.n - 1
        assert is_connected(mesh_medium.edge_subgraph(idx))

    def test_disconnected_rejected(self, path5, cycle6):
        from repro.graphs import disjoint_union

        g = disjoint_union(path5, cycle6)
        for algorithm in (kruskal, prim, minimum_spanning_tree):
            with pytest.raises(ValueError, match="connected"):
                algorithm(g)

    def test_custom_lengths(self, grid_weighted, rng):
        lengths = rng.random(grid_weighted.num_edges)
        idx = kruskal(grid_weighted, lengths)
        # Optimality check via cut property on a random bipartition is
        # heavy; verify agreement with scipy instead.
        ref = minimum_spanning_tree(grid_weighted, lengths)
        assert lengths[idx].sum() == pytest.approx(lengths[ref].sum())

    def test_wrong_length_shape_rejected(self, triangle):
        with pytest.raises(ValueError, match="lengths"):
            kruskal(triangle, np.array([1.0]))

    def test_maximum_weight_tree_prefers_heavy_edges(self):
        # Triangle with one heavy edge: max-weight tree must keep it.
        g = Graph(3, [0, 0, 1], [1, 2, 2], [10.0, 1.0, 1.0])
        idx = maximum_weight_spanning_tree(g)
        assert 0 in idx  # the heavy (0,1) edge is canonical index 0


class TestCompleteForest:
    def test_already_spanning_is_noop(self, grid_weighted):
        tree = kruskal(grid_weighted)
        assert complete_forest(grid_weighted, tree).size == 0

    def test_reconnects_after_deletions(self, grid_weighted, rng):
        tree = kruskal(grid_weighted)
        keep = np.ones(tree.size, dtype=bool)
        keep[rng.choice(tree.size, size=5, replace=False)] = False
        forest = tree[keep]
        bridges = complete_forest(grid_weighted, forest)
        assert bridges.size == 5
        combined = np.sort(np.concatenate([forest, bridges]))
        assert is_connected(grid_weighted.edge_subgraph(combined))
        assert combined.size == grid_weighted.n - 1

    def test_prefers_high_score_bridges(self):
        # Path 0-1-2 with forest {(0,1)}; candidates to attach 2:
        # (1,2) light and (0,2) heavy — the heavy one must win.
        g = Graph(3, [0, 1, 0], [1, 2, 2], [1.0, 0.5, 8.0])
        forest = g.edge_indices(np.array([0]), np.array([1]))
        bridges = complete_forest(g, forest)
        assert bridges.tolist() == g.edge_indices(
            np.array([0]), np.array([2])
        ).tolist()

    def test_custom_scores_override_weights(self):
        g = Graph(3, [0, 1, 0], [1, 2, 2], [1.0, 0.5, 8.0])
        forest = g.edge_indices(np.array([0]), np.array([1]))
        light = g.edge_indices(np.array([1]), np.array([2]))
        scores = np.zeros(g.num_edges)
        scores[light] = 10.0  # boost the light edge above the heavy one
        bridges = complete_forest(g, forest, scores=scores)
        assert bridges.tolist() == light.tolist()

    def test_empty_forest_builds_spanning_structure(self, cycle6):
        bridges = complete_forest(cycle6, np.array([], dtype=np.int64))
        assert bridges.size == cycle6.n - 1
        assert is_connected(cycle6.edge_subgraph(bridges))

    def test_cycle_rejected(self, triangle):
        with pytest.raises(ValueError, match="cycle"):
            complete_forest(triangle, np.array([0, 1, 2]))

    def test_disconnected_graph_rejected(self, path5):
        from repro.graphs import disjoint_union

        g = disjoint_union(path5, path5)
        with pytest.raises(ValueError, match="disconnected"):
            complete_forest(g, np.array([], dtype=np.int64))

    def test_wrong_scores_shape_rejected(self, triangle):
        with pytest.raises(ValueError, match="scores"):
            complete_forest(triangle, np.array([0]), scores=np.array([1.0]))
