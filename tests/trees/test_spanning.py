"""Unit tests for classical spanning-tree algorithms."""

import numpy as np
import pytest

from repro.graphs import Graph, generators, is_connected
from repro.trees import (
    DisjointSet,
    kruskal,
    maximum_weight_spanning_tree,
    minimum_spanning_tree,
    prim,
)


class TestDisjointSet:
    def test_initial_singletons(self):
        dsu = DisjointSet(4)
        assert dsu.count == 4
        assert dsu.find(2) == 2

    def test_union_merges(self):
        dsu = DisjointSet(4)
        assert dsu.union(0, 1)
        assert dsu.find(0) == dsu.find(1)
        assert dsu.count == 3

    def test_union_idempotent(self):
        dsu = DisjointSet(4)
        dsu.union(0, 1)
        assert not dsu.union(1, 0)
        assert dsu.count == 3

    def test_chain_merges_to_one(self):
        dsu = DisjointSet(10)
        for i in range(9):
            dsu.union(i, i + 1)
        assert dsu.count == 1


class TestAgreement:
    """Kruskal, Prim and scipy MST must agree on the optimum."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_total_length_agreement(self, seed):
        g = generators.grid2d(12, 12, weights="lognormal", seed=seed)
        lengths = 1.0 / g.w
        totals = [
            lengths[kruskal(g)].sum(),
            lengths[prim(g)].sum(),
            lengths[minimum_spanning_tree(g)].sum(),
        ]
        assert totals[0] == pytest.approx(totals[1], rel=1e-12)
        assert totals[0] == pytest.approx(totals[2], rel=1e-12)

    def test_unique_weights_identical_trees(self):
        g = generators.fem_mesh_2d(150, seed=4)  # distinct float weights
        assert np.array_equal(kruskal(g), prim(g))
        assert np.array_equal(kruskal(g), minimum_spanning_tree(g))


class TestTreeProperties:
    @pytest.mark.parametrize("algorithm", [kruskal, prim, minimum_spanning_tree])
    def test_result_is_spanning_tree(self, algorithm, mesh_medium):
        idx = algorithm(mesh_medium)
        assert idx.size == mesh_medium.n - 1
        assert is_connected(mesh_medium.edge_subgraph(idx))

    def test_disconnected_rejected(self, path5, cycle6):
        from repro.graphs import disjoint_union

        g = disjoint_union(path5, cycle6)
        for algorithm in (kruskal, prim, minimum_spanning_tree):
            with pytest.raises(ValueError, match="connected"):
                algorithm(g)

    def test_custom_lengths(self, grid_weighted, rng):
        lengths = rng.random(grid_weighted.num_edges)
        idx = kruskal(grid_weighted, lengths)
        # Optimality check via cut property on a random bipartition is
        # heavy; verify agreement with scipy instead.
        ref = minimum_spanning_tree(grid_weighted, lengths)
        assert lengths[idx].sum() == pytest.approx(lengths[ref].sum())

    def test_wrong_length_shape_rejected(self, triangle):
        with pytest.raises(ValueError, match="lengths"):
            kruskal(triangle, np.array([1.0]))

    def test_maximum_weight_tree_prefers_heavy_edges(self):
        # Triangle with one heavy edge: max-weight tree must keep it.
        g = Graph(3, [0, 0, 1], [1, 2, 2], [10.0, 1.0, 1.0])
        idx = maximum_weight_spanning_tree(g)
        assert 0 in idx  # the heavy (0,1) edge is canonical index 0
