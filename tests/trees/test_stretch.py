"""Unit tests for edge stretch and total stretch."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.trees import edge_stretches, low_stretch_tree, total_stretch


class TestStretchValues:
    def test_tree_edges_have_stretch_one(self, grid_weighted):
        idx = low_stretch_tree(grid_weighted, seed=0)
        report = edge_stretches(grid_weighted, idx)
        assert np.all(report.stretches[report.tree_mask] == 1.0)

    def test_off_tree_stretch_positive(self, grid_weighted):
        idx = low_stretch_tree(grid_weighted, seed=0)
        report = edge_stretches(grid_weighted, idx)
        assert np.all(report.off_tree_stretches > 0)

    def test_cycle_stretch_closed_form(self):
        """Unit cycle: the off-tree chord's stretch is the path length."""
        g = generators.cycle_graph(10)
        tree = np.arange(9)  # path 0-1-...-9; chord (0, 9) left out
        report = edge_stretches(g, tree)
        off = report.off_tree_stretches
        assert off.size == 1
        assert off[0] == pytest.approx(9.0)

    def test_total_is_sum(self, grid_weighted):
        idx = low_stretch_tree(grid_weighted, seed=0)
        report = edge_stretches(grid_weighted, idx)
        assert report.total == pytest.approx(report.stretches.sum())

    def test_max_off_tree(self, grid_weighted):
        idx = low_stretch_tree(grid_weighted, seed=0)
        report = edge_stretches(grid_weighted, idx)
        assert report.max_off_tree == pytest.approx(report.off_tree_stretches.max())

    def test_max_off_tree_empty_for_tree_graph(self):
        g = generators.path_graph(5)
        report = edge_stretches(g, np.arange(4))
        assert report.max_off_tree == 0.0


class TestTraceIdentity:
    """Eq. 4 of the paper: st_P(G) = Trace(L_P^+ L_G)."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_total_stretch_equals_trace(self, seed):
        g = generators.grid2d(10, 10, weights="lognormal", seed=seed)
        idx = low_stretch_tree(g, seed=seed)
        st = total_stretch(g, idx)
        LG = g.laplacian().toarray()
        LP = g.edge_subgraph(idx).laplacian().toarray()
        trace = float(np.trace(np.linalg.pinv(LP) @ LG))
        assert st == pytest.approx(trace, rel=1e-8)

    def test_trace_identity_on_mesh(self, mesh_medium):
        idx = low_stretch_tree(mesh_medium, seed=2)
        st = total_stretch(mesh_medium, idx)
        LG = mesh_medium.laplacian().toarray()
        LP = mesh_medium.edge_subgraph(idx).laplacian().toarray()
        trace = float(np.trace(np.linalg.pinv(LP) @ LG))
        assert st == pytest.approx(trace, rel=1e-7)

    def test_tree_total_stretch_is_n_minus_one(self):
        """A tree sparsifying itself: every stretch is 1."""
        g = generators.path_graph(9, weights="uniform", seed=0)
        assert total_stretch(g, np.arange(8)) == pytest.approx(8.0)
