"""Unit tests for the O(n) tree Laplacian solver."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.trees import RootedTree, TreeSolver, low_stretch_tree


def make_solver(graph, seed=0):
    idx = low_stretch_tree(graph, seed=seed)
    tree = RootedTree.from_graph(graph, idx)
    return graph.edge_subgraph(idx), TreeSolver(tree)


class TestExactness:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: generators.path_graph(20, weights="uniform", seed=0),
            lambda: generators.grid2d(9, 9, weights="lognormal", seed=1),
            lambda: generators.star_graph(30, weights="uniform", seed=2),
            lambda: generators.fem_mesh_2d(150, seed=3),
        ],
    )
    def test_residual_tiny(self, graph_factory, rng):
        graph = graph_factory()
        tree_graph, solver = make_solver(graph)
        b = rng.standard_normal(graph.n)
        b -= b.mean()
        x = solver.solve(b)
        residual = tree_graph.laplacian() @ x - b
        assert np.abs(residual).max() < 1e-9 * max(1.0, np.abs(b).max())

    def test_matches_pseudoinverse(self, rng):
        graph = generators.grid2d(6, 6, weights="uniform", seed=4)
        tree_graph, solver = make_solver(graph)
        pinv = np.linalg.pinv(tree_graph.laplacian().toarray())
        b = rng.standard_normal(graph.n)
        b -= b.mean()
        assert np.allclose(solver.solve(b), pinv @ b, atol=1e-9)

    def test_solution_mean_free(self, grid_weighted, rng):
        _, solver = make_solver(grid_weighted)
        b = rng.standard_normal(grid_weighted.n)
        x = solver.solve(b)
        assert abs(x.mean()) < 1e-12

    def test_incompatible_rhs_projected(self, grid_weighted):
        """RHS with nonzero mean is solved in its projected form."""
        _, solver = make_solver(grid_weighted)
        b = np.ones(grid_weighted.n)  # entirely in the null space
        x = solver.solve(b)
        assert np.abs(x).max() < 1e-12


class TestInterface:
    def test_multi_rhs_columns(self, grid_weighted, rng):
        tree_graph, solver = make_solver(grid_weighted)
        B = rng.standard_normal((grid_weighted.n, 5))
        B -= B.mean(axis=0, keepdims=True)
        X = solver.solve(B)
        assert X.shape == B.shape
        residual = tree_graph.laplacian() @ X - B
        assert np.abs(residual).max() < 1e-9

    def test_multi_rhs_matches_single(self, grid_weighted, rng):
        _, solver = make_solver(grid_weighted)
        B = rng.standard_normal((grid_weighted.n, 3))
        B -= B.mean(axis=0, keepdims=True)
        X = solver.solve(B)
        for j in range(3):
            assert np.allclose(X[:, j], solver.solve(B[:, j]))

    def test_callable_alias(self, grid_weighted, rng):
        _, solver = make_solver(grid_weighted)
        b = rng.standard_normal(grid_weighted.n)
        b -= b.mean()
        assert np.allclose(solver(b), solver.solve(b))

    def test_wrong_size_rejected(self, grid_weighted):
        _, solver = make_solver(grid_weighted)
        with pytest.raises(ValueError, match="rows"):
            solver.solve(np.ones(3))

    def test_nnz_reported(self, grid_weighted):
        _, solver = make_solver(grid_weighted)
        assert solver.nnz == 2 * (grid_weighted.n - 1)
