"""Unit tests for the RootedTree structure."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.trees import RootedTree, low_stretch_tree


@pytest.fixture
def rooted_grid(grid_weighted):
    idx = low_stretch_tree(grid_weighted, seed=0)
    return grid_weighted, RootedTree.from_graph(grid_weighted, idx, root=0)


class TestConstruction:
    def test_parent_of_root_is_minus_one(self, rooted_grid):
        _, tree = rooted_grid
        assert tree.parent[tree.root] == -1

    def test_depth_increments_along_parents(self, rooted_grid):
        _, tree = rooted_grid
        non_root = np.flatnonzero(tree.parent >= 0)
        assert np.all(tree.depth[non_root] == tree.depth[tree.parent[non_root]] + 1)

    def test_order_parents_first(self, rooted_grid):
        _, tree = rooted_grid
        position = np.empty(tree.n, dtype=int)
        position[tree.order] = np.arange(tree.n)
        non_root = np.flatnonzero(tree.parent >= 0)
        assert np.all(position[tree.parent[non_root]] < position[non_root])

    def test_wrong_edge_count_rejected(self, grid_weighted):
        with pytest.raises(ValueError, match="needs"):
            RootedTree.from_graph(grid_weighted, np.array([0, 1]))

    def test_non_spanning_rejected(self, path5):
        # Two disjoint edges + one repeated index do not span 5 vertices.
        with pytest.raises(ValueError, match="span"):
            RootedTree.from_graph(path5, np.array([0, 1, 1, 3]))

    def test_parent_weights_match_graph(self, rooted_grid):
        graph, tree = rooted_grid
        non_root = np.flatnonzero(tree.parent >= 0)
        idx = graph.edge_indices(non_root, tree.parent[non_root])
        assert np.allclose(tree.parent_weight[non_root], graph.w[idx])


class TestDerived:
    def test_levels_partition_vertices(self, rooted_grid):
        _, tree = rooted_grid
        all_vertices = np.concatenate(tree.levels())
        assert np.array_equal(np.sort(all_vertices), np.arange(tree.n))

    def test_levels_have_right_depth(self, rooted_grid):
        _, tree = rooted_grid
        for d, level in enumerate(tree.levels()):
            assert np.all(tree.depth[level] == d)

    def test_subtree_sizes_root_is_n(self, rooted_grid):
        _, tree = rooted_grid
        sizes = tree.subtree_sizes()
        assert sizes[tree.root] == tree.n
        assert sizes.min() == 1

    def test_subtree_sizes_sum_parent_relation(self, rooted_grid):
        _, tree = rooted_grid
        sizes = tree.subtree_sizes()
        children_sum = np.zeros(tree.n, dtype=np.int64)
        non_root = np.flatnonzero(tree.parent >= 0)
        np.add.at(children_sum, tree.parent[non_root], sizes[non_root])
        assert np.all(sizes == children_sum + 1)

    def test_resistance_to_root_path_graph(self):
        g = generators.path_graph(4, weights=2.0)
        tree = RootedTree.from_graph(g, np.arange(3), root=0)
        assert np.allclose(tree.resistance_to_root(), [0.0, 0.5, 1.0, 1.5])

    def test_path_to_root_ends_at_root(self, rooted_grid):
        _, tree = rooted_grid
        path = tree.path_to_root(tree.n - 1)
        assert path[-1] == tree.root
        assert path.size == tree.depth[tree.n - 1] + 1

    def test_as_graph(self, rooted_grid):
        graph, tree = rooted_grid
        tg = tree.as_graph(graph)
        assert tg.num_edges == graph.n - 1
