"""Unit tests for low-stretch spanning tree construction."""

import numpy as np
import pytest

from repro.graphs import disjoint_union, generators, is_connected
from repro.trees import (
    akpw,
    low_stretch_tree,
    shortest_path_tree,
    total_stretch,
)


class TestAKPW:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_returns_spanning_tree(self, mesh_medium, seed):
        idx = akpw(mesh_medium, seed=seed)
        assert idx.size == mesh_medium.n - 1
        assert is_connected(mesh_medium.edge_subgraph(idx))
        assert len(np.unique(idx)) == idx.size

    def test_deterministic_given_seed(self, grid_weighted):
        assert np.array_equal(akpw(grid_weighted, seed=5), akpw(grid_weighted, seed=5))

    def test_single_vertex(self):
        from repro.graphs import Graph

        assert akpw(Graph(1)).size == 0

    def test_two_vertices(self):
        g = generators.path_graph(2)
        assert np.array_equal(akpw(g, seed=0), np.array([0]))

    def test_disconnected_rejected(self, path5, cycle6):
        with pytest.raises(ValueError, match="connected"):
            akpw(disjoint_union(path5, cycle6))

    def test_bad_scale_factor(self, path5):
        with pytest.raises(ValueError, match="scale_factor"):
            akpw(path5, scale_factor=1.0)

    def test_beats_random_tree_on_heterogeneous_weights(self):
        """AKPW respects short edges: orders of magnitude below random."""
        g = generators.grid2d(20, 20, weights="lognormal", seed=3, spread=2.0)
        st_akpw = total_stretch(g, akpw(g, seed=0))
        st_random = total_stretch(g, low_stretch_tree(g, method="random", seed=0))
        assert st_akpw < 0.05 * st_random

    def test_beats_random_tree_on_circuit(self):
        """Multi-conductance circuit grids: AKPW clearly below random."""
        g = generators.circuit_grid(16, 16, seed=3)
        st_akpw = total_stretch(g, akpw(g, seed=0))
        st_random = total_stretch(g, low_stretch_tree(g, method="random", seed=0))
        assert st_akpw < 0.7 * st_random

    def test_wide_weight_range(self):
        """Geometric scale classes handle 6 orders of magnitude."""
        g = generators.grid2d(10, 10, weights="lognormal", seed=1, spread=3.0)
        idx = akpw(g, seed=2)
        assert is_connected(g.edge_subgraph(idx))


class TestShortestPathTree:
    def test_is_spanning_tree(self, mesh_medium):
        idx = shortest_path_tree(mesh_medium)
        assert idx.size == mesh_medium.n - 1
        assert is_connected(mesh_medium.edge_subgraph(idx))

    def test_root_paths_are_shortest(self, grid_weighted):
        """Root-path resistance in the SPT equals the graph distance."""
        import scipy.sparse as sp
        import scipy.sparse.csgraph as csgraph

        from repro.trees import RootedTree

        root = int(np.argmax(grid_weighted.weighted_degrees()))
        idx = shortest_path_tree(grid_weighted, root=root)
        tree = RootedTree.from_graph(grid_weighted, idx, root=root)
        lengths = 1.0 / grid_weighted.w
        matrix = sp.csr_matrix(
            (
                np.concatenate([lengths, lengths]),
                (
                    np.concatenate([grid_weighted.u, grid_weighted.v]),
                    np.concatenate([grid_weighted.v, grid_weighted.u]),
                ),
            ),
            shape=(grid_weighted.n, grid_weighted.n),
        )
        dist = csgraph.dijkstra(matrix, directed=False, indices=root)
        assert np.allclose(tree.resistance_to_root(), dist, rtol=1e-10)


class TestDispatcher:
    @pytest.mark.parametrize("method", ["akpw", "spt", "maxw", "random"])
    def test_all_methods_span(self, grid_weighted, method):
        idx = low_stretch_tree(grid_weighted, method=method, seed=1)
        assert idx.size == grid_weighted.n - 1
        assert is_connected(grid_weighted.edge_subgraph(idx))

    def test_unknown_method(self, path5):
        with pytest.raises(ValueError, match="unknown tree method"):
            low_stretch_tree(path5, method="bogus")
