"""Unit tests for Tarjan's offline LCA."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.trees import (
    BinaryLiftingLCA,
    RootedTree,
    low_stretch_tree,
    tarjan_offline_lca,
)


@pytest.fixture
def random_tree():
    g = generators.fem_mesh_2d(250, seed=31)
    idx = low_stretch_tree(g, seed=1)
    return RootedTree.from_graph(g, idx, root=0)


class TestTarjanLCA:
    def test_matches_binary_lifting(self, random_tree, rng):
        lifting = BinaryLiftingLCA(random_tree)
        us = rng.integers(0, random_tree.n, size=200)
        vs = rng.integers(0, random_tree.n, size=200)
        assert np.array_equal(
            tarjan_offline_lca(random_tree, us, vs), lifting.query(us, vs)
        )

    def test_path_graph(self):
        g = generators.path_graph(12)
        tree = RootedTree.from_graph(g, np.arange(11), root=0)
        out = tarjan_offline_lca(tree, np.array([3, 11]), np.array([9, 0]))
        assert list(out) == [3, 0]

    def test_star_graph(self):
        g = generators.star_graph(8)
        tree = RootedTree.from_graph(g, np.arange(7), root=0)
        out = tarjan_offline_lca(tree, np.array([1, 5]), np.array([7, 0]))
        assert list(out) == [0, 0]

    def test_self_query(self, random_tree):
        out = tarjan_offline_lca(random_tree, np.array([42]), np.array([42]))
        assert out[0] == 42

    def test_deep_tree_no_recursion_limit(self):
        """A pure path of 5000 vertices exceeds Python's default
        recursion limit; the iterative DFS must handle it."""
        n = 5000
        g = generators.path_graph(n)
        tree = RootedTree.from_graph(g, np.arange(n - 1), root=0)
        out = tarjan_offline_lca(tree, np.array([n - 1]), np.array([n // 2]))
        assert out[0] == n // 2

    def test_shape_mismatch_rejected(self, random_tree):
        with pytest.raises(ValueError, match="shapes"):
            tarjan_offline_lca(random_tree, np.array([1, 2]), np.array([3]))

    def test_duplicate_queries(self, random_tree):
        us = np.array([5, 5, 5])
        vs = np.array([9, 9, 9])
        out = tarjan_offline_lca(random_tree, us, vs)
        assert out[0] == out[1] == out[2]
