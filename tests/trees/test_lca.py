"""Unit tests for binary-lifting LCA queries."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.trees import BinaryLiftingLCA, RootedTree, low_stretch_tree


def brute_force_lca(tree: RootedTree, u: int, v: int) -> int:
    """Reference LCA by walking ancestor sets."""
    ancestors = set()
    x = u
    while x >= 0:
        ancestors.add(x)
        x = int(tree.parent[x]) if tree.parent[x] >= 0 else -1
    x = v
    while x not in ancestors:
        x = int(tree.parent[x])
    return x


@pytest.fixture
def random_tree():
    g = generators.fem_mesh_2d(200, seed=21)
    idx = low_stretch_tree(g, seed=3)
    return g, RootedTree.from_graph(g, idx, root=0)


class TestQueries:
    def test_path_graph_lca_is_smaller_index(self):
        g = generators.path_graph(8)
        tree = RootedTree.from_graph(g, np.arange(7), root=0)
        lca = BinaryLiftingLCA(tree)
        assert lca.query(np.array([2]), np.array([6]))[0] == 2
        assert lca.query(np.array([7]), np.array([0]))[0] == 0

    def test_star_graph_lca_is_center(self):
        g = generators.star_graph(6)
        tree = RootedTree.from_graph(g, np.arange(5), root=0)
        lca = BinaryLiftingLCA(tree)
        assert lca.query(np.array([1]), np.array([5]))[0] == 0

    def test_lca_of_vertex_with_itself(self, random_tree):
        _, tree = random_tree
        lca = BinaryLiftingLCA(tree)
        assert lca.query(np.array([17]), np.array([17]))[0] == 17

    def test_lca_with_ancestor(self):
        g = generators.path_graph(10)
        tree = RootedTree.from_graph(g, np.arange(9), root=0)
        lca = BinaryLiftingLCA(tree)
        assert lca.query(np.array([3]), np.array([9]))[0] == 3

    def test_matches_brute_force(self, random_tree, rng):
        _, tree = random_tree
        lca = BinaryLiftingLCA(tree)
        us = rng.integers(0, tree.n, size=60)
        vs = rng.integers(0, tree.n, size=60)
        fast = lca.query(us, vs)
        slow = np.array([brute_force_lca(tree, int(a), int(b)) for a, b in zip(us, vs)])
        assert np.array_equal(fast, slow)

    def test_shape_mismatch_rejected(self, random_tree):
        _, tree = random_tree
        lca = BinaryLiftingLCA(tree)
        with pytest.raises(ValueError, match="shape"):
            lca.query(np.array([1, 2]), np.array([3]))


class TestPathResistance:
    def test_matches_dense_effective_resistance(self, random_tree):
        """Tree-path resistance equals the tree's effective resistance."""
        graph, tree = random_tree
        lca = BinaryLiftingLCA(tree)
        L = graph.edge_subgraph(tree.edge_indices).laplacian().toarray()
        pinv = np.linalg.pinv(L)
        rng = np.random.default_rng(0)
        us = rng.integers(0, tree.n, size=25)
        vs = rng.integers(0, tree.n, size=25)
        fast = lca.path_resistance(us, vs)
        for k, (a, b) in enumerate(zip(us, vs)):
            e = np.zeros(tree.n)
            e[a] += 1.0
            e[b] -= 1.0
            assert fast[k] == pytest.approx(float(e @ pinv @ e), rel=1e-9, abs=1e-12)

    def test_zero_for_same_vertex(self, random_tree):
        _, tree = random_tree
        lca = BinaryLiftingLCA(tree)
        assert lca.path_resistance(np.array([5]), np.array([5]))[0] == 0.0
