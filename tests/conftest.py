"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, generators


@pytest.fixture(autouse=True)
def _isolated_observability():
    """Restore the ambient observability collectors after every test.

    Service construction (``SparsifierService(metrics=True)``) and
    observability tests install process-global collectors; without this
    guard they would leak across the suite and couple test outcomes to
    execution order.
    """
    import repro.obs as obs

    tracer, metrics = obs.get_tracer(), obs.get_metrics()
    yield
    obs.configure(tracer=tracer, metrics=metrics)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def path5() -> Graph:
    """Path graph on 5 vertices with unit weights."""
    return generators.path_graph(5)


@pytest.fixture
def cycle6() -> Graph:
    """Cycle on 6 vertices."""
    return generators.cycle_graph(6)


@pytest.fixture
def triangle() -> Graph:
    """Weighted triangle: edges (0,1,w=1), (0,2,w=2), (1,2,w=3)."""
    return Graph(3, [0, 0, 1], [1, 2, 2], [1.0, 2.0, 3.0])


@pytest.fixture
def grid_small() -> Graph:
    """Unit-weight 8x8 grid (64 vertices)."""
    return generators.grid2d(8, 8)


@pytest.fixture
def grid_weighted() -> Graph:
    """Lognormal-weight 12x12 grid — the workhorse reference graph."""
    return generators.grid2d(12, 12, weights="lognormal", seed=7)


@pytest.fixture
def mesh_medium() -> Graph:
    """FEM-ish 2-D Delaunay mesh with ~400 vertices."""
    return generators.fem_mesh_2d(400, seed=9)


@pytest.fixture
def knn_medium() -> Graph:
    """k-NN graph of a 3-cluster Gaussian mixture (300 points)."""
    points = generators.gaussian_mixture_points(
        300, dim=4, clusters=3, separation=6.0, seed=11
    )
    return generators.knn_graph(points, k=8)
