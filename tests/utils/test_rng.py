"""Unit tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils import (
    as_rng,
    random_unit_vectors,
    restore_rng,
    rng_state,
    shard_rngs,
    spawn_rngs,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_deterministic(self):
        a = as_rng(7).standard_normal(5)
        b = as_rng(7).standard_normal(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen


class TestSpawn:
    def test_count(self):
        children = spawn_rngs(3, 4)
        assert len(children) == 4

    def test_children_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.standard_normal(8), b.standard_normal(8))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)


class TestShardRngs:
    """The canonical child-RNG derivation shared by parallel/stream/core."""

    def test_matches_seedsequence_children(self):
        # The historical parallel.shard_rngs contract: shard i draws
        # from the i-th SeedSequence child of the root seed.
        expected = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(7).spawn(3)
        ]
        got = shard_rngs(7, 3)
        for a, b in zip(expected, got):
            assert np.array_equal(a.standard_normal(16), b.standard_normal(16))

    def test_generator_root_spawns_in_place(self):
        root_a, root_b = np.random.default_rng(5), np.random.default_rng(5)
        a = shard_rngs(root_a, 2)
        b = root_b.spawn(2)
        for x, y in zip(a, b):
            assert np.array_equal(x.standard_normal(8), y.standard_normal(8))

    def test_parallel_reexport_is_the_same_function(self):
        from repro.sparsify import parallel

        assert parallel.shard_rngs is shard_rngs


class TestStateRoundTrip:
    def test_rng_state_restores_exact_stream(self):
        rng = as_rng(3)
        rng.standard_normal(5)  # advance mid-stream
        clone = restore_rng(rng_state(rng))
        assert np.array_equal(rng.standard_normal(9), clone.standard_normal(9))

    def test_state_is_json_serializable(self):
        import json

        json.dumps(rng_state(as_rng(0)))  # must not raise


class TestRandomUnitVectors:
    def test_shape_and_norm(self):
        V = random_unit_vectors(20, 5, seed=1)
        assert V.shape == (20, 5)
        assert np.allclose(np.linalg.norm(V, axis=0), 1.0)

    def test_orthogonal_to_ones(self):
        V = random_unit_vectors(30, 4, seed=2)
        assert np.abs(V.sum(axis=0)).max() < 1e-10

    def test_not_projected_when_disabled(self):
        V = random_unit_vectors(30, 4, seed=2, orthogonal_to_ones=False)
        assert np.abs(V.sum(axis=0)).max() > 1e-6

    def test_deterministic(self):
        a = random_unit_vectors(10, 3, seed=5)
        b = random_unit_vectors(10, 3, seed=5)
        assert np.array_equal(a, b)

    def test_invalid_dims(self):
        with pytest.raises(ValueError, match="dimension"):
            random_unit_vectors(0, 2)
        with pytest.raises(ValueError, match="count"):
            random_unit_vectors(5, 0)
