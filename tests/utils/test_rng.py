"""Unit tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils import as_rng, random_unit_vectors, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_deterministic(self):
        a = as_rng(7).standard_normal(5)
        b = as_rng(7).standard_normal(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen


class TestSpawn:
    def test_count(self):
        children = spawn_rngs(3, 4)
        assert len(children) == 4

    def test_children_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.standard_normal(8), b.standard_normal(8))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)


class TestRandomUnitVectors:
    def test_shape_and_norm(self):
        V = random_unit_vectors(20, 5, seed=1)
        assert V.shape == (20, 5)
        assert np.allclose(np.linalg.norm(V, axis=0), 1.0)

    def test_orthogonal_to_ones(self):
        V = random_unit_vectors(30, 4, seed=2)
        assert np.abs(V.sum(axis=0)).max() < 1e-10

    def test_not_projected_when_disabled(self):
        V = random_unit_vectors(30, 4, seed=2, orthogonal_to_ones=False)
        assert np.abs(V.sum(axis=0)).max() > 1e-6

    def test_deterministic(self):
        a = random_unit_vectors(10, 3, seed=5)
        b = random_unit_vectors(10, 3, seed=5)
        assert np.array_equal(a, b)

    def test_invalid_dims(self):
        with pytest.raises(ValueError, match="dimension"):
            random_unit_vectors(0, 2)
        with pytest.raises(ValueError, match="count"):
            random_unit_vectors(5, 0)
