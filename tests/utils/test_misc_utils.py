"""Unit tests for timing, validation, table formatting and memory utils."""

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils import (
    Timer,
    check_positive,
    check_probability,
    check_square,
    check_symmetric,
    check_vertex_count,
    factor_nbytes,
    format_si,
    format_table,
    sparse_nbytes,
    timed,
)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_lap_without_stop(self):
        with Timer() as t:
            assert t.lap() >= 0.0

    def test_lap_before_start_rejected(self):
        t = Timer()
        with pytest.raises(RuntimeError, match="never started"):
            t.lap()

    def test_restart(self):
        with Timer() as t:
            time.sleep(0.01)
            t.restart()
        assert t.elapsed < 0.01

    def test_restart_clears_stale_elapsed(self):
        """Regression: lap-style reuse must not report the previous
        interval's elapsed after a restart."""
        t = Timer()
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009
        t.restart()
        assert t.elapsed == 0.0
        assert t.lap() >= 0.0

    def test_timed_decorator(self):
        @timed
        def add(a, b):
            return a + b

        result, elapsed = add(2, 3)
        assert result == 5
        assert elapsed >= 0.0


class TestValidation:
    def test_check_positive_ok(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive(bad, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_check_vertex_count(self):
        assert check_vertex_count(3) == 3
        with pytest.raises(ValueError):
            check_vertex_count(0)
        with pytest.raises(ValueError):
            check_vertex_count(2.5)

    def test_check_square(self):
        check_square(np.eye(3))
        with pytest.raises(ValueError, match="square"):
            check_square(np.ones((2, 3)))

    def test_check_symmetric_dense(self):
        check_symmetric(np.eye(4))
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric(np.triu(np.ones((3, 3))))

    def test_check_symmetric_sparse(self):
        check_symmetric(sp.eye(4).tocsr())
        bad = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric(bad)


class TestFormatting:
    def test_format_si_paper_style(self):
        assert format_si(1_600_000) == "1.6E6"
        assert format_si(3_000) == "3E3"
        assert format_si(42) == "42"
        assert format_si(0) == "0"

    def test_format_si_negative(self):
        assert format_si(-2500) == "-2.5E3"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_table_wrong_row_length(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])


class TestMemory:
    def test_sparse_nbytes_positive(self, grid_small):
        assert sparse_nbytes(grid_small.laplacian()) > 0

    def test_sparse_nbytes_counts_arrays(self):
        m = sp.random(50, 50, density=0.1, random_state=0).tocsr()
        expected = m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
        assert sparse_nbytes(m) == expected

    def test_sparse_nbytes_rejects_dense(self):
        with pytest.raises(TypeError, match="sparse"):
            sparse_nbytes(np.eye(3))

    def test_factor_nbytes(self, grid_small):
        import scipy.sparse.linalg as spla

        from repro.graphs import ground_matrix

        lu = spla.splu(ground_matrix(grid_small.laplacian()).tocsc())
        assert factor_nbytes(lu) > 0

    def test_factor_nbytes_rejects_other(self):
        with pytest.raises(TypeError, match="L/U"):
            factor_nbytes(object())
