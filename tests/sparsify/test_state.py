"""Unit tests for the incremental sparsifier state (densification engine)."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.solvers import AMGSolver, DirectSolver
from repro.trees import TreeSolver
from repro.sparsify import SparsifierState, densify
from repro.sparsify.edge_embedding import joule_heats
from repro.sparsify.edge_similarity import select_dissimilar
from repro.sparsify.filtering import filter_edges, heat_threshold
from repro.spectral.extreme import estimate_lambda_max, estimate_lambda_min
from repro.utils.rng import as_rng


@pytest.fixture
def grid_with_tree():
    from repro.trees import low_stretch_tree

    g = generators.grid2d(12, 12, weights="lognormal", seed=7)
    return g, low_stretch_tree(g, seed=0)


def _off_tree(state):
    return np.flatnonzero(~state.edge_mask)


def _densify_rebuild(graph, tree_indices, sigma2, seed, **kw):
    """Reference loop: fresh subgraph, Laplacian and solver every pass
    (the pre-incremental behaviour the engine must reproduce exactly)."""
    from repro.trees import RootedTree

    rng = as_rng(seed)
    tree_indices = np.asarray(tree_indices, dtype=np.int64)
    edge_mask = np.zeros(graph.num_edges, dtype=bool)
    edge_mask[tree_indices] = True
    is_pure_tree = True
    max_per_iter = kw.get("max_edges_per_iteration", max(100, int(0.05 * graph.n)))
    for _ in range(kw.get("max_iterations", 50)):
        if is_pure_tree:
            solver = TreeSolver(RootedTree.from_graph(graph, tree_indices))
        else:
            sparsifier = graph.edge_subgraph(edge_mask)
            solver = DirectSolver(sparsifier.laplacian().tocsc())
        sparsifier = graph.edge_subgraph(edge_mask)
        lam_max = estimate_lambda_max(graph, sparsifier, solver, seed=rng)
        lam_min = estimate_lambda_min(graph, sparsifier)
        if lam_max / lam_min <= sigma2:
            return edge_mask, True
        off = np.flatnonzero(~edge_mask)
        heats = joule_heats(graph, solver, off, seed=rng)
        decision = filter_edges(heats, heat_threshold(sigma2, lam_min, lam_max, t=2))
        added = select_dissimilar(graph, off[decision.passing],
                                  max_edges=max_per_iter)
        edge_mask[added] = True
        if added.size:
            is_pure_tree = False
        if added.size == 0:
            break
    return edge_mask, False


class TestIncrementalLaplacian:
    def test_matches_from_scratch_after_every_batch(self, grid_with_tree):
        g, tree = grid_with_tree
        state = SparsifierState(g, tree)
        rng = np.random.default_rng(0)
        for _ in range(6):
            off = _off_tree(state)
            batch = rng.choice(off, size=min(17, off.size), replace=False)
            state.add_edges(batch)
            ref = g.edge_subgraph(state.edge_mask)
            diff = state.pruned_laplacian() - ref.laplacian()
            scale = np.abs(ref.laplacian().data).max()
            err = np.abs(diff.data).max() if diff.nnz else 0.0
            assert err <= 1e-12 * scale
            assert np.allclose(
                state.weighted_degrees(), ref.weighted_degrees(), rtol=1e-12
            )

    def test_laplacian_keeps_host_pattern(self, grid_with_tree):
        g, tree = grid_with_tree
        state = SparsifierState(g, tree)
        assert state.laplacian.nnz == g.laplacian().nnz
        state.add_edges(_off_tree(state)[:5])
        assert state.laplacian.nnz == g.laplacian().nnz

    def test_initial_mask_respected(self, grid_with_tree):
        g, tree = grid_with_tree
        mask = np.zeros(g.num_edges, dtype=bool)
        mask[tree] = True
        extra = np.flatnonzero(~mask)[:7]
        mask[extra] = True
        state = SparsifierState(g, tree, initial_mask=mask)
        assert not state.is_pure_tree
        ref = g.edge_subgraph(mask)
        assert np.allclose(
            state.pruned_laplacian().toarray(), ref.laplacian().toarray()
        )

    def test_lambda_min_matches_graph_based_estimate(self, grid_with_tree):
        g, tree = grid_with_tree
        state = SparsifierState(g, tree)
        state.add_edges(_off_tree(state)[:11])
        ref = estimate_lambda_min(g, g.edge_subgraph(state.edge_mask))
        assert state.lambda_min() == pytest.approx(ref, rel=1e-12)


class TestSolverManagement:
    def test_pure_tree_uses_tree_solver(self, grid_with_tree):
        g, tree = grid_with_tree
        state = SparsifierState(g, tree)
        assert isinstance(state.solver(), TreeSolver)

    def test_tree_solver_dropped_after_additions(self, grid_with_tree):
        g, tree = grid_with_tree
        state = SparsifierState(g, tree)
        state.solver()
        state.add_edges(_off_tree(state)[:3])
        assert isinstance(state.solver(), DirectSolver)

    def test_small_batches_reuse_direct_solver(self, grid_with_tree):
        g, tree = grid_with_tree
        state = SparsifierState(g, tree, solver_method="cholesky")
        state.add_edges(_off_tree(state)[:4])
        solver = state.solver()
        rebuilds = state.solver_rebuilds
        state.add_edges(_off_tree(state)[:10])
        assert state.solver() is solver  # absorbed via Woodbury
        assert state.solver_rebuilds == rebuilds

    def test_rank_budget_triggers_rebuild(self, grid_with_tree):
        g, tree = grid_with_tree
        state = SparsifierState(g, tree, solver_method="cholesky",
                                max_update_rank=5)
        state.add_edges(_off_tree(state)[:3])
        solver = state.solver()
        state.add_edges(_off_tree(state)[:10])  # exceeds rank 5
        assert state.solver() is not solver

    def test_amg_solver_method(self, grid_with_tree):
        g, tree = grid_with_tree
        state = SparsifierState(g, tree, solver_method="amg")
        state.add_edges(_off_tree(state)[:3])
        assert isinstance(state.solver(), AMGSolver)

    def test_unknown_method_rejected(self, grid_with_tree):
        g, tree = grid_with_tree
        with pytest.raises(ValueError, match="solver method"):
            SparsifierState(g, tree, solver_method="qr")


class TestValidation:
    def test_wrong_mask_shape(self, grid_with_tree):
        g, tree = grid_with_tree
        with pytest.raises(ValueError, match="initial_mask"):
            SparsifierState(g, tree, initial_mask=np.zeros(3, dtype=bool))

    def test_mask_missing_tree_edge(self, grid_with_tree):
        g, tree = grid_with_tree
        mask = np.zeros(g.num_edges, dtype=bool)
        with pytest.raises(ValueError, match="tree edge"):
            SparsifierState(g, tree, initial_mask=mask)

    def test_duplicate_addition_rejected(self, grid_with_tree):
        g, tree = grid_with_tree
        state = SparsifierState(g, tree)
        with pytest.raises(ValueError, match="already"):
            state.add_edges(tree[:1])

    def test_empty_batch_is_noop(self, grid_with_tree):
        g, tree = grid_with_tree
        state = SparsifierState(g, tree)
        solver = state.solver()
        state.add_edges(np.array([], dtype=np.int64))
        assert state.is_pure_tree
        assert state.solver() is solver


class TestRemoveEdges:
    def _state_with_extras(self, grid_with_tree, extra=12):
        g, tree = grid_with_tree
        state = SparsifierState(g, tree)
        off = np.flatnonzero(~state.edge_mask)[:extra]
        state.add_edges(off)
        return g, state, off

    def test_removal_matches_from_scratch(self, grid_with_tree):
        g, state, off = self._state_with_extras(grid_with_tree)
        state.remove_edges(off[:5])
        expected = g.edge_subgraph(state.edge_mask)
        assert np.allclose(
            state.pruned_laplacian().toarray(), expected.laplacian().toarray()
        )
        assert np.allclose(state.weighted_degrees(),
                           expected.weighted_degrees())
        assert not np.any(state.edge_mask[off[:5]])

    def test_solver_absorbs_downdate(self, grid_with_tree):
        g, state, off = self._state_with_extras(grid_with_tree)
        solver = state.solver()
        state.remove_edges(off[:4])
        assert state.solver() is solver  # Woodbury downdate, no rebuild
        fresh = DirectSolver(state.pruned_laplacian().tocsc())
        b = np.random.default_rng(0).standard_normal(g.n)
        b -= b.mean()
        assert np.allclose(state.solver().solve(b), fresh.solve(b), atol=1e-8)

    def test_back_to_pure_tree(self, grid_with_tree):
        g, state, off = self._state_with_extras(grid_with_tree, extra=3)
        assert not state.is_pure_tree
        state.remove_edges(off)
        assert state.is_pure_tree

    def test_tree_edge_rejected(self, grid_with_tree):
        g, state, _ = self._state_with_extras(grid_with_tree)
        with pytest.raises(ValueError, match="spanning-tree"):
            state.remove_edges(state.tree_indices[:1])

    def test_absent_edge_rejected(self, grid_with_tree):
        g, state, off = self._state_with_extras(grid_with_tree, extra=2)
        absent = np.flatnonzero(~state.edge_mask)[:1]
        with pytest.raises(ValueError, match="not in the sparsifier"):
            state.remove_edges(absent)

    def test_empty_batch_is_noop(self, grid_with_tree):
        g, state, off = self._state_with_extras(grid_with_tree)
        before = state.edge_mask.copy()
        state.remove_edges(np.array([], dtype=np.int64))
        assert np.array_equal(state.edge_mask, before)

    def test_duplicate_removal_rejected(self, grid_with_tree):
        """A repeated index would downdate the Laplacian twice."""
        g, state, off = self._state_with_extras(grid_with_tree)
        with pytest.raises(ValueError, match="duplicate"):
            state.remove_edges(np.array([off[0], off[0]]))

    def test_duplicate_addition_rejected(self, grid_with_tree):
        g, tree = grid_with_tree
        state = SparsifierState(g, tree)
        e = np.flatnonzero(~state.edge_mask)[:1]
        with pytest.raises(ValueError, match="duplicate"):
            state.add_edges(np.array([e[0], e[0]]))

    def test_add_remove_add_roundtrip(self, grid_with_tree):
        """Re-adding removed edges restores the exact Laplacian values."""
        g, state, off = self._state_with_extras(grid_with_tree)
        reference = state.pruned_laplacian().toarray()
        state.remove_edges(off[:6])
        state.add_edges(off[:6])
        assert np.allclose(state.pruned_laplacian().toarray(), reference,
                           atol=1e-12)


class TestEngineParity:
    def test_densify_matches_rebuild_reference(self, grid_with_tree):
        """The incremental engine must select the same edges as the
        rebuild-everything loop for a fixed seed."""
        g, tree = grid_with_tree
        ref_mask, ref_conv = _densify_rebuild(g, tree, sigma2=60.0, seed=0)
        result = densify(g, tree, sigma2=60.0, seed=0)
        assert np.array_equal(result.edge_mask, ref_mask)
        assert result.converged == ref_conv

    def test_densify_matches_reference_with_small_batches(self, grid_with_tree):
        """Small per-iteration caps exercise the Woodbury reuse path."""
        g, tree = grid_with_tree
        ref_mask, _ = _densify_rebuild(
            g, tree, sigma2=40.0, seed=3, max_edges_per_iteration=20,
            max_iterations=12,
        )
        result = densify(g, tree, sigma2=40.0, seed=3,
                         max_edges_per_iteration=20, max_iterations=12)
        assert np.array_equal(result.edge_mask, ref_mask)
