"""Unit tests for the dissimilar-edge selection (§3.7 step 6)."""

import numpy as np
import pytest

from repro.graphs import Graph, generators
from repro.sparsify import select_dissimilar


@pytest.fixture
def fan_graph():
    """Vertices 0..5; candidate edges share endpoints in pairs."""
    #   candidates (by canonical index): (0,1), (0,2), (1,2), (3,4), (3,5)
    return Graph(6, [0, 0, 1, 3, 3], [1, 2, 2, 4, 5], np.ones(5))


class TestEndpointMode:
    def test_skips_edge_with_both_endpoints_marked(self, fan_graph):
        # Order: (0,1) first marks 0,1; (0,2) marks 2; (1,2) both marked -> skip.
        order = np.array([0, 1, 2])
        chosen = select_dissimilar(fan_graph, order, mode="endpoint")
        assert list(chosen) == [0, 1]

    def test_disjoint_edges_all_kept(self, fan_graph):
        order = np.array([0, 3])
        chosen = select_dissimilar(fan_graph, order, mode="endpoint")
        assert list(chosen) == [0, 3]

    def test_max_edges_cap(self, fan_graph):
        order = np.array([0, 3, 4])
        chosen = select_dissimilar(fan_graph, order, max_edges=2, mode="endpoint")
        assert chosen.size == 2

    @pytest.mark.parametrize("mode", ["endpoint", "neighborhood", "none"])
    def test_zero_cap_selects_nothing(self, fan_graph, mode):
        """Regression: the cap used to be checked *after* appending, so
        ``max_edges=0`` returned one edge."""
        chosen = select_dissimilar(
            fan_graph, np.array([0, 1, 2]), max_edges=0, mode=mode
        )
        assert chosen.size == 0

    @pytest.mark.parametrize("mode", ["endpoint", "neighborhood", "none"])
    def test_negative_cap_rejected(self, fan_graph, mode):
        with pytest.raises(ValueError, match="max_edges"):
            select_dissimilar(fan_graph, np.array([0]), max_edges=-1, mode=mode)

    def test_processing_order_matters(self, fan_graph):
        """The highest-heat (first) edge always wins its neighbourhood."""
        chosen = select_dissimilar(fan_graph, np.array([2, 0, 1]), mode="endpoint")
        assert chosen[0] == 2

    def test_empty_candidates(self, fan_graph):
        chosen = select_dissimilar(fan_graph, np.array([], dtype=np.int64))
        assert chosen.size == 0


class TestOtherModes:
    def test_none_mode_passthrough(self, fan_graph):
        order = np.array([0, 1, 2, 3, 4])
        chosen = select_dissimilar(fan_graph, order, mode="none")
        assert np.array_equal(chosen, order)

    def test_none_mode_with_cap(self, fan_graph):
        chosen = select_dissimilar(fan_graph, np.arange(5), max_edges=3, mode="none")
        assert chosen.size == 3

    def test_neighborhood_mode_sparser(self, grid_weighted):
        """Neighbourhood marking selects a subset of endpoint marking."""
        candidates = np.arange(grid_weighted.num_edges)
        endpoint = select_dissimilar(grid_weighted, candidates, mode="endpoint")
        neighborhood = select_dissimilar(grid_weighted, candidates, mode="neighborhood")
        assert neighborhood.size <= endpoint.size

    def test_unknown_mode(self, fan_graph):
        with pytest.raises(ValueError, match="similarity mode"):
            select_dissimilar(fan_graph, np.array([0]), mode="bogus")


class TestAtScale:
    def test_selection_bounded_by_vertex_count(self, mesh_medium):
        """Endpoint marking can keep at most ~n edges per round."""
        candidates = np.arange(mesh_medium.num_edges)
        chosen = select_dissimilar(mesh_medium, candidates, mode="endpoint")
        assert chosen.size <= mesh_medium.n
