"""Unit tests for effective resistance computation."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.sparsify import (
    approx_effective_resistances,
    exact_effective_resistances,
)


class TestExact:
    def test_path_graph_closed_form(self):
        """Series resistors: R(0, k) = sum of 1/w along the path."""
        g = generators.path_graph(6, weights=2.0)
        pairs = np.array([[0, 1], [0, 3], [0, 5]])
        values = exact_effective_resistances(g, pairs)
        assert np.allclose(values, [0.5, 1.5, 2.5])

    def test_cycle_closed_form(self):
        """Parallel paths: R = (a*b)/(a+b) with unit edges."""
        g = generators.cycle_graph(8)
        values = exact_effective_resistances(g, np.array([[0, 4]]))
        assert values[0] == pytest.approx(4 * 4 / 8)

    def test_fosters_theorem(self, grid_weighted):
        """Foster: Σ_e w_e R_eff(e) = n − 1."""
        values = exact_effective_resistances(grid_weighted)
        total = float((grid_weighted.w * values).sum())
        assert total == pytest.approx(grid_weighted.n - 1, rel=1e-8)

    def test_default_pairs_are_edges(self, triangle):
        values = exact_effective_resistances(triangle)
        assert values.shape == (3,)

    def test_batching_consistent(self, grid_weighted):
        full = exact_effective_resistances(grid_weighted, batch_size=10**9)
        batched = exact_effective_resistances(grid_weighted, batch_size=7)
        assert np.allclose(full, batched)

    def test_resistance_bounded_by_direct_edge(self, grid_weighted):
        """R_eff(u,v) <= 1/w(u,v) for every edge (parallel paths help)."""
        values = exact_effective_resistances(grid_weighted)
        assert np.all(values <= 1.0 / grid_weighted.w + 1e-12)


class TestApproximate:
    def test_within_epsilon_mostly(self, grid_weighted):
        exact = exact_effective_resistances(grid_weighted)
        approx = approx_effective_resistances(grid_weighted, epsilon=0.2, seed=0)
        rel = np.abs(approx - exact) / exact
        # JL guarantee is probabilistic; check the bulk.
        assert np.median(rel) < 0.2
        assert rel.max() < 0.6

    def test_foster_sum_approximately(self, grid_weighted):
        approx = approx_effective_resistances(grid_weighted, epsilon=0.2, seed=1)
        total = float((grid_weighted.w * approx).sum())
        assert total == pytest.approx(grid_weighted.n - 1, rel=0.15)

    def test_invalid_epsilon(self, grid_weighted):
        with pytest.raises(ValueError, match="epsilon"):
            approx_effective_resistances(grid_weighted, epsilon=1.5)

    def test_deterministic_given_seed(self, grid_small):
        a = approx_effective_resistances(grid_small, seed=3)
        b = approx_effective_resistances(grid_small, seed=3)
        assert np.array_equal(a, b)
