"""Unit tests for effective resistance computation."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.sparsify import (
    approx_effective_resistances,
    exact_effective_resistances,
)


class TestExact:
    def test_path_graph_closed_form(self):
        """Series resistors: R(0, k) = sum of 1/w along the path."""
        g = generators.path_graph(6, weights=2.0)
        pairs = np.array([[0, 1], [0, 3], [0, 5]])
        values = exact_effective_resistances(g, pairs)
        assert np.allclose(values, [0.5, 1.5, 2.5])

    def test_cycle_closed_form(self):
        """Parallel paths: R = (a*b)/(a+b) with unit edges."""
        g = generators.cycle_graph(8)
        values = exact_effective_resistances(g, np.array([[0, 4]]))
        assert values[0] == pytest.approx(4 * 4 / 8)

    def test_fosters_theorem(self, grid_weighted):
        """Foster: Σ_e w_e R_eff(e) = n − 1."""
        values = exact_effective_resistances(grid_weighted)
        total = float((grid_weighted.w * values).sum())
        assert total == pytest.approx(grid_weighted.n - 1, rel=1e-8)

    def test_default_pairs_are_edges(self, triangle):
        values = exact_effective_resistances(triangle)
        assert values.shape == (3,)

    def test_batching_consistent(self, grid_weighted):
        full = exact_effective_resistances(grid_weighted, batch_size=10**9)
        batched = exact_effective_resistances(grid_weighted, batch_size=7)
        assert np.allclose(full, batched)

    def test_resistance_bounded_by_direct_edge(self, grid_weighted):
        """R_eff(u,v) <= 1/w(u,v) for every edge (parallel paths help)."""
        values = exact_effective_resistances(grid_weighted)
        assert np.all(values <= 1.0 / grid_weighted.w + 1e-12)


class TestPairValidation:
    def test_out_of_range_raises_value_error(self, grid_weighted):
        n = grid_weighted.n
        with pytest.raises(ValueError, match="out of range"):
            exact_effective_resistances(grid_weighted, np.array([[0, n]]))
        with pytest.raises(ValueError, match="out of range"):
            exact_effective_resistances(grid_weighted, np.array([[-1, 3]]))
        with pytest.raises(ValueError, match="out of range"):
            approx_effective_resistances(
                grid_weighted, pairs=np.array([[0, n]])
            )

    def test_malformed_shape_raises(self, grid_weighted):
        with pytest.raises(ValueError, match=r"\(k, 2\)"):
            exact_effective_resistances(grid_weighted, np.array([0, 1, 2]))

    def test_self_pairs_short_circuit_to_zero(self, grid_weighted):
        pairs = np.array([[5, 5], [0, 1], [9, 9]])
        values = exact_effective_resistances(grid_weighted, pairs)
        assert values[0] == 0.0 and values[2] == 0.0
        assert values[1] > 0.0

    def test_all_self_pairs_need_no_factorization(self, grid_weighted):
        """A degenerate batch must not pay for a Laplacian factorization."""

        class _Boom:
            def solve(self, rhs):  # pragma: no cover - must not be hit
                raise AssertionError("solver used for self-pairs")

        pairs = np.array([[3, 3], [7, 7]])
        values = exact_effective_resistances(grid_weighted, pairs, solver=_Boom())
        assert np.array_equal(values, np.zeros(2))

    def test_self_pairs_excluded_from_solve_columns(self, grid_weighted):
        """Mixed batches spend solve columns only on distinct pairs."""
        columns = []

        class _Spy:
            def __init__(self, graph):
                from repro.solvers import DirectSolver

                self._inner = DirectSolver(graph.laplacian().tocsc())

            def solve(self, rhs):
                columns.append(rhs.shape[1])
                return self._inner.solve(rhs)

        pairs = np.array([[5, 5], [0, 1], [9, 9], [2, 40]])
        exact_effective_resistances(grid_weighted, pairs, solver=_Spy(grid_weighted))
        assert columns == [2]


class TestApproximatePairs:
    def test_pairs_match_edge_sketch(self, grid_weighted):
        """Explicitly passing the edge list equals the default output."""
        pairs = np.column_stack([grid_weighted.u, grid_weighted.v])
        default = approx_effective_resistances(grid_weighted, seed=5)
        explicit = approx_effective_resistances(grid_weighted, seed=5, pairs=pairs)
        assert np.array_equal(default, explicit)

    def test_non_edge_pairs_close_to_exact(self, grid_weighted):
        pairs = np.array([[0, grid_weighted.n - 1], [3, 77]])
        exact = exact_effective_resistances(grid_weighted, pairs)
        approx = approx_effective_resistances(
            grid_weighted, epsilon=0.2, seed=2, pairs=pairs
        )
        assert np.all(np.abs(approx - exact) / exact < 0.2)

    def test_self_pairs_exactly_zero(self, grid_weighted):
        values = approx_effective_resistances(
            grid_weighted, seed=0, pairs=np.array([[4, 4]])
        )
        assert values[0] == 0.0


class TestApproximate:
    def test_within_epsilon_mostly(self, grid_weighted):
        exact = exact_effective_resistances(grid_weighted)
        approx = approx_effective_resistances(grid_weighted, epsilon=0.2, seed=0)
        rel = np.abs(approx - exact) / exact
        # JL guarantee is probabilistic; check the bulk.
        assert np.median(rel) < 0.2
        assert rel.max() < 0.6

    def test_foster_sum_approximately(self, grid_weighted):
        approx = approx_effective_resistances(grid_weighted, epsilon=0.2, seed=1)
        total = float((grid_weighted.w * approx).sum())
        assert total == pytest.approx(grid_weighted.n - 1, rel=0.15)

    def test_invalid_epsilon(self, grid_weighted):
        with pytest.raises(ValueError, match="epsilon"):
            approx_effective_resistances(grid_weighted, epsilon=1.5)

    def test_deterministic_given_seed(self, grid_small):
        a = approx_effective_resistances(grid_small, seed=3)
        b = approx_effective_resistances(grid_small, seed=3)
        assert np.array_equal(a, b)
