"""End-to-end unit tests for the public sparsification API."""

import numpy as np
import pytest

from repro.graphs import Graph, disjoint_union, generators
from repro.sparsify import (
    SimilarityAwareSparsifier,
    exact_condition_number,
    sparsify_graph,
)


class TestSparsifyGraph:
    def test_meets_target_within_estimator_slack(self, grid_weighted):
        result = sparsify_graph(grid_weighted, sigma2=60.0, seed=0)
        assert result.converged
        kappa = exact_condition_number(grid_weighted, result.sparsifier)
        assert kappa <= 1.5 * 60.0

    def test_tighter_sigma_more_edges(self, grid_weighted):
        dense = sparsify_graph(grid_weighted, sigma2=20.0, seed=0)
        sparse = sparsify_graph(grid_weighted, sigma2=500.0, seed=0)
        assert dense.sparsifier.num_edges > sparse.sparsifier.num_edges

    def test_sparsifier_keeps_original_weights(self, grid_weighted):
        """§3.1: sparsifier edge weights equal the original ones."""
        result = sparsify_graph(grid_weighted, sigma2=100.0, seed=0)
        sp, g = result.sparsifier, grid_weighted
        idx = g.edge_indices(sp.u, sp.v)
        assert np.all(idx >= 0)
        assert np.allclose(sp.w, g.w[idx])

    def test_edge_mask_consistent(self, grid_weighted):
        result = sparsify_graph(grid_weighted, sigma2=100.0, seed=0)
        assert result.edge_mask.sum() == result.sparsifier.num_edges
        assert np.all(result.edge_mask[result.tree_indices])

    def test_deterministic_given_seed(self, grid_weighted):
        a = sparsify_graph(grid_weighted, sigma2=70.0, seed=42)
        b = sparsify_graph(grid_weighted, sigma2=70.0, seed=42)
        assert a.sparsifier == b.sparsifier

    def test_properties(self, grid_weighted):
        result = sparsify_graph(grid_weighted, sigma2=100.0, seed=0)
        assert result.density == pytest.approx(
            result.sparsifier.num_edges / grid_weighted.n
        )
        assert result.edge_reduction == pytest.approx(
            grid_weighted.num_edges / result.sparsifier.num_edges
        )
        assert result.num_off_tree_edges == (
            result.sparsifier.num_edges - (grid_weighted.n - 1)
        )
        assert result.total_seconds >= 0.0
        assert "sparsifier" in result.summary()

    def test_disconnected_routes_through_shards(self, path5, cycle6):
        # The serial kernel still rejects disconnected input ...
        graph = disjoint_union(path5, cycle6)
        with pytest.raises(ValueError, match="connected"):
            SimilarityAwareSparsifier(sigma2=10.0).sparsify(graph)
        # ... but the functional entry point shards per component.
        result = sparsify_graph(graph, sigma2=10.0, seed=0)
        assert result.sparsifier.num_edges <= graph.num_edges
        assert result.converged

    def test_trivial_graph_rejected(self):
        with pytest.raises(ValueError, match="2 vertices"):
            sparsify_graph(Graph(1), sigma2=10.0)

    def test_invalid_sigma2(self, grid_small):
        with pytest.raises(ValueError, match="sigma2"):
            sparsify_graph(grid_small, sigma2=0.5)


class TestSparsifierClass:
    def test_reusable_across_graphs(self):
        sparsifier = SimilarityAwareSparsifier(sigma2=100.0, seed=0)
        for factory in (
            lambda: generators.grid2d(10, 10, seed=1),
            lambda: generators.fem_mesh_2d(150, seed=2),
        ):
            g = factory()
            result = sparsifier.sparsify(g)
            assert result.sparsifier.n == g.n

    @pytest.mark.parametrize("tree_method", ["akpw", "spt", "maxw"])
    def test_tree_methods(self, grid_weighted, tree_method):
        result = SimilarityAwareSparsifier(
            sigma2=100.0, tree_method=tree_method, seed=0
        ).sparsify(grid_weighted)
        assert result.sparsifier.num_edges >= grid_weighted.n - 1

    def test_works_on_every_paper_family(self):
        """Smoke the full pipeline across all workload families."""
        cases = [
            generators.circuit_grid(10, 10, seed=1),
            generators.thermal_stack(6, 6, 4, seed=2),
            generators.ecology_grid(10, 10, seed=3),
            generators.barabasi_albert(300, 3, seed=4),
            generators.knn_graph(
                generators.gaussian_mixture_points(200, seed=5), k=8
            ),
            generators.protein_contact_graph(150, seed=6),
        ]
        for g in cases:
            result = sparsify_graph(g, sigma2=100.0, seed=0)
            assert result.sparsifier.num_edges <= g.num_edges
            assert result.sigma2_estimate > 0

    def test_quadratic_form_inequality_holds(self, grid_weighted, rng):
        """Eq. 2 with σ² = exact κ: sampled Rayleigh quotients stay inside."""
        from repro.sparsify import quadratic_form_ratios

        result = sparsify_graph(grid_weighted, sigma2=50.0, seed=0)
        kappa = exact_condition_number(grid_weighted, result.sparsifier)
        ratios = quadratic_form_ratios(
            grid_weighted, result.sparsifier, num_samples=32, seed=1
        )
        assert np.all(ratios >= 1.0 - 1e-9)
        assert np.all(ratios <= kappa * (1 + 1e-9))
