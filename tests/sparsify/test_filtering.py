"""Unit tests for θ_σ edge filtering (Eq. 15)."""

import numpy as np
import pytest

from repro.sparsify import filter_edges, heat_threshold, normalized_heats


class TestThreshold:
    def test_formula(self):
        # (sigma2 * lmin / lmax)^(2t+1) with t=2 -> power 5.
        value = heat_threshold(10.0, 1.0, 100.0, t=2)
        assert value == pytest.approx(0.1**5)

    def test_t_one_power_three(self):
        assert heat_threshold(10.0, 1.0, 100.0, t=1) == pytest.approx(0.1**3)

    def test_clipped_at_one_when_target_met(self):
        # sigma2 * lmin >= lmax -> no edges needed.
        assert heat_threshold(100.0, 1.0, 50.0) == 1.0

    def test_monotone_in_sigma2(self):
        weak = heat_threshold(400.0, 1.0, 1000.0)
        strong = heat_threshold(4.0, 1.0, 1000.0)
        assert strong < weak

    def test_invalid_sigma2(self):
        with pytest.raises(ValueError, match="sigma2"):
            heat_threshold(0.0, 1.0, 10.0)

    def test_invalid_eigenvalues(self):
        with pytest.raises(ValueError, match="estimates"):
            heat_threshold(10.0, -1.0, 10.0)

    def test_invalid_t(self):
        with pytest.raises(ValueError, match="t must be"):
            heat_threshold(10.0, 1.0, 100.0, t=0)


class TestNormalization:
    def test_max_is_one(self, rng):
        heats = rng.random(20)
        norm = normalized_heats(heats)
        assert norm.max() == pytest.approx(1.0)

    def test_empty(self):
        assert normalized_heats(np.array([])).size == 0

    def test_all_zero(self):
        norm = normalized_heats(np.zeros(5))
        assert np.all(norm == 0.0)


class TestFilterEdges:
    def test_passing_sorted_by_heat(self, rng):
        heats = rng.random(50)
        decision = filter_edges(heats, 0.3)
        passing_heats = heats[decision.passing]
        assert np.all(np.diff(passing_heats) <= 1e-15)

    def test_threshold_respected(self, rng):
        heats = rng.random(50)
        decision = filter_edges(heats, 0.5)
        norm = heats / heats.max()
        assert np.all(norm[decision.passing] >= 0.5)
        excluded = np.setdiff1d(np.arange(50), decision.passing)
        assert np.all(norm[excluded] < 0.5)

    def test_threshold_one_passes_nothing(self, rng):
        decision = filter_edges(rng.random(10), 1.0)
        assert decision.passing.size == 0

    def test_zero_threshold_passes_everything(self, rng):
        heats = rng.random(10)
        decision = filter_edges(heats, 0.0)
        assert decision.passing.size == 10

    def test_decision_records_inputs(self, rng):
        heats = rng.random(10)
        decision = filter_edges(heats, 0.25)
        assert decision.threshold == 0.25
        assert decision.normalized.shape == (10,)
