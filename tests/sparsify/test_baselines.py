"""Unit tests for the baseline sparsifiers."""

import numpy as np
import pytest

from repro.graphs import generators, is_connected
from repro.sparsify import (
    effective_resistance_sparsifier,
    exact_condition_number,
    sparsify_graph,
    top_k_heat_sparsifier,
    tree_sparsifier,
    uniform_sparsifier,
)


class TestTreeSparsifier:
    def test_is_spanning_tree(self, grid_weighted):
        t = tree_sparsifier(grid_weighted, seed=0)
        assert t.num_edges == grid_weighted.n - 1
        assert is_connected(t)


class TestUniformSparsifier:
    def test_edge_budget(self, grid_weighted):
        s = uniform_sparsifier(grid_weighted, 30, seed=0)
        assert s.num_edges == grid_weighted.n - 1 + 30
        assert is_connected(s)

    def test_budget_clamped_to_available(self, path5):
        s = uniform_sparsifier(path5, 100, seed=0)
        assert s.num_edges == path5.num_edges

    def test_zero_budget(self, grid_weighted):
        s = uniform_sparsifier(grid_weighted, 0, seed=0)
        assert s.num_edges == grid_weighted.n - 1


class TestEffectiveResistanceSparsifier:
    def test_connected_and_sparser(self):
        g = generators.grid2d(15, 15, weights="uniform", seed=2)
        s = effective_resistance_sparsifier(g, num_samples=2 * g.n, seed=0)
        assert is_connected(s)
        assert s.num_edges < g.num_edges

    def test_better_than_tree(self):
        g = generators.grid2d(12, 12, weights="uniform", seed=3)
        t = tree_sparsifier(g, seed=0)
        s = effective_resistance_sparsifier(g, num_samples=4 * g.n, seed=0)
        assert exact_condition_number(g, s) < exact_condition_number(g, t)

    def test_unconnected_variant(self):
        g = generators.grid2d(10, 10, seed=4)
        s = effective_resistance_sparsifier(
            g, num_samples=20, seed=0, ensure_connected=False
        )
        assert s.num_edges <= 20

    def test_invalid_samples(self, grid_small):
        with pytest.raises(ValueError, match="num_samples"):
            effective_resistance_sparsifier(grid_small, 0)


class TestTopKHeatSparsifier:
    def test_budget_respected(self, grid_weighted):
        s = top_k_heat_sparsifier(grid_weighted, num_off_tree=25, seed=0)
        assert s.num_edges == grid_weighted.n - 1 + 25
        assert is_connected(s)

    def test_zero_budget_is_tree(self, grid_weighted):
        s = top_k_heat_sparsifier(grid_weighted, num_off_tree=0, seed=0)
        assert s.num_edges == grid_weighted.n - 1

    def test_beats_uniform_at_same_budget_on_heavy_tailed_weights(self):
        """Heat-ranked recovery beats random recovery (the [9] claim).

        The advantage lives on graphs where a few high-stretch edges
        dominate (heavy-tailed conductances); on homogeneous grids all
        edges are nearly interchangeable and uniform is competitive.
        """
        g = generators.grid2d(14, 14, weights="lognormal", seed=7, spread=2.0)
        budget = 30
        heat = top_k_heat_sparsifier(g, budget, seed=0)
        kappas_uniform = [
            exact_condition_number(g, uniform_sparsifier(g, budget, seed=s))
            for s in range(4)
        ]
        assert exact_condition_number(g, heat) < min(kappas_uniform)

    def test_iterative_beats_one_shot_at_matched_budget(self):
        """The paper's point: iterative densification with re-embedding
        beats a one-shot top-k ranking of the same size, because one-shot
        rankings pile onto the same few dominant eigenvalues."""
        g = generators.circuit_grid(12, 12, seed=5)
        result = sparsify_graph(g, sigma2=100.0, seed=0)
        one_shot = top_k_heat_sparsifier(g, result.num_off_tree_edges, seed=0)
        assert (
            exact_condition_number(g, result.sparsifier)
            < exact_condition_number(g, one_shot)
        )
