"""Unit tests for the Joule-heat edge embedding (Eqs. 6, 12)."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.sparsify import default_num_vectors, joule_heats, power_iterate
from repro.trees import RootedTree, TreeSolver, edge_stretches, low_stretch_tree


@pytest.fixture
def tree_setup(grid_weighted):
    idx = low_stretch_tree(grid_weighted, seed=0)
    solver = TreeSolver(RootedTree.from_graph(grid_weighted, idx))
    mask = np.zeros(grid_weighted.num_edges, dtype=bool)
    mask[idx] = True
    off = np.flatnonzero(~mask)
    return grid_weighted, idx, solver, off


class TestDefaults:
    def test_default_num_vectors_logarithmic(self):
        assert default_num_vectors(2) >= 4
        assert default_num_vectors(1024) == 10
        assert default_num_vectors(10**6) == 20


class TestPowerIterate:
    def test_shape(self, tree_setup):
        graph, _, solver, _ = tree_setup
        H = power_iterate(graph, solver, t=2, num_vectors=5, seed=0)
        assert H.shape == (graph.n, 5)

    def test_columns_mean_free(self, tree_setup):
        graph, _, solver, _ = tree_setup
        H = power_iterate(graph, solver, t=2, num_vectors=4, seed=1)
        assert np.abs(H.mean(axis=0)).max() < 1e-10

    def test_amplifies_dominant_direction(self, tree_setup):
        """More steps => iterate increasingly dominated by top eigenvector."""
        graph, idx, solver, _ = tree_setup
        from repro.spectral import generalized_power_iteration

        LG = graph.laplacian()
        LP = graph.edge_subgraph(idx).laplacian()
        h1 = power_iterate(graph, solver, t=1, num_vectors=1, seed=3)[:, 0]
        h4 = power_iterate(graph, solver, t=4, num_vectors=1, seed=3)[:, 0]

        def rayleigh(h):
            return float(h @ (LG @ h)) / float(h @ (LP @ h))

        assert rayleigh(h4) >= rayleigh(h1) - 1e-9

    def test_invalid_t(self, tree_setup):
        graph, _, solver, _ = tree_setup
        with pytest.raises(ValueError, match="t must be"):
            power_iterate(graph, solver, t=0)

    def test_invalid_num_vectors(self, tree_setup):
        graph, _, solver, _ = tree_setup
        with pytest.raises(ValueError, match="num_vectors"):
            power_iterate(graph, solver, num_vectors=0)


class TestJouleHeats:
    def test_nonnegative(self, tree_setup):
        graph, _, solver, off = tree_setup
        heats = joule_heats(graph, solver, off, seed=0)
        assert np.all(heats >= 0)
        assert heats.shape == (off.size,)

    def test_deterministic_given_seed(self, tree_setup):
        graph, _, solver, off = tree_setup
        a = joule_heats(graph, solver, off, seed=7)
        b = joule_heats(graph, solver, off, seed=7)
        assert np.array_equal(a, b)

    def test_correlates_with_stretch(self, tree_setup):
        """§3.3: high-heat off-tree edges are the high-stretch edges."""
        graph, idx, solver, off = tree_setup
        heats = joule_heats(graph, solver, off, t=2, num_vectors=12, seed=0)
        stretches = edge_stretches(graph, idx).stretches[off]
        # Top-quartile overlap between the two rankings.
        k = max(4, off.size // 4)
        top_heat = set(np.argsort(-heats)[:k].tolist())
        top_stretch = set(np.argsort(-stretches)[:k].tolist())
        overlap = len(top_heat & top_stretch) / k
        assert overlap > 0.5

    def test_sum_equals_quadratic_form(self, tree_setup):
        """Eq. 6: Σ heats = h' (L_G − L_P) h for a single probe."""
        graph, idx, solver, off = tree_setup
        H = power_iterate(graph, solver, t=2, num_vectors=1, seed=4)
        h = H[:, 0]
        LG = graph.laplacian()
        LP = graph.edge_subgraph(idx).laplacian()
        direct = float(h @ ((LG - LP) @ h))
        diffs = h[graph.u[off]] - h[graph.v[off]]
        heats = graph.w[off] * diffs**2
        assert heats.sum() == pytest.approx(direct, rel=1e-9)

    def test_critical_chord_outheats_redundant_chord(self):
        """Relative ranking: a high-stretch chord draws far more heat
        than a low-stretch (redundant) one."""
        from repro.graphs import Graph

        # Tree: unit path 0-1-2-3-4. Chords: (0,4) w=1 (stretch 4) and
        # (0,2) w=0.001 (stretch 0.002).
        g = Graph(
            5,
            [0, 1, 2, 3, 0, 0],
            [1, 2, 3, 4, 4, 2],
            [1.0, 1.0, 1.0, 1.0, 1.0, 0.001],
        )
        tree_idx = g.edge_indices(
            np.array([0, 1, 2, 3]), np.array([1, 2, 3, 4])
        )
        solver = TreeSolver(RootedTree.from_graph(g, tree_idx))
        off = np.setdiff1d(np.arange(g.num_edges), tree_idx)
        heats = joule_heats(g, solver, off, num_vectors=8, seed=0)
        critical = off == g.edge_indices(np.array([0]), np.array([4]))[0]
        assert heats[critical][0] > 100.0 * heats[~critical][0]
