"""Unit tests for incremental sparsifier refinement (§3.1c)."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.sparsify import (
    densify,
    exact_condition_number,
    refine_sparsifier,
    sparsify_graph,
)
from repro.trees import low_stretch_tree


@pytest.fixture(scope="module")
def coarse():
    graph = generators.circuit_grid(14, 14, seed=9)
    return graph, sparsify_graph(graph, sigma2=400.0, seed=0)


class TestRefine:
    def test_preserves_existing_edges(self, coarse):
        graph, result = coarse
        fine = refine_sparsifier(result, sigma2=50.0, seed=0)
        assert np.all(fine.edge_mask[result.edge_mask])

    def test_reaches_tighter_target(self, coarse):
        graph, result = coarse
        fine = refine_sparsifier(result, sigma2=50.0, seed=0)
        assert fine.converged
        kappa = exact_condition_number(graph, fine.sparsifier)
        assert kappa <= 1.6 * 50.0

    def test_matches_direct_quality(self, coarse):
        """Refinement reaches comparable quality to sparsifying from
        scratch at the tight target."""
        graph, result = coarse
        fine = refine_sparsifier(result, sigma2=50.0, seed=0)
        direct = sparsify_graph(graph, sigma2=50.0, seed=0)
        kappa_fine = exact_condition_number(graph, fine.sparsifier)
        kappa_direct = exact_condition_number(graph, direct.sparsifier)
        assert kappa_fine <= 1.6 * 50.0
        assert kappa_direct <= 1.6 * 50.0

    def test_looser_target_noop(self, coarse):
        graph, result = coarse
        same = refine_sparsifier(result, sigma2=800.0, seed=0)
        assert same is result

    def test_iterations_accumulate(self, coarse):
        graph, result = coarse
        fine = refine_sparsifier(result, sigma2=50.0, seed=0)
        assert len(fine.iterations) > len(result.iterations)
        assert fine.densify_seconds >= result.densify_seconds

    def test_densify_initial_mask_validation(self, coarse):
        graph, result = coarse
        tree = low_stretch_tree(graph, seed=1)
        with pytest.raises(ValueError, match="shape"):
            densify(graph, tree, sigma2=50.0,
                    initial_mask=np.zeros(3, dtype=bool))
        bad = np.zeros(graph.num_edges, dtype=bool)
        with pytest.raises(ValueError, match="tree edge"):
            densify(graph, tree, sigma2=50.0, initial_mask=bad)

    def test_densify_accepts_tree_only_mask(self, coarse):
        graph, _ = coarse
        tree = low_stretch_tree(graph, seed=1)
        mask = np.zeros(graph.num_edges, dtype=bool)
        mask[tree] = True
        result = densify(graph, tree, sigma2=100.0, seed=0, initial_mask=mask)
        assert result.converged or result.num_edges >= tree.size
