"""Unit tests for similarity metrics."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.sparsify import (
    SimilarityEstimate,
    estimate_condition_number,
    exact_condition_number,
    quadratic_form_ratios,
    sparsify_graph,
)


class TestExactConditionNumber:
    def test_graph_with_itself_is_one(self, grid_weighted):
        assert exact_condition_number(grid_weighted, grid_weighted) == pytest.approx(
            1.0, abs=1e-8
        )

    def test_subgraph_at_least_one(self, grid_weighted):
        result = sparsify_graph(grid_weighted, sigma2=100.0, seed=0)
        assert exact_condition_number(grid_weighted, result.sparsifier) >= 1.0


class TestEstimate:
    def test_within_exact_extremes(self, grid_weighted):
        from repro.spectral import exact_extreme_generalized_eigs

        result = sparsify_graph(grid_weighted, sigma2=100.0, seed=0)
        est = estimate_condition_number(
            grid_weighted, result.sparsifier, power_iterations=12, seed=0
        )
        lmin, lmax = exact_extreme_generalized_eigs(
            grid_weighted.laplacian(), result.sparsifier.laplacian()
        )
        assert est.lambda_max <= lmax * (1 + 1e-9)
        assert est.lambda_min >= lmin - 1e-9

    def test_sigma_is_sqrt_kappa(self):
        est = SimilarityEstimate(lambda_max=100.0, lambda_min=4.0)
        assert est.condition_number == pytest.approx(25.0)
        assert est.sigma == pytest.approx(5.0)

    def test_custom_solver_accepted(self, grid_weighted):
        from repro.solvers import DirectSolver

        result = sparsify_graph(grid_weighted, sigma2=100.0, seed=0)
        solver = DirectSolver(result.sparsifier.laplacian().tocsc())
        est = estimate_condition_number(
            grid_weighted, result.sparsifier, solver=solver, seed=0
        )
        assert est.condition_number >= 1.0


class TestQuadraticFormRatios:
    def test_bounded_by_exact_extremes(self, grid_weighted):
        from repro.spectral import exact_extreme_generalized_eigs

        result = sparsify_graph(grid_weighted, sigma2=50.0, seed=0)
        lmin, lmax = exact_extreme_generalized_eigs(
            grid_weighted.laplacian(), result.sparsifier.laplacian()
        )
        ratios = quadratic_form_ratios(
            grid_weighted, result.sparsifier, num_samples=64, seed=2
        )
        assert ratios.min() >= lmin - 1e-9
        assert ratios.max() <= lmax + 1e-9

    def test_identity_pencil_all_ones(self, grid_small):
        ratios = quadratic_form_ratios(grid_small, grid_small, num_samples=16, seed=0)
        assert np.allclose(ratios, 1.0)

    def test_invalid_samples(self, grid_small):
        with pytest.raises(ValueError, match="num_samples"):
            quadratic_form_ratios(grid_small, grid_small, num_samples=0)
