"""Tests for the shard-parallel sparsification pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, generators
from repro.graphs.operations import disjoint_union
from repro.sparsify import (
    ShardedSparsifier,
    ShardedSparsifyResult,
    SimilarityAwareSparsifier,
    plan_shards,
    shard_rngs,
    sparsify_graph,
)

SIGMA2 = 100.0


@pytest.fixture
def three_components() -> Graph:
    """Disjoint union of three differently-sized connected graphs."""
    g = disjoint_union(
        generators.grid2d(10, 10, weights="uniform", seed=0),
        generators.grid2d(8, 8, weights="lognormal", seed=1),
    )
    return disjoint_union(g, generators.circuit_grid(6, 6, seed=2))


class TestPlanShards:
    def test_components_become_shards(self, three_components):
        plan = plan_shards(three_components)
        assert plan.num_components == 3
        assert len(plan.shards) == 3
        assert plan.cut_edge_indices.size == 0

    def test_shards_partition_vertices(self, three_components):
        plan = plan_shards(three_components)
        all_vertices = np.concatenate([s.vertices for s in plan.shards])
        assert np.array_equal(np.sort(all_vertices),
                              np.arange(three_components.n))
        assert np.array_equal(
            plan.shard_of[all_vertices[np.argsort(all_vertices)]],
            np.repeat(
                [s.index for s in plan.shards],
                [s.vertices.size for s in plan.shards],
            )[np.argsort(all_vertices)],
        )

    def test_shard_edges_are_induced(self, three_components):
        plan = plan_shards(three_components)
        total = sum(s.graph.num_edges for s in plan.shards)
        assert total == three_components.num_edges

    def test_max_nodes_splits_connected_graph(self):
        graph = generators.grid2d(14, 14, weights="uniform", seed=3)
        plan = plan_shards(graph, shard_max_nodes=60)
        assert len(plan.shards) >= 4
        assert all(s.graph.n <= 60 for s in plan.shards)
        assert plan.cut_edge_indices.size > 0
        # Cut edges + intra-shard edges account for every host edge.
        intra = sum(s.graph.num_edges for s in plan.shards)
        assert intra + plan.cut_edge_indices.size == graph.num_edges

    def test_split_shards_are_connected(self):
        from repro.graphs import is_connected

        graph = generators.fem_mesh_2d(300, seed=5)
        plan = plan_shards(graph, shard_max_nodes=80)
        assert all(is_connected(s.graph) for s in plan.shards if s.graph.n > 1)

    def test_invalid_max_nodes(self, three_components):
        with pytest.raises(ValueError, match="shard_max_nodes"):
            plan_shards(three_components, shard_max_nodes=0)


class TestDeterminism:
    """Same seed => identical stitched mask, whatever the worker count."""

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1),
        ("thread", 2),
        ("thread", 4),
        ("process", 2),
    ])
    def test_mask_independent_of_workers(self, three_components, backend, workers):
        reference = ShardedSparsifier(
            sigma2=SIGMA2, seed=42, workers=1, backend="serial"
        ).sparsify(three_components)
        run = ShardedSparsifier(
            sigma2=SIGMA2, seed=42, workers=workers, backend=backend
        ).sparsify(three_components)
        assert np.array_equal(reference.edge_mask, run.edge_mask)
        assert run.backend == backend
        assert run.workers == workers

    def test_mask_independent_of_workers_with_splitting(self):
        graph = generators.grid2d(12, 12, weights="uniform", seed=7)
        masks = [
            ShardedSparsifier(
                sigma2=SIGMA2, seed=3, workers=workers, backend="thread",
                shard_max_nodes=50,
            ).sparsify(graph).edge_mask
            for workers in (1, 3)
        ]
        assert np.array_equal(masks[0], masks[1])

    def test_different_seeds_differ(self, three_components):
        a = ShardedSparsifier(sigma2=SIGMA2, seed=0).sparsify(three_components)
        b = ShardedSparsifier(sigma2=SIGMA2, seed=1).sparsify(three_components)
        # Trees are random; identical masks would be astronomically unlikely.
        assert not np.array_equal(a.tree_indices, b.tree_indices)


class TestDisconnectedParity:
    """Stitched result == union of per-component serial runs."""

    def test_matches_per_component_serial(self, three_components):
        graph = three_components
        sharded = ShardedSparsifier(sigma2=SIGMA2, seed=11).sparsify(graph)
        plan = plan_shards(graph)
        rngs = shard_rngs(11, len(plan.shards))
        expected = np.zeros(graph.num_edges, dtype=bool)
        for shard in plan.shards:
            local = SimilarityAwareSparsifier(
                sigma2=SIGMA2, seed=rngs[shard.index]
            ).sparsify(shard.graph)
            host = graph.edge_indices(
                shard.vertices[shard.graph.u], shard.vertices[shard.graph.v]
            )
            expected[host[local.edge_mask]] = True
        assert np.array_equal(sharded.edge_mask, expected)

    def test_single_shard_matches_serial_pipeline(self):
        graph = generators.grid2d(13, 13, weights="uniform", seed=9)
        serial = SimilarityAwareSparsifier(sigma2=SIGMA2, seed=5).sparsify(graph)
        sharded = ShardedSparsifier(
            sigma2=SIGMA2, seed=5, workers=4, backend="thread"
        ).sparsify(graph)
        assert np.array_equal(serial.edge_mask, sharded.edge_mask)
        assert np.array_equal(serial.tree_indices,
                              np.sort(sharded.tree_indices))

    def test_aggregated_stats(self, three_components):
        result = ShardedSparsifier(sigma2=SIGMA2, seed=0).sparsify(three_components)
        assert isinstance(result, ShardedSparsifyResult)
        assert result.num_components == 3
        assert len(result.shards) == 3
        per_shard = [s.sigma2_estimate for s in result.shards]
        assert result.sigma2_estimate == pytest.approx(np.nanmax(per_shard))
        assert result.converged == all(s.converged for s in result.shards)
        assert result.sparsifier.num_edges == sum(
            s.sparsifier_edges for s in result.shards
        )
        assert "shards" in result.summary()


class TestSparsifyGraphRouting:
    def test_disconnected_routes_through_shards(self, three_components):
        result = sparsify_graph(three_components, sigma2=SIGMA2, seed=0)
        assert isinstance(result, ShardedSparsifyResult)
        assert result.converged

    def test_connected_default_stays_serial(self):
        graph = generators.grid2d(8, 8, weights="uniform", seed=0)
        result = sparsify_graph(graph, sigma2=SIGMA2, seed=0)
        assert not isinstance(result, ShardedSparsifyResult)

    def test_workers_forces_sharded_path(self):
        graph = generators.grid2d(8, 8, weights="uniform", seed=0)
        serial = sparsify_graph(graph, sigma2=SIGMA2, seed=0)
        sharded = sparsify_graph(graph, sigma2=SIGMA2, seed=0, workers=2)
        assert isinstance(sharded, ShardedSparsifyResult)
        assert np.array_equal(serial.edge_mask, sharded.edge_mask)

    def test_isolated_vertices_pass_through(self):
        triangle_plus_isolated = Graph(5, [0, 1, 2], [1, 2, 0])
        result = sparsify_graph(triangle_plus_isolated, sigma2=SIGMA2, seed=0)
        assert result.num_components == 3
        trivial = [s for s in result.shards if s.num_edges == 0]
        assert len(trivial) == 2
        assert all(s.converged and np.isnan(s.sigma2_estimate) for s in trivial)

    def test_cut_edges_always_kept(self):
        graph = generators.grid2d(12, 12, weights="uniform", seed=1)
        result = sparsify_graph(
            graph, sigma2=SIGMA2, seed=0, shard_max_nodes=50
        )
        assert result.cut_edge_indices.size > 0
        assert bool(result.edge_mask[result.cut_edge_indices].all())

    def test_sparsifier_spans_every_component(self, three_components):
        from repro.graphs import connected_components

        result = sparsify_graph(three_components, sigma2=SIGMA2, seed=2)
        count, _ = connected_components(result.sparsifier)
        assert count == result.num_components


class TestBackendResolution:
    def test_single_task_records_serial_backend(self):
        """A pool of one is never created, so the result must not claim
        a pool backend was used."""
        graph = generators.grid2d(9, 9, weights="uniform", seed=0)
        result = ShardedSparsifier(
            sigma2=SIGMA2, seed=0, workers=4, backend="process"
        ).sparsify(graph)
        assert result.backend == "serial"

    def test_shard_stats_carry_lambda_extremes(self, three_components):
        result = ShardedSparsifier(sigma2=SIGMA2, seed=0).sparsify(
            three_components
        )
        for stats in result.shards:
            assert np.isfinite(stats.lambda_max_first)
            assert np.isfinite(stats.lambda_max_last)
            assert stats.lambda_max_first >= stats.lambda_max_last


class TestValidation:
    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ShardedSparsifier(backend="mpi")

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ShardedSparsifier(workers=0)

    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError, match="at least 2"):
            ShardedSparsifier().sparsify(Graph(1))
