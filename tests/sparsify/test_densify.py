"""Unit tests for the iterative graph densification loop (§3.7)."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.sparsify import densify, exact_condition_number
from repro.trees import low_stretch_tree


@pytest.fixture
def grid_with_tree():
    g = generators.grid2d(14, 14, weights="uniform", seed=4)
    return g, low_stretch_tree(g, seed=0)


class TestConvergence:
    def test_reaches_target(self, grid_with_tree):
        g, tree = grid_with_tree
        result = densify(g, tree, sigma2=80.0, seed=0)
        assert result.converged
        assert result.final_sigma2_estimate <= 80.0

    def test_exact_condition_close_to_target(self, grid_with_tree):
        """The certified estimate tracks the exact condition number."""
        g, tree = grid_with_tree
        result = densify(g, tree, sigma2=80.0, seed=0)
        kappa = exact_condition_number(g, g.edge_subgraph(result.edge_mask))
        # λmax power iteration underestimates slightly: allow 50% slack.
        assert kappa <= 1.5 * 80.0

    def test_mask_contains_tree(self, grid_with_tree):
        g, tree = grid_with_tree
        result = densify(g, tree, sigma2=100.0, seed=0)
        assert np.all(result.edge_mask[tree])

    def test_lambda_max_decreases(self, grid_with_tree):
        g, tree = grid_with_tree
        result = densify(g, tree, sigma2=30.0, seed=0)
        lmaxes = [it.lambda_max for it in result.iterations]
        assert all(b <= a * 1.05 for a, b in zip(lmaxes, lmaxes[1:]))

    def test_tighter_target_more_edges(self, grid_with_tree):
        g, tree = grid_with_tree
        loose = densify(g, tree, sigma2=300.0, seed=0)
        tight = densify(g, tree, sigma2=20.0, seed=0)
        assert tight.num_edges > loose.num_edges

    def test_already_satisfied_adds_nothing(self):
        """A dense target on a near-complete sparsifier stops immediately."""
        g = generators.grid2d(8, 8, seed=1)
        tree = low_stretch_tree(g, seed=0)
        # Use the whole graph as 'tree indices' is not allowed; instead use
        # a huge sigma2 that the raw tree may not meet but a single pass
        # certifies quickly: check it never exceeds max_iterations.
        result = densify(g, tree, sigma2=1e9, seed=0)
        assert result.converged
        assert result.num_edges == g.n - 1  # nothing added


class TestControls:
    def test_max_edges_per_iteration_respected(self, grid_with_tree):
        g, tree = grid_with_tree
        result = densify(g, tree, sigma2=30.0, max_edges_per_iteration=10, seed=0)
        for it in result.iterations:
            assert it.num_added <= 10

    def test_max_iterations_respected(self, grid_with_tree):
        g, tree = grid_with_tree
        result = densify(g, tree, sigma2=2.0, max_iterations=3, seed=0)
        assert len(result.iterations) <= 3

    def test_similarity_none_adds_more_per_pass(self, grid_with_tree):
        g, tree = grid_with_tree
        strict = densify(g, tree, sigma2=50.0, similarity_mode="endpoint",
                         max_edges_per_iteration=10**9, seed=0)
        loose = densify(g, tree, sigma2=50.0, similarity_mode="none",
                        max_edges_per_iteration=10**9, seed=0)
        assert loose.iterations[0].num_added >= strict.iterations[0].num_added

    def test_amg_solver_method(self, grid_with_tree):
        g, tree = grid_with_tree
        result = densify(g, tree, sigma2=80.0, solver_method="amg", seed=0)
        assert result.converged or result.num_edges > g.n - 1

    def test_unknown_solver_rejected(self, grid_with_tree):
        g, tree = grid_with_tree
        # The tree iteration uses the tree solver; force off-tree first.
        with pytest.raises(ValueError, match="solver method"):
            densify(g, tree, sigma2=10.0, solver_method="qr", seed=0,
                    max_iterations=5)

    def test_invalid_sigma2(self, grid_with_tree):
        g, tree = grid_with_tree
        with pytest.raises(ValueError, match="sigma2"):
            densify(g, tree, sigma2=1.0)

    def test_invalid_max_iterations(self, grid_with_tree):
        g, tree = grid_with_tree
        with pytest.raises(ValueError, match="max_iterations"):
            densify(g, tree, sigma2=10.0, max_iterations=0)


class TestDiagnostics:
    def test_iteration_records_complete(self, grid_with_tree):
        g, tree = grid_with_tree
        result = densify(g, tree, sigma2=60.0, seed=0)
        assert len(result.iterations) >= 1
        for it in result.iterations:
            assert it.lambda_max > 0
            assert it.lambda_min >= 1.0 - 1e-9
            assert 0.0 <= it.threshold <= 1.0
            assert it.num_edges >= g.n - 1
            assert it.elapsed >= 0.0

    def test_empty_result_sigma_nan(self):
        from repro.sparsify import DensifyResult

        empty = DensifyResult(
            edge_mask=np.zeros(3, dtype=bool), converged=False, sigma2_target=10.0
        )
        assert np.isnan(empty.final_sigma2_estimate)
