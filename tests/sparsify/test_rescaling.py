"""Unit tests for the optional edge re-scaling schemes (§3.1)."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.sparsify import (
    rescale_for_similarity,
    sparsify_graph,
    tune_off_tree_scale,
)
from repro.spectral import dense_generalized_eigs


@pytest.fixture(scope="module")
def sparsified():
    graph = generators.grid2d(14, 14, weights="lognormal", seed=8, spread=1.5)
    result = sparsify_graph(graph, sigma2=100.0, seed=0)
    return graph, result


def best_sigma(graph, sparsifier) -> float:
    """Exact Eq. 2 σ: both inequalities must hold."""
    vals = dense_generalized_eigs(graph.laplacian(), sparsifier.laplacian())
    return float(max(vals[-1], 1.0 / vals[0]))


class TestGlobalRescaling:
    def test_improves_two_sided_sigma(self, sparsified):
        graph, result = sparsified
        before = best_sigma(graph, result.sparsifier)
        rescaled = rescale_for_similarity(graph, result.sparsifier, seed=0)
        after = best_sigma(graph, rescaled.sparsifier)
        assert after < before

    def test_sigma_close_to_sqrt_kappa(self, sparsified):
        graph, result = sparsified
        rescaled = rescale_for_similarity(graph, result.sparsifier, seed=0)
        vals = dense_generalized_eigs(graph.laplacian(),
                                      result.sparsifier.laplacian())
        exact_sqrt_kappa = float(np.sqrt(vals[-1] / vals[0]))
        after = best_sigma(graph, rescaled.sparsifier)
        # Within estimator tolerance of the optimum.
        assert after <= 1.3 * exact_sqrt_kappa

    def test_topology_unchanged(self, sparsified):
        graph, result = sparsified
        rescaled = rescale_for_similarity(graph, result.sparsifier, seed=0)
        assert rescaled.sparsifier.num_edges == result.sparsifier.num_edges
        assert np.array_equal(rescaled.sparsifier.u, result.sparsifier.u)

    def test_reported_kappa_positive(self, sparsified):
        graph, result = sparsified
        rescaled = rescale_for_similarity(graph, result.sparsifier, seed=0)
        assert rescaled.condition_number >= 1.0
        assert rescaled.sigma == pytest.approx(
            np.sqrt(rescaled.condition_number)
        )


class TestOffTreeTuning:
    def test_never_worse_than_unit_scale(self, sparsified):
        graph, result = sparsified
        tuned = tune_off_tree_scale(
            graph, result.sparsifier, result.tree_indices, seed=0
        )
        vals_unit = dense_generalized_eigs(
            graph.laplacian(), result.sparsifier.laplacian()
        )
        kappa_unit = float(vals_unit[-1] / vals_unit[0])
        vals_tuned = dense_generalized_eigs(
            graph.laplacian(), tuned.sparsifier.laplacian()
        )
        kappa_tuned = float(vals_tuned[-1] / vals_tuned[0])
        # Estimator noise can mislead the grid search slightly; the tuned
        # result must at least not significantly regress.
        assert kappa_tuned <= 1.15 * kappa_unit

    def test_scale_from_candidate_grid(self, sparsified):
        graph, result = sparsified
        grid = np.array([1.0, 2.0])
        tuned = tune_off_tree_scale(
            graph, result.sparsifier, result.tree_indices,
            candidates=grid, seed=0,
        )
        assert tuned.scale in grid

    def test_invalid_candidate_rejected(self, sparsified):
        graph, result = sparsified
        with pytest.raises(ValueError, match="positive"):
            tune_off_tree_scale(
                graph, result.sparsifier, result.tree_indices,
                candidates=np.array([0.0]), seed=0,
            )
