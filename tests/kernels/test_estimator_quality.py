"""Quality contract of the perturbation estimator backend.

Unlike the compute-kernel backends (bit-parity contract, see
``test_parity.py``), the ``estimator`` kernel family trades exactness
for solves: the ``perturbation`` backend reuses the last confirmed
``lambda_max`` as a monotone upper bound on skip rounds (densification
only adds edges, so the true generalized eigenvalue can only fall).
Its contract is therefore *quality-banded*, pinned here across the
parity corpus plus degenerate shapes:

1. convergence — the perturbation run certifies whenever the
   reference run certifies;
2. target honoured — a certified run's ``sigma2_estimate`` is at most
   the requested ``sigma2``;
3. one-sided band — the certified estimate never exceeds
   ``SIGMA2_QUALITY_FACTOR`` times the reference backend's (skip
   rounds substitute an upper bound for λmax, so the backend can only
   certify *deeper* below the target, never looser);
4. density — the extra depth costs at most
   ``DENSITY_OVERHEAD_FACTOR`` times the reference edge count.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph, generators
from repro.graphs.operations import disjoint_union
from repro.kernels import ESTIMATOR_BACKENDS, resolve_estimator_backend
from repro.kernels.estimator import (
    DENSITY_OVERHEAD_FACTOR,
    SIGMA2_QUALITY_FACTOR,
    estimator_perturbation,
    rayleigh_bound,
)
from repro.obs import enable_metrics, get_metrics
from repro.sparsify import SimilarityAwareSparsifier, sparsify_graph

from tests.property.test_property_trees import connected_graphs

#: Structural regimes: structured (grids, circuit), scale-free,
#: disconnected (routes through shards), and degenerate shapes.
CORPUS = {
    "grid": lambda: generators.grid2d(20, 20, weights="uniform", seed=3),
    "weighted_grid": lambda: generators.grid2d(
        14, 14, weights="lognormal", seed=9
    ),
    "fem": lambda: generators.fem_mesh_2d(150, seed=4),
    "scale_free": lambda: generators.barabasi_albert(200, 4, seed=1),
    "circuit": lambda: generators.circuit_grid(12, 12, seed=2),
    "disconnected": lambda: disjoint_union(
        generators.grid2d(9, 9, weights="uniform", seed=0),
        generators.barabasi_albert(60, 3, seed=5),
    ),
    "single_edge": lambda: Graph(2, [0], [1], [1.5]),
    "path": lambda: generators.path_graph(30),  # empty off-tree set
}


def _assert_quality(ref, pert, sigma2):
    """The four contract clauses, shared by corpus and property runs."""
    if ref.converged:
        assert pert.converged, "perturbation must certify when reference does"
    if pert.converged and not math.isnan(pert.sigma2_estimate):
        assert pert.sigma2_estimate <= sigma2 * (1 + 1e-12)
    r, p = ref.sigma2_estimate, pert.sigma2_estimate
    if ref.converged and pert.converged and r > 0 and p > 0:
        assert p <= r * SIGMA2_QUALITY_FACTOR, (
            f"certified sigma2 {p:.3f} looser than the one-sided "
            f"{SIGMA2_QUALITY_FACTOR}x band over reference {r:.3f}"
        )
    assert (
        pert.sparsifier.num_edges
        <= ref.sparsifier.num_edges * DENSITY_OVERHEAD_FACTOR
    ), "skip-round over-densification exceeded the declared overhead"


class TestQualityContract:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_corpus(self, name, seed):
        g = CORPUS[name]()
        sigma2 = 30.0
        ref = sparsify_graph(
            g, sigma2=sigma2, seed=seed, estimator_backend="reference"
        )
        pert = sparsify_graph(
            g, sigma2=sigma2, seed=seed, estimator_backend="perturbation"
        )
        _assert_quality(ref, pert, sigma2)
        # Upper-bound tracking never loosens the sparsifier: skip
        # rounds only densify more aggressively.
        assert pert.sparsifier.num_edges >= ref.tree_indices.size

    @given(
        connected_graphs(max_n=16),
        st.integers(min_value=0, max_value=10**4),
        st.sampled_from([20.0, 60.0]),
    )
    @settings(max_examples=12, deadline=None)
    def test_property_random_graphs(self, graph, seed, sigma2):
        ref = sparsify_graph(
            graph, sigma2=sigma2, seed=seed, estimator_backend="reference"
        )
        pert = sparsify_graph(
            graph, sigma2=sigma2, seed=seed, estimator_backend="perturbation"
        )
        _assert_quality(ref, pert, sigma2)

    def test_refresh_one_never_skips(self):
        """``estimator_refresh=1`` disables skip rounds entirely; the
        run still certifies the target."""
        g = CORPUS["grid"]()
        pert = sparsify_graph(
            g, sigma2=30.0, seed=3, estimator_backend="perturbation",
            estimator_refresh=1,
        )
        assert pert.converged
        assert pert.sigma2_estimate <= 30.0


class TestBracketMechanics:
    """Direct unit pins of the perturbation backend's skip/confirm
    schedule, independent of full pipeline runs."""

    @pytest.fixture
    def state(self):
        from repro.sparsify import SparsifierState
        from repro.trees import low_stretch_tree

        g = generators.grid2d(8, 8, weights="uniform", seed=0)
        return SparsifierState(g, low_stretch_tree(g, seed=0))

    def test_first_round_pays_full_accuracy(self, state):
        cache = {}
        value, solves = estimator_perturbation(
            state, rng=np.random.default_rng(0), power_iterations=5,
            lambda_min=1.0, sigma2=1e-9, probes=None, cache=cache,
        )
        assert solves == 5
        assert cache["lambda_max"] == value
        assert cache["rounds_since_confirm"] == 0
        assert cache["anchor"].shape[0] == state.laplacian.shape[0]

    def test_skip_round_returns_cached_upper_for_free(self, state):
        cache = {}
        value, _ = estimator_perturbation(
            state, rng=np.random.default_rng(0), power_iterations=5,
            lambda_min=1e-9, sigma2=1.0, probes=None, cache=cache,
        )
        skipped, solves = estimator_perturbation(
            state, rng=np.random.default_rng(1), power_iterations=5,
            lambda_min=1e-9, sigma2=1.0, probes=None, cache=cache,
        )
        assert solves == 0
        assert skipped == value
        assert cache["rounds_since_confirm"] == 1
        assert cache["lower_bound"] <= value * (1 + 1e-12)

    def test_scheduled_confirm_is_truncated(self, state):
        cache = {}
        estimator_perturbation(
            state, rng=np.random.default_rng(0), power_iterations=5,
            lambda_min=1e-9, sigma2=1.0, probes=None, cache=cache,
            refresh=2,
        )
        estimator_perturbation(
            state, rng=np.random.default_rng(1), power_iterations=5,
            lambda_min=1e-9, sigma2=1.0, probes=None, cache=cache,
            refresh=2,
        )
        _, solves = estimator_perturbation(
            state, rng=np.random.default_rng(2), power_iterations=5,
            lambda_min=1e-9, sigma2=1.0, probes=None, cache=cache,
            refresh=2,
        )
        assert solves == 3  # min(3, power_iterations), not the full 5
        assert cache["rounds_since_confirm"] == 0

    def test_certification_confirm_is_full_accuracy(self, state):
        cache = {}
        value, _ = estimator_perturbation(
            state, rng=np.random.default_rng(0), power_iterations=5,
            lambda_min=1.0, sigma2=1.0, probes=None, cache=cache,
        )
        # A line at/above the tracked upper bound forces a full confirm
        # (only full-accuracy confirmations may certify convergence).
        _, solves = estimator_perturbation(
            state, rng=np.random.default_rng(1), power_iterations=5,
            lambda_min=1.0, sigma2=2.0 * value, probes=None, cache=cache,
        )
        assert solves == 5


def _total_solves() -> float:
    values = get_metrics().snapshot().get(
        "repro_solver_solves_total", {}
    ).get("values", {})
    return float(sum(values.values()))


class TestSolveCut:
    def test_perturbation_spends_fewer_solves(self):
        enable_metrics()
        g = generators.grid2d(40, 40, weights="uniform", seed=1)
        counts = {}
        for backend in ("reference", "perturbation"):
            before = _total_solves()
            result = sparsify_graph(
                g, sigma2=30.0, seed=7, estimator_backend=backend,
                kernel_backend="vectorized",
            )
            counts[backend] = _total_solves() - before
            assert result.converged
        assert counts["reference"] > 0
        assert counts["perturbation"] < counts["reference"]

    def test_counter_labels_callers(self):
        import json

        enable_metrics()
        g = generators.grid2d(12, 12, weights="uniform", seed=1)
        sparsify_graph(g, sigma2=40.0, seed=0)
        values = get_metrics().snapshot()["repro_solver_solves_total"]["values"]
        callers = {json.loads(key)[1] for key in values}
        assert {"estimate", "embedding"} <= callers


class TestBackendSurface:
    def test_estimator_backend_family(self):
        assert ESTIMATOR_BACKENDS == ("reference", "perturbation")
        assert resolve_estimator_backend("auto") == "perturbation"
        assert resolve_estimator_backend("reference") == "reference"
        assert resolve_estimator_backend("perturbation") == "perturbation"
        with pytest.raises(ValueError, match="unknown estimator backend"):
            resolve_estimator_backend("grass")

    def test_sparsifier_rejects_unknown_estimator(self):
        with pytest.raises(ValueError, match="unknown estimator backend"):
            SimilarityAwareSparsifier(estimator_backend="fortran")

    def test_cli_exposes_estimator_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["sparsify", "in.mtx", "-o", "out.mtx",
             "--estimator-backend", "perturbation"]
        )
        assert args.estimator_backend == "perturbation"
        args = parser.parse_args(
            ["stream", "events.jsonl", "--graph", "g.mtx",
             "--estimator-backend", "auto"]
        )
        assert args.estimator_backend == "auto"


class TestRayleighBound:
    def test_bound_never_exceeds_true_extreme(self):
        g = generators.grid2d(8, 8, weights="uniform", seed=0)
        from repro.sparsify import SparsifierState
        from repro.trees import low_stretch_tree

        idx = low_stretch_tree(g, seed=0)
        state = SparsifierState(g, idx)
        rng = np.random.default_rng(3)
        block = rng.standard_normal((g.n, 4))
        block -= block.mean(axis=0)
        bound = rayleigh_bound(
            state.host_laplacian, state.laplacian, (block,)
        )
        from repro.spectral import generalized_power_iteration

        true = generalized_power_iteration(
            state.host_laplacian, state.laplacian, state.solver(),
            iterations=40, seed=5,
        )
        assert bound <= true * (1 + 1e-6)

    def test_skips_none_and_degenerate_blocks(self):
        g = generators.path_graph(4)
        from repro.sparsify import SparsifierState

        state = SparsifierState(g, np.arange(3))
        out = rayleigh_bound(
            state.host_laplacian, state.laplacian,
            (None, np.zeros(4)),
        )
        assert out == float("-inf")
