"""Differential parity harness: every backend vs ``reference``, bit-exact.

The contract of :mod:`repro.kernels` is that backends change *speed
only*: for any graph and seed, the masks, trees, thresholds and the
RNG stream itself must be **bit-identical** across backends.  This
suite drives the full pipeline over a corpus spanning structured
(grid, circuit), scale-free (random), disconnected and degenerate
(single-edge, empty) graphs, plus direct differential fuzz of the two
kernels with non-trivial rewrites (label resolution, scoring).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, generators
from repro.graphs.operations import disjoint_union
from repro.kernels import kernel_impl
from repro.sparsify import SimilarityAwareSparsifier, sparsify_graph
from repro.stream import DynamicSparsifier, random_event_stream
from repro.trees.lsst import claim_labels
from repro.utils.rng import as_rng

#: The parity corpus: every structural regime the paper's benchmarks
#: exercise, plus the degenerate shapes that break naive vectorization.
CORPUS = {
    "grid": lambda: generators.grid2d(20, 20, weights="uniform", seed=3),
    "random": lambda: generators.barabasi_albert(250, 4, seed=1),
    "circuit": lambda: generators.circuit_grid(14, 14, seed=2),
    "disconnected": lambda: disjoint_union(
        generators.grid2d(9, 9, weights="uniform", seed=0),
        generators.barabasi_albert(60, 3, seed=5),
    ),
    "single_edge": lambda: Graph(2, [0], [1], [1.5]),
    "empty": lambda: Graph(3, [], [], []),
}

#: Backends differentially tested against the "reference" baseline
#: ("numba"/"auto" degrade to "vectorized" where numba is absent — the
#: resolution itself is under test too).
CHALLENGERS = ("vectorized", "numba", "auto")


class TestPipelineParity:
    @pytest.mark.parametrize("backend", CHALLENGERS)
    @pytest.mark.parametrize("name", sorted(CORPUS))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_masks_and_trees_bit_identical(self, name, backend, seed):
        g = CORPUS[name]()
        ref = sparsify_graph(g, sigma2=60.0, seed=seed)
        got = sparsify_graph(g, sigma2=60.0, seed=seed, kernel_backend=backend)
        assert np.array_equal(got.edge_mask, ref.edge_mask)
        assert np.array_equal(got.tree_indices, ref.tree_indices)
        assert got.converged == ref.converged
        assert got.sigma2_estimate == ref.sigma2_estimate or (
            np.isnan(got.sigma2_estimate) and np.isnan(ref.sigma2_estimate)
        )

    @pytest.mark.parametrize("backend", CHALLENGERS)
    def test_rng_stream_bit_identical(self, backend):
        """Backends must consume the RNG in exactly the same order."""
        g = CORPUS["grid"]()
        rng_ref, rng_got = as_rng(11), as_rng(11)
        SimilarityAwareSparsifier(sigma2=60.0, seed=rng_ref).sparsify(g)
        SimilarityAwareSparsifier(
            sigma2=60.0, seed=rng_got, kernel_backend=backend
        ).sparsify(g)
        assert rng_got.bit_generator.state == rng_ref.bit_generator.state

    @pytest.mark.parametrize("backend", CHALLENGERS)
    def test_nondefault_knobs_parity(self, backend):
        g = CORPUS["circuit"]()
        knobs = dict(
            sigma2=40.0, seed=5, t=3, num_vectors=6, power_iterations=6,
            max_iterations=9, max_edges_per_iteration=37,
            similarity_mode="neighborhood",
        )
        ref = sparsify_graph(g, **knobs)
        got = sparsify_graph(g, kernel_backend=backend, **knobs)
        assert np.array_equal(got.edge_mask, ref.edge_mask)
        assert np.array_equal(got.tree_indices, ref.tree_indices)

    @pytest.mark.parametrize("backend", CHALLENGERS)
    def test_tight_cap_parity(self, backend):
        """Small caps force the scoring window/truncation corner cases."""
        g = CORPUS["random"]()
        for cap in (0, 1, 2, 13):
            ref = sparsify_graph(
                g, sigma2=30.0, seed=1, max_edges_per_iteration=cap,
                max_iterations=6,
            )
            got = sparsify_graph(
                g, sigma2=30.0, seed=1, max_edges_per_iteration=cap,
                max_iterations=6, kernel_backend=backend,
            )
            assert np.array_equal(got.edge_mask, ref.edge_mask), cap


class TestStreamingParity:
    @pytest.mark.parametrize("backend", CHALLENGERS)
    def test_drift_repair_bit_identical(self, backend):
        g = generators.grid2d(16, 16, weights="uniform", seed=0)
        events = random_event_stream(
            g, 300, seed=9, p_insert=0.5, p_delete=0.3
        )
        ref = DynamicSparsifier(
            g, sigma2=30.0, seed=5, drift_tolerance=1.0, absorb_inserts=False
        )
        got = DynamicSparsifier(
            g, sigma2=30.0, seed=5, drift_tolerance=1.0,
            absorb_inserts=False, kernel_backend=backend,
        )
        ref.apply_log(events, batch_size=40)
        got.apply_log(events, batch_size=40)
        assert ref.redensify_count > 0, "scenario must exercise repair"
        assert got.redensify_count == ref.redensify_count
        assert np.array_equal(got.edge_mask, ref.edge_mask)
        assert np.array_equal(got.tree_indices, ref.tree_indices)
        assert got.last_estimate == ref.last_estimate
        assert got._rng.bit_generator.state == ref._rng.bit_generator.state

    def test_checkpoint_round_trips_backend(self, tmp_path):
        from repro.stream import load_dynamic, save_dynamic

        g = generators.grid2d(8, 8, weights="uniform", seed=1)
        dyn = DynamicSparsifier(
            g, sigma2=50.0, seed=2, kernel_backend="vectorized"
        )
        save_dynamic(tmp_path / "ckpt", dyn)
        restored = load_dynamic(tmp_path / "ckpt")
        assert restored.kernel_backend == "vectorized"
        assert np.array_equal(restored.edge_mask, dyn.edge_mask)

    def test_old_checkpoint_defaults_to_reference(self, tmp_path):
        """Pre-backend checkpoints (no kernel_backend key) still load."""
        import json

        from repro.stream import load_dynamic, save_dynamic

        g = generators.grid2d(6, 6, weights="uniform", seed=1)
        dyn = DynamicSparsifier(g, sigma2=50.0, seed=2)
        _, json_path = save_dynamic(tmp_path / "ckpt", dyn)
        meta = json.loads(json_path.read_text(encoding="utf-8"))
        del meta["config"]["kernel_backend"]
        json_path.write_text(json.dumps(meta), encoding="utf-8")
        restored = load_dynamic(tmp_path / "ckpt")
        assert restored.kernel_backend == "reference"

    def test_old_checkpoint_defaults_estimator_to_reference(self, tmp_path):
        """Checkpoints written before the estimator kernel existed
        restore onto the solve-backed path they actually ran."""
        import json

        from repro.stream import load_dynamic, save_dynamic

        g = generators.grid2d(6, 6, weights="uniform", seed=1)
        dyn = DynamicSparsifier(g, sigma2=50.0, seed=2)
        _, json_path = save_dynamic(tmp_path / "ckpt", dyn)
        meta = json.loads(json_path.read_text(encoding="utf-8"))
        del meta["config"]["estimator_backend"]
        del meta["config"]["estimator_refresh"]
        json_path.write_text(json.dumps(meta), encoding="utf-8")
        restored = load_dynamic(tmp_path / "ckpt")
        assert restored.estimator_backend == "reference"
        assert restored.estimator_refresh == 3

    def test_checkpoint_round_trips_estimator_backend(self, tmp_path):
        from repro.stream import load_dynamic, save_dynamic

        g = generators.grid2d(8, 8, weights="uniform", seed=1)
        dyn = DynamicSparsifier(
            g, sigma2=50.0, seed=2, estimator_backend="perturbation",
            estimator_refresh=5,
        )
        save_dynamic(tmp_path / "ckpt", dyn)
        restored = load_dynamic(tmp_path / "ckpt")
        assert restored.estimator_backend == "perturbation"
        assert restored.estimator_refresh == 5
        assert np.array_equal(restored.edge_mask, dyn.edge_mask)


class TestKernelLevelFuzz:
    """Direct differential fuzz of the rewritten inner loops."""

    def _random_graph(self, rng, n):
        parents = np.array(
            [int(rng.integers(0, i)) for i in range(1, n)], dtype=np.int64
        )
        extra = int(rng.integers(0, 3 * n))
        eu = rng.integers(0, n, size=extra)
        ev = rng.integers(0, n, size=extra)
        u = np.concatenate([np.arange(1, n), eu])
        v = np.concatenate([parents, ev])
        w = rng.uniform(0.1, 10.0, size=u.size)
        return Graph(n, u, v, w)

    def test_scoring_differential_fuzz(self):
        ref_impl = kernel_impl("scoring", "reference")
        vec_impl = kernel_impl("scoring", "vectorized")
        rng = np.random.default_rng(2024)
        for trial in range(120):
            g = self._random_graph(rng, int(rng.integers(2, 40)))
            m = g.num_edges
            k = int(rng.integers(0, m + 1))
            candidates = rng.choice(m, size=k, replace=False)
            if rng.integers(0, 2):
                candidates = np.sort(candidates)
            cap_draw = int(rng.integers(0, m + 2))
            cap = None if cap_draw == m + 1 else cap_draw
            ref = ref_impl(g, candidates, max_edges=cap, mode="endpoint")
            got = vec_impl(g, candidates, max_edges=cap, mode="endpoint")
            assert np.array_equal(got, ref), (trial, cap)
            assert got.dtype == np.int64

    def test_scoring_modes_and_validation_parity(self):
        ref_impl = kernel_impl("scoring", "reference")
        vec_impl = kernel_impl("scoring", "vectorized")
        g = generators.grid2d(6, 6, weights="uniform", seed=0)
        cands = np.arange(g.num_edges, dtype=np.int64)[::3]
        for mode in ("none", "neighborhood"):
            ref = ref_impl(g, cands, max_edges=5, mode=mode)
            got = vec_impl(g, cands, max_edges=5, mode=mode)
            assert np.array_equal(got, ref), mode
        for impl in (ref_impl, vec_impl):
            with pytest.raises(ValueError):
                impl(g, cands, max_edges=-1, mode="endpoint")
            with pytest.raises(ValueError):
                impl(g, cands, max_edges=3, mode="cosine")

    def test_label_resolution_differential_fuzz(self):
        from repro.kernels.vectorized import resolve_labels

        rng = np.random.default_rng(99)
        for _ in range(200):
            n = int(rng.integers(1, 60))
            virtual = n
            # Forest predecessors: root markers (virtual or -1) mixed
            # with valid parents, acyclic by construction (parent < i
            # under a random relabeling).
            order = rng.permutation(n)
            pred = np.full(n, virtual, dtype=np.int64)
            for rank in range(1, n):
                node = order[rank]
                choice = rng.integers(0, 3)
                if choice == 0:
                    pred[node] = -1
                elif choice == 1:
                    pred[node] = virtual
                else:
                    pred[node] = order[int(rng.integers(0, rank))]
            dist = rng.uniform(0.0, 5.0, size=n)
            # claim_labels resolves in distance order; make parents
            # strictly closer so chains resolve identically.
            for rank in range(1, n):
                node = order[rank]
                if 0 <= pred[node] < n:
                    dist[node] = dist[pred[node]] + rng.uniform(0.01, 1.0)
            ref = claim_labels(dist, pred, virtual)
            got = resolve_labels(dist, pred, virtual)
            assert np.array_equal(got, ref)

    @pytest.mark.parametrize("backend", CHALLENGERS)
    def test_lsst_tree_parity(self, backend):
        ref_impl = kernel_impl("lsst", "reference")
        impl = kernel_impl("lsst", backend)
        for name in ("grid", "random", "circuit"):
            g = CORPUS[name]()
            for method in ("akpw", "spt", "maxw", "random"):
                ref = ref_impl(g, method=method, seed=as_rng(13))
                got = impl(g, method=method, seed=as_rng(13))
                assert np.array_equal(got, ref), (name, method)
