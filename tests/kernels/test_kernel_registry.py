"""Registry mechanics: resolution, fallback chains, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.context import PipelineContext
from repro.graphs import generators
from repro.kernels import (
    BACKENDS,
    HAS_NUMBA,
    KERNELS,
    available_backends,
    kernel_impl,
    register_impl,
    resolve_backend,
    run_kernel,
)
from repro.kernels import reference, vectorized
from repro.utils.rng import as_rng


class TestResolveBackend:
    def test_concrete_names_resolve_to_themselves(self):
        assert resolve_backend("reference") == "reference"
        assert resolve_backend("vectorized") == "vectorized"

    def test_auto_prefers_numba_else_vectorized(self):
        expected = "numba" if HAS_NUMBA else "vectorized"
        assert resolve_backend("auto") == expected

    def test_numba_degrades_to_vectorized_when_absent(self):
        expected = "numba" if HAS_NUMBA else "vectorized"
        assert resolve_backend("numba") == expected

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("fortran")

    def test_available_backends(self):
        avail = available_backends()
        assert avail[:2] == ("reference", "vectorized")
        assert ("numba" in avail) == HAS_NUMBA
        assert set(avail) <= set(BACKENDS)


class TestRegistryTable:
    def test_kernel_names_match_keys(self):
        assert set(KERNELS) == {
            "lsst", "embedding", "filtering", "scoring", "estimator",
        }
        for name, kernel in KERNELS.items():
            assert kernel.name == name
            assert kernel.paper
            assert callable(kernel.wiring)
            assert all(isinstance(r, str) for r in kernel.reads)
            assert all(isinstance(w, str) for w in kernel.writes)

    def test_reference_implements_every_kernel(self):
        assert kernel_impl("lsst", "reference") is reference.lsst
        assert kernel_impl("embedding", "reference") is reference.embedding
        assert kernel_impl("filtering", "reference") is reference.filtering
        assert kernel_impl("scoring", "reference") is reference.scoring

    def test_vectorized_implements_every_kernel(self):
        assert kernel_impl("lsst", "vectorized") is vectorized.lsst
        assert kernel_impl("embedding", "vectorized") is vectorized.embedding
        assert kernel_impl("filtering", "vectorized") is vectorized.filtering
        assert kernel_impl("scoring", "vectorized") is vectorized.scoring

    @pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
    def test_numba_fallback_chain_fills_gaps(self):
        # embedding/filtering have no numba implementation: the chain
        # must land on the vectorized one, never fail.
        assert kernel_impl("embedding", "numba") is vectorized.embedding
        assert kernel_impl("filtering", "numba") is vectorized.filtering

    def test_numba_request_always_runs(self):
        # With or without numba installed, every kernel resolves.  The
        # estimator kernel has its own backend family and never sees
        # the numba request.
        for name in KERNELS:
            if name == "estimator":
                continue
            assert callable(kernel_impl(name, "numba"))

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernel_impl("fft", "reference")


class TestRegisterImpl:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            register_impl("fft", "reference")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            register_impl("lsst", "fortran")

    def test_duplicate_slot_rejected(self):
        decorator = register_impl("lsst", "reference")
        with pytest.raises(ValueError, match="duplicate implementation"):
            decorator(lambda *a, **k: None)
        # The original registration must survive the failed attempt.
        assert kernel_impl("lsst", "reference") is reference.lsst


class TestContextDispatch:
    def test_context_resolves_backend_eagerly(self):
        g = generators.path_graph(4)
        ctx = PipelineContext(
            graph=g, rng=as_rng(0), sigma2=60.0, kernel_backend="auto"
        )
        assert ctx.kernel_backend in available_backends()

    def test_context_rejects_unknown_backend(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            PipelineContext(
                graph=g, rng=as_rng(0), sigma2=60.0, kernel_backend="fortran"
            )

    def test_run_kernel_unknown_name_raises(self):
        g = generators.path_graph(4)
        ctx = PipelineContext(graph=g, rng=as_rng(0), sigma2=60.0)
        with pytest.raises(ValueError, match="unknown kernel"):
            run_kernel(ctx, "fft")

    def test_lsst_dispatch_writes_tree(self):
        g = generators.grid2d(5, 5, weights="uniform", seed=1)
        ctx = PipelineContext(
            graph=g, rng=as_rng(3), sigma2=60.0, kernel_backend="vectorized"
        )
        counters = ctx.kernel("lsst")
        assert counters == {"edges": g.n - 1}
        assert ctx.tree_indices.size == g.n - 1
        assert ctx.tree_indices.dtype == np.int64


class TestApiValidation:
    def test_sparsifier_rejects_unknown_backend(self):
        from repro.sparsify import SimilarityAwareSparsifier

        with pytest.raises(ValueError, match="unknown kernel backend"):
            SimilarityAwareSparsifier(kernel_backend="fortran")

    def test_dynamic_rejects_unknown_backend(self):
        from repro.stream import DynamicSparsifier

        g = generators.grid2d(4, 4)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            DynamicSparsifier(g, kernel_backend="fortran")

    def test_cli_exposes_kernel_backend_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["sparsify", "in.mtx", "-o", "out.mtx",
             "--kernel-backend", "vectorized"]
        )
        assert args.kernel_backend == "vectorized"
        args = parser.parse_args(
            ["stream", "events.jsonl", "--graph", "g.mtx",
             "--kernel-backend", "auto"]
        )
        assert args.kernel_backend == "auto"
