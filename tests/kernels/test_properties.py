"""Hypothesis property tests over the kernel backends.

Beyond bit-parity with ``reference`` (``test_parity``), the kernels
obey structural invariants on *any* input: trees span and stay
connected, filtering respects its threshold and ordering contract and
is monotone in the similarity target, scoring never exceeds its cap
and is prefix-monotone in it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import is_connected
from repro.kernels import available_backends, kernel_impl
from repro.utils.rng import as_rng

from tests.property.test_property_trees import connected_graphs

BACKENDS = sorted(available_backends())


class TestTreeProperties:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(graph=connected_graphs(), seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_tree_spans_and_connects(self, backend, graph, seed):
        impl = kernel_impl("lsst", backend)
        idx = impl(graph, method="akpw", seed=as_rng(seed))
        assert idx.size == graph.n - 1
        assert np.unique(idx).size == idx.size
        assert is_connected(graph.edge_subgraph(idx))


@st.composite
def heat_vectors(draw, max_m=80):
    m = draw(st.integers(min_value=0, max_value=max_m))
    heats = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=m, max_size=m,
        )
    )
    return np.asarray(heats, dtype=np.float64)


class TestFilteringProperties:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(
        heats=heat_vectors(),
        sigma2=st.floats(min_value=1.5, max_value=1e4),
        lam_max=st.floats(min_value=1.0, max_value=1e3),
    )
    @settings(max_examples=60, deadline=None)
    def test_threshold_and_ordering_contract(
        self, backend, heats, sigma2, lam_max
    ):
        impl = kernel_impl("filtering", backend)
        threshold, passing = impl(
            heats, sigma2=sigma2, lambda_min=1.0, lambda_max=lam_max, t=2
        )
        assert 0.0 <= threshold <= 1.0
        assert passing.dtype == np.int64
        assert np.unique(passing).size == passing.size
        if passing.size:
            assert passing.min() >= 0 and passing.max() < heats.size
            norm = heats / heats.max()
            # Every survivor clears the threshold; order is by
            # descending normalized heat.
            assert np.all(norm[passing] >= threshold)
            assert np.all(np.diff(norm[passing]) <= 0)
            # Nothing above the threshold was dropped.
            assert np.count_nonzero(norm >= threshold) == passing.size

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(
        heats=heat_vectors(),
        lam_max=st.floats(min_value=1.0, max_value=1e3),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_similarity_target(self, backend, heats, lam_max):
        """θ_σ grows with σ² (Eq. 15), so a looser similarity target can
        only admit *fewer* edges — the filter doubles as the stopping
        rule once θ_σ reaches 1."""
        impl = kernel_impl("filtering", backend)
        _, demanding = impl(
            heats, sigma2=4.0, lambda_min=1.0, lambda_max=lam_max, t=2
        )
        _, relaxed = impl(
            heats, sigma2=400.0, lambda_min=1.0, lambda_max=lam_max, t=2
        )
        assert set(relaxed.tolist()) <= set(demanding.tolist())


@st.composite
def graphs_with_candidates(draw):
    graph = draw(connected_graphs())
    m = graph.num_edges
    count = draw(st.integers(min_value=0, max_value=m))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = np.random.default_rng(seed)
    candidates = rng.choice(m, size=count, replace=False)
    return graph, np.asarray(candidates, dtype=np.int64)


class TestScoringProperties:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(data=graphs_with_candidates(), cap=st.integers(0, 50))
    @settings(max_examples=50, deadline=None)
    def test_cap_respected_and_subset(self, backend, data, cap):
        graph, candidates = data
        impl = kernel_impl("scoring", backend)
        added = impl(graph, candidates, max_edges=cap, mode="endpoint")
        assert added.size <= cap
        assert set(added.tolist()) <= set(candidates.tolist())
        assert np.unique(added).size == added.size

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(data=graphs_with_candidates(), cap=st.integers(0, 30))
    @settings(max_examples=50, deadline=None)
    def test_prefix_monotone_in_cap(self, backend, data, cap):
        """cap=k selects exactly the first k of the uncapped selection."""
        graph, candidates = data
        impl = kernel_impl("scoring", backend)
        capped = impl(graph, candidates, max_edges=cap, mode="endpoint")
        uncapped = impl(graph, candidates, max_edges=None, mode="endpoint")
        assert np.array_equal(capped, uncapped[: min(cap, uncapped.size)])

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(data=graphs_with_candidates())
    @settings(max_examples=30, deadline=None)
    def test_degenerate_caps_graceful(self, backend, data):
        graph, candidates = data
        impl = kernel_impl("scoring", backend)
        assert impl(graph, candidates, max_edges=0, mode="endpoint").size == 0
        one = impl(graph, candidates, max_edges=1, mode="endpoint")
        assert one.size <= 1

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(data=graphs_with_candidates())
    @settings(max_examples=30, deadline=None)
    def test_endpoint_rule_holds(self, backend, data):
        """Selected edges never share an endpoint with an *earlier*
        selected edge on both sides (the dissimilarity invariant)."""
        graph, candidates = data
        impl = kernel_impl("scoring", backend)
        added = impl(graph, candidates, max_edges=None, mode="endpoint")
        marked: set = set()
        for e in added:
            p, q = int(graph.u[e]), int(graph.v[e])
            assert not (p in marked and q in marked)
            marked.add(p)
            marked.add(q)
