"""Micro-benchmarks of the pipeline's computational kernels.

Not tied to a specific paper table; these isolate the cost centres the
paper's complexity analysis talks about: LSST extraction, stretch
computation, tree solves, AMG cycles, and the full sparsification.

The backend-comparison section runs every registered kernel backend
(:mod:`repro.kernels`) head-to-head on the headline 200x200 grid,
asserts bit parity, requires the vectorized scoring rewrite to beat
``reference`` by >= 1.5x, and (with ``--record``) appends per-backend
timings to ``benchmarks/BENCH_kernels.json``.  The estimator section
pits the all-reference pipeline against ``kernel_backend=auto`` +
``estimator_backend=auto``, surfaces the per-caller
``repro_solver_solves_total`` counter in the recorded metrics, and
gates the headline floors: >= 2x end-to-end wall clock and >= 3x
fewer Laplacian solves (``BENCH_kernels_end_to_end.json``).

Run explicitly (benchmarks are not collected by the default test run):

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -v -s --record

CI runs this file with ``--smoke``: tiny graph, parity asserts only,
no timing assertions.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graphs import generators
from repro.kernels import HAS_NUMBA, kernel_impl
from repro.solvers import AMGSolver, DirectSolver
from repro.sparsify import SparsifierState, sparsify_graph
from repro.trees import (
    RootedTree,
    TreeSolver,
    akpw,
    edge_stretches,
    low_stretch_tree,
)
from repro.utils.rng import as_rng


@pytest.fixture(scope="module")
def big_grid(scale):
    side = max(60, int(150 * scale))
    return generators.grid2d(side, side, weights="uniform", seed=99)


def test_kernel_akpw_tree(benchmark, big_grid):
    idx = benchmark.pedantic(lambda: akpw(big_grid, seed=0), rounds=2, iterations=1)
    assert idx.size == big_grid.n - 1


def test_kernel_stretch_computation(benchmark, big_grid):
    idx = low_stretch_tree(big_grid, seed=0)
    report = benchmark(lambda: edge_stretches(big_grid, idx))
    assert report.total > 0


def test_kernel_tree_solve(benchmark, big_grid):
    idx = low_stretch_tree(big_grid, seed=0)
    solver = TreeSolver(RootedTree.from_graph(big_grid, idx))
    rng = np.random.default_rng(0)
    b = rng.standard_normal(big_grid.n)
    b -= b.mean()
    x = benchmark(lambda: solver.solve(b))
    assert x.shape == b.shape


def test_kernel_direct_factorization(benchmark, big_grid):
    solver = benchmark.pedantic(
        lambda: DirectSolver(big_grid.laplacian().tocsc()), rounds=2, iterations=1
    )
    assert solver.factor_nnz > 0


def test_kernel_amg_vcycle(benchmark, big_grid):
    amg = AMGSolver(big_grid.laplacian())
    rng = np.random.default_rng(0)
    b = rng.standard_normal(big_grid.n)
    b -= b.mean()
    x = benchmark(lambda: amg.solve(b))
    assert x.shape == b.shape


def test_kernel_full_sparsification(benchmark, big_grid):
    result = benchmark.pedantic(
        lambda: sparsify_graph(big_grid, sigma2=100.0, seed=0),
        rounds=1, iterations=1,
    )
    assert result.sparsifier.num_edges < big_grid.num_edges


# ----------------------------------------------------------------------
# Backend comparison (repro.kernels): reference vs vectorized (vs numba
# where installed), bit parity + recorded timings.
# ----------------------------------------------------------------------

#: Headline speedup floor: the vectorized scoring rewrite must beat the
#: sequential reference by at least this factor on the 200x200 grid.
SCORING_SPEEDUP_FLOOR = 1.5

_CHALLENGERS = ("vectorized", "numba") if HAS_NUMBA else ("vectorized",)


def _best_of(fn, repeats):
    """Result and minimum wall time over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_backend_comparison(smoke, record):
    side = 40 if smoke else 200
    repeats = 1 if smoke else 3
    graph = generators.grid2d(side, side, weights="uniform", seed=99)
    metrics = {"side": float(side)}

    # --- lsst: build the backbone with every backend -------------------
    timings = {}
    trees = {}
    for backend in ("reference",) + _CHALLENGERS:
        impl = kernel_impl("lsst", backend)
        trees[backend], timings[backend] = _best_of(
            lambda impl=impl: impl(graph, method="akpw", seed=as_rng(7)),
            repeats,
        )
        metrics[f"lsst_{backend}_s"] = timings[backend]
    for backend in _CHALLENGERS:
        assert np.array_equal(trees[backend], trees["reference"])

    # --- embedding + filtering: shared mid-loop inputs -----------------
    tree = trees["reference"]
    state = SparsifierState(graph, tree)
    solver = state.solver()
    off_tree = np.flatnonzero(~state.edge_mask)
    heats = {}
    for backend in ("reference",) + _CHALLENGERS:
        impl = kernel_impl("embedding", backend)
        # Embedding impls return (heats, probe block); parity is on both.
        (heats[backend], probes), seconds = _best_of(
            lambda impl=impl: impl(
                graph, solver, off_tree, t=2, num_vectors=None,
                seed=as_rng(3), LG=state.host_laplacian,
            ),
            repeats,
        )
        assert probes.shape[0] == graph.n
        metrics[f"embedding_{backend}_s"] = seconds
    for backend in _CHALLENGERS:
        assert np.array_equal(heats[backend], heats["reference"])

    passing = {}
    for backend in ("reference",) + _CHALLENGERS:
        impl = kernel_impl("filtering", backend)
        passing[backend], seconds = _best_of(
            lambda impl=impl: impl(
                heats["reference"], sigma2=10.0, lambda_min=1.0,
                lambda_max=1e3, t=2,
            ),
            repeats,
        )
        metrics[f"filtering_{backend}_s"] = seconds
    for backend in _CHALLENGERS:
        assert passing[backend][0] == passing["reference"][0]
        assert np.array_equal(passing[backend][1], passing["reference"][1])

    # --- scoring: the headline kernel, uncapped over all off-tree ------
    added = {}
    for backend in ("reference",) + _CHALLENGERS:
        impl = kernel_impl("scoring", backend)
        added[backend], timings[backend] = _best_of(
            lambda impl=impl: impl(
                graph, off_tree, max_edges=None, mode="endpoint"
            ),
            repeats,
        )
        metrics[f"scoring_{backend}_s"] = timings[backend]
    for backend in _CHALLENGERS:
        assert np.array_equal(added[backend], added["reference"])

    speedup = timings["reference"] / max(timings["vectorized"], 1e-12)
    metrics["scoring_speedup_vectorized"] = speedup
    print(f"\ngrid {side}x{side} per-backend seconds:")
    for key in sorted(metrics):
        print(f"  {key:32s} {metrics[key]:.6f}")
    record("kernels", **metrics)

    if not smoke:
        assert speedup >= SCORING_SPEEDUP_FLOOR, (
            f"vectorized scoring speedup {speedup:.2f}x below the "
            f"{SCORING_SPEEDUP_FLOOR}x floor"
        )


def test_backend_end_to_end_parity_and_timing(smoke, record):
    side = 30 if smoke else 120
    repeats = 1 if smoke else 3
    graph = generators.grid2d(side, side, weights="uniform", seed=5)
    results = {}
    metrics = {"side": float(side)}
    for backend in ("reference",) + _CHALLENGERS:
        results[backend], seconds = _best_of(
            lambda backend=backend: sparsify_graph(
                graph, sigma2=100.0, seed=0, kernel_backend=backend
            ),
            repeats,
        )
        metrics[f"sparsify_{backend}_s"] = seconds
    for backend in _CHALLENGERS:
        assert np.array_equal(
            results[backend].edge_mask, results["reference"].edge_mask
        )
        assert np.array_equal(
            results[backend].tree_indices, results["reference"].tree_indices
        )
    record("kernels_end_to_end", **metrics)


# ----------------------------------------------------------------------
# Estimator backend: the headline solve-bill cut.  Full-fat pipeline
# (reference kernels + solve-backed estimator) vs the fast path (auto
# kernels + perturbation estimator) on the headline 200x200 grid.
# ----------------------------------------------------------------------

#: End-to-end wall-clock floor for ``kernel_backend=auto`` +
#: ``estimator_backend=auto`` over the all-reference pipeline.
END_TO_END_SPEEDUP_FLOOR = 2.0

#: Laplacian-solve count floor: the perturbation estimator must cut
#: the total solve bill by at least this factor on the same run.
SOLVE_CUT_FLOOR = 3.0


def _caller_solves() -> dict:
    """Per-caller totals from ``repro_solver_solves_total``."""
    import json as _json

    from repro.obs import get_metrics

    values = get_metrics().snapshot().get(
        "repro_solver_solves_total", {}
    ).get("values", {})
    per_caller: dict = {}
    for key, count in values.items():
        caller = _json.loads(key)[1]
        per_caller[caller] = per_caller.get(caller, 0.0) + count
    return per_caller


def test_estimator_end_to_end_speedup_and_solve_cut(smoke, record):
    from repro.obs import enable_metrics

    enable_metrics()
    side = 40 if smoke else 200
    repeats = 1 if smoke else 2
    # A tight similarity target: many densification rounds, which is
    # where the bracket estimator's skipped solves compound.
    sigma2 = 15.0
    graph = generators.grid2d(side, side, weights="uniform", seed=1)
    metrics = {"side": float(side), "sigma2": sigma2}
    configs = {
        "reference": dict(kernel_backend="reference",
                          estimator_backend="reference"),
        "auto": dict(kernel_backend="auto", estimator_backend="auto"),
    }
    solves = {}
    for name, knobs in configs.items():
        before = _caller_solves()
        result, seconds = _best_of(
            lambda knobs=knobs: sparsify_graph(
                graph, sigma2=sigma2, seed=7, **knobs
            ),
            repeats,
        )
        after = _caller_solves()
        assert result.converged
        assert result.sigma2_estimate <= sigma2
        # Identical deterministic runs: per-run count is the delta
        # divided by the repeat count.
        solves[name] = {
            caller: (after.get(caller, 0.0) - before.get(caller, 0.0))
            / repeats
            for caller in after
        }
        metrics[f"estimator_pipeline_{name}_s"] = seconds
        metrics[f"solves_{name}_total"] = sum(solves[name].values())
        for caller in ("estimate", "embedding"):
            metrics[f"solves_{name}_{caller}"] = solves[name].get(caller, 0.0)

    speedup = (
        metrics["estimator_pipeline_reference_s"]
        / max(metrics["estimator_pipeline_auto_s"], 1e-12)
    )
    solve_cut = (
        metrics["solves_reference_total"]
        / max(metrics["solves_auto_total"], 1.0)
    )
    metrics["end_to_end_speedup"] = speedup
    metrics["solve_cut"] = solve_cut
    print(f"\ngrid {side}x{side} estimator pipeline:")
    for key in sorted(metrics):
        print(f"  {key:32s} {metrics[key]:.6f}")
    record("kernels_end_to_end", **metrics)

    if not smoke:
        assert speedup >= END_TO_END_SPEEDUP_FLOOR, (
            f"end-to-end speedup {speedup:.2f}x below the "
            f"{END_TO_END_SPEEDUP_FLOOR}x floor"
        )
        assert solve_cut >= SOLVE_CUT_FLOOR, (
            f"solve cut {solve_cut:.2f}x below the {SOLVE_CUT_FLOOR}x floor"
        )
