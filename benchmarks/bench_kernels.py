"""Micro-benchmarks of the pipeline's computational kernels.

Not tied to a specific paper table; these isolate the cost centres the
paper's complexity analysis talks about: LSST extraction, stretch
computation, tree solves, AMG cycles, and the full sparsification.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators
from repro.solvers import AMGSolver, DirectSolver
from repro.sparsify import sparsify_graph
from repro.trees import (
    RootedTree,
    TreeSolver,
    akpw,
    edge_stretches,
    low_stretch_tree,
)


@pytest.fixture(scope="module")
def big_grid(scale):
    side = max(60, int(150 * scale))
    return generators.grid2d(side, side, weights="uniform", seed=99)


def test_kernel_akpw_tree(benchmark, big_grid):
    idx = benchmark.pedantic(lambda: akpw(big_grid, seed=0), rounds=2, iterations=1)
    assert idx.size == big_grid.n - 1


def test_kernel_stretch_computation(benchmark, big_grid):
    idx = low_stretch_tree(big_grid, seed=0)
    report = benchmark(lambda: edge_stretches(big_grid, idx))
    assert report.total > 0


def test_kernel_tree_solve(benchmark, big_grid):
    idx = low_stretch_tree(big_grid, seed=0)
    solver = TreeSolver(RootedTree.from_graph(big_grid, idx))
    rng = np.random.default_rng(0)
    b = rng.standard_normal(big_grid.n)
    b -= b.mean()
    x = benchmark(lambda: solver.solve(b))
    assert x.shape == b.shape


def test_kernel_direct_factorization(benchmark, big_grid):
    solver = benchmark.pedantic(
        lambda: DirectSolver(big_grid.laplacian().tocsc()), rounds=2, iterations=1
    )
    assert solver.factor_nnz > 0


def test_kernel_amg_vcycle(benchmark, big_grid):
    amg = AMGSolver(big_grid.laplacian())
    rng = np.random.default_rng(0)
    b = rng.standard_normal(big_grid.n)
    b -= b.mean()
    x = benchmark(lambda: amg.solve(b))
    assert x.shape == b.shape


def test_kernel_full_sparsification(benchmark, big_grid):
    result = benchmark.pedantic(
        lambda: sparsify_graph(big_grid, sigma2=100.0, seed=0),
        rounds=1, iterations=1,
    )
    assert result.sparsifier.num_edges < big_grid.num_edges
