"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper (shape
comparison, not absolute times — see EXPERIMENTS.md) and micro-benchmark
the pipeline kernels.  ``REPRO_SCALE`` scales workload sizes; the
default here is tuned for a single CPU core.

``--smoke`` switches supporting benchmarks into CI smoke mode: tiny
problem sizes and parity/correctness asserts only, no timing
assertions.  That lets a fast CI job collect the perf harnesses on
every push, so they cannot silently rot, without paying for (or
flaking on) real measurements.  The option is registered here, so the
benchmark files must be passed explicitly on the command line (they
always are — ``bench_*.py`` is not collected by the default run).

``--record`` persists benchmark trajectories: each run's headline
timings/ratios are appended to ``benchmarks/BENCH_<name>.json`` (a
JSON list, one record per run) via the ``record`` fixture, so speedup
trends survive across sessions instead of scrolling away in logs.
"""

from __future__ import annotations

import datetime
import json
import os
from pathlib import Path

import pytest


def bench_scale(default: float = 0.6) -> float:
    """Benchmark problem-size multiplier (REPRO_SCALE, default 0.6)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return default
    return float(raw)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="benchmark smoke mode: tiny sizes, parity asserts only",
    )
    parser.addoption(
        "--record",
        action="store_true",
        default=False,
        help="append each run's timings/ratios to BENCH_<name>.json",
    )


@pytest.fixture(scope="session")
def smoke(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--smoke"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def record_metrics(name: str, metrics: dict, directory: Path | None = None,
                   *, smoke_run: bool = False) -> Path:
    """Append one benchmark record to ``BENCH_<name>.json``.

    The file holds a JSON list; each run appends one record with a
    UTC timestamp, the active ``REPRO_SCALE`` and the metric mapping.
    """
    directory = directory or Path(__file__).parent
    path = directory / f"BENCH_{name}.json"
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            history = []
        if not isinstance(history, list):
            history = []
    history.append({
        "recorded_at": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "scale": bench_scale(),
        "smoke": smoke_run,
        "metrics": metrics,
    })
    path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def record(request: pytest.FixtureRequest):
    """Session recorder: ``record(name, **metrics)``; no-op sans --record."""
    enabled = bool(request.config.getoption("--record"))
    smoke_run = bool(request.config.getoption("--smoke"))

    def _record(name: str, **metrics: float):
        if not enabled:
            return None
        return record_metrics(name, metrics, smoke_run=smoke_run)

    return _record
