"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper (shape
comparison, not absolute times — see EXPERIMENTS.md) and micro-benchmark
the pipeline kernels.  ``REPRO_SCALE`` scales workload sizes; the
default here is tuned for a single CPU core.
"""

from __future__ import annotations

import os

import pytest


def bench_scale(default: float = 0.6) -> float:
    """Benchmark problem-size multiplier (REPRO_SCALE, default 0.6)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return default
    return float(raw)


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
