"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper (shape
comparison, not absolute times — see EXPERIMENTS.md) and micro-benchmark
the pipeline kernels.  ``REPRO_SCALE`` scales workload sizes; the
default here is tuned for a single CPU core.

``--smoke`` switches supporting benchmarks into CI smoke mode: tiny
problem sizes and parity/correctness asserts only, no timing
assertions.  That lets a fast CI job collect the perf harnesses on
every push, so they cannot silently rot, without paying for (or
flaking on) real measurements.  The option is registered here, so the
benchmark files must be passed explicitly on the command line (they
always are — ``bench_*.py`` is not collected by the default run).

``--record`` persists benchmark trajectories: each run's headline
timings/ratios are appended to ``benchmarks/BENCH_<name>.json`` (a
JSON list, one record per run) via the ``record`` fixture, so speedup
trends survive across sessions instead of scrolling away in logs.
``--record-dir`` redirects the trajectory files (the CI
perf-regression job records into a temp dir and gates it with ``repro
obs check-regressions``).  Every record carries the environment
fingerprint (:func:`repro.obs.ledger.environment_fingerprint`) so
cross-run diffs can explain outliers, and is mirrored into
``BENCH_LEDGER.jsonl`` next to the trajectory files so ``repro obs
runs`` works on benchmark history too.  A corrupt trajectory file is
backed up to ``*.corrupt-<ts>`` and rebuilt — never silently
destroyed.
"""

from __future__ import annotations

import datetime
import json
import os
import warnings
from pathlib import Path

import pytest


def bench_scale(default: float = 0.6) -> float:
    """Benchmark problem-size multiplier (REPRO_SCALE, default 0.6)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return default
    return float(raw)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="benchmark smoke mode: tiny sizes, parity asserts only",
    )
    parser.addoption(
        "--record",
        action="store_true",
        default=False,
        help="append each run's timings/ratios to BENCH_<name>.json",
    )
    parser.addoption(
        "--record-dir",
        default=None,
        help="directory for BENCH_<name>.json trajectories "
             "(default: benchmarks/)",
    )


@pytest.fixture(scope="session")
def smoke(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--smoke"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def _load_history(path: Path) -> list:
    """Parse an existing trajectory, quarantining corrupt files.

    A file that is not valid JSON (or not a list) is moved aside to
    ``<name>.corrupt-<utc timestamp>`` with a warning, so the history
    it held stays recoverable instead of being overwritten with ``[]``.
    """
    if not path.exists():
        return []
    try:
        history = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        history = None
    if isinstance(history, list):
        return history
    stamp = datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y%m%dT%H%M%S"
    )
    backup = path.with_name(f"{path.name}.corrupt-{stamp}")
    path.replace(backup)
    warnings.warn(
        f"{path.name} is corrupt; backed up to {backup.name} and "
        f"starting a fresh trajectory",
        stacklevel=3,
    )
    return []


def record_metrics(name: str, metrics: dict, directory: Path | None = None,
                   *, smoke_run: bool = False) -> Path:
    """Append one benchmark record to ``BENCH_<name>.json``.

    The file holds a JSON list; each run appends one record with a
    UTC timestamp, the active ``REPRO_SCALE``, the metric mapping and
    an environment fingerprint.  The record is also mirrored into
    ``BENCH_LEDGER.jsonl`` in the same directory as a
    :class:`repro.obs.ledger.RunRecord`, so ``repro obs runs
    list/show/diff`` can inspect benchmark history.
    """
    from repro.obs.ledger import RunLedger, RunRecord, environment_fingerprint

    directory = directory or Path(__file__).parent
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    history = _load_history(path)
    recorded_at = datetime.datetime.now(
        datetime.timezone.utc
    ).isoformat(timespec="seconds")
    history.append({
        "recorded_at": recorded_at,
        "scale": bench_scale(),
        "smoke": smoke_run,
        "metrics": metrics,
        "env": environment_fingerprint(),
    })
    path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    RunLedger(directory / "BENCH_LEDGER.jsonl").append(
        RunRecord.capture(
            "benchmark",
            config={
                "bench": name,
                "scale": bench_scale(),
                "smoke": smoke_run,
            },
            metrics=metrics,
        )
    )
    return path


@pytest.fixture(scope="session")
def record(request: pytest.FixtureRequest):
    """Session recorder: ``record(name, **metrics)``; no-op sans --record."""
    enabled = bool(request.config.getoption("--record"))
    smoke_run = bool(request.config.getoption("--smoke"))
    record_dir = request.config.getoption("--record-dir")
    directory = Path(record_dir) if record_dir else None

    def _record(name: str, **metrics: float):
        if not enabled:
            return None
        return record_metrics(
            name, metrics, directory, smoke_run=smoke_run
        )

    return _record
