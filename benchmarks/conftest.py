"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper (shape
comparison, not absolute times — see EXPERIMENTS.md) and micro-benchmark
the pipeline kernels.  ``REPRO_SCALE`` scales workload sizes; the
default here is tuned for a single CPU core.

``--smoke`` switches supporting benchmarks into CI smoke mode: tiny
problem sizes and parity/correctness asserts only, no timing
assertions.  That lets a fast CI job collect the perf harnesses on
every push, so they cannot silently rot, without paying for (or
flaking on) real measurements.  The option is registered here, so the
benchmark files must be passed explicitly on the command line (they
always are — ``bench_*.py`` is not collected by the default run).
"""

from __future__ import annotations

import os

import pytest


def bench_scale(default: float = 0.6) -> float:
    """Benchmark problem-size multiplier (REPRO_SCALE, default 0.6)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return default
    return float(raw)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="benchmark smoke mode: tiny sizes, parity asserts only",
    )


@pytest.fixture(scope="session")
def smoke(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--smoke"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
