"""Benchmarks for the extension features beyond the paper's core tables.

Covers the §3.1(c) incremental refinement path, the §3.1 optional edge
re-scaling, and the vectorless power-grid verifier (ref. [23]).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import VectorlessVerifier
from repro.graphs import generators
from repro.sparsify import (
    refine_sparsifier,
    rescale_for_similarity,
    sparsify_graph,
)


@pytest.fixture(scope="module")
def coarse(scale):
    side = max(24, int(48 * scale))
    graph = generators.circuit_grid(side, side, layers=2, seed=13)
    return graph, sparsify_graph(graph, sigma2=400.0, seed=0)


def test_kernel_incremental_refine(benchmark, coarse):
    graph, result = coarse
    fine = benchmark.pedantic(
        lambda: refine_sparsifier(result, sigma2=50.0, seed=0),
        rounds=1, iterations=1,
    )
    assert fine.converged
    assert np.all(fine.edge_mask[result.edge_mask])


def test_kernel_global_rescaling(benchmark, coarse):
    graph, result = coarse
    rescaled = benchmark(
        lambda: rescale_for_similarity(graph, result.sparsifier, seed=0)
    )
    assert rescaled.scale > 0
    assert rescaled.sigma == pytest.approx(
        np.sqrt(rescaled.condition_number)
    )


def test_kernel_vectorless_verification(benchmark, scale):
    side = max(20, int(36 * scale))
    grid = generators.circuit_grid(side, side, layers=2, seed=14)
    pads = {0: 200.0, grid.n - 1: 200.0}
    verifier = VectorlessVerifier(grid, pads, mode="pcg", sigma2=50.0, seed=0)
    observed = np.linspace(1, grid.n - 2, 6, dtype=np.int64)
    result = benchmark.pedantic(
        lambda: verifier.verify(observed, i_max=0.05, total_budget=1.0),
        rounds=1, iterations=1,
    )
    assert result.worst_drop > 0
