"""Streaming event replay vs recompute-from-scratch per change batch.

The streaming subsystem's reason to exist: applying an event batch to a
live :class:`~repro.stream.DynamicSparsifier` must be much cheaper than
re-running the full batch pipeline (`sparsify_graph`) on the updated
graph, while certifying the same σ² target.  Headline target: ≥ 5x on
``grid2d(200, 200)`` with 1% edge churn (scaled by ``REPRO_SCALE``).

Run explicitly (benchmarks are not collected by the default test run):

    PYTHONPATH=src python -m pytest benchmarks/bench_stream_updates.py -v -s

CI runs this file with ``--smoke``: tiny sizes, parity asserts only.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graphs import generators
from repro.sparsify import sparsify_graph
from repro.stream import (
    DynamicSparsifier,
    apply_events,
    load_dynamic,
    random_event_stream,
    save_dynamic,
)

SIGMA2 = 100.0


def _split_batches(events, num_batches):
    size = max(1, len(events) // num_batches)
    return [events[i : i + size] for i in range(0, len(events), size)]


def test_replay_beats_recompute(scale, smoke, record):
    """Acceptance: replaying 1% churn is ≥ 5x cheaper than recomputing
    from scratch at every batch, with the same σ² certificate."""
    side = 36 if smoke else max(100, int(200 * scale))
    graph = generators.grid2d(side, side, weights="uniform", seed=4)
    churn = max(40, graph.num_edges // 100)  # 1% of edges
    events = random_event_stream(
        graph, churn, seed=7, p_insert=0.35, p_delete=0.35
    )
    batches = _split_batches(events, 8)

    dyn = DynamicSparsifier(graph, sigma2=SIGMA2, seed=0)
    t_replay = 0.0
    reports = []
    for batch in batches:
        start = time.perf_counter()
        reports.append(dyn.apply(batch))
        t_replay += time.perf_counter() - start

    # Recompute baseline: a fresh sparsify_graph on every batch snapshot.
    t_recompute = 0.0
    snapshot_events: list = []
    final_scratch = None
    for batch in batches:
        snapshot_events.extend(batch)
        snapshot = apply_events(graph, snapshot_events)
        start = time.perf_counter()
        final_scratch = sparsify_graph(snapshot, sigma2=SIGMA2, seed=0)
        t_recompute += time.perf_counter() - start

    # Correctness parity: identical final host graph, and the streaming
    # sparsifier certifies the target whenever from-scratch does.
    assert dyn.graph == apply_events(graph, events)
    assert np.all(dyn.edge_mask[dyn.tree_indices])
    if final_scratch.converged:
        assert dyn.last_estimate <= SIGMA2 * 1.0 + 1e-9
    speedup = t_recompute / max(t_replay, 1e-12)
    print(
        f"\ngrid2d({side}x{side}), {len(events)} events in {len(batches)} "
        f"batches: replay {t_replay:.3f}s vs recompute {t_recompute:.3f}s "
        f"({speedup:.1f}x); redensifications "
        f"{dyn.redensify_count}, backbone repairs {dyn.tree_repair_count}"
    )
    record("stream_updates", replay_s=t_replay, recompute_s=t_recompute,
           speedup=speedup)
    if not smoke:
        assert speedup >= 5.0


def test_checkpoint_roundtrip_parity(tmp_path, smoke):
    """save → load → continue equals an uninterrupted replay bit-exactly
    (the parity assert the CI smoke job leans on)."""
    side = 16 if smoke else 40
    graph = generators.grid2d(side, side, weights="lognormal", seed=9)
    events = random_event_stream(graph, 8 * side, seed=3, p_delete=0.4)
    batches = _split_batches(events, 6)

    solo = DynamicSparsifier(graph, sigma2=SIGMA2, seed=1)
    for batch in batches:
        solo.apply(batch)

    interrupted = DynamicSparsifier(graph, sigma2=SIGMA2, seed=1)
    for k, batch in enumerate(batches):
        interrupted.apply(batch)
        if k == len(batches) // 2:
            save_dynamic(tmp_path / "ckpt", interrupted)
            interrupted = load_dynamic(tmp_path / "ckpt")

    assert interrupted.graph == solo.graph
    assert np.array_equal(interrupted.edge_mask, solo.edge_mask)
    assert np.array_equal(interrupted.tree_indices, solo.tree_indices)


def test_benchmark_single_batch_apply(benchmark, scale, smoke):
    """pytest-benchmark micro: one 64-event batch against a warm state."""
    side = 20 if smoke else max(60, int(120 * scale))
    graph = generators.grid2d(side, side, weights="uniform", seed=4)
    events = random_event_stream(graph, 64, seed=11, p_delete=0.3)

    def run():
        dyn = DynamicSparsifier(graph, sigma2=SIGMA2, seed=0)
        return dyn.apply(events)

    report = benchmark.pedantic(run, rounds=1 if smoke else 2, iterations=1)
    assert report.num_edges >= graph.n - 1
