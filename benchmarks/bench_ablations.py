"""Benchmark + regeneration of the design-choice ablation sweeps.

Regenerates the ablation table (tree backbone, embedding depth t, probe
count r, similarity filter, sampling baselines) with exact condition
numbers, and asserts the design claims DESIGN.md calls out.
"""

from __future__ import annotations

from repro.experiments import ablations
from repro.utils.tables import format_table


def test_ablation_regeneration(benchmark, capsys, scale):
    rows = benchmark.pedantic(
        lambda: ablations.run(scale=min(scale, 0.5), seed=0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_table(ablations.HEADERS, rows,
                           title="Ablations: design-choice sweeps"))
    by_setting = {(row[0], row[1]): row for row in rows}

    # Low-stretch backbones (akpw/spt/maxw) must beat the random tree in
    # achieved condition number at the same sigma2 target, or at least
    # never be worse by more than noise.
    kappa_akpw = float(by_setting[("tree", "akpw")][3])
    kappa_random = float(by_setting[("tree", "random")][3])
    assert kappa_akpw <= 1.1 * kappa_random

    # The similarity-aware pipeline beats uniform sampling at equal budget.
    kappa_sa = float(by_setting[("baseline", "similarity_aware")][3])
    kappa_uniform = float(by_setting[("baseline", "uniform")][3])
    assert kappa_sa < kappa_uniform

    # All sweeps hit (well within) their similarity target.
    for (sweep, _), row in by_setting.items():
        if sweep in ("tree", "t", "r", "similarity"):
            assert float(row[3]) <= 160.0  # sigma2=100 with estimator slack
