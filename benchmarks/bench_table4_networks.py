"""Benchmark + regeneration of Table 4 (complex-network sparsification).

Regenerates the σ²≈100 network simplification rows (T_tot, |E|/|Es|,
λ₁/λ̃₁, eigensolver timings) and micro-benchmarks the full sparsifier
extraction on the dense-random (appu-style) workload where edge
reduction is most dramatic.
"""

from __future__ import annotations

import pytest

from repro.apps import simplify_network
from repro.experiments import table4
from repro.graphs import generators
from repro.utils.tables import format_table


def test_table4_regeneration(benchmark, capsys, scale):
    rows = benchmark.pedantic(
        lambda: table4.run(scale=min(scale, 0.7), seed=0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_table(table4.HEADERS, rows,
                           title="Table 4: complex network sparsification"))
    assert len(rows) == 5
    for row in rows:
        reduction = float(row[5].rstrip("x"))
        lam_ratio = float(row[6].rstrip("x").replace(",", ""))
        assert reduction > 1.0
        assert lam_ratio >= 1.0
    dense_row = [r for r in rows if r[1] == "appu"][0]
    knn_row = [r for r in rows if r[1] == "RCV-80NN"][0]
    assert float(dense_row[5].rstrip("x")) > 5.0   # paper: 25x
    assert float(knn_row[5].rstrip("x")) > 5.0     # paper: 36x


@pytest.fixture(scope="module")
def dense_network(scale):
    n = max(600, int(2000 * scale))
    return generators.erdos_renyi_gnm(n, 40 * n, seed=42)


def test_kernel_simplify_dense_network(benchmark, dense_network):
    report = benchmark.pedantic(
        lambda: simplify_network(dense_network, sigma2=100.0, seed=0,
                                 time_eigensolves=False),
        rounds=1, iterations=1,
    )
    assert report.edge_reduction > 5.0
