"""Shard-parallel sparsification: wall-clock speedup vs the serial path.

Two workloads:

- *multi-component*: a disjoint union of four equal grids — the exact
  decomposition case.  With four process workers the stitched run must
  beat serial shard execution by >1.5x wall-clock (acceptance
  criterion) while producing the identical edge mask.
- *partitioned*: one connected grid force-split into >= 4 shards via
  ``shard_max_nodes`` — the heuristic GRASS-style decomposition.  Same
  mask-determinism requirement; the speedup bar is lower because shard
  sizes are uneven.

The speedup assertions need real cores; they skip on single-CPU boxes
(the mask checks still run).  Run explicitly:

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_shards.py -v -s
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from conftest import bench_scale
from repro.graphs import generators
from repro.graphs.operations import disjoint_union
from repro.sparsify import ShardedSparsifier

SIGMA2 = 100.0
WORKERS = 4


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _four_component_graph(side: int) -> "generators.Graph":
    parts = [
        generators.grid2d(side, side, weights="uniform", seed=seed)
        for seed in range(4)
    ]
    graph = parts[0]
    for part in parts[1:]:
        graph = disjoint_union(graph, part)
    return graph


def _timed_run(graph, **options):
    result = ShardedSparsifier(sigma2=SIGMA2, seed=0, **options).sparsify(graph)
    return result, result.wall_seconds


def test_multi_component_speedup(record):
    """Acceptance: >1.5x wall-clock with 4 workers on a 4-shard workload."""
    side = max(40, int(70 * np.sqrt(bench_scale())))
    graph = _four_component_graph(side)
    serial, t_serial = _timed_run(graph, workers=1, backend="serial")
    parallel, t_parallel = _timed_run(
        graph, workers=WORKERS, backend="process"
    )
    assert np.array_equal(serial.edge_mask, parallel.edge_mask)
    assert len(parallel.shards) == 4
    speedup = t_serial / t_parallel
    print(
        f"\nmulti-component {graph.n} vertices / {graph.num_edges} edges: "
        f"serial {t_serial:.2f}s, {WORKERS} process workers {t_parallel:.2f}s "
        f"-> speedup {speedup:.2f}x on {_cpus()} CPUs"
    )
    record("parallel_multi_component", serial_s=t_serial,
           parallel_s=t_parallel, speedup=speedup)
    if _cpus() < 2:
        pytest.skip("speedup assertion needs more than one CPU")
    assert speedup > 1.5


def test_partitioned_speedup(record):
    """Fiedler-split shards of one connected grid also parallelize."""
    side = max(40, int(90 * np.sqrt(bench_scale())))
    graph = generators.grid2d(side, side, weights="uniform", seed=1)
    max_nodes = graph.n // 4 + 1
    serial, t_serial = _timed_run(
        graph, workers=1, backend="serial", shard_max_nodes=max_nodes
    )
    parallel, t_parallel = _timed_run(
        graph, workers=WORKERS, backend="process", shard_max_nodes=max_nodes
    )
    assert np.array_equal(serial.edge_mask, parallel.edge_mask)
    assert len(parallel.shards) >= 4
    speedup = t_serial / t_parallel
    print(
        f"\npartitioned {graph.n} vertices into {len(parallel.shards)} shards "
        f"({parallel.cut_edge_indices.size} cut edges): serial {t_serial:.2f}s, "
        f"{WORKERS} process workers {t_parallel:.2f}s -> speedup {speedup:.2f}x"
    )
    record("parallel_partitioned", serial_s=t_serial,
           parallel_s=t_parallel, speedup=speedup)
    if _cpus() < 2:
        pytest.skip("speedup assertion needs more than one CPU")
    assert speedup > 1.2


def test_process_pool_overhead_bounded():
    """On a small workload the process backend must stay within 3x of
    serial wall time — guards against pathological pickling costs."""
    graph = _four_component_graph(24)
    _, t_serial = _timed_run(graph, workers=1, backend="serial")
    _, t_parallel = _timed_run(graph, workers=2, backend="process")
    print(
        f"\nsmall workload: serial {t_serial:.3f}s, process {t_parallel:.3f}s"
    )
    assert t_parallel < max(3.0 * t_serial, 2.0)
