"""Stage-pipeline overhead and per-stage breakdown.

The unified pipeline (``repro.core``) wraps every stage execution with
timers and counter bookkeeping.  That instrumentation must be noise:
this benchmark runs the *pre-refactor* batch loop (a frozen inline
copy, as in the golden-parity suite) head-to-head against the pipeline
entry point on the same graph and seed and asserts

- identical edge masks (bit parity, checked in every mode), and
- an end-to-end pipeline time within 5% of the legacy loop (the
  regression guard; skipped with ``--smoke``).

It also prints the per-stage table — the profile the CLI exposes via
``repro sparsify --profile`` and the server via ``/stats``.

Run explicitly (benchmarks are not collected by the default test run):

    PYTHONPATH=src python -m pytest benchmarks/bench_pipeline_stages.py -v -s

CI runs this file with ``--smoke``: tiny graph, parity and profile
shape asserts only, no timing assertions.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graphs import generators
from repro.sparsify import SparsifierState, sparsify_graph
from repro.sparsify.edge_embedding import joule_heats
from repro.sparsify.edge_similarity import select_dissimilar
from repro.sparsify.filtering import filter_edges, heat_threshold
from repro.spectral.extreme import generalized_power_iteration
from repro.trees.lsst import low_stretch_tree
from repro.utils.rng import as_rng

SIGMA2 = 100.0
REPEATS = 3


def legacy_sparsify(graph, sigma2=SIGMA2, seed=0, max_iterations=50):
    """Frozen pre-refactor serial kernel (tree + inline §3.7 loop)."""
    rng = as_rng(seed)
    tree_indices = low_stretch_tree(graph, method="akpw", seed=rng)
    state = SparsifierState(graph, tree_indices)
    max_per_iter = max(100, int(0.05 * graph.n))
    LG = state.host_laplacian
    for _ in range(max_iterations):
        solver = state.solver()
        lam_max = generalized_power_iteration(
            LG, state.laplacian, solver, iterations=10, seed=rng
        )
        lam_min = state.lambda_min()
        if lam_max / lam_min <= sigma2:
            break
        off = np.flatnonzero(~state.edge_mask)
        heats = joule_heats(graph, solver, off, seed=rng, LG=LG)
        decision = filter_edges(
            heats, heat_threshold(sigma2, lam_min, lam_max, t=2)
        )
        added = select_dissimilar(
            graph, off[decision.passing], max_edges=max_per_iter
        )
        state.add_edges(added)
        if added.size == 0:
            break
    return state.edge_mask, tree_indices


def best_of(fn, repeats=REPEATS):
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_pipeline_matches_legacy_within_5_percent(smoke, scale, record):
    side = 40 if smoke else int(120 * scale)
    graph = generators.grid2d(side, side, weights="uniform", seed=0)

    legacy_out, legacy_best = best_of(
        lambda: legacy_sparsify(graph, seed=0),
        repeats=1 if smoke else REPEATS,
    )
    pipeline_out, pipeline_best = best_of(
        lambda: sparsify_graph(graph, sigma2=SIGMA2, seed=0),
        repeats=1 if smoke else REPEATS,
    )

    # Bit parity first: speed means nothing if the answer changed.
    legacy_mask, legacy_tree = legacy_out
    assert np.array_equal(pipeline_out.edge_mask, legacy_mask)
    assert np.array_equal(pipeline_out.tree_indices, legacy_tree)

    profile = pipeline_out.profile
    print(f"\ngrid {side}x{side}: legacy {legacy_best * 1e3:.1f} ms, "
          f"pipeline {pipeline_best * 1e3:.1f} ms "
          f"(x{pipeline_best / legacy_best:.3f})")
    print(profile.table())
    record("pipeline_stages", legacy_s=legacy_best, pipeline_s=pipeline_best,
           ratio=pipeline_best / legacy_best)

    # Profile shape: the loop's sub-stages must be accounted for.
    for name in ("tree", "densify", "densify.estimate", "densify.embedding",
                 "densify.filter", "densify.similarity"):
        assert name in profile.reports
    assert profile.reports["densify"].counters["added"] == int(
        legacy_mask.sum() - legacy_tree.size
    )
    # Sub-stage time is contained in (and cannot exceed) the driver's.
    inner = sum(
        profile.seconds(name)
        for name in profile.reports if name.startswith("densify.")
    )
    assert inner <= profile.seconds("densify") + 1e-6

    if smoke:
        return  # parity-only mode: no timing assertions in CI
    # The ≤5% end-to-end regression guard vs the pre-refactor loop.
    assert pipeline_best <= 1.05 * legacy_best, (
        f"pipeline {pipeline_best:.4f}s exceeds 105% of legacy "
        f"{legacy_best:.4f}s"
    )


def test_profile_totals_cover_wall_time(smoke):
    side = 30 if smoke else 60
    graph = generators.grid2d(side, side, weights="uniform", seed=1)
    start = time.perf_counter()
    result = sparsify_graph(graph, sigma2=SIGMA2, seed=1)
    wall = time.perf_counter() - start
    total = result.profile.total_seconds()
    # The profiled stages are the whole run (mask materialization and
    # result assembly aside): their sum tracks the wall time closely.
    assert total <= wall + 1e-6
    assert total >= 0.5 * wall
