"""Benchmark + regeneration of Table 3 (spectral graph partitioning).

Regenerates the direct-vs-iterative Fiedler solver comparison (time,
memory, partition agreement) and micro-benchmarks both solver modes on
one mesh workload.
"""

from __future__ import annotations

import pytest

from repro.apps import partition_graph
from repro.experiments import table3
from repro.graphs import generators
from repro.utils.tables import format_table


def test_table3_regeneration(benchmark, capsys, scale):
    rows = benchmark.pedantic(
        lambda: table3.run(scale=scale, seed=0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_table(table3.HEADERS, rows,
                           title="Table 3: spectral graph partitioning"))
    assert len(rows) == 8
    for row in rows:
        balance = float(row[3])
        memory_direct = float(row[5])
        memory_iterative = float(row[7])
        rel_err = float(row[8])
        assert 0.5 <= balance <= 2.0
        assert memory_iterative < memory_direct   # the paper's M_I << M_D
        assert rel_err <= 0.1


@pytest.fixture(scope="module")
def mesh(scale):
    side = max(48, int(120 * scale))
    return generators.grid2d(side, side, weights="uniform", seed=36)


def test_kernel_partition_direct(benchmark, mesh):
    report = benchmark.pedantic(
        lambda: partition_graph(mesh, method="direct", seed=0),
        rounds=1, iterations=1,
    )
    assert 0.5 <= report.balance <= 2.0


def test_kernel_partition_sparsifier(benchmark, mesh):
    report = benchmark.pedantic(
        lambda: partition_graph(mesh, method="sparsifier", sigma2=200.0, seed=0),
        rounds=1, iterations=1,
    )
    assert 0.5 <= report.balance <= 2.0
