"""Per-iteration densification cost: incremental engine vs full rebuild.

The incremental engine (:class:`repro.sparsify.state.SparsifierState`)
must (a) select *exactly* the same edges as the seed's
rebuild-everything loop for a fixed seed and (b) spend less wall time
per iteration once the sparsifier exists (iterations after the first),
because Laplacian, degrees and solver are updated in place instead of
being rebuilt from the whole sparsifier.

Run explicitly (benchmarks are not collected by the default test run):

    PYTHONPATH=src python -m pytest benchmarks/bench_densify_scaling.py -v -s

CI runs this file with ``--smoke``: only the smallest size, identical
edge masks still asserted, timing assertions skipped.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graphs import generators
from repro.solvers import AMGSolver, DirectSolver
from repro.sparsify.densify import densify
from repro.sparsify.edge_embedding import joule_heats
from repro.sparsify.edge_similarity import select_dissimilar
from repro.sparsify.filtering import filter_edges, heat_threshold
from repro.spectral.extreme import estimate_lambda_max, estimate_lambda_min
from repro.trees import RootedTree, TreeSolver, low_stretch_tree
from repro.utils.rng import as_rng

SIGMA2 = 100.0


def densify_rebuild(graph, tree_indices, sigma2=SIGMA2, seed=0,
                    solver_method="auto", max_iterations=50):
    """The seed implementation: fresh subgraph, Laplacian and solver
    every iteration.  Kept verbatim as the baseline under test."""
    rng = as_rng(seed)
    tree_indices = np.asarray(tree_indices, dtype=np.int64)
    edge_mask = np.zeros(graph.num_edges, dtype=bool)
    edge_mask[tree_indices] = True
    is_pure_tree = True
    max_per_iter = max(100, int(0.05 * graph.n))
    elapsed = []
    for _ in range(max_iterations):
        start = time.perf_counter()
        if is_pure_tree:
            solver = TreeSolver(RootedTree.from_graph(graph, tree_indices))
        else:
            sparsifier = graph.edge_subgraph(edge_mask)
            method = solver_method
            if method == "auto":
                method = "cholesky" if graph.n <= 200_000 else "amg"
            if method == "cholesky":
                solver = DirectSolver(sparsifier.laplacian().tocsc())
            else:
                solver = AMGSolver(sparsifier.laplacian(), cycles=2)
        sparsifier = graph.edge_subgraph(edge_mask)
        lam_max = estimate_lambda_max(graph, sparsifier, solver, seed=rng)
        lam_min = estimate_lambda_min(graph, sparsifier)
        if lam_max / lam_min <= sigma2:
            elapsed.append(time.perf_counter() - start)
            return edge_mask, elapsed, True
        off = np.flatnonzero(~edge_mask)
        heats = joule_heats(graph, solver, off, seed=rng)
        decision = filter_edges(heats, heat_threshold(sigma2, lam_min, lam_max, t=2))
        added = select_dissimilar(graph, off[decision.passing],
                                  max_edges=max_per_iter)
        edge_mask[added] = True
        if added.size:
            is_pure_tree = False
        elapsed.append(time.perf_counter() - start)
        if added.size == 0:
            break
    return edge_mask, elapsed, False


def _compare(graph, seed=0, solver_method="auto"):
    tree = low_stretch_tree(graph, seed=seed)
    old_mask, old_times, _ = densify_rebuild(
        graph, tree, seed=seed, solver_method=solver_method
    )
    result = densify(graph, tree, sigma2=SIGMA2, seed=seed,
                     solver_method=solver_method)
    new_times = [it.elapsed for it in result.iterations]
    return old_mask, old_times, result, new_times


@pytest.mark.parametrize("side", [60, 120, 200])
def test_incremental_identical_and_faster_per_iteration(side, smoke, record):
    """Acceptance: identical edge mask; lower mean per-iteration time
    after the first densification iteration (grid2d(200, 200) is the
    headline size)."""
    if smoke and side > 60:
        pytest.skip("smoke mode runs the smallest size only")
    graph = generators.grid2d(side, side, weights="uniform", seed=4)
    old_mask, old_times, result, new_times = _compare(graph)
    assert np.array_equal(result.edge_mask, old_mask)
    old_mean = float(np.mean(old_times[1:]))
    new_mean = float(np.mean(new_times[1:]))
    print(
        f"\ngrid2d({side}x{side}): per-iteration after iter 1 — "
        f"rebuild {old_mean * 1e3:.1f} ms, incremental {new_mean * 1e3:.1f} ms "
        f"({old_mean / max(new_mean, 1e-12):.2f}x); "
        f"totals {sum(old_times):.3f}s vs {sum(new_times):.3f}s"
    )
    record(f"densify_scaling_{side}", rebuild_iter_s=old_mean,
           incremental_iter_s=new_mean,
           speedup=old_mean / max(new_mean, 1e-12))
    if not smoke:
        assert new_mean < old_mean


def test_amg_hierarchy_reuse_faster(scale, smoke):
    """The AMG path amortizes its hierarchy across iterations."""
    side = 32 if smoke else max(80, int(150 * scale))
    graph = generators.grid2d(side, side, weights="uniform", seed=4)
    tree = low_stretch_tree(graph, seed=0)
    start = time.perf_counter()
    reused = densify(graph, tree, sigma2=SIGMA2, seed=0,
                     solver_method="amg", amg_rebuild_every=8)
    t_reuse = time.perf_counter() - start
    start = time.perf_counter()
    rebuilt = densify(graph, tree, sigma2=SIGMA2, seed=0,
                      solver_method="amg", amg_rebuild_every=0)
    t_rebuild = time.perf_counter() - start
    print(
        f"\nAMG grid2d({side}x{side}): reuse {t_reuse:.3f}s vs "
        f"rebuild-always {t_rebuild:.3f}s ({t_rebuild / max(t_reuse, 1e-12):.2f}x)"
    )
    assert reused.num_edges >= graph.n - 1
    # Hierarchy reuse changes solver numerics slightly, so masks may
    # legitimately differ from the rebuild-always run; both must still
    # contain the full backbone.
    assert np.all(reused.edge_mask[tree])
    assert np.all(rebuilt.edge_mask[tree])
    if not smoke:
        assert t_reuse < t_rebuild


def test_benchmark_headline_full_run(benchmark, scale, smoke):
    """pytest-benchmark headline: one full incremental densification."""
    side = 24 if smoke else max(60, int(120 * scale))
    graph = generators.grid2d(side, side, weights="uniform", seed=4)
    tree = low_stretch_tree(graph, seed=0)
    result = benchmark.pedantic(
        lambda: densify(graph, tree, sigma2=SIGMA2, seed=0),
        rounds=1 if smoke else 2, iterations=1,
    )
    assert result.num_edges >= graph.n - 1
