"""Benchmark + regeneration of Table 2 (iterative SDD solver).

Regenerates the σ²=50 vs σ²=200 preconditioner trade-off rows and
micro-benchmarks one PCG solve per similarity level on the
G3-circuit-style workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import SimilarityAwareSolver
from repro.experiments import table2
from repro.graphs import generators
from repro.utils.tables import format_table


def test_table2_regeneration(benchmark, capsys, scale):
    rows = benchmark.pedantic(
        lambda: table2.run(scale=scale, seed=0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_table(table2.HEADERS, rows,
                           title="Table 2: iterative SDD matrix solver"))
    assert len(rows) == 5
    for row in rows:
        n50, n200 = int(row[5]), int(row[8])
        d50, d200 = float(row[4]), float(row[7])
        assert n50 <= n200          # better similarity, fewer iterations
        assert d50 >= 0.98 * d200   # at the cost of a denser preconditioner


@pytest.fixture(scope="module", params=[50.0, 200.0], ids=["sigma2=50", "sigma2=200"])
def solver_and_rhs(request, scale):
    side = max(32, int(90 * scale))
    graph = generators.circuit_grid(side, side, layers=2, seed=21)
    solver = SimilarityAwareSolver(graph, sigma2=request.param, seed=0)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(graph.n)
    b -= b.mean()
    return solver, b


def test_kernel_pcg_solve(benchmark, solver_and_rhs):
    solver, b = solver_and_rhs
    report = benchmark(lambda: solver.solve(b, tol=1e-3))
    assert report.solve.converged
