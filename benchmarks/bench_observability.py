"""Observability overhead: the collectors must be nearly free.

The unified observability layer instruments every hot path (stage and
kernel spans, solver and stream counters), so its cost model is part of
the repo's contract: the *disabled* path — the default for every batch
run — must cost ≤ 2% of pipeline wall time, and a fully *enabled*
tracer + metrics registry ≤ 10%.

The enabled bound is measured head-to-head: best-of-k pipeline runs
with live collectors over best-of-k with collectors disabled.  The
disabled bound is measured from first principles, because there is no
uninstrumented build to diff against: per-call cost of the no-op span
and no-op counter primitives, multiplied by the number of
instrumentation events an enabled run actually records, relative to
the disabled pipeline's wall time.

Run explicitly (benchmarks are not collected by the default test run):

    PYTHONPATH=src python -m pytest benchmarks/bench_observability.py -v -s

CI runs this file with ``--smoke``: tiny sizes, parity asserts only.
"""

from __future__ import annotations

import time

import numpy as np

import repro.obs as obs
from repro.graphs import generators
from repro.obs import MetricsRegistry, Tracer
from repro.sparsify import sparsify_graph

SIGMA2 = 50.0


def _pipeline_seconds(graph, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        sparsify_graph(graph, sigma2=SIGMA2, seed=0)
        best = min(best, time.perf_counter() - start)
    return best


def test_observability_overhead(scale, smoke, record):
    """Acceptance: live collectors cost ≤ 10% pipeline wall time, and
    the disabled no-op path is estimated at ≤ 2%."""
    side = 12 if smoke else max(24, int(64 * scale))
    repeats = 1 if smoke else 5
    graph = generators.grid2d(side, side, weights="lognormal", seed=3)

    obs.disable()
    off_result = sparsify_graph(graph, sigma2=SIGMA2, seed=0)
    t_off = _pipeline_seconds(graph, repeats)

    tracer, metrics = Tracer(), MetricsRegistry()
    with obs.observed(tracer=tracer, metrics=metrics):
        on_result = sparsify_graph(graph, sigma2=SIGMA2, seed=0)
        t_on = _pipeline_seconds(graph, repeats)

    # Collectors are passive: identical output either way.
    assert np.array_equal(off_result.edge_mask, on_result.edge_mask)
    assert np.array_equal(off_result.tree_indices, on_result.tree_indices)
    assert off_result.sigma2_estimate == on_result.sigma2_estimate

    # Disabled-path cost model: every instrumentation point is one null
    # span plus (conservatively) one null metric update.  Count the
    # points from what one enabled run actually recorded; spans from the
    # repeated _pipeline_seconds runs divide back out.
    events_per_run = len(tracer.records()) // (repeats + 1)
    trials = 2_000 if smoke else 50_000
    null_tracer, null_metrics = obs.get_tracer(), obs.get_metrics()
    assert not null_tracer.enabled and not null_metrics.enabled
    start = time.perf_counter()
    for _ in range(trials):
        with null_tracer.span("noop", category="bench"):
            pass
        null_metrics.counter("repro_noop_total", "Unused.").inc()
    per_event = (time.perf_counter() - start) / trials

    est_disabled = events_per_run * per_event / max(t_off, 1e-12)
    enabled_overhead = t_on / max(t_off, 1e-12) - 1.0
    print(
        f"\ngrid2d({side}x{side}): disabled {t_off:.4f}s, enabled "
        f"{t_on:.4f}s ({enabled_overhead:+.1%}); {events_per_run} "
        f"instrumentation events/run at {per_event * 1e9:.0f} ns null "
        f"cost -> estimated disabled overhead {est_disabled:.3%}"
    )
    record(
        "observability",
        disabled_s=t_off,
        enabled_s=t_on,
        enabled_overhead=enabled_overhead,
        events_per_run=events_per_run,
        null_event_ns=per_event * 1e9,
        est_disabled_overhead=est_disabled,
    )
    assert events_per_run > 0
    if not smoke:
        assert est_disabled <= 0.02
        assert enabled_overhead <= 0.10
