"""Benchmark + regeneration of Figure 2 (edge ranking and filtering).

Regenerates the sorted normalized Joule-heat series with the θ_σ
thresholds for σ² = 100 and σ² = 500, and micro-benchmarks the heat
embedding kernel (t-step generalized power iterations + per-edge heats).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figure2
from repro.graphs import generators
from repro.sparsify import joule_heats
from repro.trees import RootedTree, TreeSolver, low_stretch_tree
from repro.utils.tables import format_table


def test_figure2_regeneration(benchmark, capsys, scale):
    output = benchmark.pedantic(
        lambda: figure2.run(scale=scale, seed=0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_table(figure2.HEADERS, output["rows"],
                           title="Figure 2: spectral edge ranking and filtering"))
    for data in output["series"].values():
        norm = data["sorted_normalized_heats"]
        # The paper's observation: a sharp knee at the top of the
        # distribution — "not too many large generalized eigenvalues".
        knee = norm[max(1, norm.size // 100) - 1] / max(np.median(norm), 1e-300)
        assert knee > 10.0
        assert data["thresholds"][500.0] > data["thresholds"][100.0]


@pytest.fixture(scope="module")
def embedding_setup(scale):
    side = max(30, int(70 * scale))
    graph = generators.circuit_grid(side, side, layers=2, seed=26)
    tree_idx = low_stretch_tree(graph, seed=0)
    solver = TreeSolver(RootedTree.from_graph(graph, tree_idx))
    mask = np.zeros(graph.num_edges, dtype=bool)
    mask[tree_idx] = True
    off = np.flatnonzero(~mask)
    return graph, solver, off


def test_kernel_joule_heat_embedding(benchmark, embedding_setup):
    graph, solver, off = embedding_setup
    heats = benchmark(
        lambda: joule_heats(graph, solver, off, t=2, seed=0)
    )
    assert heats.shape == (off.size,)
