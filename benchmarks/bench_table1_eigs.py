"""Benchmark + regeneration of Table 1 (extreme eigenvalue estimation).

Regenerates the paper's Table 1 rows (exact vs estimated λmin/λmax with
relative errors) and micro-benchmarks the two estimators against the
dense reference eigensolver they replace.
"""

from __future__ import annotations

import pytest

from repro.experiments import table1
from repro.graphs import generators
from repro.solvers import DirectSolver
from repro.sparsify import sparsify_graph
from repro.spectral import (
    estimate_lambda_max,
    estimate_lambda_min,
    exact_extreme_generalized_eigs,
)
from repro.utils.tables import format_table


def test_table1_regeneration(benchmark, capsys, scale):
    rows = benchmark.pedantic(
        lambda: table1.run(scale=min(scale, 0.8), seed=0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_table(table1.HEADERS, rows,
                           title="Table 1: extreme eigenvalue estimation"))
    assert len(rows) == 5
    for row in rows:
        lmin_exact, lmin_est = float(row[2]), float(row[3])
        lmax_exact, lmax_est = float(row[5]), float(row[6])
        assert lmin_est >= lmin_exact - 1e-9      # Eq. 18 upper-bounds λmin
        assert lmax_est <= lmax_exact * 1.001     # power iteration from below
        assert abs(lmax_est - lmax_exact) / lmax_exact < 0.25


@pytest.fixture(scope="module")
def pencil():
    graph = generators.fem_mesh_3d(1200, seed=11, shape="annulus")
    sparsifier = sparsify_graph(graph, sigma2=100.0, seed=0).sparsifier
    solver = DirectSolver(sparsifier.laplacian().tocsc())
    return graph, sparsifier, solver


def test_kernel_lambda_max_power_iteration(benchmark, pencil):
    graph, sparsifier, solver = pencil
    value = benchmark(
        lambda: estimate_lambda_max(graph, sparsifier, solver,
                                    iterations=8, seed=0)
    )
    assert value > 1.0


def test_kernel_lambda_min_node_coloring(benchmark, pencil):
    graph, sparsifier, _ = pencil
    value = benchmark(lambda: estimate_lambda_min(graph, sparsifier))
    assert value >= 1.0


def test_kernel_dense_reference(benchmark, pencil):
    """The exact solver the estimators replace — orders slower."""
    graph, sparsifier, _ = pencil
    lmin, lmax = benchmark.pedantic(
        lambda: exact_extreme_generalized_eigs(
            graph.laplacian(), sparsifier.laplacian()
        ),
        rounds=1,
        iterations=1,
    )
    assert lmax > lmin > 0
