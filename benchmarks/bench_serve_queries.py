"""Query-serving throughput: batched engine vs naive per-query solves.

The serving subsystem's reason to exist: a σ²-certified sparsifier is
a *reusable* proxy — the registry keeps it (and its factorization)
warm, and the engine coalesces query batches into multi-RHS solves.
Serving without the subsystem means naive per-query answering: every
resistance request pays its own Laplacian solve against its own
factorization, because nothing holds warm state between requests.
Headline target: ≥ 5x resistance-query throughput on
``grid2d(200, 200)`` (scaled by ``REPRO_SCALE``) for the batched
:class:`~repro.serve.QueryEngine` over that naive path, with identical
answers.  The warm per-query loop (shared factorization, one solve per
query) is also reported, isolating the artifact-reuse win from the
multi-RHS coalescing win.

Run explicitly (benchmarks are not collected by the default test run):

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_queries.py -v -s

CI runs this file with ``--smoke``: tiny sizes, parity asserts only.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graphs import generators
from repro.serve import QueryEngine
from repro.solvers import DirectSolver
from repro.sparsify import exact_effective_resistances
from repro.stream import DynamicSparsifier, random_event_stream

SIGMA2 = 100.0


def _query_pairs(n, count, rng):
    pairs = rng.integers(0, n, size=(count, 2))
    fix = pairs[:, 0] == pairs[:, 1]
    pairs[fix, 1] = (pairs[fix, 0] + 1) % n
    return pairs


def test_batched_engine_beats_per_query_solves(scale, smoke, record):
    """Acceptance: the warm batched engine answers k resistance queries
    ≥ 5x faster than naive per-query serving, with identical answers."""
    side = 36 if smoke else max(100, int(200 * scale))
    queries = 16 if smoke else 64
    graph = generators.grid2d(side, side, weights="uniform", seed=4)
    dyn = DynamicSparsifier(graph, sigma2=SIGMA2, seed=0)
    engine = QueryEngine(dyn)
    rng = np.random.default_rng(11)
    pairs = _query_pairs(graph.n, queries, rng)

    sparsifier = dyn.sparsifier()
    dyn.solver()  # warm the engine's factorization out of the timed region
    engine.resistance(pairs[:2])

    # Naive serving: no warm artifact — each query factorizes and solves.
    start = time.perf_counter()
    naive = np.concatenate([
        exact_effective_resistances(
            sparsifier,
            pair[None, :],
            solver=DirectSolver(sparsifier.laplacian().tocsc()),
        )
        for pair in pairs
    ])
    t_naive = time.perf_counter() - start

    # Warm per-query loop: shared factorization, one solve per query.
    warm_solver = DirectSolver(sparsifier.laplacian().tocsc())
    start = time.perf_counter()
    warm = np.concatenate([
        exact_effective_resistances(sparsifier, pair[None, :], solver=warm_solver)
        for pair in pairs
    ])
    t_warm = time.perf_counter() - start

    # Batched engine: one call, multi-RHS solves against the warm solver.
    start = time.perf_counter()
    batched = engine.resistance(pairs)
    t_batched = time.perf_counter() - start

    assert np.allclose(naive, batched)
    assert np.allclose(warm, batched)
    speedup = t_naive / max(t_batched, 1e-12)
    print(
        f"\ngrid2d({side}x{side}), {queries} resistance queries: "
        f"naive per-query {t_naive:.3f}s vs warm per-query {t_warm:.3f}s "
        f"vs batched engine {t_batched:.3f}s ({speedup:.1f}x over naive, "
        f"{queries / max(t_batched, 1e-12):,.0f} q/s batched)"
    )
    record("serve_queries", naive_s=t_naive, warm_s=t_warm,
           batched_s=t_batched, speedup=speedup)
    if not smoke:
        assert speedup >= 5.0


def test_micro_batch_flush_coalesces_submissions(smoke):
    """Cross-request micro-batching: k submitted queries execute as one
    multi-RHS solve and agree with direct answers."""
    side = 16 if smoke else 40
    graph = generators.grid2d(side, side, weights="uniform", seed=7)
    engine = QueryEngine(DynamicSparsifier(graph, sigma2=SIGMA2, seed=0))
    rng = np.random.default_rng(3)
    pairs = _query_pairs(graph.n, 48, rng)

    handles = [engine.submit_resistance(int(u), int(v)) for u, v in pairs]
    first = handles[0].result()  # one flush serves every submitter
    assert engine.stats.flushes == 1
    assert engine.stats.flushed_columns == len(handles)
    assert all(h.ready for h in handles)
    direct = engine.resistance(pairs)
    assert np.allclose([h.result() for h in handles], direct)
    assert first == direct[0]


def test_http_latency_quantiles_from_metrics(smoke, record, tmp_path):
    """End-to-end HTTP serving latency, read from the service's own
    ``repro_http_request_seconds`` histogram — the same numbers
    ``/metrics`` exports, no client-side stopwatch."""
    import repro.obs as obs
    from repro.serve import ServeClient, SparsifierRegistry, SparsifierService

    obs.disable()  # the service installs a fresh ambient registry
    side = 12 if smoke else 28
    requests = 20 if smoke else 200
    graph = generators.grid2d(side, side, weights="uniform", seed=4)
    service = SparsifierService(SparsifierRegistry(tmp_path / "registry"))
    service.start()
    try:
        client = ServeClient(service.url)
        key = client.register(graph, sigma2=SIGMA2, seed=0)
        rng = np.random.default_rng(11)
        for _ in range(requests):
            client.resistance(key, _query_pairs(graph.n, 4, rng))
        hist = obs.get_metrics().histogram(
            "repro_http_request_seconds",
            "Wall-clock seconds per HTTP request, by endpoint "
            "(unknown paths pool under 'other').",
            labelnames=("endpoint",),
        )
        endpoint = "/query/resistance"
        # The handler observes latency after the response hits the wire,
        # so the final observation can trail the client by a beat.
        deadline = time.perf_counter() + 2.0
        while (hist.count(endpoint=endpoint) < requests
               and time.perf_counter() < deadline):
            time.sleep(0.01)
        assert hist.count(endpoint=endpoint) == requests
        p50 = hist.quantile(0.5, endpoint=endpoint)
        p99 = hist.quantile(0.99, endpoint=endpoint)
    finally:
        service.stop()
        obs.disable()
    assert 0.0 <= p50 <= p99
    print(
        f"\n{endpoint} over {requests} requests: "
        f"p50 {p50 * 1e3:.2f} ms, p99 {p99 * 1e3:.2f} ms"
    )
    record("serve_queries", latency_requests=requests, p50_s=p50, p99_s=p99)


def test_serving_stays_fresh_under_churn(smoke):
    """Queries interleaved with event batches answer against the
    updated graph at every step (parity with a cold engine)."""
    side = 14 if smoke else 30
    graph = generators.grid2d(side, side, weights="uniform", seed=9)
    dyn = DynamicSparsifier(graph, sigma2=SIGMA2, seed=1)
    engine = QueryEngine(dyn)
    events = random_event_stream(graph, 60, seed=2, p_delete=0.35)
    rng = np.random.default_rng(5)
    for start in range(0, len(events), 20):
        dyn.apply(events[start : start + 20])
        pairs = _query_pairs(dyn.graph.n, 8, rng)
        served = engine.resistance(pairs)
        cold = exact_effective_resistances(dyn.sparsifier(), pairs)
        assert np.allclose(served, cold)
