"""Benchmark + regeneration of Figure 1 (spectral drawings).

Regenerates the airfoil drawing comparison (original vs sparsifier) with
quantitative alignment metrics, and micro-benchmarks the spectral
coordinate computation the figure depends on.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure1
from repro.graphs import generators
from repro.spectral import spectral_coordinates
from repro.utils.tables import format_table


def test_figure1_regeneration(benchmark, capsys, scale):
    output = benchmark.pedantic(
        lambda: figure1.run(scale=min(scale, 0.7), seed=0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_table(figure1.HEADERS, [output["row"]],
                           title="Figure 1: spectral drawing alignment"))
    # The sparsifier's drawing must align with the original's: small
    # Procrustes error and small principal angles.
    err = float(output["row"][5])
    angle = float(output["row"][6])
    assert err < 0.8
    assert angle < 45.0
    assert output["result"].sparsifier.num_edges < output["result"].graph.num_edges


@pytest.fixture(scope="module")
def airfoil(scale):
    return generators.airfoil_mesh(max(600, int(2500 * scale)), seed=16)


def test_kernel_spectral_coordinates(benchmark, airfoil):
    coords = benchmark.pedantic(
        lambda: spectral_coordinates(airfoil, dim=2, seed=0),
        rounds=1, iterations=1,
    )
    assert coords.shape == (airfoil.n, 2)
