"""Scenario: vectorless power-grid integrity verification (ref. [23]).

The paper's introduction motivates spectral sparsification with
scalable VLSI CAD; its companion DAC'17 application is *vectorless*
IR-drop verification — certifying the worst-case voltage drop of a
power delivery network under current constraints, without simulating
input vectors.  Each observed node costs one adjoint solve, which the
similarity-aware sparsifier preconditioner accelerates.

Run:  python examples/power_grid_verification.py
"""

import numpy as np

from repro.apps import VectorlessVerifier
from repro.graphs import generators
from repro.utils.tables import format_table


def main() -> None:
    # Two-layer on-chip power grid with supply pads at the four corners.
    side = 40
    grid = generators.circuit_grid(side, side, layers=2, seed=11)
    corners = [0, side - 1, side * (side - 1), side * side - 1]
    pads = {c: 200.0 for c in corners}
    print(f"power grid: {grid.n} nodes, {grid.num_edges} resistors, "
          f"{len(pads)} supply pads")

    # Certify the worst-case drop at a sample of sinks under a 2 A total
    # budget with per-node bounds of 50 mA.
    rng = np.random.default_rng(0)
    observed = rng.choice(grid.n, size=12, replace=False)

    direct = VectorlessVerifier(grid, pads, mode="direct")
    result_direct = direct.verify(observed, i_max=0.05, total_budget=2.0)

    pcg = VectorlessVerifier(grid, pads, mode="pcg", sigma2=50.0, seed=0)
    result_pcg = pcg.verify(observed, i_max=0.05, total_budget=2.0)

    rows = []
    for j, node in enumerate(observed):
        rows.append(
            [
                int(node),
                f"{result_direct.drops[j] * 1e3:.3f}",
                f"{result_pcg.drops[j] * 1e3:.3f}",
            ]
        )
    print()
    print(format_table(
        ["node", "worst drop direct (mV)", "worst drop PCG (mV)"],
        rows,
        title="Vectorless worst-case IR drop certification",
    ))
    deviation = np.abs(result_direct.drops - result_pcg.drops).max()
    print(f"\nmax |direct - PCG| deviation: {deviation * 1e3:.2e} mV")
    print(f"worst node: {result_pcg.worst_node} "
          f"({result_pcg.worst_drop * 1e3:.2f} mV)")
    print(f"PCG iterations across {observed.size} adjoint solves: "
          f"{result_pcg.pcg_iterations} "
          f"({result_pcg.pcg_iterations / observed.size:.1f} per solve)")


if __name__ == "__main__":
    main()
