"""Scenario: solving a VLSI power-grid system for many right-hand sides.

The paper's Section 4.2 use case — a preconditioned conjugate gradient
solver whose preconditioner is a similarity-aware spectral sparsifier.
We sweep the σ² knob to expose the trade-off the paper's Table 2
reports: tighter similarity = denser preconditioner = fewer PCG
iterations, and the sweet spot depends on how many right-hand sides are
amortizing the setup cost.

Run:  python examples/sdd_solver_circuit.py
"""

import numpy as np

from repro.apps import SimilarityAwareSolver
from repro.graphs import generators
from repro.utils.tables import format_table


def main() -> None:
    # An on-chip power delivery network: two metal layers + vias, with a
    # grounded pad modeled by diagonal slack at one corner.
    import scipy.sparse as sp

    graph = generators.circuit_grid(60, 60, layers=2, seed=3)
    slack = np.zeros(graph.n)
    slack[0] = 10.0  # the pad connection makes the system non-singular
    system = (graph.laplacian() + sp.diags(slack)).tocsr()
    print(f"power grid: {graph.n} nodes, {graph.num_edges} resistors")

    rng = np.random.default_rng(0)
    num_rhs = 8
    currents = rng.standard_normal((graph.n, num_rhs))  # current sources

    rows = []
    for sigma2 in (25.0, 50.0, 200.0, 800.0):
        solver = SimilarityAwareSolver(system, sigma2=sigma2, seed=0)
        total_iterations = 0
        total_solve_seconds = 0.0
        for j in range(num_rhs):
            report = solver.solve(currents[:, j], tol=1e-3)
            assert report.solve.converged
            total_iterations += report.iterations
            total_solve_seconds += report.solve_seconds
        rows.append(
            [
                f"{sigma2:.0f}",
                f"{solver.density:.3f}",
                f"{total_iterations / num_rhs:.1f}",
                f"{solver.sparsify_seconds:.2f}",
                f"{total_solve_seconds:.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["sigma^2", "|E_P|/|V|", "PCG iters/RHS", "sparsify (s)",
             f"solve {num_rhs} RHS (s)"],
            rows,
            title="Preconditioner quality vs cost (Table 2 trade-off)",
        )
    )
    print("\nreading: smaller sigma^2 -> denser preconditioner -> fewer "
          "iterations per solve; with many RHS vectors the denser "
          "preconditioner amortizes its setup cost.")


if __name__ == "__main__":
    main()
