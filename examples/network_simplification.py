"""Scenario: simplifying a k-NN similarity graph for spectral clustering.

The paper's Section 4.4 use case (RCV-80NN): a dense k-nearest-neighbour
graph over feature vectors is too expensive to eigendecompose, but its
σ²≈100 sparsifier clusters just as well at a fraction of the cost.

Run:  python examples/network_simplification.py
"""

import numpy as np

from repro.apps import simplify_network
from repro.graphs import generators
from repro.spectral import spectral_clustering
from repro.utils.timing import Timer


def main() -> None:
    # Feature vectors from a mixture (documents/images stand-in), dense kNN.
    points = generators.gaussian_mixture_points(
        3000, dim=16, clusters=6, separation=6.0, seed=9
    )
    graph = generators.knn_graph(points, k=40)
    print(f"k-NN graph: {graph.n} vertices, {graph.num_edges} edges "
          f"(avg degree {2 * graph.num_edges / graph.n:.1f})")

    report = simplify_network(graph, sigma2=100.0, seed=0)
    sparsifier = report.result.sparsifier
    print(f"sparsified: {sparsifier.num_edges} edges "
          f"({report.edge_reduction:.1f}x reduction) "
          f"in {report.total_seconds:.2f}s")
    print(f"lambda1 drop from tree to sparsifier: {report.lambda1_ratio:,.0f}x")
    print(f"first-10 eigenvectors: original {report.eig_seconds_original:.2f}s "
          f"vs sparsified {report.eig_seconds_sparsified:.2f}s")

    with Timer() as t_orig:
        labels_orig = spectral_clustering(graph, 6, seed=1)
    with Timer() as t_sparse:
        labels_sparse = spectral_clustering(sparsifier, 6, seed=1)

    # Pairwise (Rand-style) agreement between the two clusterings.
    same_a = labels_orig[:, None] == labels_orig[None, :]
    same_b = labels_sparse[:, None] == labels_sparse[None, :]
    agreement = float(
        np.triu(same_a == same_b, k=1).sum() / (graph.n * (graph.n - 1) / 2)
    )
    print(f"\nspectral clustering: original {t_orig.elapsed:.2f}s, "
          f"sparsified {t_sparse.elapsed:.2f}s")
    print(f"clustering agreement (pairwise Rand): {agreement:.1%}")
    print("reading: the sparsifier preserves the cluster structure while "
          "being much cheaper to operate on.")


if __name__ == "__main__":
    main()
