"""Streaming demo: keep a sparsifier valid while the graph mutates.

Builds a power-grid style mesh, sparsifies it once, then streams edge
churn (component failures, new connections, re-weighted couplings)
through a DynamicSparsifier.  Along the way:

- deletions of spanning-tree edges trigger tier-2 backbone repair;
- drift past the sigma^2 target triggers tier-3 re-densification;
- a checkpoint is written, restored, and the run continues warm.

Run:  python examples/streaming_updates.py
"""

import tempfile
from pathlib import Path

from repro.graphs import generators
from repro.stream import (
    DynamicSparsifier,
    load_dynamic,
    random_event_stream,
    read_event_log,
    save_dynamic,
    write_event_log,
)


def main() -> None:
    graph = generators.circuit_grid(28, 28, layers=2, seed=7)
    print(f"host graph: {graph.n} vertices, {graph.num_edges} edges")

    # One-time batch sparsification, then the instance goes live.
    dyn = DynamicSparsifier(graph, sigma2=100.0, seed=0)
    print(f"initial sparsifier: {dyn.num_edges} edges "
          f"(sigma2 estimate {dyn.last_estimate:.1f}, target {dyn.sigma2:.0f})")

    # Simulate a day of churn: ~5% of the edges mutate.  Event logs are
    # plain files (JSONL here; .npz for bulk) so capture and replay are
    # decoupled.
    events = random_event_stream(
        dyn.graph, num_events=graph.num_edges // 20, seed=42,
        p_insert=0.3, p_delete=0.4,
    )
    workdir = Path(tempfile.mkdtemp(prefix="repro_stream_"))
    log_path = workdir / "churn.jsonl"
    write_event_log(log_path, events)
    print(f"\nreplaying {len(events)} events from {log_path.name} "
          f"in batches of 50:")

    for report in dyn.apply_log(read_event_log(log_path), batch_size=50):
        actions = []
        if report.tree_rebuilt:
            actions.append("backbone rebuilt")
        elif report.tree_repairs:
            actions.append(f"{report.tree_repairs} backbone repairs")
        if report.redensified:
            actions.append(f"re-densified (+{report.densify_added} edges)")
        print(f"  batch {report.batch}: "
              f"+{report.inserted} -{report.deleted} ~{report.reweighted}  "
              f"sigma2~{report.sigma2_estimate:6.1f}  "
              f"{report.num_edges} edges  {report.elapsed * 1e3:5.1f} ms"
              + (f"  [{', '.join(actions)}]" if actions else ""))

    estimate = dyn.quality()
    print(f"\nafter replay: kappa estimate {estimate.condition_number:.1f} "
          f"(target {dyn.sigma2:.0f}) — "
          f"{dyn.tree_repair_count} backbone repairs, "
          f"{dyn.redensify_count} re-densifications, "
          f"{dyn.solver_rebuilds} solver rebuilds")

    # Checkpoint: npz+json pair; restore continues bit-identically.
    ckpt = workdir / "state"
    save_dynamic(ckpt, dyn)
    restored = load_dynamic(ckpt)
    more = random_event_stream(restored.graph, 40, seed=43)
    report = restored.apply(more)
    print(f"\nwarm-restarted from {ckpt.name}.npz/.json and applied "
          f"{report.num_events} more events -> {restored.num_edges} edges "
          f"(sigma2~{restored.last_estimate:.1f})")


if __name__ == "__main__":
    main()
