"""Scenario: spectral sparsification as a low-pass graph filter (§3.4).

The paper frames sparsifiers in graph-signal-processing terms: a
σ-similar sparsifier preserves slowly varying ("low-frequency") signals
and discards fine-grained detail, like a low-pass filter.  This demo
measures that directly: smooth, band, and high-frequency signals are
synthesized in the graph Fourier basis, and their Laplacian quadratic
forms (Dirichlet energies) are compared between the graph and its
sparsifier.

Run:  python examples/gsp_lowpass_demo.py
"""

import numpy as np

from repro.graphs import generators
from repro.sparsify import sparsify_graph
from repro.spectral import GraphFourier, chebyshev_filter, heat_kernel
from repro.utils.tables import format_table


def main() -> None:
    pts = generators.gaussian_mixture_points(
        900, dim=3, clusters=3, separation=7.0, seed=4
    )
    graph = generators.knn_graph(pts, k=12)
    result = sparsify_graph(graph, sigma2=100.0, seed=0)
    sparsifier = result.sparsifier
    print(f"graph {graph.num_edges} edges -> sparsifier "
          f"{sparsifier.num_edges} edges "
          f"({graph.num_edges / sparsifier.num_edges:.1f}x)")

    fourier_g = GraphFourier(graph)
    fourier_p = GraphFourier(sparsifier)
    n = graph.n

    # Synthesize signals concentrated in three frequency bands of G.
    rng = np.random.default_rng(0)
    bands = {
        "low (modes 1-10)": slice(1, 11),
        "mid (middle 10)": slice(n // 2 - 5, n // 2 + 5),
        "high (top 10)": slice(n - 10, n),
    }
    rows = []
    for name, band in bands.items():
        coeff = np.zeros(n)
        coeff[band] = rng.standard_normal(band.stop - band.start)
        signal = fourier_g.inverse(coeff)
        signal /= np.linalg.norm(signal)
        energy_g = float(signal @ (graph.laplacian() @ signal))
        energy_p = float(signal @ (sparsifier.laplacian() @ signal))
        rows.append([name, f"{energy_g:.4f}", f"{energy_p:.4f}",
                     f"{energy_p / energy_g:.3f}"])
    print()
    print(format_table(
        ["signal band", "energy on G", "energy on P", "ratio"],
        rows,
        title="Dirichlet energy of band-limited signals (low-pass behaviour)",
    ))
    print("\nreading: a subgraph sparsifier attenuates all energies, but "
          "the attenuation grows with frequency — low-frequency structure "
          "is preserved best, exactly a low-pass filter (paper §3.4).")

    # The load-bearing low-frequency object — the Fiedler vector — is
    # preserved almost exactly despite the edge reduction.
    fiedler_cos = abs(float(fourier_g.modes[:, 1] @ fourier_p.modes[:, 1]))
    top_cos = abs(float(fourier_g.modes[:, -1] @ fourier_p.modes[:, -1]))
    print(f"Fiedler-vector alignment |cos|: {fiedler_cos:.6f} "
          f"(highest-frequency mode: {top_cos:.3f})")

    # Bonus: the scalable Chebyshev filter (no eigensolve) matches the
    # exact spectral filter on the same graph.
    signal = rng.standard_normal(n)
    exact = fourier_g.filter(signal, heat_kernel(1.0))
    approx = chebyshev_filter(graph, signal, heat_kernel(1.0), order=30)
    rel = np.linalg.norm(exact - approx) / np.linalg.norm(exact)
    print(f"\nheat-kernel smoothing via Chebyshev polynomials (no "
          f"eigensolve): relative deviation {rel:.2e}")


if __name__ == "__main__":
    main()
