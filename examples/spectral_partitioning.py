"""Scenario: partitioning a finite-element mesh (paper Section 4.3).

Compares the direct-factorization spectral partitioner against the
sparsifier-accelerated one on an FEM mesh: same sign-cut quality, a
fraction of the memory — the paper's Table 3 story.

Run:  python examples/spectral_partitioning.py
"""

from repro.apps import partition_graph
from repro.graphs import generators
from repro.spectral import conductance, partition_disagreement
from repro.utils.tables import format_table


def main() -> None:
    mesh = generators.fem_mesh_2d(6000, seed=5)
    print(f"FEM mesh: {mesh.n} vertices, {mesh.num_edges} edges")

    direct = partition_graph(mesh, method="direct", seed=0)
    iterative = partition_graph(mesh, method="sparsifier", sigma2=200.0, seed=0)

    rows = [
        [
            "direct (CHOLMOD-style)",
            f"{direct.balance:.3f}",
            f"{conductance(mesh, direct.labels):.4f}",
            f"{direct.solve_seconds:.3f}",
            f"{direct.memory_bytes / 1e6:.2f}",
        ],
        [
            "sparsifier-PCG (this paper)",
            f"{iterative.balance:.3f}",
            f"{conductance(mesh, iterative.labels):.4f}",
            f"{iterative.solve_seconds:.3f}",
            f"{iterative.memory_bytes / 1e6:.2f}",
        ],
    ]
    print()
    print(
        format_table(
            ["solver", "|V+|/|V-|", "conductance", "time (s)", "memory (MB)"],
            rows,
            title="Fiedler-vector partitioning (Table 3 comparison)",
        )
    )
    rel_err = partition_disagreement(direct.labels, iterative.labels)
    print(f"\npartition disagreement (Rel.Err): {rel_err:.2e}")
    print("reading: the sparsifier-preconditioned solver reproduces the "
          "direct solver's cut with a much smaller memory footprint.")


if __name__ == "__main__":
    main()
