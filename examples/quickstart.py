"""Quickstart: sparsify a graph to a chosen spectral similarity level.

Builds a circuit-style mesh, asks for a σ² = 100 spectral sparsifier,
and verifies the similarity guarantee against the exact relative
condition number.

Run:  python examples/quickstart.py
"""

from repro import sparsify_graph
from repro.graphs import generators
from repro.sparsify import exact_condition_number


def main() -> None:
    # A two-layer power-grid style mesh with vias (G2-circuit style).
    graph = generators.circuit_grid(24, 24, layers=2, seed=7)
    print(f"input graph: {graph.n} vertices, {graph.num_edges} edges")

    # The headline API: one call, one similarity knob.
    result = sparsify_graph(graph, sigma2=100.0, seed=0)
    print(result.summary())

    # What happened inside (the Section 3.7 densification iterations):
    print("\ndensification trace:")
    for it in result.iterations:
        print(
            f"  iter {it.iteration}: lambda_max={it.lambda_max:9.1f}  "
            f"sigma2={it.sigma2_estimate:9.1f}  theta={it.threshold:8.2e}  "
            f"added {it.num_added:4d} edges -> {it.num_edges} total"
        )

    # Verify the guarantee with the exact (dense) condition number.
    kappa = exact_condition_number(graph, result.sparsifier)
    print(f"\nexact relative condition number kappa(L_G, L_P) = {kappa:.1f}")
    print(f"requested sigma^2 = {result.sigma2_target:.1f}  ->  "
          f"{'guarantee met' if kappa <= 1.6 * result.sigma2_target else 'MISSED'}")
    print(f"edges kept: {result.sparsifier.num_edges} of {graph.num_edges} "
          f"({result.sparsifier.num_edges / graph.num_edges:.1%})")


if __name__ == "__main__":
    main()
