"""Setup shim: enables `pip install -e .` on environments without the
`wheel` package (offline PEP-660 fallback). Configuration lives in
pyproject.toml."""

from setuptools import setup

setup()
