"""Shared multi-RHS block-solve helpers with solve accounting.

Every subsystem that amortizes a warm factorization over many
right-hand sides — the serving tier's cross-request micro-batch flush,
the §3.2 probe-vector embedding's power iteration, the σ² estimator —
funnels through :func:`block_solve` here.  That buys two things:

- **One blocking idiom.**  Stacking ``k`` columns into a single
  ``solver.solve(rhs)`` call (instead of ``k`` vector solves) is the
  multi-RHS trick that made the serving tier ~29x faster; keeping the
  construction in one place stops the pipeline and the engine from
  growing divergent copies.
- **One accounting point.**  Each :func:`block_solve` call bumps the
  ``repro_solver_solves_total{solver,caller}`` counter exactly once,
  so ``obs report`` / ``obs diff`` can attribute the solve *count*
  (not just solve seconds) to the subsystem that paid it.  A batched
  ``k``-column solve deliberately counts **once** — the counter
  measures factorization-backed solve invocations, the quantity the
  batching exists to minimize.
"""

from __future__ import annotations

import numpy as np

from repro.obs import get_metrics

__all__ = ["record_solve", "block_solve", "pair_indicator_columns"]


def record_solve(solver, caller: str, count: int = 1) -> None:
    """Count ``solve()`` invocations against a warm solver.

    Parameters
    ----------
    solver:
        The solver instance (its class name becomes the ``solver``
        label, e.g. ``DirectSolver`` or ``AMGSolver``).
    caller:
        Subsystem label attributing the solve (``"serve"``,
        ``"embedding"``, ``"estimate"``, ``"resistance"``, ...).
    count:
        Invocations to record (default 1).  A multi-RHS block counts
        once regardless of its column count.
    """
    get_metrics().counter(
        "repro_solver_solves_total",
        "Laplacian solve() invocations, one per call (a k-column "
        "multi-RHS block counts once - batching exists to shrink "
        "this number).",
        labelnames=("solver", "caller"),
    ).inc(float(count), solver=type(solver).__name__, caller=caller)


def block_solve(solver, rhs: np.ndarray, caller: str) -> np.ndarray:
    """One counted multi-RHS solve against a warm solver.

    Parameters
    ----------
    solver:
        A factorized/preconditioned Laplacian solver exposing
        ``solve(rhs)`` (``DirectSolver``, ``AMGSolver``, ...).
    rhs:
        Right-hand side: a length-``n`` vector or an ``(n, k)`` block
        whose columns are solved together against the one warm
        factorization.
    caller:
        Subsystem label for the ``repro_solver_solves_total`` counter.

    Returns
    -------
    numpy.ndarray
        The solution, with the shape of ``rhs``.
    """
    record_solve(solver, caller)
    return solver.solve(rhs)


def pair_indicator_columns(n: int, pairs: np.ndarray) -> np.ndarray:
    """Dense ``(n, k)`` block of ``e_u - e_v`` indicator columns.

    The standard right-hand side for effective-resistance queries:
    column ``i`` is the signed indicator of ``pairs[i]``.  Degenerate
    ``u == v`` pairs produce all-zero columns (which solve to zero for
    free inside a shared block).

    Parameters
    ----------
    n:
        Number of vertices (rows of the block).
    pairs:
        ``(k, 2)`` integer vertex pairs.

    Returns
    -------
    numpy.ndarray
        A freshly allocated ``(n, k)`` float64 block.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    rhs = np.zeros((n, pairs.shape[0]))
    cols = np.arange(pairs.shape[0])
    rhs[pairs[:, 0], cols] = 1.0
    rhs[pairs[:, 1], cols] -= 1.0
    return rhs
