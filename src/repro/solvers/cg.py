"""Conjugate gradient and preconditioned conjugate gradient (PCG).

This is the iterative engine of the paper's Section 4.2 experiments: a
textbook PCG whose preconditioner is a callable ``M⁻¹`` application —
a tree solver, a factorized sparsifier, or an AMG V-cycle.  Laplacian
systems are singular, so the solver optionally projects the RHS and all
iterates onto ``1⊥`` (null-space deflation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.obs import get_metrics

__all__ = ["SolveResult", "pcg", "conjugate_gradient"]


@dataclass
class SolveResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    x:
        The (approximate) solution.
    converged:
        Whether the residual target was met within ``maxiter``.
    iterations:
        Number of iterations performed.
    residual_norms:
        ``‖r_k‖₂`` per iteration, starting with the initial residual —
        the PCG convergence histories behind Table 2.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def _as_matvec(A) -> Callable[[np.ndarray], np.ndarray]:
    if sp.issparse(A) or isinstance(A, np.ndarray):
        return lambda x: A @ x
    if callable(A):
        return A
    matvec = getattr(A, "matvec", None)
    if matvec is not None:
        return matvec
    raise TypeError(f"cannot use {type(A)!r} as a linear operator")


def pcg(
    A,
    b: np.ndarray,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
    tol: float = 1e-6,
    maxiter: int = 1000,
    x0: np.ndarray | None = None,
    project_nullspace: bool = False,
) -> SolveResult:
    """Preconditioned conjugate gradient for SPD (or SPSD Laplacian) systems.

    Parameters
    ----------
    A:
        Sparse matrix, dense matrix, ``matvec`` object or callable.
    b:
        Right-hand side.
    preconditioner:
        Callable applying ``M⁻¹`` to a vector; ``None`` for plain CG.
    tol:
        Relative residual target ``‖Ax − b‖ ≤ tol · ‖b‖`` (the paper's
        stopping rule with ``tol = 1e-3`` in Section 4.2).
    maxiter:
        Iteration cap.
    x0:
        Optional initial guess (defaults to zero).
    project_nullspace:
        Set True when ``A`` is a connected-graph Laplacian: the RHS and
        all iterates are kept orthogonal to the all-ones null space.

    Returns
    -------
    SolveResult

    Raises
    ------
    ValueError
        If ``tol`` is non-positive or ``maxiter`` is smaller than 1.
    TypeError
        If ``A`` cannot be used as a linear operator.
    """
    result = _pcg(
        A, b, preconditioner=preconditioner, tol=tol, maxiter=maxiter,
        x0=x0, project_nullspace=project_nullspace,
    )
    metrics = get_metrics()
    metrics.counter(
        "repro_cg_solves_total", "PCG solves started (converged or not)."
    ).inc()
    metrics.counter(
        "repro_cg_iterations_total", "PCG iterations across all solves."
    ).inc(result.iterations)
    metrics.gauge(
        "repro_cg_last_residual",
        "Final residual 2-norm of the most recent PCG solve.",
    ).set(result.final_residual)
    return result


def _pcg(
    A,
    b: np.ndarray,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
    tol: float = 1e-6,
    maxiter: int = 1000,
    x0: np.ndarray | None = None,
    project_nullspace: bool = False,
) -> SolveResult:
    """The un-instrumented PCG body (see :func:`pcg`)."""
    matvec = _as_matvec(A)
    b = np.asarray(b, dtype=np.float64)
    if tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if maxiter < 1:
        raise ValueError(f"maxiter must be >= 1, got {maxiter}")

    def project(vec: np.ndarray) -> np.ndarray:
        return vec - vec.mean() if project_nullspace else vec

    b = project(b)
    x = np.zeros_like(b) if x0 is None else project(np.asarray(x0, dtype=np.float64))
    r = b - matvec(x) if x0 is not None else b.copy()
    r = project(r)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return SolveResult(x=np.zeros_like(b), converged=True, iterations=0,
                           residual_norms=[0.0])
    target = tol * b_norm
    residuals = [float(np.linalg.norm(r))]
    if residuals[0] <= target:
        return SolveResult(x=x, converged=True, iterations=0, residual_norms=residuals)

    z = preconditioner(r) if preconditioner is not None else r
    z = project(z)
    p = z.copy()
    rz = float(r @ z)
    for iteration in range(1, maxiter + 1):
        Ap = project(matvec(p))
        pAp = float(p @ Ap)
        if pAp <= 0.0:
            # Breakdown: matrix not positive definite on this subspace.
            return SolveResult(
                x=x, converged=False, iterations=iteration - 1,
                residual_norms=residuals,
            )
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        res_norm = float(np.linalg.norm(r))
        residuals.append(res_norm)
        if res_norm <= target:
            return SolveResult(
                x=project(x), converged=True, iterations=iteration,
                residual_norms=residuals,
            )
        z = preconditioner(r) if preconditioner is not None else r
        z = project(z)
        rz_next = float(r @ z)
        beta = rz_next / rz
        rz = rz_next
        p = z + beta * p
    return SolveResult(x=project(x), converged=False, iterations=maxiter,
                       residual_norms=residuals)


def conjugate_gradient(
    A,
    b: np.ndarray,
    tol: float = 1e-6,
    maxiter: int = 1000,
    x0: np.ndarray | None = None,
    project_nullspace: bool = False,
) -> SolveResult:
    """Plain CG — :func:`pcg` without a preconditioner.

    Parameters
    ----------
    A, b, tol, maxiter, x0, project_nullspace:
        As in :func:`pcg`.

    Returns
    -------
    SolveResult
    """
    return pcg(
        A, b, preconditioner=None, tol=tol, maxiter=maxiter, x0=x0,
        project_nullspace=project_nullspace,
    )
