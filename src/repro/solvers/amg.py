"""Graph-theoretic algebraic multigrid (stand-in for LAMG/SAMG [13, 24]).

The paper accelerates all sparsifier solves with graph-theoretic AMG.
This module implements an aggregation-based AMG for Laplacian/SDD
matrices:

- *coarsening*: vectorized heavy-edge matching — every vertex proposes
  its strongest neighbour, mutual proposals merge, stragglers join their
  strongest aggregated neighbour;
- *transfer*: piecewise-constant prolongation ``P`` and the Galerkin
  coarse operator ``Pᵀ A P`` (again a Laplacian);
- *cycle*: symmetric weighted-Jacobi V-cycle with an exact grounded
  solve at the coarsest level.

One V-cycle application is a fixed SPD operator, so it is a valid PCG
preconditioner.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.solvers.cholesky import DirectSolver
from repro.utils.memory import sparse_nbytes
from repro.utils.validation import check_square

__all__ = ["AMGSolver", "heavy_edge_aggregates"]


def heavy_edge_aggregates(A: sp.csr_matrix) -> np.ndarray:
    """Aggregate labels from one pass of heavy-edge matching.

    ``A`` is Laplacian-like: strength of connection between ``u`` and
    ``v`` is ``-A[u, v]`` (positive for graph edges).  Returns an array
    of aggregate ids in ``[0, n_coarse)``.
    """
    n = A.shape[0]
    coo = sp.tril(A.tocoo(), k=-1)
    strength = -coo.data
    valid = strength > 0
    rows, cols, strength = coo.row[valid], coo.col[valid], strength[valid]
    if rows.size == 0:
        return np.arange(n, dtype=np.int64)

    # Strongest neighbour per vertex over the symmetrized edge list.
    ends_a = np.concatenate([rows, cols])
    ends_b = np.concatenate([cols, rows])
    s = np.concatenate([strength, strength])
    order = np.lexsort((-s, ends_a))
    ea, eb = ends_a[order], ends_b[order]
    first = np.empty(ea.size, dtype=bool)
    first[0] = True
    np.not_equal(ea[1:], ea[:-1], out=first[1:])
    best = -np.ones(n, dtype=np.int64)
    best[ea[first]] = eb[first]

    labels = -np.ones(n, dtype=np.int64)
    # Mutual proposals pair up.
    has_best = best >= 0
    mutual = has_best & (best[np.clip(best, 0, n - 1)] == np.arange(n)) & (np.arange(n) < best)
    pairs = np.flatnonzero(mutual)
    next_label = pairs.size
    labels[pairs] = np.arange(pairs.size)
    labels[best[pairs]] = labels[pairs]
    # Stragglers join their strongest neighbour's aggregate when it has one.
    unassigned = np.flatnonzero((labels < 0) & has_best)
    neighbor_label = labels[best[unassigned]]
    adopt = neighbor_label >= 0
    labels[unassigned[adopt]] = neighbor_label[adopt]
    # Remaining vertices become singletons.
    leftovers = np.flatnonzero(labels < 0)
    labels[leftovers] = next_label + np.arange(leftovers.size)
    return labels


class AMGSolver:
    """Aggregation AMG hierarchy applying one (or more) V-cycles.

    Parameters
    ----------
    matrix:
        SDD/Laplacian sparse matrix.
    max_levels:
        Depth cap on the hierarchy.
    coarse_size:
        Problems at or below this size are solved directly.
    omega:
        Weighted-Jacobi damping factor.
    presmooth, postsmooth:
        Smoothing sweeps before/after coarse correction (kept equal for
        a symmetric preconditioner).
    cycles:
        V-cycles per :meth:`solve`/preconditioner application.
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        max_levels: int = 20,
        coarse_size: int = 256,
        omega: float = 2.0 / 3.0,
        presmooth: int = 1,
        postsmooth: int = 1,
        cycles: int = 1,
    ) -> None:
        check_square(matrix, "matrix")
        if not 0.0 < omega < 2.0:
            raise ValueError(f"omega must be in (0, 2), got {omega}")
        self.omega = omega
        self.presmooth = presmooth
        self.postsmooth = postsmooth
        self.cycles = cycles
        self.levels: list[dict] = []
        A = matrix.tocsr().astype(np.float64)
        row_sums = np.asarray(A.sum(axis=1)).ravel()
        scale = max(1.0, float(np.abs(A.diagonal()).max()) if A.shape[0] else 1.0)
        self.singular = bool(np.all(np.abs(row_sums) <= 1e-9 * scale))
        while A.shape[0] > coarse_size and len(self.levels) < max_levels:
            labels = heavy_edge_aggregates(A)
            n_coarse = int(labels.max()) + 1
            if n_coarse >= A.shape[0]:
                break  # no coarsening progress (e.g. diagonal matrix)
            P = sp.csr_matrix(
                (
                    np.ones(A.shape[0]),
                    (np.arange(A.shape[0]), labels),
                ),
                shape=(A.shape[0], n_coarse),
            )
            diag = A.diagonal()
            inv_diag = np.where(diag > 0, 1.0 / np.maximum(diag, 1e-300), 0.0)
            self.levels.append({"A": A, "P": P, "inv_diag": inv_diag})
            A = (P.T @ A @ P).tocsr()
        self.coarse_solver = DirectSolver(A.tocsc())
        self._coarse_n = A.shape[0]

    @property
    def num_levels(self) -> int:
        """Hierarchy depth including the coarsest level."""
        return len(self.levels) + 1

    @property
    def operator_bytes(self) -> int:
        """Memory footprint of all grids + coarse factors (Table 3's M_I)."""
        total = sum(
            sparse_nbytes(lvl["A"]) + sparse_nbytes(lvl["P"]) for lvl in self.levels
        )
        return total + (self.coarse_solver.factor_bytes if self._coarse_n > 1 else 0)

    def _smooth(self, A: sp.csr_matrix, inv_diag: np.ndarray, x: np.ndarray,
                b: np.ndarray, sweeps: int) -> np.ndarray:
        for _ in range(sweeps):
            x = x + self.omega * inv_diag * (b - A @ x)
        return x

    def _vcycle(self, level: int, b: np.ndarray) -> np.ndarray:
        if level == len(self.levels):
            return self.coarse_solver.solve(b)
        data = self.levels[level]
        A, P, inv_diag = data["A"], data["P"], data["inv_diag"]
        x = self.omega * inv_diag * b  # first Jacobi sweep from x = 0
        x = self._smooth(A, inv_diag, x, b, self.presmooth - 1)
        residual = b - A @ x
        coarse = self._vcycle(level + 1, P.T @ residual)
        x = x + P @ coarse
        x = self._smooth(A, inv_diag, x, b, self.postsmooth)
        return x

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Apply ``cycles`` V-cycles to approximate ``A⁻¹ b`` (or ``A⁺ b``)."""
        b = np.asarray(b, dtype=np.float64)
        single = b.ndim == 1
        if single:
            b = b[:, None]
        out = np.empty_like(b)
        for j in range(b.shape[1]):
            rhs = b[:, j]
            if self.singular:
                rhs = rhs - rhs.mean()
            x = self._vcycle(0, rhs)
            for _ in range(self.cycles - 1):
                x = x + self._vcycle(0, rhs - self.levels[0]["A"] @ x if self.levels
                                     else rhs)
            if self.singular:
                x = x - x.mean()
            out[:, j] = x
        return out[:, 0] if single else out

    def __call__(self, b: np.ndarray) -> np.ndarray:
        """Preconditioner-style application."""
        return self.solve(b)
