"""Graph-theoretic algebraic multigrid (stand-in for LAMG/SAMG [13, 24]).

The paper accelerates all sparsifier solves with graph-theoretic AMG.
This module implements an aggregation-based AMG for Laplacian/SDD
matrices:

- *coarsening*: vectorized heavy-edge matching — every vertex proposes
  its strongest neighbour, mutual proposals merge, stragglers join their
  strongest aggregated neighbour;
- *transfer*: piecewise-constant prolongation ``P`` and the Galerkin
  coarse operator ``Pᵀ A P`` (again a Laplacian);
- *cycle*: symmetric weighted-Jacobi V-cycle with an exact grounded
  solve at the coarsest level.

One V-cycle application is a fixed SPD operator, so it is a valid PCG
preconditioner.  Solves are batched: a matrix right-hand side runs one
V-cycle over all columns at once instead of cycling per column.

The hierarchy is reusable across densification iterations: small edge
batches are patched into the fine-level operator in place (values only,
when the sparsity pattern already holds the touched entries), keeping
smoothing and residuals exact for the updated matrix while the coarse
grids go slightly stale.  After ``rebuild_every`` update batches
:meth:`AMGSolver.update` returns ``False`` so the caller re-coarsens.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.obs import get_metrics
from repro.solvers.base import csr_value_positions
from repro.solvers.cholesky import DirectSolver
from repro.utils.memory import sparse_nbytes
from repro.utils.validation import check_square

__all__ = ["AMGSolver", "heavy_edge_aggregates"]


def heavy_edge_aggregates(A: sp.csr_matrix) -> np.ndarray:
    """Aggregate labels from one pass of heavy-edge matching.

    ``A`` is Laplacian-like: strength of connection between ``u`` and
    ``v`` is ``-A[u, v]`` (positive for graph edges).

    Parameters
    ----------
    A:
        Laplacian-like CSR matrix to coarsen.

    Returns
    -------
    numpy.ndarray
        Aggregate id per vertex, in ``[0, n_coarse)``.
    """
    n = A.shape[0]
    coo = sp.tril(A.tocoo(), k=-1)
    strength = -coo.data
    valid = strength > 0
    rows, cols, strength = coo.row[valid], coo.col[valid], strength[valid]
    if rows.size == 0:
        return np.arange(n, dtype=np.int64)

    # Strongest neighbour per vertex over the symmetrized edge list.
    ends_a = np.concatenate([rows, cols])
    ends_b = np.concatenate([cols, rows])
    s = np.concatenate([strength, strength])
    order = np.lexsort((-s, ends_a))
    ea, eb = ends_a[order], ends_b[order]
    first = np.empty(ea.size, dtype=bool)
    first[0] = True
    np.not_equal(ea[1:], ea[:-1], out=first[1:])
    best = -np.ones(n, dtype=np.int64)
    best[ea[first]] = eb[first]

    labels = -np.ones(n, dtype=np.int64)
    # Mutual proposals pair up.
    has_best = best >= 0
    mutual = has_best & (best[np.clip(best, 0, n - 1)] == np.arange(n)) & (np.arange(n) < best)
    pairs = np.flatnonzero(mutual)
    next_label = pairs.size
    labels[pairs] = np.arange(pairs.size)
    labels[best[pairs]] = labels[pairs]
    # Stragglers join their strongest neighbour's aggregate when it has one.
    unassigned = np.flatnonzero((labels < 0) & has_best)
    neighbor_label = labels[best[unassigned]]
    adopt = neighbor_label >= 0
    labels[unassigned[adopt]] = neighbor_label[adopt]
    # Remaining vertices become singletons.
    leftovers = np.flatnonzero(labels < 0)
    labels[leftovers] = next_label + np.arange(leftovers.size)
    return labels


class AMGSolver:
    """Aggregation AMG hierarchy applying one (or more) V-cycles.

    Parameters
    ----------
    matrix:
        SDD/Laplacian sparse matrix.
    max_levels:
        Depth cap on the hierarchy.
    coarse_size:
        Problems at or below this size are solved directly.
    omega:
        Weighted-Jacobi damping factor.
    presmooth, postsmooth:
        Smoothing sweeps before/after coarse correction (kept equal for
        a symmetric preconditioner).
    cycles:
        V-cycles per :meth:`solve`/preconditioner application.
    rebuild_every:
        Edge-update batches absorbed in place before :meth:`update`
        requests a full re-coarsening (coarse grids go stale between
        rebuilds; the fine level stays exact).
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        max_levels: int = 20,
        coarse_size: int = 256,
        omega: float = 2.0 / 3.0,
        presmooth: int = 1,
        postsmooth: int = 1,
        cycles: int = 1,
        rebuild_every: int = 8,
    ) -> None:
        check_square(matrix, "matrix")
        if not 0.0 < omega < 2.0:
            raise ValueError(f"omega must be in (0, 2), got {omega}")
        self.omega = omega
        self.presmooth = presmooth
        self.postsmooth = postsmooth
        self.cycles = cycles
        self.rebuild_every = int(rebuild_every)
        self._updates_absorbed = 0
        self.levels: list[dict] = []
        A = matrix.tocsr().astype(np.float64)
        row_sums = np.asarray(A.sum(axis=1)).ravel()
        scale = max(1.0, float(np.abs(A.diagonal()).max()) if A.shape[0] else 1.0)
        self.singular = bool(np.all(np.abs(row_sums) <= 1e-9 * scale))
        while A.shape[0] > coarse_size and len(self.levels) < max_levels:
            labels = heavy_edge_aggregates(A)
            n_coarse = int(labels.max()) + 1
            if n_coarse >= A.shape[0]:
                break  # no coarsening progress (e.g. diagonal matrix)
            P = sp.csr_matrix(
                (
                    np.ones(A.shape[0]),
                    (np.arange(A.shape[0]), labels),
                ),
                shape=(A.shape[0], n_coarse),
            )
            diag = A.diagonal()
            inv_diag = np.where(diag > 0, 1.0 / np.maximum(diag, 1e-300), 0.0)
            self.levels.append(
                {"A": A, "P": P, "inv_diag": inv_diag, "labels": labels}
            )
            A = self._galerkin(A, P)
        self._coarse_A = A
        self.coarse_solver = DirectSolver(A.tocsc())
        self._coarse_n = A.shape[0]
        get_metrics().counter(
            "repro_amg_hierarchies_total",
            "AMG hierarchies built (initial setup and re-coarsenings).",
        ).inc()

    @staticmethod
    def _request_rebuild() -> bool:
        """Count one rebuild request and tell the caller to re-coarsen."""
        get_metrics().counter(
            "repro_amg_rebuild_requests_total",
            "AMG updates declined (stale aggregation or pattern miss) — "
            "each makes the caller re-coarsen the hierarchy.",
        ).inc()
        return False

    @staticmethod
    def _galerkin(A: sp.csr_matrix, P: sp.csr_matrix) -> sp.csr_matrix:
        """Pattern-preserving coarse operator ``Pᵀ A P``.

        Sparse matmul prunes numerically-zero results, which would drop
        the aggregate pairs reserved by explicit zeros in ``A`` (the
        incremental engine stores the sparsifier on the host graph's
        full pattern).  A ones-valued product never cancels, so it keeps
        every structural pair; the numeric product is scattered into
        that pattern, letting :meth:`update` patch coarse levels in
        place for any edge of the host pattern.  Matrices without
        explicit zeros have nothing to preserve and take the plain
        single-product path.
        """
        if not np.any(A.data == 0.0):
            return (P.T @ A @ P).tocsr()
        ones = A.copy()
        ones.data = np.ones_like(ones.data)
        pattern = (P.T @ ones @ P).tocsr()
        pattern.sort_indices()
        numeric = (P.T @ A @ P).tocoo()
        data = np.zeros_like(pattern.data)
        pos = csr_value_positions(pattern, numeric.row, numeric.col)
        data[pos] = numeric.data
        return sp.csr_matrix(
            (data, pattern.indices, pattern.indptr), shape=pattern.shape
        )

    @property
    def num_levels(self) -> int:
        """Hierarchy depth including the coarsest level."""
        return len(self.levels) + 1

    @property
    def operator_bytes(self) -> int:
        """Memory footprint of all grids + coarse factors (Table 3's M_I)."""
        total = sum(
            sparse_nbytes(lvl["A"]) + sparse_nbytes(lvl["P"]) for lvl in self.levels
        )
        return total + (self.coarse_solver.factor_bytes if self._coarse_n > 1 else 0)

    @staticmethod
    def _laplacian_patch(
        A: sp.csr_matrix, u: np.ndarray, v: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Positions/values to add edges ``(u, v, w)`` to a Laplacian-like
        CSR matrix in place, or ``None`` when the pattern lacks an entry."""
        pos = csr_value_positions(
            A,
            np.concatenate([u, v, u, v]),
            np.concatenate([v, u, u, v]),
        )
        if np.any(pos < 0):
            return None
        return pos, np.concatenate([-w, -w, w, w])

    def update(self, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> bool:
        """Absorb added edges ``(u_i, v_i, w_i)`` into the whole hierarchy.

        The Galerkin projection of a fine-level edge is exactly the edge
        between its endpoints' aggregates (it vanishes when both share
        one), so the batch is pushed down through the stored aggregation
        maps and every level's operator — plus the coarsest direct
        solver, via its own Woodbury hook — is patched in place.  The
        hierarchy then solves the *new* matrix exactly; only the
        aggregation choice itself goes stale, which is why the solver
        still requests a rebuild (returns ``False``) after
        ``rebuild_every`` batches, or when an added edge falls outside a
        level's sparsity pattern.

        Parameters
        ----------
        u, v:
            Endpoint arrays of the updated edges.
        w:
            Signed, nonzero weight deltas (positive additions/increases,
            negative decreases/deletions — see
            :meth:`repro.solvers.base.Solver.update`); the value patch
            is sign-agnostic, the caller keeps net weights positive.

        Returns
        -------
        bool
            ``True`` when the hierarchy now solves the updated matrix;
            ``False`` when the caller should re-coarsen.
        """
        u = np.atleast_1d(np.asarray(u, dtype=np.int64))
        v = np.atleast_1d(np.asarray(v, dtype=np.int64))
        w = np.atleast_1d(np.asarray(w, dtype=np.float64))
        if u.size == 0:
            return True
        if self._updates_absorbed >= self.rebuild_every:
            return self._request_rebuild()
        # First pass: locate every level's patch so a pattern miss on a
        # coarse level cannot leave the hierarchy partially updated.
        patches = []
        cu, cv, cw = u, v, w
        for level in self.levels:
            patch = self._laplacian_patch(level["A"], cu, cv, cw)
            if patch is None:
                return self._request_rebuild()
            patches.append((level, cu, cv, patch))
            coarse_u = level["labels"][cu]
            coarse_v = level["labels"][cv]
            keep = coarse_u != coarse_v  # intra-aggregate edges vanish
            cu, cv, cw = coarse_u[keep], coarse_v[keep], cw[keep]
            if cu.size == 0:
                break
        coarse_patch = None
        if cu.size:
            coarse_patch = self._laplacian_patch(self._coarse_A, cu, cv, cw)
            if coarse_patch is None:
                return self._request_rebuild()
        # Second pass: apply.  The tail half of each patch's positions
        # addresses the (u, u)/(v, v) diagonal entries, so the Jacobi
        # diagonals refresh in O(batch) without materializing diagonal().
        for level, lu, lv, (pos, vals) in patches:
            A = level["A"]
            np.add.at(A.data, pos, vals)
            touched = np.concatenate([lu, lv])
            diag = A.data[pos[2 * lu.size:]]
            level["inv_diag"][touched] = np.where(
                diag > 0, 1.0 / np.maximum(diag, 1e-300), 0.0
            )
        if coarse_patch is not None:
            pos, vals = coarse_patch
            np.add.at(self._coarse_A.data, pos, vals)
            if not self.coarse_solver.update(cu, cv, cw):
                self.coarse_solver = DirectSolver(self._coarse_A.tocsc())
        self._updates_absorbed += 1
        get_metrics().counter(
            "repro_amg_updates_absorbed_total",
            "Edge-update batches patched into the AMG hierarchy in "
            "place.",
        ).inc()
        return True

    def _smooth(self, A: sp.csr_matrix, inv_diag: np.ndarray, x: np.ndarray,
                b: np.ndarray, sweeps: int) -> np.ndarray:
        for _ in range(sweeps):
            x = x + self.omega * inv_diag[:, None] * (b - A @ x)
        return x

    def _vcycle(self, level: int, b: np.ndarray) -> np.ndarray:
        """One V-cycle on a batched ``(n, r)`` right-hand side."""
        if level == len(self.levels):
            return self.coarse_solver.solve(b)
        data = self.levels[level]
        A, P, inv_diag = data["A"], data["P"], data["inv_diag"]
        x = self.omega * inv_diag[:, None] * b  # first Jacobi sweep from x = 0
        x = self._smooth(A, inv_diag, x, b, self.presmooth - 1)
        residual = b - A @ x
        coarse = self._vcycle(level + 1, P.T @ residual)
        x = x + P @ coarse
        x = self._smooth(A, inv_diag, x, b, self.postsmooth)
        return x

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Apply ``cycles`` V-cycles to approximate ``A⁻¹ b`` (or ``A⁺ b``).

        Matrix right-hand sides are solved in one batched pass — every
        smoothing sweep and transfer acts on all columns at once.

        Parameters
        ----------
        b:
            Right-hand side vector or ``(n, r)`` matrix.

        Returns
        -------
        numpy.ndarray
            Approximate solution with the shape of ``b`` (mean-free for
            singular Laplacians).
        """
        b = np.asarray(b, dtype=np.float64)
        single = b.ndim == 1
        rhs = b[:, None] if single else b
        if self.singular:
            rhs = rhs - rhs.mean(axis=0, keepdims=True)
        get_metrics().counter(
            "repro_amg_vcycles_total",
            "AMG V-cycles applied across all solves and "
            "preconditioner applications.",
        ).inc(self.cycles)
        x = self._vcycle(0, rhs)
        fine = self.levels[0]["A"] if self.levels else self._coarse_A
        for _ in range(self.cycles - 1):
            x = x + self._vcycle(0, rhs - fine @ x)
        if self.singular:
            x = x - x.mean(axis=0, keepdims=True)
        return x[:, 0] if single else x

    def __call__(self, b: np.ndarray) -> np.ndarray:
        """Preconditioner-style alias for :meth:`solve`.

        Parameters
        ----------
        b:
            Right-hand side vector or matrix.

        Returns
        -------
        numpy.ndarray
            ``self.solve(b)``.
        """
        return self.solve(b)
