"""Preconditioner factory for the PCG engine.

A *preconditioner* here is simply a callable applying ``M⁻¹`` to a
vector.  The factory covers the spectrum the paper discusses: identity
(plain CG), Jacobi, spanning-tree (the classical support-graph
preconditioner), factorized sparsifier (this paper's contribution) and
AMG V-cycles (the paper's recommended large-scale configuration).
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.solvers.amg import AMGSolver
from repro.solvers.cholesky import DirectSolver
from repro.trees.tree import RootedTree
from repro.trees.tree_solver import TreeSolver

__all__ = [
    "identity_preconditioner",
    "jacobi_preconditioner",
    "tree_preconditioner",
    "factorized_preconditioner",
    "amg_preconditioner",
    "sparsifier_preconditioner",
]

Preconditioner = Callable[[np.ndarray], np.ndarray]


def identity_preconditioner() -> Preconditioner:
    """No-op preconditioner (plain CG).

    Returns
    -------
    Preconditioner
        The identity map.
    """
    return lambda r: r


def jacobi_preconditioner(matrix: sp.spmatrix) -> Preconditioner:
    """Diagonal scaling ``M⁻¹ = D⁻¹``.

    Parameters
    ----------
    matrix:
        System matrix supplying the diagonal.

    Returns
    -------
    Preconditioner
        Elementwise multiplication by ``1 / diag``.

    Raises
    ------
    ValueError
        If the diagonal has a non-positive entry.
    """
    diag = np.asarray(matrix.diagonal(), dtype=np.float64)
    if np.any(diag <= 0):
        raise ValueError("Jacobi preconditioner requires a positive diagonal")
    inv = 1.0 / diag
    return lambda r: inv * r


def tree_preconditioner(graph: Graph, tree_edge_indices: np.ndarray,
                        root: int = 0) -> TreeSolver:
    """Exact spanning-tree preconditioner (Vaidya/support-graph style).

    Parameters
    ----------
    graph:
        Host graph supplying edge endpoints and weights.
    tree_edge_indices:
        Canonical indices of a spanning tree of ``graph``.
    root:
        Root vertex for the tree elimination order.

    Returns
    -------
    TreeSolver
        Exact ``L_T⁺`` application in ``O(n)`` per solve.
    """
    tree = RootedTree.from_graph(graph, tree_edge_indices, root=root)
    return TreeSolver(tree)


def factorized_preconditioner(matrix: sp.spmatrix) -> DirectSolver:
    """Exact application of ``M⁻¹`` via a one-time sparse factorization.

    Parameters
    ----------
    matrix:
        SDD/Laplacian matrix to factorize.

    Returns
    -------
    DirectSolver
        Factor-once/solve-many exact preconditioner.
    """
    return DirectSolver(matrix)


def amg_preconditioner(matrix: sp.spmatrix, **amg_options) -> AMGSolver:
    """One AMG V-cycle per application (the paper's [13, 24] role).

    Parameters
    ----------
    matrix:
        SDD/Laplacian matrix to coarsen.
    amg_options:
        Extra :class:`AMGSolver` constructor options.

    Returns
    -------
    AMGSolver
        The assembled hierarchy (callable on vectors/matrices).
    """
    return AMGSolver(matrix, **amg_options)


def sparsifier_preconditioner(
    sparsifier: Graph,
    method: str = "auto",
    slack: np.ndarray | None = None,
    **amg_options,
) -> Preconditioner:
    """Preconditioner from a sparsified graph ``P``.

    Parameters
    ----------
    sparsifier:
        The sparsified graph whose Laplacian approximates the system.
    method:
        ``"cholesky"`` — factorize ``L_P`` exactly; ``"amg"`` — V-cycle
        on ``L_P``; ``"auto"`` — cholesky below 200k vertices, AMG above
        (mirrors the paper's practical configuration).
    slack:
        Optional diagonal to add (for non-singular SDD systems whose
        diagonal dominance must be preserved in the preconditioner).

    Returns
    -------
    Preconditioner
        Exact factorization or AMG V-cycle on ``L_P`` (+ slack).

    Raises
    ------
    ValueError
        If ``method`` is unknown.
    """
    L = sparsifier.laplacian()
    if slack is not None:
        L = (L + sp.diags(np.asarray(slack, dtype=np.float64))).tocsr()
    if method == "auto":
        method = "cholesky" if sparsifier.n <= 200_000 else "amg"
    if method == "cholesky":
        return DirectSolver(L.tocsc())
    if method == "amg":
        return AMGSolver(L, **amg_options)
    raise ValueError(f"unknown preconditioner method {method!r}")
