"""Linear solvers: PCG, grounded direct factorization, AMG, preconditioners."""

from repro.solvers.cg import SolveResult, conjugate_gradient, pcg
from repro.solvers.cholesky import DirectSolver
from repro.solvers.amg import AMGSolver, heavy_edge_aggregates
from repro.solvers.preconditioners import (
    amg_preconditioner,
    factorized_preconditioner,
    identity_preconditioner,
    jacobi_preconditioner,
    sparsifier_preconditioner,
    tree_preconditioner,
)

__all__ = [
    "SolveResult",
    "pcg",
    "conjugate_gradient",
    "DirectSolver",
    "AMGSolver",
    "heavy_edge_aggregates",
    "identity_preconditioner",
    "jacobi_preconditioner",
    "tree_preconditioner",
    "factorized_preconditioner",
    "amg_preconditioner",
    "sparsifier_preconditioner",
]
