"""Linear solvers: PCG, grounded direct factorization, AMG, preconditioners.

All sparsifier solvers implement the :class:`~repro.solvers.base.Solver`
protocol — batched matrix right-hand sides plus an ``update(u, v, w)``
hook that absorbs edge additions incrementally (Woodbury corrections for
the direct solver, in-place fine-level patches for AMG).
"""

from repro.solvers.base import Solver, csr_value_positions
from repro.solvers.block import block_solve, pair_indicator_columns, record_solve
from repro.solvers.cg import SolveResult, conjugate_gradient, pcg
from repro.solvers.cholesky import DirectSolver
from repro.solvers.amg import AMGSolver, heavy_edge_aggregates
from repro.solvers.preconditioners import (
    amg_preconditioner,
    factorized_preconditioner,
    identity_preconditioner,
    jacobi_preconditioner,
    sparsifier_preconditioner,
    tree_preconditioner,
)

__all__ = [
    "Solver",
    "csr_value_positions",
    "block_solve",
    "pair_indicator_columns",
    "record_solve",
    "SolveResult",
    "pcg",
    "conjugate_gradient",
    "DirectSolver",
    "AMGSolver",
    "heavy_edge_aggregates",
    "identity_preconditioner",
    "jacobi_preconditioner",
    "tree_preconditioner",
    "factorized_preconditioner",
    "amg_preconditioner",
    "sparsifier_preconditioner",
]
