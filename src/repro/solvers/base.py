"""Common solver protocol for the incremental densification engine.

Every sparsifier solver (tree solver, direct factorization, AMG) applies
``L_P⁺`` to one vector or to the columns of an ``(n, r)`` matrix, and
exposes an :meth:`Solver.update` hook that absorbs a batch of edge
updates *without* rebuilding from scratch when it can.  Updates carry
*signed* weight deltas: positive entries add edges or increase weights,
negative entries decrease weights or delete edges (a delta of ``−w``
removes an edge of weight ``w``) — the deletion path is what the
streaming subsystem (:mod:`repro.stream`) relies on.  Callers must keep
net edge weights positive; a delta that would drive an edge weight
negative makes the matrix indefinite and must be rejected *before* it
reaches the solver (:class:`repro.sparsify.state.SparsifierState` and
:class:`repro.stream.DynamicSparsifier` both do).  ``update`` returning
``False`` is the solver saying "my cheap incremental options are
exhausted" — the caller then rebuilds a fresh solver from the
incrementally maintained Laplacian.  The direct solver switches its
Woodbury capacitance factorization to LU for mixed-sign batches, AMG
patches the signed values through its hierarchy exactly, and solvers
that cannot absorb a batch at all (the tree solver) simply return
``False``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np
import scipy.sparse as sp

__all__ = ["Solver", "csr_value_positions"]


@runtime_checkable
class Solver(Protocol):
    """Protocol shared by :class:`TreeSolver`, :class:`DirectSolver`
    and :class:`AMGSolver`.

    ``solve`` accepts a vector or an ``(n, r)`` matrix right-hand side
    and applies ``L⁻¹`` (or ``L⁺`` for singular Laplacians) column-wise
    in one batched call.
    """

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Apply the (pseudo)inverse to ``b`` (vector or matrix RHS).

        Parameters
        ----------
        b:
            Right-hand side vector or ``(n, r)`` matrix.

        Returns
        -------
        numpy.ndarray
            The solution, with the shape of ``b``.
        """
        ...

    def __call__(self, b: np.ndarray) -> np.ndarray:
        """Preconditioner-style alias for :meth:`solve`.

        Parameters
        ----------
        b:
            Right-hand side vector or matrix.

        Returns
        -------
        numpy.ndarray
            ``self.solve(b)``.
        """
        ...

    def update(self, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> bool:
        """Absorb the edge batch ``(u[i], v[i], w[i])`` incrementally.

        Parameters
        ----------
        u, v:
            Endpoint arrays of the updated edges.
        w:
            Signed, nonzero weight deltas — positive for additions and
            weight increases, negative for weight decreases and
            deletions.  The caller guarantees net edge weights stay
            positive.

        Returns
        -------
        bool
            ``True`` when the solver now solves the updated matrix
            (exactly or, for AMG, with a refreshed fine level);
            ``False`` when the caller should rebuild the solver from
            scratch.
        """
        ...


def csr_value_positions(
    matrix: sp.csr_matrix, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Index into ``matrix.data`` of each ``(rows[i], cols[i])`` entry.

    Entries absent from the sparsity pattern get ``-1``.  Requires (and
    enforces) sorted column indices, so the flattened ``row * n + col``
    keys of the stored entries are globally sorted and one vectorized
    ``searchsorted`` locates every query.

    Parameters
    ----------
    matrix:
        CSR matrix whose data array is being addressed.
    rows, cols:
        Query coordinates (equal-length arrays).

    Returns
    -------
    numpy.ndarray
        Position in ``matrix.data`` per query; ``-1`` where the pattern
        has no entry.
    """
    if not matrix.has_sorted_indices:
        matrix.sort_indices()
    n = matrix.shape[1]
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    nnz_rows = np.repeat(
        np.arange(matrix.shape[0], dtype=np.int64), np.diff(matrix.indptr)
    )
    keys = nnz_rows * np.int64(n) + matrix.indices
    queries = rows * np.int64(n) + cols
    pos = np.searchsorted(keys, queries)
    pos = np.clip(pos, 0, max(keys.size - 1, 0))
    if keys.size == 0:
        return np.full(queries.shape, -1, dtype=np.int64)
    return np.where(keys[pos] == queries, pos, -1)
