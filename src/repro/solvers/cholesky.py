"""Grounded sparse direct solver (the paper's CHOLMOD stand-in [5]).

Factorizes an SDD matrix once and solves repeatedly.  Singular
Laplacians (zero row sums) are grounded at one vertex — the reduced
matrix is positive definite — and solutions are re-centered so the
solver applies the pseudoinverse ``L⁺`` on ``1⊥``.  SuperLU supplies
the factorization; its L/U nonzero count is the "memory" column of the
paper's Table 3.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.laplacian import ground_matrix
from repro.utils.memory import factor_nbytes
from repro.utils.validation import check_square

__all__ = ["DirectSolver"]


class DirectSolver:
    """Factor-once/solve-many direct solver for SDD and Laplacian matrices.

    Parameters
    ----------
    matrix:
        Sparse SDD matrix.  If its row sums vanish (graph Laplacian of a
        connected graph), the system is solved in grounded form.
    ground_vertex:
        Vertex to ground when the matrix is singular (default 0).

    Notes
    -----
    For a singular Laplacian the returned solution is the minimum-norm
    (mean-free) representative, matching :class:`TreeSolver` semantics,
    and requires a compatible RHS (``sum(b) = 0``); the solver projects
    the RHS to enforce this.
    """

    def __init__(self, matrix: sp.spmatrix, ground_vertex: int = 0) -> None:
        check_square(matrix, "matrix")
        self.n = matrix.shape[0]
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        scale = max(1.0, float(np.abs(matrix.diagonal()).max()) if self.n else 1.0)
        self.singular = bool(np.all(np.abs(row_sums) <= 1e-9 * scale))
        self.ground_vertex = ground_vertex if self.singular else -1
        if self.singular:
            if self.n == 1:
                self._lu = None
            else:
                reduced = ground_matrix(matrix, ground_vertex).tocsc()
                self._lu = spla.splu(reduced)
            keep = np.ones(self.n, dtype=bool)
            keep[ground_vertex] = False
            self._keep = keep
        else:
            self._lu = spla.splu(matrix.tocsc())
            self._keep = None

    @property
    def factor_bytes(self) -> int:
        """Memory footprint of the L/U factors in bytes (Table 3's M_D)."""
        if self._lu is None:
            return 0
        return factor_nbytes(self._lu)

    @property
    def factor_nnz(self) -> int:
        """Nonzeros in L plus U."""
        if self._lu is None:
            return 0
        return int(self._lu.L.nnz + self._lu.U.nnz)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve for one vector or each column of a matrix."""
        b = np.asarray(b, dtype=np.float64)
        single = b.ndim == 1
        if single:
            b = b[:, None]
        if b.shape[0] != self.n:
            raise ValueError(f"rhs has {b.shape[0]} rows, expected {self.n}")
        if not self.singular:
            x = self._lu.solve(b)
            return x[:, 0] if single else x
        # Singular path: project RHS, solve grounded, re-center.
        rhs = b - b.mean(axis=0, keepdims=True)
        x = np.zeros_like(rhs)
        if self._lu is not None:
            x[self._keep] = self._lu.solve(rhs[self._keep])
        x -= x.mean(axis=0, keepdims=True)
        return x[:, 0] if single else x

    def __call__(self, b: np.ndarray) -> np.ndarray:
        """Alias so the solver doubles as a PCG preconditioner."""
        return self.solve(b)
