"""Grounded sparse direct solver (the paper's CHOLMOD stand-in [5]).

Factorizes an SDD matrix once and solves repeatedly.  Singular
Laplacians (zero row sums) are grounded at one vertex — the reduced
matrix is positive definite — and solutions are re-centered so the
solver applies the pseudoinverse ``L⁺`` on ``1⊥``.  SuperLU supplies
the factorization; its L/U nonzero count is the "memory" column of the
paper's Table 3.

Small batches of edge updates are absorbed *without* re-factorizing:
changing edges ``(u_i, v_i)`` by the signed weight delta ``w_i``
perturbs the (grounded) matrix by the low-rank term ``U W Uᵀ`` with
``U`` the incidence columns ``e_{u_i} − e_{v_i}``, so solves against
the updated matrix follow from the Woodbury identity

    (A + U W Uᵀ)⁻¹ b = A⁻¹ b − Z (W⁻¹ + Uᵀ Z)⁻¹ Uᵀ A⁻¹ b,   Z = A⁻¹ U.

Positive deltas are edge additions / weight increases; *negative*
deltas encode weight decreases and edge deletions (delta ``−w`` removes
an edge of weight ``w``), which is what the streaming subsystem
(:mod:`repro.stream`) feeds through this hook.  The capacitance
``W⁻¹ + UᵀZ`` is positive definite only for all-positive deltas, so
mixed-sign accumulations switch from a Cholesky to an LU factorization
of the (still symmetric, but indefinite) capacitance.  The caller is
responsible for keeping the *net* edge weights positive — a delta that
drives an edge weight negative can make the updated matrix indefinite,
which surfaces here as a singular capacitance and a ``False`` return.

Only when the accumulated update rank crosses ``max_update_rank`` does
:meth:`DirectSolver.update` ask the caller for a fresh factorization —
this is what makes the densification loop's per-iteration cost scale
with the *change* instead of the sparsifier size.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.laplacian import ground_matrix
from repro.obs import get_metrics
from repro.utils.memory import factor_nbytes
from repro.utils.validation import check_square

__all__ = ["DirectSolver"]


class DirectSolver:
    """Factor-once/solve-many direct solver for SDD and Laplacian matrices.

    Parameters
    ----------
    matrix:
        Sparse SDD matrix.  If its row sums vanish (graph Laplacian of a
        connected graph), the system is solved in grounded form.
    ground_vertex:
        Vertex to ground when the matrix is singular (default 0).
    max_update_rank:
        Cap on the accumulated rank of Woodbury edge updates before
        :meth:`update` requests a re-factorization.  Memory for the
        update state is ``O(n · max_update_rank)``.  Absorbing ``k``
        edges costs ``k`` triangular solves up front, so Woodbury only
        beats re-factorizing for batches well below the factorization
        cost in solve-equivalents (tens of edges on planar-scale
        problems, growing with ``n``); batches above the cap are
        rejected wholesale — deliberately, since partially absorbing
        would misrepresent the matrix and absorbing huge batches would
        cost more than the factorization they avoid.

    Notes
    -----
    For a singular Laplacian the returned solution is the minimum-norm
    (mean-free) representative, matching :class:`TreeSolver` semantics,
    and requires a compatible RHS (``sum(b) = 0``); the solver projects
    the RHS to enforce this.
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        ground_vertex: int = 0,
        max_update_rank: int = 64,
    ) -> None:
        check_square(matrix, "matrix")
        self.n = matrix.shape[0]
        self.max_update_rank = int(max_update_rank)
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        scale = max(1.0, float(np.abs(matrix.diagonal()).max()) if self.n else 1.0)
        self.singular = bool(np.all(np.abs(row_sums) <= 1e-9 * scale))
        self.ground_vertex = ground_vertex if self.singular else -1
        if self.singular:
            if self.n == 1:
                self._lu = None
            else:
                reduced = ground_matrix(matrix, ground_vertex).tocsc()
                self._lu = spla.splu(reduced)
            keep = np.ones(self.n, dtype=bool)
            keep[ground_vertex] = False
            self._keep = keep
        else:
            self._lu = spla.splu(matrix.tocsc())
            self._keep = None
        # Accumulated Woodbury update: U (incidence columns of the added
        # edges, restricted to the kept rows when grounded), Z = A⁻¹U and
        # the Cholesky factor of the capacitance W⁻¹ + UᵀZ.
        self._update_U: np.ndarray | None = None
        self._update_Z: np.ndarray | None = None
        self._update_M: np.ndarray | None = None
        self._update_w = np.empty(0, dtype=np.float64)
        self._update_cap = None
        self._cap_is_cholesky = True
        get_metrics().counter(
            "repro_direct_factorizations_total",
            "Sparse LU factorizations built by DirectSolver.",
        ).inc()

    @staticmethod
    def _request_refactor() -> bool:
        """Count one rejected update and tell the caller to rebuild."""
        get_metrics().counter(
            "repro_woodbury_refactor_requests_total",
            "Woodbury updates rejected by DirectSolver (rank cap, "
            "missing factorization, or singular capacitance) — each "
            "makes the caller re-factorize.",
        ).inc()
        return False

    @property
    def factor_bytes(self) -> int:
        """Memory footprint of the L/U factors in bytes (Table 3's M_D)."""
        if self._lu is None:
            return 0
        return factor_nbytes(self._lu)

    @property
    def factor_nnz(self) -> int:
        """Nonzeros in L plus U."""
        if self._lu is None:
            return 0
        return int(self._lu.L.nnz + self._lu.U.nnz)

    @property
    def update_rank(self) -> int:
        """Rank of the edge updates absorbed since the factorization."""
        return int(self._update_w.size)

    def update(self, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> bool:
        """Absorb edge deltas ``(u_i, v_i, w_i)`` via a Woodbury correction.

        Parameters
        ----------
        u, v:
            Endpoint arrays of the updated edges.
        w:
            Signed, nonzero weight *deltas*: positive for additions and
            weight increases, negative for weight decreases and
            deletions (``−w`` deletes an edge of weight ``w``).  The
            caller must keep every net edge weight positive — see the
            module docstring.

        Returns
        -------
        bool
            ``False`` (leaving the solver unchanged) when the
            accumulated rank would cross ``max_update_rank``, the
            solver has no factorization to correct, or the capacitance
            is (numerically) singular — the caller should then rebuild
            from the updated matrix; ``True`` otherwise.

        Raises
        ------
        ValueError
            If a delta is exactly zero (a no-op entry is always a
            caller bug).
        """
        u = np.atleast_1d(np.asarray(u, dtype=np.int64))
        v = np.atleast_1d(np.asarray(v, dtype=np.int64))
        w = np.atleast_1d(np.asarray(w, dtype=np.float64))
        if u.size == 0:
            return True
        if np.any(w == 0.0):
            raise ValueError("edge-update deltas must be nonzero")
        if self._lu is None:
            return self._request_refactor()
        if self.update_rank + u.size > self.max_update_rank:
            return self._request_refactor()
        cols = np.arange(u.size)
        U_new = np.zeros((self.n, u.size), dtype=np.float64)
        np.add.at(U_new, (u, cols), 1.0)
        np.add.at(U_new, (v, cols), -1.0)
        if self.singular:
            U_new = U_new[self._keep]
        Z_new = self._lu.solve(U_new)
        new_block = np.diag(1.0 / w) + U_new.T @ Z_new
        if self._update_U is None:
            U, Z, capacitance = U_new, Z_new, new_block
        else:
            # Grow the capacitance by its new blocks only: the existing
            # k x k body is unchanged, so per-batch cost stays
            # proportional to the batch, not the accumulated rank.
            cross = self._update_U.T @ Z_new
            capacitance = np.block(
                [[self._update_M, cross], [cross.T, new_block]]
            )
            U = np.hstack([self._update_U, U_new])
            Z = np.hstack([self._update_Z, Z_new])
        all_w = np.concatenate([self._update_w, w])
        # The capacitance is PD only when every delta is positive; the
        # mixed-sign case (deletions) factors the symmetric indefinite
        # capacitance with LU instead.
        use_cholesky = bool(np.all(all_w > 0))
        try:
            if use_cholesky:
                cap = scipy.linalg.cho_factor(capacitance)
            else:
                cap = scipy.linalg.lu_factor(capacitance)
                diag = np.abs(np.diag(cap[0]))
                # Judge singularity against the magnitude of the terms
                # the capacitance is built from (W⁻¹ and UᵀZ), not its
                # final entries — exact cancellation is the singular
                # case being detected.
                scale = max(
                    float(np.abs(capacitance).max()),
                    float(np.abs(1.0 / all_w).max()),
                    1e-300,
                )
                if diag.min() <= 1e-12 * scale:
                    # Numerically singular: the update removed the
                    # matrix's definiteness (e.g. a deletion that
                    # disconnects the graph).  Ask for a rebuild.
                    return self._request_refactor()
        except scipy.linalg.LinAlgError:  # pragma: no cover - defensive
            return self._request_refactor()
        self._update_U, self._update_Z = U, Z
        self._update_M = capacitance
        self._update_w = all_w
        self._update_cap = cap
        self._cap_is_cholesky = use_cholesky
        metrics = get_metrics()
        metrics.counter(
            "repro_woodbury_updates_total",
            "Edge-update batches absorbed by DirectSolver via the "
            "Woodbury identity.",
        ).inc()
        metrics.gauge(
            "repro_woodbury_update_rank",
            "Accumulated Woodbury update rank since the last "
            "factorization.",
        ).set(self.update_rank)
        return True

    def _base_solve(self, rhs: np.ndarray) -> np.ndarray:
        """Factorized solve plus the accumulated Woodbury correction."""
        x = self._lu.solve(rhs)
        if self._update_cap is not None:
            compressed = self._update_U.T @ x
            if self._cap_is_cholesky:
                correction = scipy.linalg.cho_solve(self._update_cap, compressed)
            else:
                correction = scipy.linalg.lu_solve(self._update_cap, compressed)
            x = x - self._update_Z @ correction
        return x

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve for one vector or each column of a matrix.

        Parameters
        ----------
        b:
            Right-hand side with ``n`` rows (vector or matrix).

        Returns
        -------
        numpy.ndarray
            The solution (mean-free minimum-norm representative for
            singular Laplacians), with the shape of ``b``.

        Raises
        ------
        ValueError
            If the right-hand side row count differs from ``n``.
        """
        b = np.asarray(b, dtype=np.float64)
        single = b.ndim == 1
        if single:
            b = b[:, None]
        if b.shape[0] != self.n:
            raise ValueError(f"rhs has {b.shape[0]} rows, expected {self.n}")
        if not self.singular:
            x = self._base_solve(b)
            return x[:, 0] if single else x
        # Singular path: project RHS, solve grounded, re-center.
        rhs = b - b.mean(axis=0, keepdims=True)
        x = np.zeros_like(rhs)
        if self._lu is not None:
            x[self._keep] = self._base_solve(rhs[self._keep])
        x -= x.mean(axis=0, keepdims=True)
        return x[:, 0] if single else x

    def __call__(self, b: np.ndarray) -> np.ndarray:
        """Alias so the solver doubles as a PCG preconditioner.

        Parameters
        ----------
        b:
            Right-hand side vector or matrix.

        Returns
        -------
        numpy.ndarray
            ``self.solve(b)``.
        """
        return self.solve(b)
