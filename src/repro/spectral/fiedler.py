"""Fiedler vector computation by inverse power iteration.

The paper's spectral partitioner (Section 4.3) obtains the approximate
Fiedler vector — the eigenvector of the smallest nonzero Laplacian
eigenvalue — with a few inverse power iterations [20], where each
iteration solves one Laplacian system.  The solver is pluggable: a
direct factorization reproduces the paper's "T_D" column, a
sparsifier-preconditioned PCG its "T_I" column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import as_rng

__all__ = ["FiedlerResult", "fiedler_vector"]


@dataclass
class FiedlerResult:
    """Approximate Fiedler pair plus iteration diagnostics.

    Attributes
    ----------
    vector:
        Unit-norm approximate Fiedler vector (mean-free).
    value:
        Rayleigh-quotient estimate of the Fiedler eigenvalue λ₂.
    iterations:
        Inverse power iterations performed.
    residual:
        Final eigen-residual ``‖L v − λ v‖₂``.
    """

    vector: np.ndarray
    value: float
    iterations: int
    residual: float


def fiedler_vector(
    L: sp.spmatrix,
    solve: Callable[[np.ndarray], np.ndarray],
    iterations: int = 12,
    tol: float = 1e-8,
    seed: int | np.random.Generator | None = None,
) -> FiedlerResult:
    """Inverse power iteration for the Fiedler pair of a Laplacian.

    Parameters
    ----------
    L:
        The (singular, connected-graph) Laplacian.
    solve:
        Callable applying an (approximate) ``L⁺``: each call must solve
        one Laplacian system on ``1⊥``.
    iterations:
        Maximum inverse power iterations ("a few" suffice per [20]).
    tol:
        Early-exit threshold on the eigen-residual relative to λ.
    seed:
        Seed for the random start vector.

    Notes
    -----
    Inverse iteration on ``1⊥`` converges to the smallest nontrivial
    eigenpair at rate ``λ₂/λ₃`` — fast in practice because mesh-like
    graphs have well-separated low modes.
    """
    n = L.shape[0]
    rng = as_rng(seed)
    v = rng.standard_normal(n)
    v -= v.mean()
    v /= np.linalg.norm(v)
    value = float(v @ (L @ v))
    done_iterations = 0
    residual = float("inf")
    for done_iterations in range(1, iterations + 1):
        v = solve(v)
        v -= v.mean()
        norm = np.linalg.norm(v)
        if norm == 0.0:  # pragma: no cover - degenerate start vector
            raise RuntimeError("inverse iteration collapsed to the null space")
        v /= norm
        Lv = L @ v
        value = float(v @ Lv)
        residual = float(np.linalg.norm(Lv - value * v))
        if residual <= tol * max(abs(value), 1e-30):
            break
    return FiedlerResult(
        vector=v, value=value, iterations=done_iterations, residual=residual
    )
