"""Spectral algorithms: eigensolvers, Fiedler vectors, partitioning, GSP."""

from repro.spectral.eigs import (
    dense_generalized_eigs,
    exact_extreme_generalized_eigs,
    ones_complement_basis,
    smallest_laplacian_eigs,
)
from repro.spectral.extreme import (
    estimate_lambda_max,
    estimate_lambda_min,
    generalized_power_iteration,
)
from repro.spectral.fiedler import FiedlerResult, fiedler_vector
from repro.spectral.partition import (
    balance_ratio,
    conductance,
    cut_weight,
    partition_disagreement,
    sign_cut,
)
from repro.spectral.embedding import (
    procrustes_alignment_error,
    spectral_coordinates,
    subspace_angles_degrees,
)
from repro.spectral.clustering import KMeansResult, kmeans, spectral_clustering
from repro.spectral.gsp import (
    GraphFourier,
    chebyshev_filter,
    heat_kernel,
    low_pass,
    smoothness,
)

__all__ = [
    "dense_generalized_eigs",
    "exact_extreme_generalized_eigs",
    "ones_complement_basis",
    "smallest_laplacian_eigs",
    "estimate_lambda_max",
    "estimate_lambda_min",
    "generalized_power_iteration",
    "FiedlerResult",
    "fiedler_vector",
    "sign_cut",
    "balance_ratio",
    "cut_weight",
    "conductance",
    "partition_disagreement",
    "spectral_coordinates",
    "procrustes_alignment_error",
    "subspace_angles_degrees",
    "KMeansResult",
    "kmeans",
    "spectral_clustering",
    "GraphFourier",
    "chebyshev_filter",
    "low_pass",
    "heat_kernel",
    "smoothness",
]
