"""Spectral graph drawing and low-dimensional embedding (Koren [10]).

Figure 1 of the paper shows *spectral drawings* of the airfoil graph and
its sparsifier: vertex coordinates are entries of the first nontrivial
Laplacian eigenvectors.  Because eigenvectors are defined up to sign and
rotation within eigenspaces, the reproduction compares drawings through
a Procrustes alignment error and principal subspace angles.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.spectral.eigs import smallest_laplacian_eigs

__all__ = [
    "spectral_coordinates",
    "procrustes_alignment_error",
    "subspace_angles_degrees",
]


def spectral_coordinates(
    graph: Graph,
    dim: int = 2,
    preconditioner=None,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Spectral drawing coordinates: first ``dim`` nontrivial eigenvectors.

    Returns an ``(n, dim)`` array whose columns are the Laplacian
    eigenvectors for the smallest nonzero eigenvalues — Koren's [10]
    degree-normalized drawing simplification used by the paper's Fig. 1.
    """
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    _, vecs = smallest_laplacian_eigs(
        graph.laplacian(), k=dim, preconditioner=preconditioner, seed=seed
    )
    return vecs


def procrustes_alignment_error(X: np.ndarray, Y: np.ndarray) -> float:
    """Relative error of ``Y`` against ``X`` after optimal orthogonal map.

    Solves the orthogonal Procrustes problem ``min_Q ‖X − Y Q‖_F`` over
    orthogonal ``Q`` (rotations/reflections within the eigenspace) and
    returns ``‖X − Y Q*‖_F / ‖X‖_F`` — the Fig. 1 similarity metric.
    """
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    if X.shape != Y.shape:
        raise ValueError(f"drawings have different shapes {X.shape} vs {Y.shape}")
    Q, _ = sla.orthogonal_procrustes(Y, X)
    return float(np.linalg.norm(X - Y @ Q) / max(np.linalg.norm(X), 1e-300))


def subspace_angles_degrees(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Principal angles (degrees) between the column spans of X and Y.

    Near-zero angles mean the sparsifier preserves the drawing subspace
    — the quantitative statement behind the paper's visual Fig. 1.
    """
    angles = sla.subspace_angles(np.asarray(X), np.asarray(Y))
    return np.degrees(angles)
