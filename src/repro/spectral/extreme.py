"""Extreme generalized eigenvalue estimation (paper Section 3.6).

``λmax`` of ``L_P⁺ L_G`` is estimated with generalized power iterations
(§3.6.1): the dominant eigenvalues of spanning-tree-like pencils are
well separated [21], so fewer than ten iterations suffice.  ``λmin`` is
estimated with the node-coloring bound (§3.6.2, Eq. 18): restricting
the Courant–Fischer quotient to 0/1-valued vectors and then to
single-vertex indicators yields the cheaply computable upper bound
``min_p L_G(p,p) / L_P(p,p)``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.solvers.block import record_solve
from repro.utils.rng import as_rng

__all__ = [
    "estimate_lambda_max",
    "estimate_lambda_min",
    "generalized_power_iteration",
]


def generalized_power_iteration(
    LG: sp.spmatrix,
    LP: sp.spmatrix,
    solve_P: Callable[[np.ndarray], np.ndarray],
    iterations: int = 10,
    seed: int | np.random.Generator | None = None,
    return_vector: bool = False,
    caller: str = "estimate",
) -> float | tuple[float, np.ndarray]:
    """Estimate ``λmax(L_P⁺ L_G)`` by power iterations on the pencil.

    Each step applies ``h ← L_P⁺ (L_G h)`` (via ``solve_P``), projects
    out the all-ones null space and renormalizes; the generalized
    Rayleigh quotient ``(hᵀ L_G h) / (hᵀ L_P h)`` of the final iterate
    is returned.  The estimate approaches λmax from below.  Each solve
    is counted under ``repro_solver_solves_total{caller=...}``.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    n = LG.shape[0]
    rng = as_rng(seed)
    h = rng.standard_normal(n)
    h -= h.mean()
    h /= np.linalg.norm(h)
    for _ in range(iterations):
        record_solve(solve_P, caller)
        h = solve_P(LG @ h)
        h -= h.mean()
        norm = np.linalg.norm(h)
        if norm == 0.0:  # pragma: no cover - only for degenerate pencils
            raise RuntimeError("power iteration collapsed to the null space")
        h /= norm
    numerator = float(h @ (LG @ h))
    denominator = float(h @ (LP @ h))
    if denominator <= 0.0:  # pragma: no cover - LP PSD on 1-perp
        raise RuntimeError("non-positive Rayleigh denominator")
    value = numerator / denominator
    if return_vector:
        return value, h
    return value


def estimate_lambda_max(
    graph: Graph,
    sparsifier: Graph,
    solve_P: Callable[[np.ndarray], np.ndarray],
    iterations: int = 10,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Paper §3.6.1: λmax estimate via ≲10 generalized power iterations."""
    return generalized_power_iteration(
        graph.laplacian(), sparsifier.laplacian(), solve_P,
        iterations=iterations, seed=seed,
    )


def estimate_lambda_min(graph: Graph, sparsifier: Graph) -> float:
    """Paper §3.6.2 / Eq. (18): node-coloring estimate of λmin.

    ``λmin ≈ min_p L_G(p,p) / L_P(p,p)`` — the minimum weighted-degree
    ratio over vertices.  Because the sparsifier is a subgraph with the
    original weights, the ratio is ≥ 1 and upper-bounds the true λmin.
    """
    if graph.n != sparsifier.n:
        raise ValueError(
            f"graph and sparsifier sizes differ: {graph.n} vs {sparsifier.n}"
        )
    deg_g = graph.weighted_degrees()
    deg_p = sparsifier.weighted_degrees()
    if np.any(deg_p <= 0):
        raise ValueError("sparsifier has an isolated vertex; it must span the graph")
    return float(np.min(deg_g / deg_p))
