"""Sign-cut spectral partitioning and cut quality metrics.

The paper partitions graphs into two pieces with the *sign cut* [18]: a
vertex goes to V₊ or V₋ according to the sign of its Fiedler-vector
entry.  Table 3 reports the balance ``|V₊|/|V₋|`` and the relative
disagreement between the direct and sparsifier-accelerated solvers;
both metrics live here together with standard cut quality measures.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "sign_cut",
    "balance_ratio",
    "cut_weight",
    "conductance",
    "partition_disagreement",
]


def sign_cut(vector: np.ndarray) -> np.ndarray:
    """Boolean labels from the sign of a (Fiedler) vector.

    Zero entries are assigned to the positive side, matching the
    convention of [18].
    """
    return np.asarray(vector) >= 0.0


def balance_ratio(labels: np.ndarray) -> float:
    """``|V₊| / |V₋|`` for boolean labels (inf when one side is empty)."""
    labels = np.asarray(labels, dtype=bool)
    positive = int(labels.sum())
    negative = labels.size - positive
    if negative == 0:
        return float("inf")
    return positive / negative


def cut_weight(graph: Graph, labels: np.ndarray) -> float:
    """Total weight of edges crossing the partition."""
    labels = np.asarray(labels, dtype=bool)
    if labels.size != graph.n:
        raise ValueError(f"labels must have length {graph.n}, got {labels.size}")
    crossing = labels[graph.u] != labels[graph.v]
    return float(graph.w[crossing].sum())


def conductance(graph: Graph, labels: np.ndarray) -> float:
    """Cut conductance ``w(cut) / min(vol(V₊), vol(V₋))``."""
    labels = np.asarray(labels, dtype=bool)
    degrees = graph.weighted_degrees()
    vol_pos = float(degrees[labels].sum())
    vol_neg = float(degrees[~labels].sum())
    denominator = min(vol_pos, vol_neg)
    if denominator == 0.0:
        return float("inf")
    return cut_weight(graph, labels) / denominator


def partition_disagreement(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of vertices labelled differently, up to global sign flip.

    The Fiedler vector's sign is arbitrary, so the paper's
    ``Rel.Err. = |V_dif| / |V|`` (Table 3) is computed after aligning
    the two partitions by the better of the two flips.
    """
    a = np.asarray(a, dtype=bool)
    b = np.asarray(b, dtype=bool)
    if a.shape != b.shape:
        raise ValueError(f"label shapes differ: {a.shape} vs {b.shape}")
    direct = float(np.mean(a != b))
    flipped = float(np.mean(a == b))
    return min(direct, flipped)
