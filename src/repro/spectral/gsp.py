"""Graph signal processing: Fourier basis, spectral filters (Shuman+ [16]).

Section 3.4 of the paper frames spectral sparsification as a *low-pass
graph filter*: the sparsifier preserves slowly varying (low graph
frequency) signals well and highly oscillatory ones poorly.  This module
supplies the GSP vocabulary to make that statement measurable — an exact
graph Fourier transform for reference-sized graphs and a Chebyshev
polynomial filter for large ones — and is exercised by the GSP example
and the low-pass validation tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph

__all__ = [
    "GraphFourier",
    "chebyshev_filter",
    "low_pass",
    "heat_kernel",
    "smoothness",
]


class GraphFourier:
    """Exact graph Fourier basis from a dense Laplacian eigendecomposition.

    Suitable for reference graphs (n ≲ 3000).  Frequencies are the
    Laplacian eigenvalues; the GFT of a signal is its expansion in the
    eigenvector basis.
    """

    def __init__(self, graph: Graph) -> None:
        dense = graph.laplacian().toarray()
        self.frequencies, self.modes = np.linalg.eigh(dense)
        self.n = graph.n

    def transform(self, signal: np.ndarray) -> np.ndarray:
        """GFT: coefficients of ``signal`` in the eigenbasis."""
        return self.modes.T @ np.asarray(signal, dtype=np.float64)

    def inverse(self, coefficients: np.ndarray) -> np.ndarray:
        """Inverse GFT."""
        return self.modes @ np.asarray(coefficients, dtype=np.float64)

    def filter(self, signal: np.ndarray, response: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Apply a spectral filter ``h(λ)`` exactly."""
        coefficients = self.transform(signal)
        return self.inverse(response(self.frequencies) * coefficients)


def low_pass(cutoff: float) -> Callable[[np.ndarray], np.ndarray]:
    """Ideal low-pass response ``h(λ) = 1[λ ≤ cutoff]``."""
    if cutoff < 0:
        raise ValueError(f"cutoff must be non-negative, got {cutoff}")
    return lambda lam: (np.asarray(lam) <= cutoff).astype(np.float64)


def heat_kernel(tau: float) -> Callable[[np.ndarray], np.ndarray]:
    """Heat-diffusion response ``h(λ) = exp(−τλ)`` (smooth low-pass)."""
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    return lambda lam: np.exp(-tau * np.asarray(lam))


def chebyshev_filter(
    graph: Graph,
    signal: np.ndarray,
    response: Callable[[np.ndarray], np.ndarray],
    order: int = 30,
    lambda_max: float | None = None,
) -> np.ndarray:
    """Apply a spectral filter with Chebyshev polynomials (no eigensolve).

    Standard GSP machinery [16]: the response is expanded in Chebyshev
    polynomials on ``[0, λmax]`` and applied through ``order`` sparse
    matrix-vector products — the scalable path for large graphs.

    Parameters
    ----------
    lambda_max:
        Upper bound on the Laplacian spectrum; defaults to the Gershgorin
        bound ``2·max degree``.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    L = graph.laplacian()
    signal = np.asarray(signal, dtype=np.float64)
    if lambda_max is None:
        lambda_max = 2.0 * float(graph.weighted_degrees().max())
    if lambda_max <= 0:
        return response(np.zeros(1))[0] * signal
    # Chebyshev coefficients of the response on [0, lambda_max] via the
    # Chebyshev–Gauss quadrature on [-1, 1].
    quad = np.cos(np.pi * (np.arange(order + 1) + 0.5) / (order + 1))
    lam = 0.5 * lambda_max * (quad + 1.0)
    values = response(lam)
    coefficients = np.empty(order + 1)
    for k in range(order + 1):
        coefficients[k] = (
            2.0 / (order + 1) * float(values @ np.cos(k * np.arccos(quad)))
        )
    coefficients[0] /= 2.0
    # Recurrence on the scaled Laplacian 2L/λmax − I.
    scale = 2.0 / lambda_max
    t_prev = signal
    t_curr = scale * (L @ signal) - signal
    result = coefficients[0] * t_prev + coefficients[1] * t_curr
    for k in range(2, order + 1):
        t_next = 2.0 * (scale * (L @ t_curr) - t_curr) - t_prev
        result += coefficients[k] * t_next
        t_prev, t_curr = t_curr, t_next
    return result


def smoothness(graph: Graph, signal: np.ndarray) -> float:
    """Normalized Laplacian quadratic form ``xᵀLx / xᵀx``.

    Small values ⇔ slowly varying ("low-frequency") signals — the
    quantity a spectral sparsifier is designed to preserve.
    """
    signal = np.asarray(signal, dtype=np.float64)
    denominator = float(signal @ signal)
    if denominator == 0.0:
        raise ValueError("signal must be nonzero")
    return float(signal @ (graph.laplacian() @ signal)) / denominator
