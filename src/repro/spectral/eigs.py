"""Generalized eigenvalue utilities for Laplacian pencils.

The pencil ``L_G u = λ L_P u`` of two connected-graph Laplacians is
positive definite on ``1⊥`` only, so the *exact* reference solver used
to validate the paper's estimators (Table 1) restricts both matrices to
an orthonormal basis of ``1⊥`` and calls a dense symmetric-definite
eigensolver — mathematically identical to Matlab's ``eigs`` on the
pencil but exact.  Large-scale paths (Lanczos/LOBPCG with null-space
constraints) serve the Table 4 eigenvector timings.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.utils.rng import as_rng

__all__ = [
    "ones_complement_basis",
    "dense_generalized_eigs",
    "exact_extreme_generalized_eigs",
    "smallest_laplacian_eigs",
]


def ones_complement_basis(n: int) -> np.ndarray:
    """Orthonormal basis of ``1⊥`` as an ``(n, n-1)`` dense matrix.

    Built from the Householder reflection mapping ``1/√n`` to ``e₁``:
    the remaining ``n-1`` columns of the reflector are an orthonormal
    basis of the complement.  Cost O(n²) — used on reference problems.
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    q = np.full(n, 1.0 / np.sqrt(n))
    v = q.copy()
    v[0] += 1.0  # H maps q to -e1; sign is irrelevant for the basis
    H = np.eye(n) - 2.0 * np.outer(v, v) / (v @ v)
    return H[:, 1:]


def dense_generalized_eigs(
    LG: sp.spmatrix | np.ndarray,
    LP: sp.spmatrix | np.ndarray,
    return_vectors: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """All generalized eigenvalues of ``(L_G, L_P)`` restricted to ``1⊥``.

    Eigenvalues are returned in ascending order; with
    ``return_vectors=True`` the full-space eigenvectors (columns,
    mean-free) are returned as well.  Exact up to dense-LAPACK accuracy;
    intended for graphs up to a few thousand vertices.
    """
    A = LG.toarray() if sp.issparse(LG) else np.asarray(LG, dtype=np.float64)
    B = LP.toarray() if sp.issparse(LP) else np.asarray(LP, dtype=np.float64)
    if A.shape != B.shape or A.shape[0] != A.shape[1]:
        raise ValueError(f"incompatible pencil shapes {A.shape} vs {B.shape}")
    U = ones_complement_basis(A.shape[0])
    A_r = U.T @ A @ U
    B_r = U.T @ B @ U
    if return_vectors:
        vals, vecs = sla.eigh(A_r, B_r)
        return vals, U @ vecs
    return sla.eigh(A_r, B_r, eigvals_only=True)


def exact_extreme_generalized_eigs(
    LG: sp.spmatrix | np.ndarray, LP: sp.spmatrix | np.ndarray
) -> tuple[float, float]:
    """Exact ``(λmin, λmax)`` of the pencil on ``1⊥`` (dense reference)."""
    vals = dense_generalized_eigs(LG, LP)
    return float(vals[0]), float(vals[-1])


def smallest_laplacian_eigs(
    L: sp.spmatrix,
    k: int = 10,
    preconditioner=None,
    seed: int | np.random.Generator | None = None,
    tol: float = 1e-6,
    maxiter: int = 500,
    dense_threshold: int = 600,
) -> tuple[np.ndarray, np.ndarray]:
    """First ``k`` nontrivial eigenpairs of a graph Laplacian.

    Small problems use the dense exact path; large problems use LOBPCG
    constrained against the all-ones null vector, optionally accelerated
    by a preconditioner (e.g. an :class:`~repro.solvers.AMGSolver` of a
    *sparsified* Laplacian — the Table 4 use case).

    Returns ``(values, vectors)`` with values ascending, excluding the
    trivial zero mode.
    """
    n = L.shape[0]
    if k < 1 or k >= n - 1:
        raise ValueError(f"k must be in [1, n-2], got {k} for n={n}")
    if n <= dense_threshold:
        dense = L.toarray() if sp.issparse(L) else np.asarray(L)
        vals, vecs = np.linalg.eigh(dense)
        return vals[1 : k + 1], vecs[:, 1 : k + 1]
    rng = as_rng(seed)
    X = rng.standard_normal((n, k))
    X -= X.mean(axis=0, keepdims=True)
    Y = np.ones((n, 1)) / np.sqrt(n)
    M = None
    if preconditioner is not None:
        M = spla.LinearOperator((n, n), matvec=preconditioner)
    # LOBPCG warns when some modes stop slightly above `tol`; it still
    # returns its best (Rayleigh–Ritz) iterate, which is what we want.
    import warnings

    with warnings.catch_warnings():
        warnings.filterwarnings(
            "ignore", message=".*not reaching the requested tolerance.*"
        )
        warnings.filterwarnings("ignore", message=".*Exited at iteration.*")
        warnings.filterwarnings("ignore", message=".*Exited postprocessing.*")
        vals, vecs = spla.lobpcg(
            L, X, M=M, Y=Y, tol=tol, maxiter=maxiter, largest=False
        )
    order = np.argsort(vals)
    return np.asarray(vals)[order], np.asarray(vecs)[:, order]
