"""Spectral k-way clustering on (sparsified) graphs.

The paper's Section 4.4 motivates sparsification with spectral
clustering: the RCV-80NN graph is too large to eigendecompose directly
but clusters "in a few minutes" after sparsification.  This module
implements the standard pipeline [14] — embed with the first k
nontrivial eigenvectors, then Lloyd's k-means with k-means++ seeding
(own implementation; no sklearn dependency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.spectral.eigs import smallest_laplacian_eigs
from repro.utils.rng import as_rng

__all__ = ["KMeansResult", "kmeans", "spectral_clustering"]


@dataclass
class KMeansResult:
    """Lloyd's algorithm output.

    Attributes
    ----------
    labels:
        Cluster index per point.
    centers:
        Final cluster centroids (k, d).
    inertia:
        Sum of squared distances to assigned centroids.
    iterations:
        Lloyd iterations executed.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int


def _kmeans_pp_init(
    X: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D² sampling."""
    n = X.shape[0]
    centers = np.empty((k, X.shape[1]), dtype=np.float64)
    first = int(rng.integers(0, n))
    centers[0] = X[first]
    closest_sq = np.sum((X - centers[0]) ** 2, axis=1)
    for j in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0.0:
            # All points coincide with chosen centers; fill arbitrarily.
            centers[j:] = X[rng.integers(0, n, size=k - j)]
            break
        probabilities = closest_sq / total
        chosen = int(rng.choice(n, p=probabilities))
        centers[j] = X[chosen]
        dist_sq = np.sum((X - centers[j]) ** 2, axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


def kmeans(
    X: np.ndarray,
    k: int,
    seed: int | np.random.Generator | None = None,
    max_iterations: int = 100,
    tol: float = 1e-7,
) -> KMeansResult:
    """Lloyd's k-means with k-means++ initialization.

    Deterministic given ``seed``.  Empty clusters are re-seeded with the
    point farthest from its centroid.
    """
    X = np.asarray(X, dtype=np.float64)
    n = X.shape[0]
    if k < 1 or k > n:
        raise ValueError(f"k must be in [1, n], got {k} for n={n}")
    rng = as_rng(seed)
    centers = _kmeans_pp_init(X, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    inertia = float("inf")
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # Assignment step.
        distances = (
            np.sum(X**2, axis=1, keepdims=True)
            - 2.0 * X @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        labels = np.argmin(distances, axis=1)
        new_inertia = float(np.take_along_axis(distances, labels[:, None], 1).sum())
        # Update step.
        new_centers = np.zeros_like(centers)
        counts = np.bincount(labels, minlength=k).astype(np.float64)
        np.add.at(new_centers, labels, X)
        empty = counts == 0
        if np.any(empty):
            worst = np.argsort(
                -np.take_along_axis(distances, labels[:, None], 1).ravel()
            )
            for slot, point in zip(np.flatnonzero(empty), worst):
                new_centers[slot] = X[point]
                counts[slot] = 1.0
        centers = new_centers / counts[:, None]
        if abs(inertia - new_inertia) <= tol * max(inertia, 1e-300):
            inertia = new_inertia
            break
        inertia = new_inertia
    return KMeansResult(
        labels=labels, centers=centers, inertia=inertia, iterations=iteration
    )


def spectral_clustering(
    graph: Graph,
    k: int,
    preconditioner=None,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Cluster vertices via k smallest nontrivial eigenvectors + k-means.

    When ``graph`` is a spectral sparsifier of a larger graph, the
    labels approximate clustering of the original — the paper's
    RCV-80NN scenario.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    embedding_rng, kmeans_rng = as_rng(seed).spawn(2)
    _, vectors = smallest_laplacian_eigs(
        graph.laplacian(), k=k, preconditioner=preconditioner, seed=embedding_rng
    )
    # Row-normalize the embedding (standard for spectral clustering).
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    normalized = vectors / np.maximum(norms, 1e-12)
    return kmeans(normalized, k, seed=kmeans_rng).labels
