"""Public API of the similarity-aware spectral sparsification framework.

``sparsify_graph(G, sigma2=...)`` runs the full paper pipeline:

1. extract a low-stretch spanning tree backbone (§3.1a);
2. iteratively densify with spectrally-filtered off-tree edges until the
   estimated relative condition number meets σ² (§3.1b-c, §3.7).

The result records the sparsifier, the backbone, all densification
diagnostics and timings — everything the experiment harness needs to
regenerate the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.context import PipelineContext
from repro.core.pipeline import SparsifyPipeline
from repro.core.profile import PipelineProfile
from repro.core.stages import DensifyStage, RescaleStage, TreeStage
from repro.graphs.graph import Graph
from repro.graphs.components import is_connected
from repro.sparsify.densify import DensifyIteration, densify
from repro.sparsify.rescaling import RescaleResult
from repro.utils.rng import as_rng
from repro.utils.timing import Timer

__all__ = ["SparsifyResult", "SimilarityAwareSparsifier", "sparsify_graph"]


@dataclass
class SparsifyResult:
    """Everything produced by one similarity-aware sparsification run.

    Attributes
    ----------
    graph:
        The original graph ``G``.
    sparsifier:
        The sparsified graph ``P`` (same vertex set, subset of edges,
        original weights).
    edge_mask:
        Boolean mask over ``G``'s canonical edges selecting ``P``.
    tree_indices:
        Canonical indices of the spanning-tree backbone.
    sigma2_target / sigma2_estimate:
        Requested and certified (estimated) relative condition number.
    converged:
        Whether the σ² target was certified.
    iterations:
        Densification diagnostics (one entry per iteration).
    tree_seconds / densify_seconds / total_seconds:
        Wall-clock timings (the paper's ``T_σ²`` and ``T_tot`` columns).
    profile:
        Per-stage timings/counters of the pipeline run
        (:class:`~repro.core.profile.PipelineProfile`; the CLI's
        ``--profile`` table).
    rescale:
        Optional :class:`~repro.sparsify.rescaling.RescaleResult` when
        the run mounted a terminal rescaling stage.
    """

    graph: Graph
    sparsifier: Graph
    edge_mask: np.ndarray
    tree_indices: np.ndarray
    sigma2_target: float
    sigma2_estimate: float
    converged: bool
    iterations: list[DensifyIteration] = field(default_factory=list)
    tree_seconds: float = 0.0
    densify_seconds: float = 0.0
    profile: PipelineProfile | None = None
    rescale: RescaleResult | None = None

    @property
    def total_seconds(self) -> float:
        return self.tree_seconds + self.densify_seconds

    @property
    def num_off_tree_edges(self) -> int:
        """Recovered off-tree edges beyond the spanning-tree backbone."""
        return self.sparsifier.num_edges - len(self.tree_indices)

    @property
    def density(self) -> float:
        """``|E_P| / |V|`` — the paper's sparsifier density metric."""
        return self.sparsifier.num_edges / self.graph.n

    @property
    def edge_reduction(self) -> float:
        """``|E| / |E_s|`` — Table 4's edge reduction factor."""
        return self.graph.num_edges / max(self.sparsifier.num_edges, 1)

    def summary(self) -> str:
        """One-line human-readable description.

        Returns
        -------
        str
            Edge counts, density, σ² estimate vs target and timing.
        """
        return (
            f"sparsifier with {self.sparsifier.num_edges} edges "
            f"({self.num_off_tree_edges} off-tree, density {self.density:.3f}) "
            f"σ² estimate {self.sigma2_estimate:.1f} "
            f"(target {self.sigma2_target:.1f}, "
            f"{'converged' if self.converged else 'not certified'}) "
            f"in {self.total_seconds:.2f}s"
        )


class SimilarityAwareSparsifier:
    """Configurable similarity-aware sparsification pipeline.

    Parameters mirror the paper's algorithm knobs; instances are
    reusable across graphs.

    Parameters
    ----------
    sigma2:
        Target spectral similarity (upper bound on the relative
        condition number κ(L_G, L_P)).
    tree_method:
        Backbone: ``"akpw"`` (low-stretch, default), ``"spt"``,
        ``"maxw"`` or ``"random"`` (ablations).
    t:
        Generalized power-iteration steps in the heat embedding.
    num_vectors:
        Probe vectors (default ``O(log n)``).
    power_iterations:
        Iterations for the λmax estimator.
    max_iterations:
        Densification iteration cap.
    max_edges_per_iteration:
        Cap on edges added per densification pass.
    similarity_mode:
        Dissimilarity rule (``"endpoint"``, ``"neighborhood"``,
        ``"none"``).
    solver_method:
        Sparsifier solver once off-tree edges exist (``"auto"``,
        ``"cholesky"``, ``"amg"``).
    max_update_rank:
        Incremental-solver knob: the direct solver absorbs edge batches
        as Woodbury low-rank corrections until their accumulated rank
        crosses this threshold, and only then re-factorizes.  Absorbing
        ``k`` edges costs ``k`` triangular solves, so this pays for
        batches far smaller than a factorization — the tail iterations,
        :func:`refine_sparsifier` passes, and runs with a small
        ``max_edges_per_iteration``.  Under the default per-iteration
        edge cap (``max(100, 5% · n)``) early batches exceed the rank
        budget and re-factorize, which is the cheaper choice there.
        Raise it on large graphs where factorizations dominate (memory
        cost is ``O(n · rank)``); set it to 0 to force the
        pre-incremental rebuild-every-iteration behaviour.
    amg_rebuild_every:
        Incremental-solver knob: number of densification edge batches an
        AMG hierarchy absorbs in place (fine-level value patches, coarse
        grids kept) before it is re-coarsened from the current
        sparsifier Laplacian.
    kernel_backend:
        Hot-kernel implementation family: ``"reference"`` (default),
        ``"vectorized"``, ``"numba"`` (degrades to vectorized when
        numba is absent) or ``"auto"`` (fastest available).  All
        backends are bit-identical (``tests/kernels`` parity suite),
        so this knob changes speed only.
    estimator_backend:
        σ² estimation strategy: ``"reference"`` (default, one
        generalized power iteration per densification round),
        ``"perturbation"`` (GRASS-style first-order Rayleigh bounds
        over cached probe/anchor vectors; spends solves only on
        rounds that could certify and reuses the probe embedding
        across rounds) or ``"auto"`` (= perturbation).  Unlike
        ``kernel_backend`` this is an *algorithmic* substitute
        contracted by σ² quality, not bit-parity: it certifies the
        same target, with the certified value inside the band declared
        by :data:`repro.kernels.estimator.SIGMA2_QUALITY_FACTOR`.
    estimator_refresh:
        Maximum consecutive rounds the perturbation estimator may
        reuse one probe embedding before forcing a fresh solve-backed
        embedding (ignored by the reference estimator).
    rescale:
        Optional terminal re-scaling stage: ``None`` (default, keep
        original weights as the paper does), ``"similarity"`` (global
        ``√(λmax λmin)`` rescaling) or ``"off_tree"`` (κ-minimizing
        off-tree factor search).  The re-scaled graph is reported on
        ``result.rescale``; the mask and ``result.sparsifier`` keep
        original weights either way.
    seed:
        Randomness for trees, estimators and embeddings.

    Examples
    --------
    >>> from repro.graphs import generators
    >>> from repro.sparsify import SimilarityAwareSparsifier
    >>> g = generators.grid2d(40, 40, seed=0)
    >>> result = SimilarityAwareSparsifier(sigma2=200.0, seed=0).sparsify(g)
    >>> result.sparsifier.num_edges <= g.num_edges
    True
    """

    def __init__(
        self,
        sigma2: float = 100.0,
        tree_method: str = "akpw",
        t: int = 2,
        num_vectors: int | None = None,
        power_iterations: int = 10,
        max_iterations: int = 50,
        max_edges_per_iteration: int | None = None,
        similarity_mode: str = "endpoint",
        solver_method: str = "auto",
        max_update_rank: int = 64,
        amg_rebuild_every: int = 8,
        kernel_backend: str = "reference",
        estimator_backend: str = "reference",
        estimator_refresh: int = 3,
        rescale: str | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if sigma2 <= 1.0:
            raise ValueError(f"sigma2 must exceed 1, got {sigma2}")
        if rescale not in (None, "similarity", "off_tree"):
            raise ValueError(
                f"unknown rescale scheme {rescale!r}; expected None, "
                "'similarity' or 'off_tree'"
            )
        from repro.kernels.registry import (
            resolve_backend,
            resolve_estimator_backend,
        )

        resolve_backend(kernel_backend)  # validate eagerly; keep the request
        resolve_estimator_backend(estimator_backend)
        self.sigma2 = float(sigma2)
        self.tree_method = tree_method
        self.t = t
        self.num_vectors = num_vectors
        self.power_iterations = power_iterations
        self.max_iterations = max_iterations
        self.max_edges_per_iteration = max_edges_per_iteration
        self.similarity_mode = similarity_mode
        self.solver_method = solver_method
        self.max_update_rank = max_update_rank
        self.amg_rebuild_every = amg_rebuild_every
        self.kernel_backend = kernel_backend
        self.estimator_backend = estimator_backend
        self.estimator_refresh = estimator_refresh
        self.rescale = rescale
        self.seed = seed

    def pipeline(self) -> SparsifyPipeline:
        """The stage composition this configuration runs.

        ``[TreeStage, DensifyStage]`` plus a terminal
        :class:`~repro.core.stages.RescaleStage` when ``rescale`` is
        set — the same composition every subsystem mounts (the shard
        workers run it per shard; the streaming/serving layers run the
        densify stage against their live state).

        Returns
        -------
        SparsifyPipeline
            A freshly composed pipeline (stages are stateless; a new
            composition per run keeps hooks independent).
        """
        stages = [TreeStage(), DensifyStage()]
        if self.rescale is not None:
            stages.append(RescaleStage(self.rescale))
        return SparsifyPipeline(stages)

    def context(self, graph: Graph) -> PipelineContext:
        """A fresh pipeline context carrying this configuration's knobs.

        Parameters
        ----------
        graph:
            The host graph the context is for.

        Returns
        -------
        PipelineContext
            Context seeded from this instance's ``seed`` and knobs.
        """
        return PipelineContext(
            graph=graph,
            rng=as_rng(self.seed),
            sigma2=self.sigma2,
            tree_method=self.tree_method,
            t=self.t,
            num_vectors=self.num_vectors,
            power_iterations=self.power_iterations,
            max_iterations=self.max_iterations,
            max_edges_per_iteration=self.max_edges_per_iteration,
            similarity_mode=self.similarity_mode,
            solver_method=self.solver_method,
            max_update_rank=self.max_update_rank,
            amg_rebuild_every=self.amg_rebuild_every,
            kernel_backend=self.kernel_backend,
            estimator_backend=self.estimator_backend,
            estimator_refresh=self.estimator_refresh,
        )

    def sparsify(self, graph: Graph, check_connected: bool = True) -> SparsifyResult:
        """Compute a σ-similar spectral sparsifier of ``graph``.

        Parameters
        ----------
        graph:
            Connected graph with at least 2 vertices.  For disconnected
            inputs use :func:`sparsify_graph` (which shards per
            component) or
            :class:`repro.sparsify.parallel.ShardedSparsifier`.
        check_connected:
            Validate connectivity before starting.  Callers that have
            already established it (the routing in
            :func:`sparsify_graph`, the shard pipeline whose shards are
            connected by construction) pass ``False`` to skip the
            redundant component scan.

        Returns
        -------
        SparsifyResult
            Sparsifier, backbone, diagnostics and timings.

        Raises
        ------
        ValueError
            If the graph has fewer than 2 vertices or is disconnected.
        """
        if graph.n < 2:
            raise ValueError("graph must have at least 2 vertices")
        if check_connected and not is_connected(graph):
            raise ValueError(
                "graph must be connected; extract the largest component first "
                "(repro.graphs.largest_component)"
            )
        ctx = self.pipeline().run(self.context(graph))
        sparsifier = graph.edge_subgraph(ctx.edge_mask)
        return SparsifyResult(
            graph=graph,
            sparsifier=sparsifier,
            edge_mask=ctx.edge_mask,
            tree_indices=ctx.tree_indices,
            sigma2_target=self.sigma2,
            sigma2_estimate=ctx.sigma2_estimate,
            converged=ctx.converged,
            iterations=ctx.iterations,
            tree_seconds=ctx.profile.seconds("tree"),
            densify_seconds=ctx.profile.seconds("densify"),
            profile=ctx.profile,
            rescale=ctx.rescale,
        )


def refine_sparsifier(
    result: SparsifyResult,
    sigma2: float,
    seed: int | np.random.Generator | None = None,
    **densify_options,
) -> SparsifyResult:
    """Incrementally tighten an existing sparsifier to a smaller σ².

    The paper's §3.1(c) *incremental sparsifier improvement*: instead of
    rebuilding from the spanning tree, densification resumes from the
    existing edge mask, so refining σ²=200 → σ²=50 costs only the extra
    iterations.  The existing backbone and all recovered edges are kept.

    Parameters
    ----------
    result:
        A previous :class:`SparsifyResult` for the same graph.
    sigma2:
        The new (smaller) similarity target.
    seed:
        Randomness for the additional densification passes.
    densify_options:
        Extra keyword arguments forwarded to
        :func:`repro.sparsify.densify`.

    Returns
    -------
    SparsifyResult
        The refined sparsifier; ``result`` itself when it already
        certifies the requested σ².

    Examples
    --------
    >>> from repro.graphs import generators
    >>> from repro.sparsify import sparsify_graph, refine_sparsifier
    >>> g = generators.grid2d(20, 20, weights="uniform", seed=0)
    >>> coarse = sparsify_graph(g, sigma2=400.0, seed=0)
    >>> fine = refine_sparsifier(coarse, sigma2=50.0, seed=0)
    >>> fine.sparsifier.num_edges >= coarse.sparsifier.num_edges
    True
    """
    if sigma2 >= result.sigma2_target and result.converged:
        return result
    with Timer() as densify_timer:
        dens = densify(
            result.graph,
            result.tree_indices,
            sigma2=sigma2,
            seed=seed,
            initial_mask=result.edge_mask,
            **densify_options,
        )
    sparsifier = result.graph.edge_subgraph(dens.edge_mask)
    profile = PipelineProfile()
    if result.profile is not None:
        profile.merge(result.profile)
    profile.merge(dens.profile)
    return SparsifyResult(
        graph=result.graph,
        sparsifier=sparsifier,
        edge_mask=dens.edge_mask,
        tree_indices=result.tree_indices,
        sigma2_target=float(sigma2),
        sigma2_estimate=dens.final_sigma2_estimate,
        converged=dens.converged,
        iterations=list(result.iterations) + dens.iterations,
        tree_seconds=result.tree_seconds,
        densify_seconds=result.densify_seconds + densify_timer.elapsed,
        profile=profile,
    )


def sparsify_graph(
    graph: Graph,
    sigma2: float = 100.0,
    workers: int = 1,
    shard_max_nodes: int | None = None,
    backend: str = "auto",
    **options,
) -> SparsifyResult:
    """Functional one-shot entry point (see :class:`SimilarityAwareSparsifier`).

    Connected graphs with the default orchestration knobs run the serial
    kernel directly.  Disconnected graphs, ``workers > 1`` or
    ``shard_max_nodes`` route through the shard-parallel pipeline
    (:class:`repro.sparsify.parallel.ShardedSparsifier`), so real-world
    multi-component inputs work end-to-end instead of raising.

    Parameters
    ----------
    graph:
        Host graph; may be disconnected.
    sigma2:
        Target spectral similarity (per shard on sharded runs).
    workers:
        Concurrent shard workers (1 = serial).
    shard_max_nodes:
        Optional cap on shard sizes; oversized components are split
        along Fiedler sign cuts.
    backend:
        Shard *execution* backend (``"auto"``, ``"serial"``,
        ``"thread"``, ``"process"``); ignored on unsharded runs.  Not
        to be confused with ``kernel_backend``, which selects the
        hot-kernel implementations and is accepted via ``options``.
    options:
        Remaining :class:`SimilarityAwareSparsifier` parameters
        (including ``kernel_backend=``, which flows to every shard).

    Returns
    -------
    SparsifyResult
        A :class:`~repro.sparsify.parallel.ShardedSparsifyResult` on
        sharded runs.

    Examples
    --------
    >>> from repro.graphs import generators
    >>> from repro.sparsify import sparsify_graph
    >>> g = generators.grid2d(32, 32, seed=1)
    >>> r = sparsify_graph(g, sigma2=150.0, seed=1)
    >>> r.density < g.density
    True
    """
    if workers != 1 or shard_max_nodes is not None or not is_connected(graph):
        from repro.sparsify.parallel import ShardedSparsifier

        return ShardedSparsifier(
            sigma2=sigma2,
            workers=workers,
            shard_max_nodes=shard_max_nodes,
            backend=backend,
            **options,
        ).sparsify(graph)
    # Connectivity was just established; don't re-scan in the kernel.
    return SimilarityAwareSparsifier(sigma2=sigma2, **options).sparsify(
        graph, check_connected=False
    )
