"""Spectral embedding of off-tree edges via generalized power iterations.

Implements Section 3.2 of the paper: starting from ``r`` random vectors
``h₀ ⊥ 1``, perform ``t`` generalized power iterations
``h ← L_P⁺ (L_G h)`` and charge every off-tree edge ``(p, q)`` its
*Joule heat*

    heat(p, q) = w_pq · Σ_j (h_t,j(p) − h_t,j(q))²          (Eqs. 6, 12)

Edges whose inclusion would most reduce the dominant generalized
eigenvalues of ``L_P⁺ L_G`` receive the largest heat, because the power
iterations amplify the dominant generalized eigenvectors by ``λ_i^t``.
The iterate norms are *not* renormalized between steps — the growth is
exactly the eigenvalue information the ranking uses.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.solvers.block import record_solve
from repro.utils.rng import as_rng, random_unit_vectors

__all__ = [
    "default_num_vectors",
    "power_iterate",
    "joule_heats",
    "probe_heats",
]


def default_num_vectors(n: int) -> int:
    """Paper's choice: ``O(log |V|)`` random probe vectors (§3.7 step 4).

    Parameters
    ----------
    n:
        Number of graph vertices.

    Returns
    -------
    int
        ``max(4, ceil(log2 n))`` probe vectors.
    """
    return max(4, int(np.ceil(np.log2(max(n, 2)))))


def power_iterate(
    graph: Graph,
    solve_P: Callable[[np.ndarray], np.ndarray],
    t: int = 2,
    num_vectors: int | None = None,
    seed: int | np.random.Generator | None = None,
    LG: sp.spmatrix | None = None,
) -> np.ndarray:
    """Return ``h_t = (L_P⁺ L_G)^t h₀`` for ``num_vectors`` random starts.

    The ``(n, r)`` probe block is propagated through one batched solve
    per power step — solvers accept matrix right-hand sides, so no
    per-column solve loop is needed.

    Parameters
    ----------
    graph:
        The original graph ``G``.
    solve_P:
        Callable applying ``L_P⁺`` (tree solver, factorization or AMG).
    t:
        Number of generalized power iterations; the paper uses ``t = 2``
        (one step suffices for ranking, two sharpen the filter).
    num_vectors:
        Number of probe vectors ``r``; default ``O(log n)``.
    seed:
        Randomness for the starting vectors.
    LG:
        Optional precomputed host Laplacian — pass it when calling in a
        loop (the densification engine hoists it once per run).

    Returns
    -------
    numpy.ndarray
        ``(n, r)`` array of propagated probe vectors (mean-free
        columns).

    Raises
    ------
    ValueError
        If ``t`` or ``num_vectors`` is smaller than 1.
    """
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t}")
    r = default_num_vectors(graph.n) if num_vectors is None else num_vectors
    if r < 1:
        raise ValueError(f"num_vectors must be >= 1, got {r}")
    rng = as_rng(seed)
    H = random_unit_vectors(graph.n, r, seed=rng)
    if LG is None:
        LG = graph.laplacian()
    for _ in range(t):
        record_solve(solve_P, "embedding")
        H = solve_P(LG @ H)
        H = H - H.mean(axis=0, keepdims=True)
    return H


def probe_heats(
    graph: Graph, H: np.ndarray, off_tree_indices: np.ndarray
) -> np.ndarray:
    """Joule heats of off-tree edges from an existing probe block.

    The solve-free half of :func:`joule_heats`: given already-propagated
    probe vectors ``H``, charge each off-tree edge its Eq. 6/12 heat.
    The densification engine uses this to re-score the (shrinking)
    off-tree set on rounds that *reuse* a cached probe block, spending
    zero Laplacian solves.

    Parameters
    ----------
    graph:
        The original graph ``G``.
    H:
        ``(n, r)`` propagated probe block from :func:`power_iterate`.
    off_tree_indices:
        Canonical indices of the off-tree edges to score.

    Returns
    -------
    numpy.ndarray
        Non-negative heat per off-tree edge, aligned with
        ``off_tree_indices``.
    """
    off_tree_indices = np.asarray(off_tree_indices, dtype=np.int64)
    u = graph.u[off_tree_indices]
    v = graph.v[off_tree_indices]
    w = graph.w[off_tree_indices]
    diffs = H[u] - H[v]
    return w * np.einsum("ij,ij->i", diffs, diffs)


def joule_heats(
    graph: Graph,
    solve_P: Callable[[np.ndarray], np.ndarray],
    off_tree_indices: np.ndarray,
    t: int = 2,
    num_vectors: int | None = None,
    seed: int | np.random.Generator | None = None,
    LG: sp.spmatrix | None = None,
) -> np.ndarray:
    """Joule heat of each off-tree edge (Eq. 6 summed over probes, Eq. 12).

    Parameters
    ----------
    graph:
        The original graph ``G``.
    solve_P:
        Callable applying the current sparsifier's ``L_P⁺``.
    off_tree_indices:
        Canonical indices of the off-tree edges to score.
    t, num_vectors, seed, LG:
        Power-iteration parameters (see :func:`power_iterate`).

    Returns
    -------
    Non-negative heat per off-tree edge, aligned with
    ``off_tree_indices``.
    """
    H = power_iterate(graph, solve_P, t=t, num_vectors=num_vectors, seed=seed,
                      LG=LG)
    return probe_heats(graph, H, off_tree_indices)
