"""Similarity-aware spectral sparsification (the paper's contribution)."""

from repro.sparsify.edge_embedding import (
    default_num_vectors,
    joule_heats,
    power_iterate,
)
from repro.sparsify.filtering import (
    FilterDecision,
    filter_edges,
    heat_threshold,
    normalized_heats,
)
from repro.sparsify.edge_similarity import select_dissimilar
from repro.sparsify.state import SparsifierState
from repro.sparsify.densify import DensifyIteration, DensifyResult, densify
from repro.sparsify.similarity_aware import (
    SimilarityAwareSparsifier,
    SparsifyResult,
    refine_sparsifier,
    sparsify_graph,
)
from repro.sparsify.parallel import (
    Shard,
    ShardPlan,
    ShardStats,
    ShardedSparsifier,
    ShardedSparsifyResult,
    plan_shards,
    shard_rngs,
)
from repro.sparsify.effective_resistance import (
    approx_effective_resistances,
    exact_effective_resistances,
    validate_pairs,
)
from repro.sparsify.baselines import (
    effective_resistance_sparsifier,
    top_k_heat_sparsifier,
    tree_sparsifier,
    uniform_sparsifier,
)
from repro.sparsify.metrics import (
    SimilarityEstimate,
    estimate_condition_number,
    exact_condition_number,
    quadratic_form_ratios,
)
from repro.sparsify.rescaling import (
    RescaleResult,
    rescale_for_similarity,
    tune_off_tree_scale,
)

__all__ = [
    "default_num_vectors",
    "power_iterate",
    "joule_heats",
    "FilterDecision",
    "heat_threshold",
    "normalized_heats",
    "filter_edges",
    "select_dissimilar",
    "SparsifierState",
    "DensifyIteration",
    "DensifyResult",
    "densify",
    "SimilarityAwareSparsifier",
    "SparsifyResult",
    "sparsify_graph",
    "refine_sparsifier",
    "Shard",
    "ShardPlan",
    "ShardStats",
    "ShardedSparsifier",
    "ShardedSparsifyResult",
    "plan_shards",
    "shard_rngs",
    "exact_effective_resistances",
    "approx_effective_resistances",
    "validate_pairs",
    "tree_sparsifier",
    "uniform_sparsifier",
    "effective_resistance_sparsifier",
    "top_k_heat_sparsifier",
    "SimilarityEstimate",
    "exact_condition_number",
    "estimate_condition_number",
    "quadratic_form_ratios",
    "RescaleResult",
    "rescale_for_similarity",
    "tune_off_tree_scale",
]
