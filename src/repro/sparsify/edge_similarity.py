"""Dissimilarity check for filtered off-tree edges (paper §3.7, step 6).

Two off-tree edges are *spectrally similar* when they would fix the same
large generalized eigenvalue — adding both wastes budget.  The paper's
densification step therefore "checks the similarity of each selected
off-tree edge and only adds dissimilar edges".  We implement the
practical endpoint-marking heuristic of the perturbation framework [9]:
processing candidates in decreasing heat order, an edge is *similar* to
an earlier selection (and skipped) when both endpoints have already been
touched this round — dominant eigenvector localization means edges
sharing both neighbourhoods act on the same eigenvalue.  A stricter
variant also rejects edges whose endpoints were claimed by a hop-1
neighbourhood.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["select_dissimilar"]


def select_dissimilar(
    graph: Graph,
    candidate_indices: np.ndarray,
    max_edges: int | None = None,
    mode: str = "endpoint",
) -> np.ndarray:
    """Greedy dissimilar subset of heat-ordered candidate edges.

    Parameters
    ----------
    graph:
        Host graph (supplies endpoints and, for ``mode="neighborhood"``,
        adjacency).
    candidate_indices:
        Canonical edge indices sorted by decreasing spectral criticality.
    max_edges:
        Optional cap on the number of selected edges (the "small
        portion" added per densification iteration).
    mode:
        ``"endpoint"`` — skip an edge when *both* endpoints are already
        marked; ``"neighborhood"`` — additionally mark the 1-hop
        neighbourhood of each selected edge (sparser, more conservative);
        ``"none"`` — no similarity filtering (ablation baseline).

    Returns
    -------
    numpy.ndarray
        Selected canonical edge indices in processing order.

    Raises
    ------
    ValueError
        If ``max_edges`` is negative or ``mode`` is unknown.
    """
    candidate_indices = np.asarray(candidate_indices, dtype=np.int64)
    if max_edges is not None and max_edges < 0:
        raise ValueError(f"max_edges must be >= 0, got {max_edges}")
    if mode == "none":
        if max_edges is not None:
            return candidate_indices[:max_edges]
        return candidate_indices
    if mode not in ("endpoint", "neighborhood"):
        raise ValueError(f"unknown similarity mode {mode!r}")
    cap = candidate_indices.size if max_edges is None else int(max_edges)
    marked = np.zeros(graph.n, dtype=bool)
    selected: list[int] = []
    adjacency = graph.adjacency() if mode == "neighborhood" else None
    for e in candidate_indices:
        if len(selected) >= cap:
            break
        p, q = int(graph.u[e]), int(graph.v[e])
        if marked[p] and marked[q]:
            continue  # spectrally similar to an already-selected edge
        marked[p] = marked[q] = True
        if adjacency is not None:
            marked[adjacency.indices[adjacency.indptr[p]:adjacency.indptr[p + 1]]] = True
            marked[adjacency.indices[adjacency.indptr[q]:adjacency.indptr[q + 1]]] = True
        selected.append(int(e))
    return np.asarray(selected, dtype=np.int64)
