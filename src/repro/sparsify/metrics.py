"""Spectral similarity metrics between a graph and its sparsifier.

The paper's central quantity is the relative condition number
``κ(L_G, L_P) = λmax/λmin`` of the generalized pencil; σ-similarity
(Eq. 2) holds with ``σ² ≥ κ``.  This module provides the exact dense
reference (for validation), the paper's estimator (power iteration +
node coloring) and Monte-Carlo quadratic-form checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.solvers.cholesky import DirectSolver
from repro.spectral.eigs import exact_extreme_generalized_eigs
from repro.spectral.extreme import estimate_lambda_max, estimate_lambda_min
from repro.utils.rng import as_rng

__all__ = [
    "SimilarityEstimate",
    "exact_condition_number",
    "estimate_condition_number",
    "quadratic_form_ratios",
]


@dataclass(frozen=True)
class SimilarityEstimate:
    """Estimated pencil extremes and the implied condition number."""

    lambda_max: float
    lambda_min: float

    @property
    def condition_number(self) -> float:
        return self.lambda_max / self.lambda_min

    @property
    def sigma(self) -> float:
        """σ such that the graphs are σ-spectrally similar (Eq. 2)."""
        return float(np.sqrt(self.condition_number))


def exact_condition_number(graph: Graph, sparsifier: Graph) -> float:
    """Dense-reference ``κ(L_G, L_P)`` (small graphs only).

    Parameters
    ----------
    graph, sparsifier:
        The pencil's two connected graphs on the same vertex set.

    Returns
    -------
    float
        ``λmax/λmin`` of the generalized pencil, computed densely.

    Raises
    ------
    RuntimeError
        If the pencil is not positive definite on ``1⊥``.
    """
    lam_min, lam_max = exact_extreme_generalized_eigs(
        graph.laplacian(), sparsifier.laplacian()
    )
    if lam_min <= 0:
        raise RuntimeError("pencil is not positive definite on 1⊥")
    return lam_max / lam_min


def estimate_condition_number(
    graph: Graph,
    sparsifier: Graph,
    solver=None,
    power_iterations: int = 10,
    seed: int | np.random.Generator | None = None,
) -> SimilarityEstimate:
    """Paper §3.6 estimator: power-iteration λmax + node-coloring λmin.

    Parameters
    ----------
    graph, sparsifier:
        The pencil's two graphs (``sparsifier`` a subgraph of
        ``graph``).
    solver:
        Optional reusable ``L_P⁺`` solver; a fresh factorization is
        built when omitted.
    power_iterations:
        Generalized power iterations for the λmax estimate.
    seed:
        Randomness for the power-iteration start vectors.

    Returns
    -------
    SimilarityEstimate
        The estimated pencil extremes (κ and σ derive from them).
    """
    if solver is None:
        solver = DirectSolver(sparsifier.laplacian().tocsc())
    lam_max = estimate_lambda_max(
        graph, sparsifier, solver, iterations=power_iterations, seed=seed
    )
    lam_min = estimate_lambda_min(graph, sparsifier)
    return SimilarityEstimate(lambda_max=lam_max, lambda_min=lam_min)


def quadratic_form_ratios(
    graph: Graph,
    sparsifier: Graph,
    num_samples: int = 64,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Monte-Carlo samples of ``xᵀL_G x / xᵀL_P x`` over random ``x ⊥ 1``.

    Every sample lies in ``[λmin, λmax]`` — a cheap certificate that the
    σ-similarity inequalities (Eq. 2) hold for the sampled directions.

    Parameters
    ----------
    graph, sparsifier:
        The pencil's two graphs on the same vertex set.
    num_samples:
        Random directions to sample.
    seed:
        Randomness for the sample directions.

    Returns
    -------
    numpy.ndarray
        ``num_samples`` quadratic-form ratios.

    Raises
    ------
    ValueError
        If ``num_samples`` is smaller than 1.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    rng = as_rng(seed)
    LG = graph.laplacian()
    LP = sparsifier.laplacian()
    X = rng.standard_normal((graph.n, num_samples))
    X -= X.mean(axis=0, keepdims=True)
    numerators = np.einsum("ij,ij->j", X, LG @ X)
    denominators = np.einsum("ij,ij->j", X, LP @ X)
    if np.any(denominators <= 0):  # pragma: no cover - LP is PSD on 1-perp
        raise RuntimeError("sparsifier quadratic form vanished on a sample")
    return numerators / denominators
