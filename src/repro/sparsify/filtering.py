"""Off-tree edge filtering by normalized Joule heat (paper Section 3.5).

Given the desired similarity σ² and the extreme generalized eigenvalue
estimates, the filter threshold is

    θ_σ ≈ (σ² · λmin / λmax)^(2t+1)                         (Eq. 15)

and an off-tree edge passes the filter when its heat, normalized by the
maximum heat, is at least θ_σ.  The derivation assumes the nearly
worst-case eigenvalue distribution λ_i = 2 λmax / (i + 1) (Eq. 11) for
"spectrally-unique" edges, and carries over to general off-tree edges
with λ̃min ≈ λmin.  When θ_σ ≥ 1 the sparsifier already meets the
similarity target and no edge passes — the filter doubles as the
densification stopping rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FilterDecision", "heat_threshold", "normalized_heats", "filter_edges"]


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of one edge-filtering pass.

    Attributes
    ----------
    threshold:
        θ_σ used for the pass.
    normalized:
        Heat of each candidate normalized by the maximum heat.
    passing:
        Positions (into the candidate arrays) that pass, sorted by
        decreasing heat.
    """

    threshold: float
    normalized: np.ndarray
    passing: np.ndarray


def heat_threshold(sigma2: float, lambda_min: float, lambda_max: float,
                   t: int = 2) -> float:
    """Eq. (15): θ_σ = (σ² λmin / λmax)^(2t+1), clipped to [0, 1].

    ``θ_σ ≥ 1`` signals that λmax ≤ σ² λmin already holds (similarity
    reached).

    Parameters
    ----------
    sigma2:
        Similarity target σ².
    lambda_min, lambda_max:
        Extreme generalized eigenvalue estimates of the pencil.
    t:
        Power-iteration steps used by the heat embedding.

    Returns
    -------
    float
        The filter threshold θ_σ in ``[0, 1]``.

    Raises
    ------
    ValueError
        If ``sigma2`` or an eigenvalue estimate is non-positive, or
        ``t`` is smaller than 1.
    """
    if sigma2 <= 0:
        raise ValueError(f"sigma2 must be positive, got {sigma2}")
    if lambda_min <= 0 or lambda_max <= 0:
        raise ValueError(
            f"eigenvalue estimates must be positive, got λmin={lambda_min}, "
            f"λmax={lambda_max}"
        )
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t}")
    ratio = sigma2 * lambda_min / lambda_max
    if ratio >= 1.0:
        return 1.0
    return float(ratio ** (2 * t + 1))


def normalized_heats(heats: np.ndarray) -> np.ndarray:
    """Heats scaled by the maximum heat (Eq. 15's θ_(p,q) numerators).

    Parameters
    ----------
    heats:
        Raw Joule heats of the candidate edges.

    Returns
    -------
    numpy.ndarray
        Heats divided by their maximum (all zeros when the maximum is
        not positive).
    """
    heats = np.asarray(heats, dtype=np.float64)
    if heats.size == 0:
        return heats
    maximum = float(heats.max())
    if maximum <= 0.0:
        return np.zeros_like(heats)
    return heats / maximum


def filter_edges(heats: np.ndarray, threshold: float) -> FilterDecision:
    """Select candidates whose normalized heat meets ``threshold``.

    Parameters
    ----------
    heats:
        Raw Joule heats of the candidate edges.
    threshold:
        θ_σ from :func:`heat_threshold`; ``threshold >= 1`` passes
        nothing (the similarity target is already met).

    Returns
    -------
    FilterDecision
        Passing candidate positions sorted by decreasing heat, so the
        downstream similarity check processes the spectrally most
        critical edges first.
    """
    norm = normalized_heats(heats)
    if threshold >= 1.0:
        passing = np.array([], dtype=np.int64)
    else:
        passing = np.flatnonzero(norm >= threshold)
        passing = passing[np.argsort(-norm[passing], kind="stable")]
    return FilterDecision(threshold=float(threshold), normalized=norm, passing=passing)
