"""Iterative graph densification (paper Section 3.7).

Starting from the spanning-tree backbone, each densification iteration:

1. refreshes the sparsifier's solver *incrementally* (tree solver while
   the sparsifier is a pure tree; factorization or AMG afterwards — the
   paper's [13, 24] — updated in place for small batches via
   :class:`~repro.sparsify.state.SparsifierState`);
2. estimates the spectral similarity via λmax (generalized power
   iterations, §3.6.1) and λmin (node coloring, Eq. 18, from cached
   degrees);
3. stops when λmax/λmin ≤ σ²;
4. computes off-tree Joule heats with ``t``-step power iterations over
   ``O(log |V|)`` random vectors (Eqs. 6, 12);
5. filters edges with the θ_σ threshold (Eq. 15);
6. adds only *dissimilar* filtered edges to the sparsifier.

Since the stage-pipeline refactor the loop body itself lives in
:class:`repro.core.stages.DensifyStage` — the same implementation that
drives the shard-parallel, streaming-repair and serving-build paths —
and :func:`densify` is the thin batch configuration: one
:class:`~repro.core.pipeline.SparsifyPipeline` holding a single
``DensifyStage``, its diagnostics repackaged as the familiar
:class:`DensifyResult`.  Masks are bit-identical to the pre-refactor
loop (pinned by ``tests/core/test_golden_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.context import PipelineContext
from repro.core.pipeline import SparsifyPipeline
from repro.core.profile import PipelineProfile
from repro.core.stages import DensifyIteration, DensifyStage
from repro.graphs.graph import Graph
from repro.utils.rng import as_rng

__all__ = ["DensifyIteration", "DensifyResult", "densify"]


@dataclass
class DensifyResult:
    """Outcome of the densification loop.

    Attributes
    ----------
    edge_mask:
        Boolean mask over the host graph's canonical edges selecting the
        sparsifier (tree edges plus recovered off-tree edges).
    converged:
        True when the σ² target was certified by the estimates.
    iterations:
        Per-iteration diagnostics.
    sigma2_target:
        The requested similarity level.
    profile:
        Per-stage timings/counters of the run
        (:class:`~repro.core.profile.PipelineProfile`).
    """

    edge_mask: np.ndarray
    converged: bool
    sigma2_target: float
    iterations: list[DensifyIteration] = field(default_factory=list)
    profile: PipelineProfile | None = None

    @property
    def final_sigma2_estimate(self) -> float:
        """Estimated relative condition number after the last iteration."""
        if not self.iterations:
            return float("nan")
        return self.iterations[-1].sigma2_estimate

    @property
    def num_edges(self) -> int:
        return int(self.edge_mask.sum())


def densify(
    graph: Graph,
    tree_indices: np.ndarray,
    sigma2: float = 100.0,
    t: int = 2,
    num_vectors: int | None = None,
    power_iterations: int = 10,
    max_iterations: int = 50,
    max_edges_per_iteration: int | None = None,
    similarity_mode: str = "endpoint",
    solver_method: str = "auto",
    seed: int | np.random.Generator | None = None,
    initial_mask: np.ndarray | None = None,
    max_update_rank: int = 64,
    amg_rebuild_every: int = 8,
    kernel_backend: str = "reference",
    estimator_backend: str = "reference",
    estimator_refresh: int = 3,
) -> DensifyResult:
    """Run the Section-3.7 densification loop until σ² is reached.

    Parameters
    ----------
    graph:
        Connected host graph ``G``.
    tree_indices:
        Canonical edge indices of the spanning-tree backbone.
    sigma2:
        Target upper bound on the relative condition number
        ``κ(L_G, L_P)``.
    t:
        Power-iteration steps for the heat embedding (paper default 2).
    num_vectors:
        Probe vectors per embedding; default ``O(log n)``.
    power_iterations:
        Generalized power iterations for the λmax estimate (≤ 10 per
        §3.6.1).
    max_iterations:
        Cap on densification iterations.
    max_edges_per_iteration:
        Cap on off-tree edges added per iteration ("small portions" per
        §3.7); default ``max(100, 5% of |V|)``.
    similarity_mode:
        Dissimilarity rule passed to
        :func:`repro.sparsify.edge_similarity.select_dissimilar`.
    solver_method:
        ``"auto"``, ``"cholesky"`` or ``"amg"`` for the sparsifier solver
        used once off-tree edges exist.
    seed:
        Randomness shared by the estimators and embeddings.
    initial_mask:
        Optional starting sparsifier mask (must contain the tree) — the
        §3.1(c) *incremental improvement* path: densification resumes
        from an existing sparsifier instead of the bare tree.
    max_update_rank:
        Woodbury budget for the direct solver: accumulated edge-update
        rank absorbed before a re-factorization (see
        :class:`~repro.solvers.cholesky.DirectSolver`).
    amg_rebuild_every:
        Update batches an AMG hierarchy absorbs in place before it is
        re-coarsened (see :class:`~repro.solvers.amg.AMGSolver`).
    kernel_backend:
        Hot-kernel implementation family (``"reference"``,
        ``"vectorized"``, ``"numba"``, ``"auto"``); every backend is
        bit-identical, so this changes speed only (see
        :mod:`repro.kernels.registry`).
    estimator_backend:
        σ² estimation strategy (``"reference"``, ``"perturbation"``,
        ``"auto"``); the perturbation backend trades bit-parity for a
        quality-bounded solve-skipping estimate (see
        :mod:`repro.kernels.estimator`).
    estimator_refresh:
        Maximum consecutive rounds the perturbation estimator may reuse
        one probe embedding before a fresh embedding is forced.

    Returns
    -------
    DensifyResult

    Raises
    ------
    ValueError
        If ``sigma2`` does not exceed 1 or ``max_iterations`` is smaller
        than 1.
    """
    ctx = PipelineContext(
        graph=graph,
        rng=as_rng(seed),
        sigma2=sigma2,
        t=t,
        num_vectors=num_vectors,
        power_iterations=power_iterations,
        max_iterations=max_iterations,
        max_edges_per_iteration=max_edges_per_iteration,
        similarity_mode=similarity_mode,
        solver_method=solver_method,
        max_update_rank=max_update_rank,
        amg_rebuild_every=amg_rebuild_every,
        kernel_backend=kernel_backend,
        estimator_backend=estimator_backend,
        estimator_refresh=estimator_refresh,
        initial_mask=initial_mask,
        tree_indices=np.asarray(tree_indices, dtype=np.int64),
    )
    SparsifyPipeline([DensifyStage()]).run(ctx)
    return DensifyResult(
        edge_mask=ctx.edge_mask,
        converged=ctx.converged,
        sigma2_target=float(sigma2),
        iterations=ctx.iterations,
        profile=ctx.profile,
    )
