"""Iterative graph densification (paper Section 3.7).

Starting from the spanning-tree backbone, each densification iteration:

1. refreshes the sparsifier's solver *incrementally* (tree solver while
   the sparsifier is a pure tree; factorization or AMG afterwards — the
   paper's [13, 24] — updated in place for small batches via
   :class:`~repro.sparsify.state.SparsifierState`);
2. estimates the spectral similarity via λmax (generalized power
   iterations, §3.6.1) and λmin (node coloring, Eq. 18, from cached
   degrees);
3. stops when λmax/λmin ≤ σ²;
4. computes off-tree Joule heats with ``t``-step power iterations over
   ``O(log |V|)`` random vectors (Eqs. 6, 12);
5. filters edges with the θ_σ threshold (Eq. 15);
6. adds only *dissimilar* filtered edges to the sparsifier.

The host Laplacian is built once and shared across iterations, and the
evolving sparsifier (mask, Laplacian, degrees, solver) lives in a
:class:`SparsifierState` so per-iteration cost scales with the edge
batch, not the sparsifier size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.graph import Graph
from repro.sparsify.edge_embedding import joule_heats
from repro.sparsify.edge_similarity import select_dissimilar
from repro.sparsify.filtering import filter_edges, heat_threshold
from repro.sparsify.state import SparsifierState
from repro.spectral.extreme import generalized_power_iteration
from repro.utils.rng import as_rng
from repro.utils.timing import Timer

__all__ = ["DensifyIteration", "DensifyResult", "densify"]


@dataclass(frozen=True)
class DensifyIteration:
    """Diagnostics of one densification iteration.

    ``sigma2_estimate = lambda_max / lambda_min`` is the estimated
    relative condition number *before* this iteration's edge additions.
    """

    iteration: int
    lambda_max: float
    lambda_min: float
    sigma2_estimate: float
    threshold: float
    num_candidates: int
    num_added: int
    num_edges: int
    elapsed: float


@dataclass
class DensifyResult:
    """Outcome of the densification loop.

    Attributes
    ----------
    edge_mask:
        Boolean mask over the host graph's canonical edges selecting the
        sparsifier (tree edges plus recovered off-tree edges).
    converged:
        True when the σ² target was certified by the estimates.
    iterations:
        Per-iteration diagnostics.
    sigma2_target:
        The requested similarity level.
    """

    edge_mask: np.ndarray
    converged: bool
    sigma2_target: float
    iterations: list[DensifyIteration] = field(default_factory=list)

    @property
    def final_sigma2_estimate(self) -> float:
        """Estimated relative condition number after the last iteration."""
        if not self.iterations:
            return float("nan")
        return self.iterations[-1].sigma2_estimate

    @property
    def num_edges(self) -> int:
        return int(self.edge_mask.sum())


def densify(
    graph: Graph,
    tree_indices: np.ndarray,
    sigma2: float = 100.0,
    t: int = 2,
    num_vectors: int | None = None,
    power_iterations: int = 10,
    max_iterations: int = 50,
    max_edges_per_iteration: int | None = None,
    similarity_mode: str = "endpoint",
    solver_method: str = "auto",
    seed: int | np.random.Generator | None = None,
    initial_mask: np.ndarray | None = None,
    max_update_rank: int = 64,
    amg_rebuild_every: int = 8,
) -> DensifyResult:
    """Run the Section-3.7 densification loop until σ² is reached.

    Parameters
    ----------
    graph:
        Connected host graph ``G``.
    tree_indices:
        Canonical edge indices of the spanning-tree backbone.
    sigma2:
        Target upper bound on the relative condition number
        ``κ(L_G, L_P)``.
    t:
        Power-iteration steps for the heat embedding (paper default 2).
    num_vectors:
        Probe vectors per embedding; default ``O(log n)``.
    power_iterations:
        Generalized power iterations for the λmax estimate (≤ 10 per
        §3.6.1).
    max_iterations:
        Cap on densification iterations.
    max_edges_per_iteration:
        Cap on off-tree edges added per iteration ("small portions" per
        §3.7); default ``max(100, 5% of |V|)``.
    similarity_mode:
        Dissimilarity rule passed to
        :func:`repro.sparsify.edge_similarity.select_dissimilar`.
    solver_method:
        ``"auto"``, ``"cholesky"`` or ``"amg"`` for the sparsifier solver
        used once off-tree edges exist.
    seed:
        Randomness shared by the estimators and embeddings.
    initial_mask:
        Optional starting sparsifier mask (must contain the tree) — the
        §3.1(c) *incremental improvement* path: densification resumes
        from an existing sparsifier instead of the bare tree.
    max_update_rank:
        Woodbury budget for the direct solver: accumulated edge-update
        rank absorbed before a re-factorization (see
        :class:`~repro.solvers.cholesky.DirectSolver`).
    amg_rebuild_every:
        Update batches an AMG hierarchy absorbs in place before it is
        re-coarsened (see :class:`~repro.solvers.amg.AMGSolver`).

    Returns
    -------
    DensifyResult

    Raises
    ------
    ValueError
        If ``sigma2`` does not exceed 1 or ``max_iterations`` is smaller
        than 1.
    """
    if sigma2 <= 1.0:
        raise ValueError(f"sigma2 must exceed 1, got {sigma2}")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    rng = as_rng(seed)
    state = SparsifierState(
        graph,
        tree_indices,
        initial_mask=initial_mask,
        solver_method=solver_method,
        max_update_rank=max_update_rank,
        amg_rebuild_every=amg_rebuild_every,
    )
    if max_edges_per_iteration is None:
        max_edges_per_iteration = max(100, int(0.05 * graph.n))

    LG = state.host_laplacian
    result = DensifyResult(
        edge_mask=state.edge_mask, converged=False, sigma2_target=float(sigma2)
    )
    for iteration in range(1, max_iterations + 1):
        with Timer() as timer:
            solver = state.solver()
            lam_max = generalized_power_iteration(
                LG, state.laplacian, solver, iterations=power_iterations, seed=rng
            )
            lam_min = state.lambda_min()
            sigma2_estimate = lam_max / lam_min
            if sigma2_estimate <= sigma2:
                result.iterations.append(
                    DensifyIteration(
                        iteration=iteration,
                        lambda_max=lam_max,
                        lambda_min=lam_min,
                        sigma2_estimate=sigma2_estimate,
                        threshold=1.0,
                        num_candidates=0,
                        num_added=0,
                        num_edges=state.num_edges,
                        elapsed=timer.lap(),
                    )
                )
                result.converged = True
                break
            off_tree = np.flatnonzero(~state.edge_mask)
            heats = joule_heats(
                graph, solver, off_tree, t=t, num_vectors=num_vectors, seed=rng,
                LG=LG,
            )
            threshold = heat_threshold(sigma2, lam_min, lam_max, t=t)
            decision = filter_edges(heats, threshold)
            candidates = off_tree[decision.passing]
            added = select_dissimilar(
                graph, candidates, max_edges=max_edges_per_iteration,
                mode=similarity_mode,
            )
            state.add_edges(added)
        result.iterations.append(
            DensifyIteration(
                iteration=iteration,
                lambda_max=lam_max,
                lambda_min=lam_min,
                sigma2_estimate=sigma2_estimate,
                threshold=decision.threshold,
                num_candidates=int(candidates.size),
                num_added=int(added.size),
                num_edges=state.num_edges,
                elapsed=timer.elapsed,
            )
        )
        if added.size == 0:
            # Filter passed nothing although the similarity target is
            # unmet — the estimates have converged as far as the
            # embedding can certify.
            break
    result.edge_mask = state.edge_mask
    return result
