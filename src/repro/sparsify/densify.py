"""Iterative graph densification (paper Section 3.7).

Starting from the spanning-tree backbone, each densification iteration:

1. rebuilds the sparsifier's solver (tree solver while the sparsifier is
   a pure tree; factorization or AMG afterwards — the paper's [13, 24]);
2. estimates the spectral similarity via λmax (generalized power
   iterations, §3.6.1) and λmin (node coloring, Eq. 18);
3. stops when λmax/λmin ≤ σ²;
4. computes off-tree Joule heats with ``t``-step power iterations over
   ``O(log |V|)`` random vectors (Eqs. 6, 12);
5. filters edges with the θ_σ threshold (Eq. 15);
6. adds only *dissimilar* filtered edges to the sparsifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.graphs.graph import Graph
from repro.solvers.amg import AMGSolver
from repro.solvers.cholesky import DirectSolver
from repro.sparsify.edge_embedding import joule_heats
from repro.sparsify.edge_similarity import select_dissimilar
from repro.sparsify.filtering import filter_edges, heat_threshold
from repro.spectral.extreme import estimate_lambda_max, estimate_lambda_min
from repro.trees.tree import RootedTree
from repro.trees.tree_solver import TreeSolver
from repro.utils.rng import as_rng
from repro.utils.timing import Timer

__all__ = ["DensifyIteration", "DensifyResult", "densify"]


@dataclass(frozen=True)
class DensifyIteration:
    """Diagnostics of one densification iteration.

    ``sigma2_estimate = lambda_max / lambda_min`` is the estimated
    relative condition number *before* this iteration's edge additions.
    """

    iteration: int
    lambda_max: float
    lambda_min: float
    sigma2_estimate: float
    threshold: float
    num_candidates: int
    num_added: int
    num_edges: int
    elapsed: float


@dataclass
class DensifyResult:
    """Outcome of the densification loop.

    Attributes
    ----------
    edge_mask:
        Boolean mask over the host graph's canonical edges selecting the
        sparsifier (tree edges plus recovered off-tree edges).
    converged:
        True when the σ² target was certified by the estimates.
    iterations:
        Per-iteration diagnostics.
    sigma2_target:
        The requested similarity level.
    """

    edge_mask: np.ndarray
    converged: bool
    sigma2_target: float
    iterations: list[DensifyIteration] = field(default_factory=list)

    @property
    def final_sigma2_estimate(self) -> float:
        """Estimated relative condition number after the last iteration."""
        if not self.iterations:
            return float("nan")
        return self.iterations[-1].sigma2_estimate

    @property
    def num_edges(self) -> int:
        return int(self.edge_mask.sum())


def _build_solver(
    graph: Graph,
    edge_mask: np.ndarray,
    tree_indices: np.ndarray,
    is_pure_tree: bool,
    method: str,
) -> Callable[[np.ndarray], np.ndarray]:
    """Solver applying ``L_P⁺`` for the current sparsifier ``P``."""
    if is_pure_tree:
        tree = RootedTree.from_graph(graph, tree_indices)
        return TreeSolver(tree)
    sparsifier = graph.edge_subgraph(edge_mask)
    if method == "auto":
        method = "cholesky" if graph.n <= 200_000 else "amg"
    if method == "cholesky":
        return DirectSolver(sparsifier.laplacian().tocsc())
    if method == "amg":
        return AMGSolver(sparsifier.laplacian(), cycles=2)
    raise ValueError(f"unknown solver method {method!r}")


def densify(
    graph: Graph,
    tree_indices: np.ndarray,
    sigma2: float = 100.0,
    t: int = 2,
    num_vectors: int | None = None,
    power_iterations: int = 10,
    max_iterations: int = 50,
    max_edges_per_iteration: int | None = None,
    similarity_mode: str = "endpoint",
    solver_method: str = "auto",
    seed: int | np.random.Generator | None = None,
    initial_mask: np.ndarray | None = None,
) -> DensifyResult:
    """Run the Section-3.7 densification loop until σ² is reached.

    Parameters
    ----------
    graph:
        Connected host graph ``G``.
    tree_indices:
        Canonical edge indices of the spanning-tree backbone.
    sigma2:
        Target upper bound on the relative condition number
        ``κ(L_G, L_P)``.
    t:
        Power-iteration steps for the heat embedding (paper default 2).
    num_vectors:
        Probe vectors per embedding; default ``O(log n)``.
    power_iterations:
        Generalized power iterations for the λmax estimate (≤ 10 per
        §3.6.1).
    max_iterations:
        Cap on densification iterations.
    max_edges_per_iteration:
        Cap on off-tree edges added per iteration ("small portions" per
        §3.7); default ``max(100, 5% of |V|)``.
    similarity_mode:
        Dissimilarity rule passed to
        :func:`repro.sparsify.edge_similarity.select_dissimilar`.
    solver_method:
        ``"auto"``, ``"cholesky"`` or ``"amg"`` for the sparsifier solver
        used once off-tree edges exist.
    seed:
        Randomness shared by the estimators and embeddings.
    initial_mask:
        Optional starting sparsifier mask (must contain the tree) — the
        §3.1(c) *incremental improvement* path: densification resumes
        from an existing sparsifier instead of the bare tree.

    Returns
    -------
    DensifyResult
    """
    if sigma2 <= 1.0:
        raise ValueError(f"sigma2 must exceed 1, got {sigma2}")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    rng = as_rng(seed)
    tree_indices = np.asarray(tree_indices, dtype=np.int64)
    if initial_mask is None:
        edge_mask = np.zeros(graph.num_edges, dtype=bool)
        edge_mask[tree_indices] = True
        is_pure_tree = True
    else:
        edge_mask = np.asarray(initial_mask, dtype=bool).copy()
        if edge_mask.shape != (graph.num_edges,):
            raise ValueError(
                f"initial_mask must have shape ({graph.num_edges},), "
                f"got {edge_mask.shape}"
            )
        if not np.all(edge_mask[tree_indices]):
            raise ValueError("initial_mask must contain every tree edge")
        is_pure_tree = bool(edge_mask.sum() == tree_indices.size)
    if max_edges_per_iteration is None:
        max_edges_per_iteration = max(100, int(0.05 * graph.n))

    result = DensifyResult(
        edge_mask=edge_mask, converged=False, sigma2_target=float(sigma2)
    )
    for iteration in range(1, max_iterations + 1):
        with Timer() as timer:
            solver = _build_solver(
                graph, edge_mask, tree_indices, is_pure_tree, solver_method
            )
            sparsifier = graph.edge_subgraph(edge_mask)
            lam_max = estimate_lambda_max(
                graph, sparsifier, solver, iterations=power_iterations, seed=rng
            )
            lam_min = estimate_lambda_min(graph, sparsifier)
            sigma2_estimate = lam_max / lam_min
            if sigma2_estimate <= sigma2:
                result.iterations.append(
                    DensifyIteration(
                        iteration=iteration,
                        lambda_max=lam_max,
                        lambda_min=lam_min,
                        sigma2_estimate=sigma2_estimate,
                        threshold=1.0,
                        num_candidates=0,
                        num_added=0,
                        num_edges=int(edge_mask.sum()),
                        elapsed=timer.lap(),
                    )
                )
                result.converged = True
                break
            off_tree = np.flatnonzero(~edge_mask)
            heats = joule_heats(
                graph, solver, off_tree, t=t, num_vectors=num_vectors, seed=rng
            )
            threshold = heat_threshold(sigma2, lam_min, lam_max, t=t)
            decision = filter_edges(heats, threshold)
            candidates = off_tree[decision.passing]
            added = select_dissimilar(
                graph, candidates, max_edges=max_edges_per_iteration,
                mode=similarity_mode,
            )
            edge_mask[added] = True
            if added.size:
                is_pure_tree = False
        result.iterations.append(
            DensifyIteration(
                iteration=iteration,
                lambda_max=lam_max,
                lambda_min=lam_min,
                sigma2_estimate=sigma2_estimate,
                threshold=decision.threshold,
                num_candidates=int(candidates.size),
                num_added=int(added.size),
                num_edges=int(edge_mask.sum()),
                elapsed=timer.elapsed,
            )
        )
        if added.size == 0:
            # Filter passed nothing although the similarity target is
            # unmet — the estimates have converged as far as the
            # embedding can certify.
            break
    result.edge_mask = edge_mask
    return result
