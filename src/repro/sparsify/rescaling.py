"""Sparsifier edge re-scaling (paper §3.1's optional improvement).

The paper keeps original edge weights in the sparsifier but notes that
*"edge re-scaling schemes [19] can be applied to further improve the
approximation"*.  Two practical schemes are provided:

- :func:`rescale_for_similarity` — a *global* rescaling of ``L_P`` by
  ``√(λmax · λmin)``.  It leaves the relative condition number
  κ = λmax/λmin unchanged but centres the pencil spectrum around 1,
  which improves the two-sided σ-similarity of Eq. 2 from
  ``σ = max(λmax, 1/λmin)`` to the optimal ``σ = √κ``.  (For subgraph
  sparsifiers λmin ≥ 1, so without rescaling σ = λmax ≈ κ.)

- :func:`tune_off_tree_scale` — a one-parameter *structural* rescaling:
  off-tree (recovered) edges are scaled by a factor α chosen to
  minimize the estimated condition number.  Recovered edges carry the
  burden of fixing the dominant eigenvalues; boosting them slightly
  (α > 1) often buys a measurably smaller κ at zero extra edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.solvers.cholesky import DirectSolver
from repro.spectral.extreme import estimate_lambda_max, estimate_lambda_min
from repro.utils.rng import as_rng

__all__ = ["RescaleResult", "rescale_for_similarity", "tune_off_tree_scale"]


@dataclass
class RescaleResult:
    """Outcome of a re-scaling pass.

    Attributes
    ----------
    sparsifier:
        The re-scaled sparsifier.
    scale:
        The applied factor (global factor, or off-tree factor α).
    sigma:
        Best certified σ of Eq. 2 after rescaling (``√(λmax/λmin)`` for
        the global scheme; estimated for the structural scheme).
    condition_number:
        Estimated κ after rescaling.
    """

    sparsifier: Graph
    scale: float
    sigma: float
    condition_number: float


def rescale_for_similarity(
    graph: Graph,
    sparsifier: Graph,
    power_iterations: int = 10,
    seed: int | np.random.Generator | None = None,
) -> RescaleResult:
    """Globally rescale ``L_P`` so the Eq. 2 similarity σ is optimal.

    With pencil extremes λmin, λmax (of the *unscaled* subgraph pencil),
    scaling every sparsifier weight by ``s = √(λmax λmin)`` maps the
    spectrum to ``[√(λmin/λmax), √(λmax/λmin)]``, symmetric about 1, so
    both inequalities of Eq. 2 hold with ``σ = √(λmax/λmin) = √κ`` —
    the best any global scaling can do.

    Parameters
    ----------
    graph:
        The original graph.
    sparsifier:
        Subgraph sparsifier to rescale.
    power_iterations:
        Generalized power iterations for the λmax estimate.
    seed:
        Randomness for the estimators.

    Returns
    -------
    RescaleResult
        The rescaled sparsifier with its certified σ and κ.
    """
    rng = as_rng(seed)
    solver = DirectSolver(sparsifier.laplacian().tocsc())
    lam_max = estimate_lambda_max(
        graph, sparsifier, solver, iterations=power_iterations, seed=rng
    )
    lam_min = estimate_lambda_min(graph, sparsifier)
    scale = float(np.sqrt(lam_max * lam_min))
    kappa = lam_max / lam_min
    return RescaleResult(
        sparsifier=sparsifier.reweighted(sparsifier.w * scale),
        scale=scale,
        sigma=float(np.sqrt(kappa)),
        condition_number=kappa,
    )


def tune_off_tree_scale(
    graph: Graph,
    sparsifier: Graph,
    tree_indices: np.ndarray,
    candidates: np.ndarray | None = None,
    power_iterations: int = 10,
    seed: int | np.random.Generator | None = None,
) -> RescaleResult:
    """Scale the recovered off-tree edges by the κ-minimizing factor α.

    Parameters
    ----------
    graph:
        The original graph.
    sparsifier:
        The similarity-aware sparsifier (subgraph of ``graph``).
    tree_indices:
        Canonical indices (into ``graph``) of the spanning-tree
        backbone; all other sparsifier edges are treated as off-tree.
    candidates:
        Trial α values (default: a coarse log grid around 1).
    power_iterations, seed:
        Condition-number estimation parameters.

    Returns
    -------
    RescaleResult
        The best trial (α included) by estimated condition number.

    Raises
    ------
    ValueError
        If a scale candidate is not positive.

    Notes
    -----
    The search evaluates the §3.6 estimator per trial — each trial costs
    one factorization of the rescaled ``L_P``, so the default grid keeps
    to seven points.  α = 1 is always included; the result can therefore
    never be worse than the input (up to estimator noise).
    """
    rng = as_rng(seed)
    tree_indices = np.asarray(tree_indices, dtype=np.int64)
    if candidates is None:
        candidates = np.array([0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0])
    # Identify which sparsifier edges are tree edges.
    tree_keys = set(
        (int(u), int(v))
        for u, v in zip(graph.u[tree_indices], graph.v[tree_indices])
    )
    is_tree = np.array(
        [(int(u), int(v)) in tree_keys for u, v in zip(sparsifier.u, sparsifier.v)],
        dtype=bool,
    )
    best: RescaleResult | None = None
    for alpha in np.asarray(candidates, dtype=np.float64):
        if alpha <= 0:
            raise ValueError(f"scale candidates must be positive, got {alpha}")
        w = sparsifier.w.copy()
        w[~is_tree] *= alpha
        trial = sparsifier.reweighted(w)
        solver = DirectSolver(trial.laplacian().tocsc())
        lam_max = estimate_lambda_max(
            graph, trial, solver, iterations=power_iterations, seed=rng
        )
        # The degree-ratio bound needs P ⪯ G (a subgraph); a scaled trial
        # may violate that, so fall back to the generic two-sided bound:
        # λmin ≥ 1/λmax(L_G⁺ L_P), estimated by power iteration on the
        # reversed pencil.
        lam_min_rev = estimate_lambda_max(
            trial, graph, DirectSolver(graph.laplacian().tocsc()),
            iterations=power_iterations, seed=rng,
        )
        lam_min = 1.0 / lam_min_rev
        kappa = lam_max / lam_min
        result = RescaleResult(
            sparsifier=trial,
            scale=float(alpha),
            sigma=float(np.sqrt(max(kappa, 1.0))),
            condition_number=float(kappa),
        )
        if best is None or result.condition_number < best.condition_number:
            best = result
    assert best is not None
    return best
