"""Effective resistances: exact solves and Johnson–Lindenstrauss sketches.

The Spielman–Srivastava sparsifier [17] — the sampling baseline the
paper compares its deterministic filtering against — needs the effective
resistance ``R_eff(u, v) = (e_u − e_v)ᵀ L⁺ (e_u − e_v)`` of every edge.
Exact values come from one Laplacian solve per probed pair; the JL
sketch gets all of them from ``O(log n / ε²)`` solves.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.solvers.cholesky import DirectSolver
from repro.utils.rng import as_rng

__all__ = ["exact_effective_resistances", "approx_effective_resistances"]


def exact_effective_resistances(
    graph: Graph,
    pairs: np.ndarray | None = None,
    solver: DirectSolver | None = None,
    batch_size: int = 256,
) -> np.ndarray:
    """Exact effective resistance of vertex pairs (default: every edge).

    Parameters
    ----------
    graph:
        Connected graph.
    pairs:
        ``(k, 2)`` vertex pairs; defaults to the graph's edges.
    solver:
        Reusable factorization of the graph Laplacian.
    batch_size:
        Pairs solved per batched multi-RHS solve (memory control).

    Returns
    -------
    numpy.ndarray
        Effective resistance per pair, aligned with ``pairs``.
    """
    if pairs is None:
        pairs = np.column_stack([graph.u, graph.v])
    pairs = np.asarray(pairs, dtype=np.int64)
    if solver is None:
        solver = DirectSolver(graph.laplacian().tocsc())
    out = np.empty(pairs.shape[0], dtype=np.float64)
    for start in range(0, pairs.shape[0], batch_size):
        chunk = pairs[start : start + batch_size]
        rhs = np.zeros((graph.n, chunk.shape[0]))
        cols = np.arange(chunk.shape[0])
        rhs[chunk[:, 0], cols] = 1.0
        rhs[chunk[:, 1], cols] -= 1.0
        x = solver.solve(rhs)
        out[start : start + batch_size] = (
            x[chunk[:, 0], cols] - x[chunk[:, 1], cols]
        )
    return out


def approx_effective_resistances(
    graph: Graph,
    epsilon: float = 0.3,
    seed: int | np.random.Generator | None = None,
    solver: DirectSolver | None = None,
) -> np.ndarray:
    """JL-sketched effective resistances of all edges (Spielman–Srivastava).

    ``R_eff(e) = ‖W^{1/2} B L⁺ (e_u − e_v)‖²`` is preserved to a
    ``(1 ± ε)`` factor by projecting onto ``k = O(log n / ε²)`` random
    ±1 directions: solve ``L Z = Bᵀ W^{1/2} Q`` for a ``(m, k)`` sketch
    ``Q`` and read resistances off row differences of ``Z``.

    Parameters
    ----------
    graph:
        Connected graph.
    epsilon:
        Sketch accuracy in ``(0, 1)``; the sketch width grows as
        ``1/ε²``.
    seed:
        Randomness for the ±1 projection directions.
    solver:
        Reusable factorization of the graph Laplacian.

    Returns
    -------
    numpy.ndarray
        One resistance estimate per canonical edge.

    Raises
    ------
    ValueError
        If ``epsilon`` is outside ``(0, 1)``.
    """
    if epsilon <= 0 or epsilon >= 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    rng = as_rng(seed)
    n, m = graph.n, graph.num_edges
    k = max(4, int(np.ceil(24.0 * np.log(max(n, 2)) / epsilon**2)) // 4)
    if solver is None:
        solver = DirectSolver(graph.laplacian().tocsc())
    signs = rng.choice([-1.0, 1.0], size=(m, k)) / np.sqrt(k)
    scaled = signs * np.sqrt(graph.w)[:, None]
    # Bᵀ (W^{1/2} Q): accumulate ± rows at the edge endpoints.
    rhs = np.zeros((n, k))
    np.add.at(rhs, graph.u, scaled)
    np.subtract.at(rhs, graph.v, scaled)
    Z = solver.solve(rhs)
    diffs = Z[graph.u] - Z[graph.v]
    return np.einsum("ij,ij->i", diffs, diffs)
