"""Effective resistances: exact solves and Johnson–Lindenstrauss sketches.

The Spielman–Srivastava sparsifier [17] — the sampling baseline the
paper compares its deterministic filtering against — needs the effective
resistance ``R_eff(u, v) = (e_u − e_v)ᵀ L⁺ (e_u − e_v)`` of every edge.
Exact values come from one Laplacian solve per probed pair; the JL
sketch gets all of them from ``O(log n / ε²)`` solves.

Both entry points accept arbitrary vertex pairs — not just edges — so
the serving layer (:mod:`repro.serve`) can answer resistance queries
between any two vertices.  Pairs are validated up front (out-of-range
endpoints raise :class:`ValueError` instead of surfacing as cryptic
fancy-indexing errors) and degenerate ``u == v`` pairs short-circuit to
``0.0`` without spending a solve column.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.solvers.block import block_solve, pair_indicator_columns
from repro.solvers.cholesky import DirectSolver
from repro.utils.rng import as_rng

__all__ = [
    "exact_effective_resistances",
    "approx_effective_resistances",
    "validate_pairs",
]


def validate_pairs(num_vertices: int, pairs: np.ndarray) -> np.ndarray:
    """Coerce and range-check a vertex-pair array.

    Parameters
    ----------
    num_vertices:
        Exclusive upper bound on valid vertex labels.
    pairs:
        Array-like of shape ``(k, 2)`` with integer vertex labels.

    Returns
    -------
    numpy.ndarray
        The pairs as a ``(k, 2)`` ``int64`` array.

    Raises
    ------
    ValueError
        If the shape is not ``(k, 2)`` or any endpoint falls outside
        ``[0, num_vertices)``.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must be a (k, 2) array, got shape {pairs.shape}")
    if pairs.size and (pairs.min() < 0 or pairs.max() >= num_vertices):
        bad = pairs[((pairs < 0) | (pairs >= num_vertices)).any(axis=1)][0]
        raise ValueError(
            f"pair endpoint out of range [0, {num_vertices}): "
            f"({int(bad[0])}, {int(bad[1])})"
        )
    return pairs


def exact_effective_resistances(
    graph: Graph,
    pairs: np.ndarray | None = None,
    solver: DirectSolver | None = None,
    batch_size: int = 256,
) -> np.ndarray:
    """Exact effective resistance of vertex pairs (default: every edge).

    Parameters
    ----------
    graph:
        Connected graph.
    pairs:
        ``(k, 2)`` vertex pairs; defaults to the graph's edges.
        Degenerate ``u == v`` pairs are answered ``0.0`` without a
        solve column.
    solver:
        Reusable factorization of the graph Laplacian.
    batch_size:
        Pairs solved per batched multi-RHS solve (memory control).

    Returns
    -------
    numpy.ndarray
        Effective resistance per pair, aligned with ``pairs``.

    Raises
    ------
    ValueError
        If ``pairs`` is malformed or references a vertex outside
        ``[0, graph.n)``.
    """
    if pairs is None:
        pairs = np.column_stack([graph.u, graph.v])
    pairs = validate_pairs(graph.n, pairs)
    out = np.zeros(pairs.shape[0], dtype=np.float64)
    distinct = np.flatnonzero(pairs[:, 0] != pairs[:, 1])
    if distinct.size == 0:
        return out
    if solver is None:
        solver = DirectSolver(graph.laplacian().tocsc())
    for start in range(0, distinct.size, batch_size):
        sel = distinct[start : start + batch_size]
        chunk = pairs[sel]
        rhs = pair_indicator_columns(graph.n, chunk)
        x = block_solve(solver, rhs, caller="resistance")
        cols = np.arange(chunk.shape[0])
        out[sel] = x[chunk[:, 0], cols] - x[chunk[:, 1], cols]
    return out


def approx_effective_resistances(
    graph: Graph,
    epsilon: float = 0.3,
    seed: int | np.random.Generator | None = None,
    solver: DirectSolver | None = None,
    pairs: np.ndarray | None = None,
) -> np.ndarray:
    """JL-sketched effective resistances (Spielman–Srivastava).

    ``R_eff(u, v) = ‖W^{1/2} B L⁺ (e_u − e_v)‖²`` is preserved to a
    ``(1 ± ε)`` factor by projecting onto ``k = O(log n / ε²)`` random
    ±1 directions: solve ``L Z = Bᵀ W^{1/2} Q`` for a ``(m, k)`` sketch
    ``Q`` and read resistances off row differences of ``Z``.  The same
    sketch answers *any* vertex pair, not just edges, so one set of
    ``k`` solves amortizes over arbitrarily many queries.

    Parameters
    ----------
    graph:
        Connected graph.
    epsilon:
        Sketch accuracy in ``(0, 1)``; the sketch width grows as
        ``1/ε²``.
    seed:
        Randomness for the ±1 projection directions.
    solver:
        Reusable factorization of the graph Laplacian.
    pairs:
        Optional ``(k, 2)`` vertex pairs to estimate; defaults to the
        graph's edges.  Degenerate ``u == v`` pairs come back exactly
        ``0.0``.

    Returns
    -------
    numpy.ndarray
        One resistance estimate per pair (per canonical edge when
        ``pairs`` is omitted).

    Raises
    ------
    ValueError
        If ``epsilon`` is outside ``(0, 1)`` or ``pairs`` is malformed
        or out of range.
    """
    if epsilon <= 0 or epsilon >= 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if pairs is not None:
        pairs = validate_pairs(graph.n, pairs)
    rng = as_rng(seed)
    n, m = graph.n, graph.num_edges
    k = max(4, int(np.ceil(24.0 * np.log(max(n, 2)) / epsilon**2)) // 4)
    if solver is None:
        solver = DirectSolver(graph.laplacian().tocsc())
    signs = rng.choice([-1.0, 1.0], size=(m, k)) / np.sqrt(k)
    scaled = signs * np.sqrt(graph.w)[:, None]
    # Bᵀ (W^{1/2} Q): accumulate ± rows at the edge endpoints.
    rhs = np.zeros((n, k))
    np.add.at(rhs, graph.u, scaled)
    np.subtract.at(rhs, graph.v, scaled)
    Z = block_solve(solver, rhs, caller="resistance")
    if pairs is None:
        diffs = Z[graph.u] - Z[graph.v]
    else:
        diffs = Z[pairs[:, 0]] - Z[pairs[:, 1]]
    return np.einsum("ij,ij->i", diffs, diffs)
