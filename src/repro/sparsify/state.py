"""Evolving sparsifier state for the incremental densification engine.

The densification loop (paper §3.7) grows a sparsifier by small edge
batches.  Rebuilding the subgraph, its Laplacian and the solver from
scratch every iteration makes each pass cost ``O(|E_P|)`` plus a full
re-factorization even when only a handful of edges changed.
:class:`SparsifierState` owns everything that evolves across iterations
and updates it in time proportional to the *batch*:

- the boolean edge mask over the host graph's canonical edges;
- the sparsifier Laplacian, stored on the host Laplacian's (fixed)
  sparsity pattern so each edge addition is a 4-entry value update
  (``+w`` on both diagonals, ``−w`` on both off-diagonals);
- cached sparsifier weighted degrees (the §3.6.2 λmin estimate becomes
  a vectorized minimum over two cached arrays);
- a managed :class:`~repro.solvers.base.Solver` that absorbs batches
  through its ``update`` hook (Woodbury corrections for the direct
  solver, fine-level patches for AMG) and is only rebuilt when the
  solver reports its incremental options exhausted.

The host Laplacian is computed once at construction and shared with the
loop (``host_laplacian``), hoisting the former per-iteration
``graph.laplacian()`` out of the hot path.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.solvers.amg import AMGSolver
from repro.solvers.base import Solver, csr_value_positions
from repro.solvers.cholesky import DirectSolver
from repro.trees.tree import RootedTree
from repro.trees.tree_solver import TreeSolver

__all__ = ["SparsifierState"]

_SOLVER_METHODS = ("auto", "cholesky", "amg")


class SparsifierState:
    """Incrementally maintained sparsifier across densification iterations.

    Parameters
    ----------
    graph:
        Connected host graph ``G``.
    tree_indices:
        Canonical edge indices of the spanning-tree backbone.
    initial_mask:
        Optional starting edge mask (must contain every tree edge); when
        omitted the state starts as the pure tree.
    solver_method:
        ``"auto"``, ``"cholesky"`` or ``"amg"`` for the sparsifier solver
        once off-tree edges exist (``"auto"`` picks the direct solver up
        to 200k vertices, AMG beyond).
    max_update_rank:
        Woodbury budget forwarded to :class:`DirectSolver` — edge
        batches up to this accumulated rank are absorbed without
        re-factorizing.
    amg_rebuild_every:
        Update batches an :class:`AMGSolver` hierarchy absorbs in place
        before it is rebuilt from the current Laplacian.
    """

    def __init__(
        self,
        graph: Graph,
        tree_indices: np.ndarray,
        initial_mask: np.ndarray | None = None,
        solver_method: str = "auto",
        max_update_rank: int = 64,
        amg_rebuild_every: int = 8,
    ) -> None:
        if solver_method not in _SOLVER_METHODS:
            raise ValueError(f"unknown solver method {solver_method!r}")
        self.graph = graph
        self.tree_indices = np.asarray(tree_indices, dtype=np.int64)
        self.solver_method = solver_method
        self.max_update_rank = int(max_update_rank)
        self.amg_rebuild_every = int(amg_rebuild_every)
        self.solver_rebuilds = 0

        if initial_mask is None:
            mask = np.zeros(graph.num_edges, dtype=bool)
            mask[self.tree_indices] = True
        else:
            mask = np.asarray(initial_mask, dtype=bool).copy()
            if mask.shape != (graph.num_edges,):
                raise ValueError(
                    f"initial_mask must have shape ({graph.num_edges},), "
                    f"got {mask.shape}"
                )
            if not np.all(mask[self.tree_indices]):
                raise ValueError("initial_mask must contain every tree edge")
        self.edge_mask = mask
        self.is_pure_tree = bool(mask.sum() == self.tree_indices.size)

        # Hoisted host Laplacian; its pattern hosts the sparsifier too.
        self.host_laplacian = graph.laplacian().tocsr()
        self.host_laplacian.sort_indices()
        self._positions = self._edge_positions()

        data = np.zeros_like(self.host_laplacian.data)
        self._laplacian = sp.csr_matrix(
            (data, self.host_laplacian.indices, self.host_laplacian.indptr),
            shape=self.host_laplacian.shape,
        )
        self._degrees = np.zeros(graph.n, dtype=np.float64)
        masked = np.flatnonzero(mask)
        self._write_edges(masked)
        self._solver: Solver | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _edge_positions(self) -> np.ndarray:
        """``(m, 4)`` indices into the Laplacian data array per edge.

        Columns: ``(u, v)``, ``(v, u)``, ``(u, u)``, ``(v, v)`` — the four
        entries a weighted edge touches in ``L = D − A``.
        """
        g = self.graph
        rows = np.concatenate([g.u, g.v, g.u, g.v])
        cols = np.concatenate([g.v, g.u, g.u, g.v])
        pos = csr_value_positions(self.host_laplacian, rows, cols)
        if np.any(pos < 0):  # pragma: no cover - host pattern is complete
            raise RuntimeError("host Laplacian pattern is missing edge entries")
        return pos.reshape(4, g.num_edges).T

    def _write_edges(self, edge_indices: np.ndarray, sign: float = 1.0) -> None:
        """Accumulate the given canonical edges into ``L_P`` and degrees.

        ``sign=-1.0`` subtracts the edges instead (the deletion path).
        """
        if edge_indices.size == 0:
            return
        g = self.graph
        u, v = g.u[edge_indices], g.v[edge_indices]
        w = sign * g.w[edge_indices]
        pos = self._positions[edge_indices]
        data = self._laplacian.data
        np.add.at(data, pos[:, 0], -w)
        np.add.at(data, pos[:, 1], -w)
        # Same accumulation order as Graph.weighted_degrees for parity
        # with the from-scratch edge_subgraph(...).laplacian() diagonal.
        np.add.at(self._degrees, u, w)
        np.add.at(self._degrees, v, w)
        np.add.at(data, pos[:, 2], w)
        np.add.at(data, pos[:, 3], w)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def laplacian(self) -> sp.csr_matrix:
        """Sparsifier Laplacian ``L_P`` on the host's sparsity pattern.

        Entries of absent edges are explicit zeros, so matvecs are exact
        and the pattern never changes as edges arrive.
        """
        return self._laplacian

    def pruned_laplacian(self) -> sp.csr_matrix:
        """Copy of ``L_P`` with the explicit zeros of absent edges dropped.

        Returns
        -------
        scipy.sparse.csr_matrix
            A compacted copy safe to hand to factorization routines.
        """
        pruned = self._laplacian.copy()
        pruned.eliminate_zeros()
        return pruned

    def weighted_degrees(self) -> np.ndarray:
        """Cached sparsifier weighted degrees (updated per batch).

        Returns
        -------
        numpy.ndarray
            Weighted degree of every vertex in the current sparsifier
            (a live view — do not mutate).
        """
        return self._degrees

    @property
    def num_edges(self) -> int:
        """Current sparsifier edge count."""
        return int(self.edge_mask.sum())

    def subgraph(self) -> Graph:
        """Materialize the sparsifier as a :class:`Graph` (not cached).

        Returns
        -------
        Graph
            ``graph.edge_subgraph(edge_mask)`` at the current mask.
        """
        return self.graph.edge_subgraph(self.edge_mask)

    def lambda_min(self) -> float:
        """§3.6.2 node-coloring λmin estimate from the cached degrees.

        Returns
        -------
        float
            ``min_v deg_G(v) / deg_P(v)`` — a lower bound on the
            pencil's smallest generalized eigenvalue (Eq. 18).

        Raises
        ------
        ValueError
            If the sparsifier leaves a vertex isolated (it must span
            the host graph).
        """
        deg_p = self._degrees
        if np.any(deg_p <= 0):
            raise ValueError(
                "sparsifier has an isolated vertex; it must span the graph"
            )
        return float(np.min(self.graph.weighted_degrees() / deg_p))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edges(self, edge_indices: np.ndarray) -> None:
        """Add canonical host edges to the sparsifier.

        Updates the mask, Laplacian values and degrees in ``O(batch)``
        and forwards the batch to the managed solver's ``update`` hook;
        the solver is dropped (rebuilt lazily on next access) when it
        cannot absorb the batch incrementally.

        Parameters
        ----------
        edge_indices:
            Canonical host edge indices not yet in the sparsifier.

        Raises
        ------
        ValueError
            If the batch contains an edge already in the sparsifier or
            a repeated index (``np.add.at`` would double-count it while
            the mask flips once, silently corrupting the state).
        """
        edge_indices = np.asarray(edge_indices, dtype=np.int64)
        if edge_indices.size == 0:
            return
        if np.unique(edge_indices).size != edge_indices.size:
            raise ValueError("duplicate edge indices in addition batch")
        if np.any(self.edge_mask[edge_indices]):
            raise ValueError("edge batch contains edges already in the sparsifier")
        self.edge_mask[edge_indices] = True
        self._write_edges(edge_indices)
        self.is_pure_tree = False
        if self._solver is not None:
            g = self.graph
            if not self._solver.update(
                g.u[edge_indices], g.v[edge_indices], g.w[edge_indices]
            ):
                self._solver = None

    def remove_edges(self, edge_indices: np.ndarray) -> None:
        """Remove off-tree canonical edges from the sparsifier.

        The inverse of :meth:`add_edges`: mask, Laplacian values and
        degrees are downdated in ``O(batch)``, and the batch reaches
        the managed solver as *negative* weight deltas (the
        deletion-capable :meth:`~repro.solvers.base.Solver.update`
        path); the solver is dropped and rebuilt lazily when it cannot
        absorb the downdate.

        Tree edges cannot be removed here — the backbone keeps the
        sparsifier spanning.  Callers that delete backbone edges (the
        streaming layer) must repair the tree first (see
        :func:`repro.trees.spanning.complete_forest`).

        Parameters
        ----------
        edge_indices:
            Canonical host edge indices currently in the sparsifier and
            not part of the spanning-tree backbone.

        Raises
        ------
        ValueError
            If the batch contains an edge absent from the sparsifier, a
            spanning-tree edge, or a repeated index (a double deletion
            would downdate the Laplacian twice).
        """
        edge_indices = np.asarray(edge_indices, dtype=np.int64)
        if edge_indices.size == 0:
            return
        if np.unique(edge_indices).size != edge_indices.size:
            raise ValueError("duplicate edge indices in removal batch")
        if not np.all(self.edge_mask[edge_indices]):
            raise ValueError("edge batch contains edges not in the sparsifier")
        tree_mask = np.zeros(self.graph.num_edges, dtype=bool)
        tree_mask[self.tree_indices] = True
        if np.any(tree_mask[edge_indices]):
            raise ValueError(
                "cannot remove spanning-tree edges; repair the backbone first"
            )
        self.edge_mask[edge_indices] = False
        self._write_edges(edge_indices, sign=-1.0)
        self.is_pure_tree = bool(self.edge_mask.sum() == self.tree_indices.size)
        if self._solver is not None:
            g = self.graph
            if not self._solver.update(
                g.u[edge_indices], g.v[edge_indices], -g.w[edge_indices]
            ):
                self._solver = None

    # ------------------------------------------------------------------
    # Solver management
    # ------------------------------------------------------------------
    def solver(self) -> Solver:
        """The managed ``L_P⁺`` solver, (re)built lazily when needed.

        Returns
        -------
        Solver
            Tree solver while the sparsifier is a pure tree; the
            configured direct/AMG solver afterwards.
        """
        if self._solver is None:
            self._solver = self._build_solver()
            self.solver_rebuilds += 1
        return self._solver

    def _build_solver(self) -> Solver:
        if self.is_pure_tree:
            tree = RootedTree.from_graph(self.graph, self.tree_indices)
            return TreeSolver(tree)
        method = self.solver_method
        if method == "auto":
            method = "cholesky" if self.graph.n <= 200_000 else "amg"
        if method == "cholesky":
            return DirectSolver(
                self.pruned_laplacian().tocsc(),
                max_update_rank=self.max_update_rank,
            )
        return AMGSolver(
            self._laplacian, cycles=2, rebuild_every=self.amg_rebuild_every
        )
