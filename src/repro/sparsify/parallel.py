"""Shard-parallel sparsification: decompose, sparsify concurrently, stitch.

Spectral similarity is preserved per connected component — the pencil
``(L_G, L_P)`` block-diagonalizes over components, so ``κ(L_G, L_P)``
is the maximum of the per-component condition numbers.  The pipeline
here exploits that:

1. *plan* — split the input into connected components
   (:func:`repro.graphs.connected_components`) and, optionally, further
   bisect components larger than ``shard_max_nodes`` along approximate
   Fiedler sign cuts (:func:`repro.spectral.fiedler.fiedler_vector` +
   :func:`repro.spectral.partition.sign_cut`);
2. *sparsify* — run the serial stage pipeline
   (:class:`repro.sparsify.similarity_aware.SimilarityAwareSparsifier`,
   itself a :class:`~repro.core.pipeline.SparsifyPipeline`
   configuration) on every shard, concurrently across a thread or
   process pool, with per-shard RNGs spawned deterministically from
   the root seed (:func:`repro.utils.rng.shard_rngs`) so the stitched
   result never depends on the worker count;
3. *stitch* — map each shard's edge mask back to the host graph's
   canonical edges, re-add every cut (shard-crossing) edge, and merge
   the per-shard diagnostics into one
   :class:`~repro.sparsify.similarity_aware.SparsifyResult`.

Component shards are exact: the stitched sparsifier is bit-for-bit the
union of independent per-component serial runs.  Sub-component shards
(``shard_max_nodes``) are a GRASS-style decomposition heuristic — the
σ² certificate holds *within* each shard and all cut edges are kept at
original weight, but no global certificate is claimed.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from dataclasses import dataclass, field

import numpy as np

from repro.core.profile import PipelineProfile
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.graphs.operations import induced_subgraph
from repro.obs import (
    MetricsRegistry,
    Tracer,
    get_metrics,
    get_tracer,
    observed,
)
from repro.solvers.cholesky import DirectSolver
from repro.sparsify.similarity_aware import (
    SimilarityAwareSparsifier,
    SparsifyResult,
)
from repro.spectral.fiedler import fiedler_vector
from repro.spectral.partition import sign_cut
from repro.utils.rng import shard_rngs
from repro.utils.timing import Timer

__all__ = [
    "Shard",
    "ShardPlan",
    "ShardStats",
    "ShardedSparsifyResult",
    "ShardedSparsifier",
    "plan_shards",
    "shard_rngs",
]

_BACKENDS = ("auto", "serial", "thread", "process")


@dataclass(frozen=True)
class Shard:
    """One independent sparsification subproblem.

    Attributes
    ----------
    index:
        Position of the shard in the plan (also its seed-spawn key).
    component:
        Label of the connected component the shard came from.
    vertices:
        Sorted original vertex labels; local vertex ``i`` of ``graph``
        is original vertex ``vertices[i]``.
    graph:
        Connected induced subgraph on ``vertices`` with local labels.
    """

    index: int
    component: int
    vertices: np.ndarray
    graph: Graph

    @property
    def is_trivial(self) -> bool:
        """True for shards with no edges (isolated vertices)."""
        return self.graph.num_edges == 0


@dataclass(frozen=True)
class ShardPlan:
    """Decomposition of a host graph into independent shards.

    Attributes
    ----------
    graph:
        The host graph the plan decomposes.
    shards:
        Shards in deterministic order (by smallest contained vertex).
    num_components:
        Connected components of the host graph.
    cut_edge_indices:
        Canonical host edges whose endpoints landed in different shards
        (non-empty only when ``shard_max_nodes`` split a component).
        These edges bypass filtering and are kept in the stitched
        sparsifier at original weight.
    shard_of:
        Per-vertex shard index.
    """

    graph: Graph
    shards: list[Shard]
    num_components: int
    cut_edge_indices: np.ndarray
    shard_of: np.ndarray


@dataclass(frozen=True)
class ShardStats:
    """Aggregated diagnostics of one shard's sparsification.

    Attributes
    ----------
    index / component:
        Identity of the shard within its :class:`ShardPlan`.
    num_vertices / num_edges:
        Size of the shard subproblem.
    sparsifier_edges:
        Edges the shard's sparsifier kept (0 for trivial shards).
    sigma2_estimate:
        The shard's certified relative condition number (``nan`` for
        trivial shards).
    lambda_max_first / lambda_max_last:
        The shard's dominant generalized eigenvalue estimate at the
        first densification iteration (tree backbone) and at the last
        one (final sparsifier); ``nan`` for trivial shards.  λ1 of a
        block-diagonal pencil is the max of these over shards.
    converged:
        Whether the shard met the σ² target (trivial shards count as
        converged).
    seconds:
        Wall time of the shard's serial sparsification run.
    """

    index: int
    component: int
    num_vertices: int
    num_edges: int
    sparsifier_edges: int
    sigma2_estimate: float
    lambda_max_first: float
    lambda_max_last: float
    converged: bool
    seconds: float


@dataclass
class ShardedSparsifyResult(SparsifyResult):
    """A :class:`SparsifyResult` stitched from shard-parallel runs.

    The inherited fields aggregate over shards: ``sigma2_estimate`` is
    the worst (largest) per-shard estimate, ``converged`` requires every
    shard to have converged, ``tree_seconds``/``densify_seconds`` sum
    the per-shard (CPU) timings, ``iterations`` concatenates the
    per-shard diagnostics and ``profile`` merges the per-shard
    pipeline profiles (per-stage CPU totals across all shards).  ``wall_seconds`` is the end-to-end elapsed
    time of the sharded run — with ``workers > 1`` it is smaller than
    ``total_seconds``, and their ratio is the parallel speedup.

    Attributes
    ----------
    shards:
        Per-shard statistics in plan order.
    num_components:
        Connected components of the host graph.
    cut_edge_indices:
        Host edges kept unconditionally because they crossed shards.
    backend / workers:
        The execution backend and worker count actually used.
    wall_seconds:
        End-to-end wall-clock time of plan + sparsify + stitch.
    """

    shards: list[ShardStats] = field(default_factory=list)
    num_components: int = 1
    cut_edge_indices: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    backend: str = "serial"
    workers: int = 1
    wall_seconds: float = 0.0

    def summary(self) -> str:
        """One-line human-readable description including shard counts.

        Returns
        -------
        str
            The serial summary suffixed with shard/component/cut-edge
            counts and the wall-clock time.
        """
        base = super().summary()
        return (
            f"{base} [{len(self.shards)} shards over "
            f"{self.num_components} components, "
            f"{self.cut_edge_indices.size} cut edges, "
            f"wall {self.wall_seconds:.2f}s x{self.workers} "
            f"{self.backend}]"
        )


def _split_oversized(
    graph: Graph,
    vertices: np.ndarray,
    max_nodes: int,
    fiedler_iterations: int,
    rng: np.random.Generator,
) -> list[tuple[np.ndarray, Graph]]:
    """Recursively bisect a connected piece until every part fits.

    Cuts along the approximate Fiedler sign cut; falls back to a median
    split when the sign cut is degenerate and to an index split when the
    Fiedler vector is (numerically) constant, so progress is guaranteed.
    Every returned part is connected.

    Parameters
    ----------
    graph:
        Connected local graph of the piece.
    vertices:
        Original host labels of the piece's vertices (sorted ascending,
        aligned with ``graph``'s local labels).
    max_nodes:
        Upper bound on part sizes.
    fiedler_iterations:
        Inverse power iterations for the Fiedler estimate.
    rng:
        Randomness for the Fiedler start vectors.

    Returns
    -------
    list[tuple[numpy.ndarray, Graph]]
        ``(host_vertices, local_graph)`` per part, ready to use as
        shards without rebuilding the induced subgraphs.
    """
    if graph.n <= max_nodes:
        return [(vertices, graph)]
    if graph.num_edges == 0:  # pragma: no cover - callers pass connected pieces
        return [(vertices[i : i + 1], Graph(1)) for i in range(graph.n)]
    solver = DirectSolver(graph.laplacian().tocsc())
    fiedler = fiedler_vector(
        graph.laplacian(), solver, iterations=fiedler_iterations, seed=rng
    )
    labels = sign_cut(fiedler.vector)
    side_sizes = (int(labels.sum()), int((~labels).sum()))
    if 0 in side_sizes:
        labels = fiedler.vector >= float(np.median(fiedler.vector))
    if labels.all() or not labels.any():
        labels = np.zeros(graph.n, dtype=bool)
        labels[: graph.n // 2] = True
    parts: list[tuple[np.ndarray, Graph]] = []
    for side in (labels, ~labels):
        side_local = np.flatnonzero(side)
        side_graph, _ = induced_subgraph(graph, side_local)
        count, comp = connected_components(side_graph)
        for label in range(count):
            piece_local = side_local[comp == label]
            piece_graph, _ = induced_subgraph(graph, piece_local)
            parts.extend(
                _split_oversized(
                    piece_graph,
                    vertices[piece_local],
                    max_nodes,
                    fiedler_iterations,
                    rng,
                )
            )
    return parts


def plan_shards(
    graph: Graph,
    shard_max_nodes: int | None = None,
    fiedler_iterations: int = 12,
    seed: int | np.random.Generator | None = 0,
) -> ShardPlan:
    """Decompose a graph into connected shards for parallel sparsification.

    Connected components always become separate shards (an exact,
    similarity-preserving decomposition).  Components larger than
    ``shard_max_nodes`` are additionally bisected along approximate
    Fiedler sign cuts until every shard fits; the edges such cuts sever
    are recorded in ``cut_edge_indices`` and later kept unconditionally.

    Parameters
    ----------
    graph:
        Host graph (connected or not).
    shard_max_nodes:
        Optional upper bound on shard vertex counts; ``None`` disables
        sub-component splitting.
    fiedler_iterations:
        Inverse power iterations per Fiedler bisection.
    seed:
        Randomness for the Fiedler start vectors (planning only; the
        default is fixed so planning is deterministic unless opted out).

    Returns
    -------
    ShardPlan
        Shards sorted by smallest contained host vertex.

    Raises
    ------
    ValueError
        If ``shard_max_nodes`` is smaller than 1.
    """
    if shard_max_nodes is not None and shard_max_nodes < 1:
        raise ValueError(f"shard_max_nodes must be >= 1, got {shard_max_nodes}")
    from repro.utils.rng import as_rng

    rng = as_rng(seed)
    count, labels = connected_components(graph)
    pieces: list[tuple[int, np.ndarray, Graph]] = []
    for component in range(count):
        vertices = np.flatnonzero(labels == component).astype(np.int64)
        local, _ = induced_subgraph(graph, vertices)
        if shard_max_nodes is None or vertices.size <= shard_max_nodes:
            pieces.append((component, vertices, local))
            continue
        for part, part_graph in _split_oversized(
            local, vertices, shard_max_nodes, fiedler_iterations, rng
        ):
            pieces.append((component, part, part_graph))
    pieces.sort(key=lambda item: int(item[1][0]))
    shards: list[Shard] = []
    shard_of = np.empty(graph.n, dtype=np.int64)
    for index, (component, vertices, local) in enumerate(pieces):
        shards.append(
            Shard(index=index, component=component, vertices=vertices, graph=local)
        )
        shard_of[vertices] = index
    cut = np.flatnonzero(shard_of[graph.u] != shard_of[graph.v]).astype(np.int64)
    return ShardPlan(
        graph=graph,
        shards=shards,
        num_components=count,
        cut_edge_indices=cut,
        shard_of=shard_of,
    )


def _sparsify_shard(
    task: tuple[Graph, dict, np.random.Generator],
) -> tuple[SparsifyResult, float]:
    """Worker body: run the serial kernel on one shard (module level so
    process pools can pickle it).

    Parameters
    ----------
    task:
        ``(shard_graph, kernel_options, rng)`` triple.

    Returns
    -------
    tuple[SparsifyResult, float]
        The shard's serial result and its wall time in seconds.
    """
    shard_graph, options, rng = task
    with Timer() as timer:
        # Shards are connected by construction; skip the kernel's scan.
        result = SimilarityAwareSparsifier(seed=rng, **options).sparsify(
            shard_graph, check_connected=False
        )
    return result, timer.elapsed


def _sparsify_shard_observed(
    task: tuple[Graph, dict, np.random.Generator],
) -> tuple[SparsifyResult, float, list, dict]:
    """Worker body for process pools under active observability.

    A forked worker only inherits *copies* of the parent's tracer and
    metrics registry, so anything it records there is lost.  This
    variant instead traces into a fresh tracer/registry pair and ships
    the finished spans and the metrics snapshot back with the result;
    the parent merges them (:meth:`repro.obs.Tracer.merge`,
    :meth:`repro.obs.MetricsRegistry.merge`) into one coherent trace.

    Parameters
    ----------
    task:
        ``(shard_graph, kernel_options, rng)`` triple.

    Returns
    -------
    tuple[SparsifyResult, float, list, dict]
        The shard's result, its wall seconds, its span records and its
        metrics snapshot.
    """
    tracer = Tracer()
    metrics = MetricsRegistry()
    with observed(tracer=tracer, metrics=metrics):
        result, seconds = _sparsify_shard(task)
    return result, seconds, tracer.records(), metrics.snapshot()


class ShardedSparsifier:
    """Shard-parallel similarity-aware sparsification pipeline.

    Accepts every knob of
    :class:`~repro.sparsify.similarity_aware.SimilarityAwareSparsifier`
    plus the orchestration parameters below, and produces one stitched
    :class:`ShardedSparsifyResult`.  Disconnected graphs — rejected by
    the serial kernel — are handled natively: each component is its own
    shard.

    Parameters
    ----------
    sigma2:
        Per-shard similarity target.
    workers:
        Concurrent shard workers (1 = serial execution).
    backend:
        ``"serial"``, ``"thread"``, ``"process"`` or ``"auto"``
        (process pool when ``workers > 1`` and there is more than one
        non-trivial shard, serial otherwise).  Thread pools help when
        shard work is dominated by GIL-releasing numpy/scipy kernels;
        process pools parallelize the whole per-shard Python loop.
    shard_max_nodes:
        Optional cap on shard sizes; oversized components are split
        along Fiedler sign cuts (heuristic — see module docstring).
    seed:
        Root randomness.  Per-shard generators are spawned from it
        deterministically (:func:`shard_rngs`); when the plan yields a
        single shard the root seed is used directly, so the result
        matches the unsharded serial pipeline bit-for-bit.
    **kernel_options:
        Remaining :class:`SimilarityAwareSparsifier` parameters
        (``tree_method``, ``t``, ``max_iterations``,
        ``kernel_backend``, ...), forwarded to every shard unchanged —
        ``kernel_backend="vectorized"`` therefore accelerates every
        worker, and process workers re-resolve backend availability in
        their own interpreter.

    Examples
    --------
    >>> from repro.graphs import generators
    >>> from repro.graphs.operations import disjoint_union
    >>> from repro.sparsify.parallel import ShardedSparsifier
    >>> g = disjoint_union(generators.grid2d(12, 12, seed=0),
    ...                    generators.grid2d(10, 10, seed=1))
    >>> result = ShardedSparsifier(sigma2=100.0, workers=2, seed=0).sparsify(g)
    >>> result.num_components
    2
    >>> result.sparsifier.num_edges <= g.num_edges
    True
    """

    def __init__(
        self,
        sigma2: float = 100.0,
        workers: int = 1,
        backend: str = "auto",
        shard_max_nodes: int | None = None,
        seed: int | np.random.Generator | None = None,
        **kernel_options,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        self.sigma2 = float(sigma2)
        self.workers = int(workers)
        self.backend = backend
        self.shard_max_nodes = shard_max_nodes
        self.seed = seed
        self.kernel_options = dict(kernel_options)

    # ------------------------------------------------------------------
    # Execution backends
    # ------------------------------------------------------------------
    def _resolve_backend(self, num_tasks: int) -> str:
        """Pick the concrete backend for ``num_tasks`` shard runs.

        A single task always resolves to ``"serial"`` — a pool of one
        is pure overhead — so the backend recorded on the result is the
        one actually used.

        Parameters
        ----------
        num_tasks:
            Number of non-trivial shards to sparsify.

        Returns
        -------
        str
            ``"serial"``, ``"thread"`` or ``"process"``.
        """
        if num_tasks <= 1:
            return "serial"
        if self.backend != "auto":
            return self.backend
        if self.workers <= 1:
            return "serial"
        return "process"

    def _run_tasks(
        self, tasks: list[tuple[Graph, dict, np.random.Generator]], backend: str
    ) -> list[tuple[SparsifyResult, float]]:
        """Execute shard tasks on the chosen backend, preserving order.

        Parameters
        ----------
        tasks:
            One ``(graph, options, rng)`` triple per non-trivial shard.
        backend:
            Resolved backend name (``"serial"``/``"thread"``/``"process"``).

        Returns
        -------
        list[tuple[SparsifyResult, float]]
            Per-task results aligned with ``tasks``.
        """
        if backend == "serial":
            return [_sparsify_shard(task) for task in tasks]
        max_workers = min(self.workers, len(tasks))
        if backend == "thread":
            with concurrent.futures.ThreadPoolExecutor(max_workers) as pool:
                return list(pool.map(_sparsify_shard, tasks))
        # Process pool: fork shares the already-imported repro package and
        # the (read-only) shard graphs with zero re-import cost; fall back
        # to the platform default where fork is unavailable.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        tracer = get_tracer()
        metrics = get_metrics()
        capture = tracer.enabled or metrics.enabled
        worker = _sparsify_shard_observed if capture else _sparsify_shard
        origin = tracer.now()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers, mp_context=context
        ) as pool:
            raw = list(pool.map(worker, tasks))
        if not capture:
            return raw
        outcomes = []
        for result, seconds, records, snapshot in raw:
            tracer.merge(records, offset=origin)
            metrics.merge(snapshot)
            outcomes.append((result, seconds))
        return outcomes

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def sparsify(self, graph: Graph) -> ShardedSparsifyResult:
        """Plan shards, sparsify them concurrently and stitch the result.

        Parameters
        ----------
        graph:
            Host graph; may be disconnected and may contain isolated
            vertices (trivial shards are passed through).

        Returns
        -------
        ShardedSparsifyResult
            Stitched sparsifier with per-shard statistics.

        Raises
        ------
        ValueError
            If the graph has fewer than 2 vertices (nothing to
            sparsify), mirroring the serial kernel.
        """
        if graph.n < 2:
            raise ValueError("graph must have at least 2 vertices")
        tracer = get_tracer()
        with Timer() as wall:
            with tracer.span("shards.plan", category="shard"):
                plan = plan_shards(graph, shard_max_nodes=self.shard_max_nodes)
            active = [shard for shard in plan.shards if not shard.is_trivial]
            if len(plan.shards) == 1:
                rngs = [self.seed]  # single shard: match the serial pipeline
            else:
                rngs = shard_rngs(self.seed, len(plan.shards))
            backend = self._resolve_backend(len(active))
            tasks = [
                (shard.graph, self.kernel_options | {"sigma2": self.sigma2},
                 rngs[shard.index])
                for shard in active
            ]
            with tracer.span(
                "shards.run", category="shard", backend=backend,
                shards=len(active),
            ):
                outcomes = self._run_tasks(tasks, backend)
            with tracer.span("shards.stitch", category="shard"):
                result = self._stitch(graph, plan, active, outcomes, backend)
        result.wall_seconds = wall.elapsed
        return result

    def _stitch(
        self,
        graph: Graph,
        plan: ShardPlan,
        active: list[Shard],
        outcomes: list[tuple[SparsifyResult, float]],
        backend: str,
    ) -> ShardedSparsifyResult:
        """Merge per-shard results into one host-graph sparsifier.

        Parameters
        ----------
        graph:
            Host graph.
        plan:
            The shard plan the results were computed under.
        active:
            Non-trivial shards, aligned with ``outcomes``.
        outcomes:
            ``(result, seconds)`` per active shard.
        backend:
            The backend that was used (recorded in the result).

        Returns
        -------
        ShardedSparsifyResult
        """
        mask = np.zeros(graph.num_edges, dtype=bool)
        mask[plan.cut_edge_indices] = True
        tree_parts: list[np.ndarray] = []
        stats: dict[int, ShardStats] = {}
        iterations = []
        tree_seconds = 0.0
        densify_seconds = 0.0
        sigma2_estimate = -np.inf
        converged = True
        profile = PipelineProfile()
        for shard, (local, seconds) in zip(active, outcomes):
            host_edges = graph.edge_indices(
                shard.vertices[local.graph.u], shard.vertices[local.graph.v]
            )
            if np.any(host_edges < 0):  # pragma: no cover - induced edges exist
                raise RuntimeError("shard edge missing from the host graph")
            mask[host_edges[local.edge_mask]] = True
            tree_parts.append(host_edges[local.tree_indices])
            iterations.extend(local.iterations)
            tree_seconds += local.tree_seconds
            densify_seconds += local.densify_seconds
            if local.profile is not None:
                profile.merge(local.profile)
            sigma2_estimate = max(sigma2_estimate, local.sigma2_estimate)
            converged = converged and local.converged
            stats[shard.index] = ShardStats(
                index=shard.index,
                component=shard.component,
                num_vertices=shard.graph.n,
                num_edges=shard.graph.num_edges,
                sparsifier_edges=local.sparsifier.num_edges,
                sigma2_estimate=local.sigma2_estimate,
                lambda_max_first=(
                    local.iterations[0].lambda_max
                    if local.iterations else float("nan")
                ),
                lambda_max_last=(
                    local.iterations[-1].lambda_max
                    if local.iterations else float("nan")
                ),
                converged=local.converged,
                seconds=seconds,
            )
        for shard in plan.shards:
            if shard.index not in stats:
                stats[shard.index] = ShardStats(
                    index=shard.index,
                    component=shard.component,
                    num_vertices=shard.graph.n,
                    num_edges=0,
                    sparsifier_edges=0,
                    sigma2_estimate=float("nan"),
                    lambda_max_first=float("nan"),
                    lambda_max_last=float("nan"),
                    converged=True,
                    seconds=0.0,
                )
        tree_indices = (
            np.sort(np.concatenate(tree_parts))
            if tree_parts
            else np.empty(0, dtype=np.int64)
        )
        return ShardedSparsifyResult(
            graph=graph,
            sparsifier=graph.edge_subgraph(mask),
            edge_mask=mask,
            tree_indices=tree_indices,
            sigma2_target=self.sigma2,
            sigma2_estimate=(
                float(sigma2_estimate) if np.isfinite(sigma2_estimate)
                else float("nan")
            ),
            converged=converged,
            iterations=iterations,
            tree_seconds=tree_seconds,
            densify_seconds=densify_seconds,
            profile=profile,
            shards=[stats[i] for i in range(len(plan.shards))],
            num_components=plan.num_components,
            cut_edge_indices=plan.cut_edge_indices,
            backend=backend,
            workers=self.workers,
        )
