"""Baseline sparsifiers the paper compares against (implicitly or in prior work).

- *spanning tree only*: the backbone without any off-tree edge — the
  starting point of the densification loop;
- *uniform sampling*: spanning tree + uniformly random off-tree edges —
  the structure-oblivious control;
- *effective-resistance sampling* (Spielman–Srivastava [17]): edges
  sampled with probability ∝ ``w_e · R_eff(e)`` and reweighted to keep
  the Laplacian unbiased;
- *top-k heat* (GRASS/DAC'16-style [9]): spanning tree + the k
  highest-Joule-heat off-tree edges, without similarity-aware filtering
  — the ablation that isolates this paper's contribution.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.sparsify.edge_embedding import joule_heats
from repro.sparsify.edge_similarity import select_dissimilar
from repro.sparsify.effective_resistance import approx_effective_resistances
from repro.trees.lsst import low_stretch_tree
from repro.trees.tree import RootedTree
from repro.trees.tree_solver import TreeSolver
from repro.utils.rng import as_rng

__all__ = [
    "tree_sparsifier",
    "uniform_sparsifier",
    "effective_resistance_sparsifier",
    "top_k_heat_sparsifier",
]


def tree_sparsifier(
    graph: Graph, method: str = "akpw", seed=None
) -> Graph:
    """Spanning-tree-only sparsifier (the ultra-sparse extreme).

    Parameters
    ----------
    graph:
        Connected host graph.
    method:
        Spanning-tree flavour (see
        :func:`repro.trees.lsst.low_stretch_tree`).
    seed:
        Randomness for the tree construction.

    Returns
    -------
    Graph
        The backbone as a subgraph at original weights.
    """
    return graph.edge_subgraph(low_stretch_tree(graph, method=method, seed=seed))


def uniform_sparsifier(
    graph: Graph, num_off_tree: int, tree_method: str = "akpw", seed=None
) -> Graph:
    """Spanning tree plus ``num_off_tree`` uniformly random off-tree edges.

    Parameters
    ----------
    graph:
        Connected host graph.
    num_off_tree:
        Number of off-tree edges to add (clipped to the available
        count).
    tree_method:
        Spanning-tree flavour for the backbone.
    seed:
        Randomness for the tree and the uniform edge draw.

    Returns
    -------
    Graph
        Tree-plus-random-edges subgraph at original weights.
    """
    rng = as_rng(seed)
    tree = low_stretch_tree(graph, method=tree_method, seed=rng)
    mask = np.zeros(graph.num_edges, dtype=bool)
    mask[tree] = True
    off = np.flatnonzero(~mask)
    take = min(int(num_off_tree), off.size)
    if take > 0:
        mask[rng.choice(off, size=take, replace=False)] = True
    return graph.edge_subgraph(mask)


def effective_resistance_sparsifier(
    graph: Graph,
    num_samples: int,
    epsilon: float = 0.3,
    seed=None,
    ensure_connected: bool = True,
) -> Graph:
    """Spielman–Srivastava sampling sparsifier [17].

    Draw ``num_samples`` edges with replacement with probability
    ``p_e ∝ w_e · R_eff(e)`` and weight each kept edge
    ``w_e · (count_e) / (num_samples · p_e)`` so the sparsified
    Laplacian is an unbiased estimator of ``L_G``.  With
    ``ensure_connected`` a spanning tree (at original weights) is
    blended in so downstream solvers see a connected proxy.

    Parameters
    ----------
    graph:
        Connected host graph.
    num_samples:
        Edges drawn (with replacement).
    epsilon:
        JL sketch accuracy for the resistance estimates.
    seed:
        Randomness for the sketch and the multinomial draw.
    ensure_connected:
        Blend a maximum-weight spanning tree into the sample.

    Returns
    -------
    Graph
        Sampled, reweighted sparsifier.

    Raises
    ------
    ValueError
        If ``num_samples`` is smaller than 1.
    RuntimeError
        If every sampling score vanishes (degenerate resistances).
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    rng = as_rng(seed)
    resistances = approx_effective_resistances(graph, epsilon=epsilon, seed=rng)
    scores = graph.w * np.maximum(resistances, 0.0)
    total = float(scores.sum())
    if total <= 0:
        raise RuntimeError("all effective-resistance scores vanished")
    probabilities = scores / total
    counts = rng.multinomial(num_samples, probabilities)
    keep = counts > 0
    new_w = graph.w[keep] * counts[keep] / (num_samples * probabilities[keep])
    sampled = Graph(graph.n, graph.u[keep], graph.v[keep], new_w)
    if not ensure_connected:
        return sampled
    tree = low_stretch_tree(graph, method="maxw")
    tree_mask = np.zeros(graph.num_edges, dtype=bool)
    tree_mask[tree] = True
    missing = tree_mask & ~keep
    return sampled.with_edges(graph.u[missing], graph.v[missing], graph.w[missing])


def top_k_heat_sparsifier(
    graph: Graph,
    num_off_tree: int,
    tree_method: str = "akpw",
    t: int = 2,
    num_vectors: int | None = None,
    similarity_mode: str = "none",
    seed=None,
) -> Graph:
    """GRASS-style fixed-budget sparsifier: tree + top-k heat edges [9].

    Unlike the similarity-aware pipeline, the off-tree budget is fixed a
    priori instead of derived from a σ² target — exactly the limitation
    the paper's filtering scheme removes.

    Parameters
    ----------
    graph:
        Connected host graph.
    num_off_tree:
        Fixed off-tree edge budget.
    tree_method:
        Spanning-tree flavour for the backbone.
    t, num_vectors:
        Heat-embedding parameters (see
        :func:`repro.sparsify.edge_embedding.joule_heats`).
    similarity_mode:
        Dissimilarity rule applied to the heat-ordered candidates
        (``"none"`` reproduces plain top-k).
    seed:
        Randomness for the tree and the embedding.

    Returns
    -------
    Graph
        Tree plus the selected top-heat edges at original weights.
    """
    rng = as_rng(seed)
    tree = low_stretch_tree(graph, method=tree_method, seed=rng)
    mask = np.zeros(graph.num_edges, dtype=bool)
    mask[tree] = True
    off = np.flatnonzero(~mask)
    if off.size and num_off_tree > 0:
        solver = TreeSolver(RootedTree.from_graph(graph, tree))
        heats = joule_heats(
            graph, solver, off, t=t, num_vectors=num_vectors, seed=rng
        )
        order = off[np.argsort(-heats, kind="stable")]
        chosen = select_dissimilar(
            graph, order, max_edges=int(num_off_tree), mode=similarity_mode
        )
        mask[chosen] = True
    return graph.edge_subgraph(mask)
