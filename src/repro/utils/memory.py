"""Memory-footprint estimation for sparse operators.

Table 3 of the paper compares the memory cost of the direct solver's
factors against the iterative solver's preconditioner.  We estimate both
from the nonzero structure (index + value bytes), which is the quantity a
supernodal factorization reports and is platform independent.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["sparse_nbytes", "factor_nbytes"]


def sparse_nbytes(matrix: sp.spmatrix) -> int:
    """Bytes held by a scipy sparse matrix's data and index arrays."""
    if not sp.issparse(matrix):
        raise TypeError(f"expected a scipy sparse matrix, got {type(matrix)!r}")
    total = 0
    for attr in ("data", "indices", "indptr", "row", "col", "offsets"):
        arr = getattr(matrix, attr, None)
        if isinstance(arr, np.ndarray):
            total += arr.nbytes
    return total


def factor_nbytes(lu: object) -> int:
    """Bytes held by the L and U factors of a ``splu`` factorization.

    Accepts the ``SuperLU`` object returned by
    :func:`scipy.sparse.linalg.splu`; the L/U factors dominate a direct
    solver's memory footprint exactly as CHOLMOD's factor does in the
    paper's Table 3.
    """
    total = 0
    for name in ("L", "U"):
        factor = getattr(lu, name, None)
        if factor is not None and sp.issparse(factor):
            total += sparse_nbytes(factor)
    if total == 0:
        raise TypeError("object does not expose sparse L/U factors")
    return total
