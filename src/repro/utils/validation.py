"""Input validation helpers shared by the numerical modules.

All functions raise :class:`ValueError`/:class:`TypeError` with messages
that name the offending argument, so failures surface at API boundaries
instead of deep inside a solver.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "check_positive",
    "check_probability",
    "check_square",
    "check_symmetric",
    "check_vertex_count",
]


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_vertex_count(n: int, minimum: int = 1) -> int:
    """Require an integral vertex count of at least ``minimum``."""
    if int(n) != n or n < minimum:
        raise ValueError(f"vertex count must be an integer >= {minimum}, got {n!r}")
    return int(n)


def check_square(matrix: sp.spmatrix | np.ndarray, name: str = "matrix") -> None:
    """Require a square 2-D matrix."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be square, got shape {matrix.shape}")


def check_symmetric(
    matrix: sp.spmatrix | np.ndarray,
    name: str = "matrix",
    tol: float = 1e-10,
) -> None:
    """Require (numerical) symmetry of a sparse or dense matrix."""
    check_square(matrix, name)
    if sp.issparse(matrix):
        diff = (matrix - matrix.T).tocoo()
        if diff.nnz and np.max(np.abs(diff.data)) > tol * max(1.0, _max_abs(matrix)):
            raise ValueError(f"{name} is not symmetric within tolerance {tol}")
    else:
        arr = np.asarray(matrix)
        scale = max(1.0, float(np.max(np.abs(arr))) if arr.size else 1.0)
        if not np.allclose(arr, arr.T, atol=tol * scale, rtol=0.0):
            raise ValueError(f"{name} is not symmetric within tolerance {tol}")


def _max_abs(matrix: sp.spmatrix) -> float:
    data = matrix.tocoo().data
    return float(np.max(np.abs(data))) if data.size else 1.0
