"""Shared utilities: seeded RNG plumbing, timers, validation, tables.

These helpers keep the numerical modules free of boilerplate: every
algorithm that consumes randomness takes either an integer seed or a
:class:`numpy.random.Generator` and routes it through :func:`as_rng`,
and every experiment measures wall time through :class:`Timer`.
"""

from repro.utils.rng import (
    as_rng,
    random_unit_vectors,
    restore_rng,
    rng_state,
    shard_rngs,
    spawn_rngs,
)
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_square,
    check_symmetric,
    check_vertex_count,
)
from repro.utils.tables import format_table, format_si
from repro.utils.memory import sparse_nbytes, factor_nbytes

__all__ = [
    "as_rng",
    "spawn_rngs",
    "shard_rngs",
    "rng_state",
    "restore_rng",
    "random_unit_vectors",
    "Timer",
    "timed",
    "check_positive",
    "check_probability",
    "check_square",
    "check_symmetric",
    "check_vertex_count",
    "format_table",
    "format_si",
    "sparse_nbytes",
    "factor_nbytes",
]
