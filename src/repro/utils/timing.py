"""Wall-clock timing helpers used by the experiment harness.

Since the observability layer landed there is exactly one timing
primitive in the repo: :class:`repro.obs.trace.Span`.  ``Timer`` is a
thin alias kept for API compatibility — a bare ``Span()`` measures
wall time without reporting anywhere, which is precisely what the old
``Timer`` did.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable

from repro.obs.trace import Span as Timer

__all__ = ["Timer", "timed"]


def timed(func: Callable[..., Any]) -> Callable[..., tuple[Any, float]]:
    """Decorator returning ``(result, elapsed_seconds)`` from ``func``."""

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> tuple[Any, float]:
        start = time.perf_counter()
        result = func(*args, **kwargs)
        return result, time.perf_counter() - start

    return wrapper
