"""Wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import functools
import time
from typing import Any, Callable

__all__ = ["Timer", "timed"]


class Timer:
    """Context manager measuring wall time with :func:`time.perf_counter`.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the start time and clear any previously stored interval.

        Without clearing, lap-style reuse (``restart()`` followed by an
        exception or an early exit before ``__exit__``) would report the
        *previous* interval's ``elapsed``.
        """
        self._start = time.perf_counter()
        self.elapsed = 0.0

    def lap(self) -> float:
        """Seconds since construction/:meth:`restart` without stopping."""
        if self._start is None:
            raise RuntimeError("Timer was never started")
        return time.perf_counter() - self._start


def timed(func: Callable[..., Any]) -> Callable[..., tuple[Any, float]]:
    """Decorator returning ``(result, elapsed_seconds)`` from ``func``."""

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> tuple[Any, float]:
        start = time.perf_counter()
        result = func(*args, **kwargs)
        return result, time.perf_counter() - start

    return wrapper
