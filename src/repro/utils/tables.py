"""Plain-text table formatting for the experiment harness.

The paper reports results in tables; :func:`format_table` renders the
reproduced rows in a matching, monospace-friendly layout that the
benchmark modules print and EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_si"]


def format_si(value: float, digits: int = 2) -> str:
    """Format a number with an engineering suffix, e.g. ``1.6E6`` style.

    Mirrors the paper's table notation (``1.6E6`` nodes etc.) for easy
    side-by-side comparison.
    """
    if value == 0:
        return "0"
    magnitude = 0
    v = abs(float(value))
    while v >= 1000.0 and magnitude < 8:
        v /= 1000.0
        magnitude += 1
    mantissa = f"{v:.{digits}g}"
    if magnitude == 0:
        return mantissa if value >= 0 else f"-{mantissa}"
    exponent = 3 * magnitude
    sign = "-" if value < 0 else ""
    return f"{sign}{mantissa}E{exponent}"


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
