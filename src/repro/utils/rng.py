"""Random number generator plumbing.

All stochastic routines in :mod:`repro` accept a ``seed`` argument that can
be ``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`numpy.random.Generator` (shared stream).  This module centralizes
that convention so behaviour is identical everywhere.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_rngs", "random_unit_vectors"]


def as_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an integer for a deterministic stream, or
        an existing generator which is returned unchanged (so callers can
        share one stream across sub-routines).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn` so the children never
    overlap even when the parent keeps being used.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return as_rng(seed).spawn(count)


def random_unit_vectors(
    n: int,
    count: int,
    seed: int | np.random.Generator | None = None,
    orthogonal_to_ones: bool = True,
) -> np.ndarray:
    """Draw ``count`` random unit vectors of dimension ``n`` as columns.

    Vectors are standard Gaussian draws, optionally projected onto the
    subspace orthogonal to the all-ones vector (the null space of a
    connected graph Laplacian) and then normalized.  This is the initial
    vector recipe used by the generalized power iterations of the paper
    (Section 3.2, Step 1).

    Returns
    -------
    numpy.ndarray of shape ``(n, count)``.
    """
    if n <= 0:
        raise ValueError(f"dimension n must be positive, got {n}")
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = as_rng(seed)
    vectors = rng.standard_normal((n, count))
    if orthogonal_to_ones and n > 1:
        vectors -= vectors.mean(axis=0, keepdims=True)
    norms = np.linalg.norm(vectors, axis=0)
    # A zero column is astronomically unlikely; regenerate deterministically
    # from the same stream if it happens (e.g. n == 1).
    bad = norms < np.finfo(float).tiny
    while np.any(bad):
        vectors[:, bad] = rng.standard_normal((n, int(bad.sum())))
        if orthogonal_to_ones and n > 1:
            vectors[:, bad] -= vectors[:, bad].mean(axis=0, keepdims=True)
        norms = np.linalg.norm(vectors, axis=0)
        bad = norms < np.finfo(float).tiny
    return vectors / norms
