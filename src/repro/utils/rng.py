"""Random number generator plumbing.

All stochastic routines in :mod:`repro` accept a ``seed`` argument that can
be ``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`numpy.random.Generator` (shared stream).  This module centralizes
that convention so behaviour is identical everywhere:

- :func:`as_rng` — the coercion every entry point applies (the core
  pipeline's :class:`~repro.core.context.PipelineContext` seeds all
  stages through it);
- :func:`spawn_rngs` / :func:`shard_rngs` — deterministic child-stream
  derivation, shared by the shard-parallel pipeline, stream workload
  generation and anything else that fans one root seed out to
  independent subproblems;
- :func:`rng_state` / :func:`restore_rng` — exact bit-generator state
  (de)serialization, used by the streaming checkpoint layer.
"""

from __future__ import annotations

import json

import numpy as np

__all__ = [
    "as_rng",
    "spawn_rngs",
    "shard_rngs",
    "rng_state",
    "restore_rng",
    "random_unit_vectors",
]


def as_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an integer for a deterministic stream, or
        an existing generator which is returned unchanged (so callers can
        share one stream across sub-routines).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn` so the children never
    overlap even when the parent keeps being used.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return as_rng(seed).spawn(count)


def shard_rngs(
    seed: int | np.random.Generator | None, count: int
) -> list[np.random.Generator]:
    """Deterministic per-subproblem child generators.

    Subproblem ``i`` of a decomposition is always driven by
    ``shard_rngs(seed, count)[i]``, independent of execution order,
    worker count and backend — this is what makes a sharded (or
    otherwise fanned-out) run a pure function of ``(input, options,
    seed)``.  Exposed so callers can reproduce a single subproblem's
    serial run (the shard-parity tests do exactly that).

    Parameters
    ----------
    seed:
        Root seed: ``None``, an integer, or a generator to spawn from.
    count:
        Number of child generators (one per subproblem).

    Returns
    -------
    list[numpy.random.Generator]
        ``count`` statistically independent child generators.

    Raises
    ------
    ValueError
        If ``count`` is negative.
    """
    return spawn_rngs(seed, count)


def rng_state(rng: np.random.Generator) -> dict:
    """Exact, JSON-serializable bit-generator state of ``rng``.

    The streaming checkpoint layer persists this so a restored process
    continues the *same* random stream bit-for-bit.

    Parameters
    ----------
    rng:
        A generator backed by a JSON-serializable bit generator (the
        NumPy default ``PCG64`` family is).

    Returns
    -------
    dict
        The bit generator's state mapping, safe to ``json.dump``.

    Raises
    ------
    ValueError
        If the bit generator's state does not round-trip through JSON.
    """
    state = rng.bit_generator.state
    try:
        json.dumps(state)
    except TypeError as exc:  # pragma: no cover - non-default generators
        raise ValueError(
            "RNG state is not JSON-serializable; use the default "
            "PCG64 generator family for checkpointable streams"
        ) from exc
    return state


def restore_rng(state: dict) -> np.random.Generator:
    """Rebuild a generator positioned exactly at a saved state.

    Parameters
    ----------
    state:
        A state mapping produced by :func:`rng_state`.

    Returns
    -------
    numpy.random.Generator
        A generator whose next draws match the saved stream.
    """
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def random_unit_vectors(
    n: int,
    count: int,
    seed: int | np.random.Generator | None = None,
    orthogonal_to_ones: bool = True,
) -> np.ndarray:
    """Draw ``count`` random unit vectors of dimension ``n`` as columns.

    Vectors are standard Gaussian draws, optionally projected onto the
    subspace orthogonal to the all-ones vector (the null space of a
    connected graph Laplacian) and then normalized.  This is the initial
    vector recipe used by the generalized power iterations of the paper
    (Section 3.2, Step 1).

    Returns
    -------
    numpy.ndarray of shape ``(n, count)``.
    """
    if n <= 0:
        raise ValueError(f"dimension n must be positive, got {n}")
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = as_rng(seed)
    vectors = rng.standard_normal((n, count))
    if orthogonal_to_ones and n > 1:
        vectors -= vectors.mean(axis=0, keepdims=True)
    norms = np.linalg.norm(vectors, axis=0)
    # A zero column is astronomically unlikely; regenerate deterministically
    # from the same stream if it happens (e.g. n == 1).
    bad = norms < np.finfo(float).tiny
    while np.any(bad):
        vectors[:, bad] = rng.standard_normal((n, int(bad.sum())))
        if orthogonal_to_ones and n > 1:
            vectors[:, bad] -= vectors[:, bad].mean(axis=0, keepdims=True)
        norms = np.linalg.norm(vectors, axis=0)
        bad = norms < np.finfo(float).tiny
    return vectors / norms
