"""Vectorless power grid integrity verification (paper reference [23]).

The paper's introduction motivates sparsification with scalable VLSI
CAD; its companion application (Zhao & Feng, DAC'17 [23]) is
*vectorless verification*: certify worst-case IR drop on a power
delivery network without input current waveforms, under current
constraints only.

For a grid conductance matrix ``G`` (an SDD Laplacian-plus-pads
system), the worst-case voltage drop at node ``k`` is

    max  (G⁻¹ i)_k   s.t.  0 ≤ i ≤ i_max,  Σ i ≤ I_total

which for box-plus-budget constraints is a *fractional knapsack*: load
the adjoint sensitivities ``c = G⁻¹ e_k`` greedily from the largest
coefficient down.  Each node therefore costs one adjoint solve — the
operation the similarity-aware sparsifier preconditioner accelerates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.solvers.cg import pcg
from repro.solvers.preconditioners import sparsifier_preconditioner
from repro.sparsify.similarity_aware import sparsify_graph
from repro.utils.timing import Timer

__all__ = ["VectorlessResult", "worst_case_drop", "VectorlessVerifier"]


@dataclass
class VectorlessResult:
    """Worst-case IR-drop certification for a set of observed nodes.

    Attributes
    ----------
    drops:
        Worst-case voltage drop per observed node.
    worst_node:
        Observed node with the largest worst-case drop.
    solve_seconds:
        Total adjoint-solve time.
    pcg_iterations:
        Total PCG iterations across adjoint solves (0 for direct mode).
    """

    drops: np.ndarray
    observed: np.ndarray
    solve_seconds: float
    pcg_iterations: int

    @property
    def worst_node(self) -> int:
        return int(self.observed[int(np.argmax(self.drops))])

    @property
    def worst_drop(self) -> float:
        return float(self.drops.max())


def worst_case_drop(
    sensitivities: np.ndarray,
    i_max: np.ndarray,
    total_budget: float,
) -> float:
    """Fractional-knapsack maximum of ``cᵀ i`` under box + budget constraints.

    Parameters
    ----------
    sensitivities:
        Adjoint coefficients ``c = G⁻¹ e_k`` (volts per amp injected).
    i_max:
        Per-node current upper bounds (non-negative).
    total_budget:
        Total current budget ``Σ i ≤ I_total``.

    Notes
    -----
    Greedy is exact here: the LP's constraint matrix is totally
    unimodular-like for box+single-budget, so an optimal solution loads
    currents onto the largest positive coefficients first.
    """
    c = np.asarray(sensitivities, dtype=np.float64)
    i_max = np.asarray(i_max, dtype=np.float64)
    if np.any(i_max < 0):
        raise ValueError("current bounds must be non-negative")
    if total_budget < 0:
        raise ValueError(f"total_budget must be non-negative, got {total_budget}")
    order = np.argsort(-c)
    drop = 0.0
    remaining = float(total_budget)
    for idx in order:
        if remaining <= 0 or c[idx] <= 0:
            break
        amount = min(i_max[idx], remaining)
        drop += c[idx] * amount
        remaining -= amount
    return drop


class VectorlessVerifier:
    """Sparsifier-accelerated vectorless IR-drop verification.

    Parameters
    ----------
    grid:
        Power-grid conductance graph (resistor network).
    pad_conductance:
        Conductances attaching pad nodes to the ideal supply; a dict
        ``{node: conductance}``.  Makes the system non-singular.
    sigma2:
        Similarity target of the PCG preconditioner.
    mode:
        ``"pcg"`` (sparsifier-preconditioned, the scalable path) or
        ``"direct"`` (full factorization reference).
    """

    def __init__(
        self,
        grid: Graph,
        pad_conductance: dict[int, float],
        sigma2: float = 100.0,
        mode: str = "pcg",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not pad_conductance:
            raise ValueError("at least one pad connection is required")
        self.grid = grid
        slack = np.zeros(grid.n)
        for node, conductance in pad_conductance.items():
            if conductance <= 0:
                raise ValueError("pad conductances must be positive")
            slack[node] += conductance
        self.system = (grid.laplacian() + sp.diags(slack)).tocsr()
        self.mode = mode
        if mode == "pcg":
            result = sparsify_graph(grid, sigma2=sigma2, seed=seed)
            self._precond = sparsifier_preconditioner(
                result.sparsifier, method="cholesky", slack=slack
            )
        elif mode == "direct":
            from repro.solvers.cholesky import DirectSolver

            self._precond = None
            self._direct = DirectSolver(self.system.tocsc())
        else:
            raise ValueError(f"unknown mode {mode!r}")

    def _adjoint(self, node: int, tol: float) -> tuple[np.ndarray, int]:
        e = np.zeros(self.grid.n)
        e[node] = 1.0
        if self.mode == "direct":
            return self._direct.solve(e), 0
        result = pcg(self.system, e, self._precond, tol=tol, maxiter=1000)
        if not result.converged:  # pragma: no cover - ample iteration budget
            raise RuntimeError(f"adjoint solve for node {node} did not converge")
        return result.x, result.iterations

    def verify(
        self,
        observed_nodes: np.ndarray,
        i_max: np.ndarray | float,
        total_budget: float,
        tol: float = 1e-8,
    ) -> VectorlessResult:
        """Certify worst-case drops at ``observed_nodes``.

        ``i_max`` may be a scalar (uniform per-node bound) or a
        per-node array over all grid nodes.
        """
        observed = np.asarray(observed_nodes, dtype=np.int64)
        if np.isscalar(i_max):
            i_max = np.full(self.grid.n, float(i_max))
        i_max = np.asarray(i_max, dtype=np.float64)
        drops = np.empty(observed.size)
        iterations = 0
        with Timer() as timer:
            for j, node in enumerate(observed):
                sens, iters = self._adjoint(int(node), tol)
                iterations += iters
                drops[j] = worst_case_drop(sens, i_max, total_budget)
        return VectorlessResult(
            drops=drops,
            observed=observed,
            solve_seconds=timer.elapsed,
            pcg_iterations=iterations,
        )
