"""Scalable SDD matrix solver preconditioned by a spectral sparsifier.

Reproduces the paper's Section 4.2 application: the similarity-aware
sparsifier of the system graph is factorized once and used as a PCG
preconditioner; the σ² knob trades preconditioner density against PCG
iteration count (Table 2's ``|E_σ²|/|V|`` vs ``N_σ²`` columns).  Both
pure Laplacians (singular) and strictly dominant SDD matrices are
supported — the diagonal slack is carried into the preconditioner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.graphs.laplacian import sdd_split
from repro.solvers.cg import SolveResult, pcg
from repro.solvers.preconditioners import sparsifier_preconditioner
from repro.sparsify.similarity_aware import SparsifyResult, sparsify_graph
from repro.utils.timing import Timer

__all__ = ["SDDSolveReport", "SimilarityAwareSolver"]


@dataclass
class SDDSolveReport:
    """Metrics of one preconditioned solve (one Table 2 cell group).

    Attributes
    ----------
    solve:
        The PCG result (iterations = the paper's ``N_σ²``).
    sparsify_seconds:
        Sparsifier construction time (the paper's ``T_σ²``).
    precondition_seconds:
        Preconditioner factorization time.
    solve_seconds:
        PCG time.
    density:
        Sparsifier edges per vertex (``|E_σ²|/|V|``).
    sigma2:
        The similarity target used.
    """

    solve: SolveResult
    sparsify_seconds: float
    precondition_seconds: float
    solve_seconds: float
    density: float
    sigma2: float

    @property
    def iterations(self) -> int:
        return self.solve.iterations


class SimilarityAwareSolver:
    """Factor-once/solve-many SDD solver with a σ²-similar preconditioner.

    Parameters
    ----------
    matrix_or_graph:
        Sparse SDD matrix (Laplacian or strictly dominant) or a
        :class:`~repro.graphs.Graph` (treated as its Laplacian).
    sigma2:
        Similarity target for the sparsifier preconditioner — smaller
        means fewer PCG iterations but a denser preconditioner.
    precond_method:
        ``"auto"``/``"cholesky"``/``"amg"`` factorization of the
        sparsified system.
    sparsify_options:
        Extra keyword arguments for
        :func:`repro.sparsify.sparsify_graph`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graphs import generators
    >>> from repro.apps import SimilarityAwareSolver
    >>> g = generators.grid2d(40, 40, seed=0)
    >>> solver = SimilarityAwareSolver(g, sigma2=50.0, seed=0)
    >>> b = np.zeros(g.n); b[0], b[-1] = 1.0, -1.0
    >>> report = solver.solve(b)
    >>> report.solve.converged
    True
    """

    def __init__(
        self,
        matrix_or_graph: sp.spmatrix | Graph,
        sigma2: float = 50.0,
        precond_method: str = "auto",
        seed: int | np.random.Generator | None = None,
        **sparsify_options,
    ) -> None:
        if isinstance(matrix_or_graph, Graph):
            self.graph = matrix_or_graph
            self.slack = np.zeros(self.graph.n)
            self.matrix = self.graph.laplacian()
            self.singular = True
        else:
            self.matrix = matrix_or_graph.tocsr()
            self.graph, self.slack = sdd_split(self.matrix)
            self.singular = bool(np.all(self.slack == 0.0))
        self.sigma2 = float(sigma2)
        with Timer() as t_sparsify:
            self.sparsify_result: SparsifyResult = sparsify_graph(
                self.graph, sigma2=self.sigma2, seed=seed, **sparsify_options
            )
        self.sparsify_seconds = t_sparsify.elapsed
        with Timer() as t_factor:
            self.preconditioner = sparsifier_preconditioner(
                self.sparsify_result.sparsifier,
                method=precond_method,
                slack=None if self.singular else self.slack,
            )
        self.precondition_seconds = t_factor.elapsed

    @property
    def density(self) -> float:
        """Preconditioner density ``|E_σ²| / |V|``."""
        return self.sparsify_result.density

    def solve(
        self,
        b: np.ndarray,
        tol: float = 1e-3,
        maxiter: int = 1000,
    ) -> SDDSolveReport:
        """PCG solve to the paper's ``‖Ax − b‖ ≤ tol·‖b‖`` criterion."""
        with Timer() as t_solve:
            result = pcg(
                self.matrix,
                b,
                preconditioner=self.preconditioner,
                tol=tol,
                maxiter=maxiter,
                project_nullspace=self.singular,
            )
        return SDDSolveReport(
            solve=result,
            sparsify_seconds=self.sparsify_seconds,
            precondition_seconds=self.precondition_seconds,
            solve_seconds=t_solve.elapsed,
            density=self.density,
            sigma2=self.sigma2,
        )
