"""Complex-network sparsification (paper Section 4.4, Table 4).

Simplifies finite-element, protein, data and social networks to a
σ²-similar proxy and quantifies the payoff for downstream spectral
computation: edge reduction ``|E|/|E_s|``, the drop of the dominant
generalized eigenvalue ``λ₁/λ̃₁`` from the tree backbone to the final
sparsifier, and the time to compute the first ``k`` Laplacian
eigenvectors on the original versus the sparsified graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.solvers.amg import AMGSolver
from repro.spectral.eigs import smallest_laplacian_eigs
from repro.sparsify.similarity_aware import SparsifyResult, sparsify_graph
from repro.utils.timing import Timer

__all__ = ["NetworkSimplifyReport", "simplify_network"]


@dataclass
class NetworkSimplifyReport:
    """One Table 4 row.

    Attributes
    ----------
    result:
        Full sparsification result.
    total_seconds:
        Sparsifier extraction time (``T_tot``).
    edge_reduction:
        ``|E| / |E_s|``.
    lambda1_ratio:
        ``λ₁ / λ̃₁``: dominant generalized eigenvalue of the pure
        spanning tree over that of the final sparsifier — how much the
        recovered off-tree edges improved the approximation.
    eig_seconds_original / eig_seconds_sparsified:
        Time to compute the first ``k`` nontrivial eigenvectors on
        ``G`` and on ``P`` (``T_eig^o`` / ``T_eig^s``); ``nan`` when the
        timing was skipped.
    """

    result: SparsifyResult
    total_seconds: float
    edge_reduction: float
    lambda1_ratio: float
    eig_seconds_original: float
    eig_seconds_sparsified: float


def simplify_network(
    graph: Graph,
    sigma2: float = 100.0,
    eig_count: int = 10,
    time_eigensolves: bool = True,
    seed: int | np.random.Generator | None = None,
    workers: int = 1,
    shard_max_nodes: int | None = None,
    backend: str = "auto",
    **sparsify_options,
) -> NetworkSimplifyReport:
    """Sparsify a network and measure the spectral-computation payoff.

    Parameters
    ----------
    graph:
        The network to simplify.  Disconnected networks (common in
        protein/social datasets) are routed through the shard-parallel
        pipeline, one shard per component.
    sigma2:
        Similarity target (the paper uses σ² ≈ 100 for Table 4).
    eig_count:
        Eigenvectors for the timing comparison (paper uses ten).
    time_eigensolves:
        Skip the (possibly slow) eigensolve timings when False.
    seed:
        Randomness for the sparsifier and eigensolvers.
    workers:
        Concurrent shard workers for the sparsification stage.
    shard_max_nodes:
        Optional cap on shard sizes (Fiedler splitting of oversized
        components).
    backend:
        Shard execution backend (see
        :class:`repro.sparsify.parallel.ShardedSparsifier`).
    """
    with Timer() as t_total:
        result = sparsify_graph(
            graph, sigma2=sigma2, seed=seed, workers=workers,
            shard_max_nodes=shard_max_nodes, backend=backend,
            **sparsify_options,
        )
    # λ1 of the tree backbone is the first densification iteration's
    # λmax estimate; λ̃1 is the final estimate.  On sharded runs the
    # concatenated iteration list interleaves unrelated pencils, but λ1
    # of a block-diagonal pencil is the max over shards, so compare the
    # per-shard extremes instead.
    shard_stats = getattr(result, "shards", None)
    if shard_stats is not None:
        firsts = [s.lambda_max_first for s in shard_stats
                  if np.isfinite(s.lambda_max_first)]
        lasts = [s.lambda_max_last for s in shard_stats
                 if np.isfinite(s.lambda_max_last)]
        lambda1_tree = max(firsts) if firsts else float("nan")
        lambda1_final = max(lasts) if lasts else float("nan")
    elif result.iterations:
        lambda1_tree = result.iterations[0].lambda_max
        lambda1_final = result.iterations[-1].lambda_max
    else:  # pragma: no cover - densify always records at least one pass
        lambda1_tree = lambda1_final = float("nan")
    eig_orig = float("nan")
    eig_sparse = float("nan")
    if time_eigensolves:
        import warnings

        k = min(eig_count, graph.n - 2)
        # Timing comparison, not a high-accuracy eigensolve: LOBPCG on
        # irregular (scale-free) graphs stalls below ~1e-6, so use an
        # application-grade tolerance and mute its accuracy warnings.
        with warnings.catch_warnings():
            warnings.filterwarnings("ignore", category=UserWarning)
            with Timer() as t_eig_orig:
                smallest_laplacian_eigs(
                    graph.laplacian(), k=k,
                    preconditioner=AMGSolver(graph.laplacian()),
                    seed=seed, tol=1e-3, maxiter=200,
                )
            eig_orig = t_eig_orig.elapsed
            with Timer() as t_eig_sparse:
                smallest_laplacian_eigs(
                    result.sparsifier.laplacian(), k=k,
                    preconditioner=AMGSolver(result.sparsifier.laplacian()),
                    seed=seed, tol=1e-3, maxiter=200,
                )
            eig_sparse = t_eig_sparse.elapsed
    return NetworkSimplifyReport(
        result=result,
        total_seconds=t_total.elapsed,
        edge_reduction=result.edge_reduction,
        lambda1_ratio=lambda1_tree / lambda1_final,
        eig_seconds_original=eig_orig,
        eig_seconds_sparsified=eig_sparse,
    )
