"""The paper's applications: SDD solver, spectral partitioner, network simplifier."""

from repro.apps.sdd_solver import SDDSolveReport, SimilarityAwareSolver
from repro.apps.partitioner import PartitionReport, partition_graph
from repro.apps.network_simplify import NetworkSimplifyReport, simplify_network
from repro.apps.power_grid import (
    VectorlessResult,
    VectorlessVerifier,
    worst_case_drop,
)

__all__ = [
    "SDDSolveReport",
    "SimilarityAwareSolver",
    "PartitionReport",
    "partition_graph",
    "NetworkSimplifyReport",
    "simplify_network",
    "VectorlessResult",
    "VectorlessVerifier",
    "worst_case_drop",
]
