"""Scalable spectral graph partitioner (paper Section 4.3).

Bipartitions a graph with the sign cut of its approximate Fiedler
vector, computed by a few inverse power iterations.  Two solver modes
reproduce Table 3:

- ``"direct"``: every inverse-iteration solve uses a full sparse
  factorization of ``L_G`` (the paper's CHOLMOD column, ``T_D``/``M_D``);
- ``"sparsifier"``: solves use PCG on ``L_G`` preconditioned by the
  factorized σ²-similar sparsifier (``T_I``/``M_I``), which needs a
  fraction of the memory and time at matched partition quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.solvers.cg import pcg
from repro.solvers.cholesky import DirectSolver
from repro.spectral.fiedler import FiedlerResult, fiedler_vector
from repro.spectral.partition import balance_ratio, sign_cut
from repro.sparsify.similarity_aware import sparsify_graph
from repro.utils.timing import Timer

__all__ = ["PartitionReport", "partition_graph"]


@dataclass
class PartitionReport:
    """One partitioning run (a Table 3 row half).

    Attributes
    ----------
    labels:
        Boolean sign-cut labels.
    balance:
        ``|V₊| / |V₋|``.
    fiedler:
        The Fiedler iteration diagnostics.
    solve_seconds:
        Fiedler computation time excluding sparsification (the paper's
        ``T_D``/``T_I`` convention).
    setup_seconds:
        Factorization (direct) or sparsification+factorization
        (iterative) time.
    memory_bytes:
        Factor bytes (direct) or preconditioner factor bytes (iterative)
        — the paper's ``M_D``/``M_I``.
    method:
        ``"direct"`` or ``"sparsifier"``.
    """

    labels: np.ndarray
    balance: float
    fiedler: FiedlerResult
    solve_seconds: float
    setup_seconds: float
    memory_bytes: int
    method: str


def partition_graph(
    graph: Graph,
    method: str = "sparsifier",
    sigma2: float = 200.0,
    iterations: int = 8,
    pcg_tol: float = 1e-5,
    seed: int | np.random.Generator | None = None,
    **sparsify_options,
) -> PartitionReport:
    """Spectral bipartition via the approximate Fiedler vector.

    Parameters
    ----------
    graph:
        Connected graph to split.
    method:
        ``"direct"`` or ``"sparsifier"`` (see module docstring).
    sigma2:
        Similarity target of the preconditioner (paper uses σ² ≤ 200
        for Table 3).
    iterations:
        Inverse power iterations ("a few" per [20]).
    pcg_tol:
        Relative-residual target of the inner PCG solves.
    seed:
        Randomness for the start vector and the sparsifier.
    """
    L = graph.laplacian()
    if method == "direct":
        with Timer() as t_setup:
            solver = DirectSolver(L.tocsc())
        memory = solver.factor_bytes
        solve = solver.solve
    elif method == "sparsifier":
        with Timer() as t_setup:
            sparsify_result = sparsify_graph(
                graph, sigma2=sigma2, seed=seed, **sparsify_options
            )
            preconditioner = DirectSolver(
                sparsify_result.sparsifier.laplacian().tocsc()
            )
        memory = preconditioner.factor_bytes

        def solve(b: np.ndarray) -> np.ndarray:
            return pcg(
                L, b, preconditioner=preconditioner, tol=pcg_tol,
                maxiter=1000, project_nullspace=True,
            ).x

    else:
        raise ValueError(f"unknown method {method!r}")

    with Timer() as t_solve:
        fiedler = fiedler_vector(L, solve, iterations=iterations, seed=seed)
    labels = sign_cut(fiedler.vector)
    return PartitionReport(
        labels=labels,
        balance=balance_ratio(labels),
        fiedler=fiedler,
        solve_seconds=t_solve.elapsed,
        setup_seconds=t_setup.elapsed,
        memory_bytes=memory,
        method=method,
    )
