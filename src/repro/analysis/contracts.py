"""R2 stage-contract rules: ``requires``/``provides`` vs. actual dataflow.

A :class:`~repro.core.stage.Stage` declares the pipeline-context names
it consumes (``requires``) and defines (``provides``); the pipeline's
runtime wiring validation trusts those declarations.  These rules close
the loop statically: the ``ctx.<attr>`` reads and writes inside every
stage class are inferred from the AST and cross-checked against the
declarations, so contract drift is caught at lint time instead of as a
``PipelineValidationError`` (or worse, a silent parity break) at run
time.

- **R201** — a stage reads a *flowing* context name it neither
  requires nor provides (nor receives from a sub-stage it drives).
- **R202** — a stage writes a context name it does not declare in
  ``provides``.
- **R203** — a declared requirement is never read, or a declared
  provision is never written (dead contract entries mislead both the
  wiring validator and human readers).
- **R204** — a statically visible ``SparsifyPipeline([...])``
  composition orders stages so that a requirement is only produced by
  a *later* stage (names absent from the whole composition are assumed
  to be pre-mounted on the context and are not flagged).
- **R205** — a ``ctx.kernel(...)`` dispatch whose kernel name is not a
  string literal, or names no registered kernel: the dataflow of such
  a call cannot be checked statically, so the contract rules would
  silently under-approximate.

The analysis understands the repo's loop-driver idiom: stage instances
assigned to ``self.<attr>`` in ``__init__`` contribute their
``provides`` to the driver's available names, and calls to context
helpers (``ctx.ensure_state()``) count as reads/writes of the names
they touch (:data:`~repro.analysis.framework.CONTEXT_METHOD_EFFECTS`).
Since the kernel-backend refactor, stages delegate their body to
``ctx.kernel("<name>")``; each such dispatch counts as reading/writing
the registered kernel's declared dataflow
(:data:`~repro.analysis.framework.KERNEL_DISPATCH_EFFECTS`, pinned to
``repro.kernels.registry.KERNELS`` by a cross-check test).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.framework import (
    CONTEXT_METHOD_EFFECTS,
    KERNEL_DISPATCH_EFFECTS,
    LintRun,
    ParsedModule,
    Rule,
    dotted_name,
    register,
)

__all__ = ["StageContractRule", "PipelineOrderRule", "StageInfo"]

#: Method names whose call on ``ctx.<name>.<method>(...)`` mutates the
#: named context value in place (counts as a write for R202/R203).
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "clear", "pop",
    "popitem", "remove", "discard", "setdefault", "sort",
})


@dataclass
class StageInfo:
    """Statically extracted contract of one ``Stage`` subclass.

    Attributes
    ----------
    name:
        Class name.
    module_posix:
        POSIX path of the defining module.
    lineno:
        Line of the ``class`` statement.
    requires, provides:
        Union of the class-level declarations and every
        ``self.requires/provides = (...)`` assignment in ``__init__``
        (branch-dependent declarations are unioned).
    child_classes:
        Names of stage classes instantiated and stored on ``self`` in
        ``__init__`` — the loop-driver pattern; their ``provides``
        count as internally produced names.
    reads, writes:
        ``ctx.<attr>`` loads/stores inferred from the method bodies,
        mapped to the first line each was seen on.
    kernel_issues:
        ``(lineno, message)`` pairs for ``ctx.kernel(...)`` dispatches
        whose dataflow could not be resolved statically (unknown or
        non-literal kernel name) — reported as R205.
    """

    name: str
    module_posix: str
    lineno: int
    requires: set = field(default_factory=set)
    provides: set = field(default_factory=set)
    child_classes: list = field(default_factory=list)
    reads: dict = field(default_factory=dict)
    writes: dict = field(default_factory=dict)
    kernel_issues: list = field(default_factory=list)


def _is_stage_class(node: ast.ClassDef) -> bool:
    """Whether a class statically subclasses ``Stage``."""
    for base in node.bases:
        if isinstance(base, ast.Name) and base.id == "Stage":
            return True
        if isinstance(base, ast.Attribute) and base.attr == "Stage":
            return True
    return False


def _string_tuple(node: ast.AST) -> set | None:
    """Extract a tuple/list of string constants, or ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    names: set = set()
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        names.add(element.value)
    return names


def _ctx_param(func: ast.FunctionDef) -> str | None:
    """The name of the pipeline-context parameter, if the method has one."""
    for arg in func.args.args + func.args.kwonlyargs:
        if arg.arg == "ctx":
            return "ctx"
        annotation = arg.annotation
        if annotation is not None:
            text = ast.unparse(annotation)
            if "PipelineContext" in text:
                return arg.arg
    return None


def _extract_stage(node: ast.ClassDef, module: ParsedModule) -> StageInfo:
    """Build the :class:`StageInfo` of one stage class definition."""
    info = StageInfo(node.name, module.posix, node.lineno)
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id in (
                    "requires", "provides"
                ):
                    names = _string_tuple(stmt.value)
                    if names is not None:
                        getattr(info, target.id).update(names)
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if stmt.name == "__init__":
            _extract_init(stmt, info)
        param = _ctx_param(stmt)
        if param is not None:
            _extract_ctx_usage(stmt, param, info)
    return info


def _extract_init(func: ast.FunctionDef, info: StageInfo) -> None:
    """Union dynamic contract assignments and child-stage attributes."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if target.attr in ("requires", "provides"):
                names = _string_tuple(node.value)
                if names is not None:
                    getattr(info, target.attr).update(names)
            elif isinstance(node.value, ast.Call):
                callee = dotted_name(node.value.func)
                if callee is not None and callee.split(".")[-1].endswith("Stage"):
                    info.child_classes.append(callee.split(".")[-1])


def _record(mapping: dict, name: str, lineno: int) -> None:
    """Record the first line a context name was seen on."""
    mapping.setdefault(name, lineno)


def _extract_ctx_usage(
    func: ast.FunctionDef, param: str, info: StageInfo
) -> None:
    """Infer ``ctx.<attr>`` reads/writes from one method body."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == param):
                    _record(info.writes, target.attr, target.lineno)
                    if isinstance(node, ast.AugAssign):
                        _record(info.reads, target.attr, target.lineno)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if isinstance(node.value, ast.Name) and node.value.id == param:
                _record(info.reads, node.attr, node.lineno)
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if not isinstance(func_expr, ast.Attribute):
                continue
            target = func_expr.value
            # ctx.kernel("<name>") dispatches to a registered kernel;
            # its declared dataflow counts as this stage's reads/writes.
            if (isinstance(target, ast.Name) and target.id == param
                    and func_expr.attr == "kernel"):
                _extract_kernel_dispatch(node, info)
            # ctx.helper() with declared dataflow effects.
            elif (isinstance(target, ast.Name) and target.id == param
                    and func_expr.attr in CONTEXT_METHOD_EFFECTS):
                reads, writes = CONTEXT_METHOD_EFFECTS[func_expr.attr]
                for name in reads:
                    _record(info.reads, name, node.lineno)
                for name in writes:
                    _record(info.writes, name, node.lineno)
            # ctx.<name>.append(...) and friends mutate <name> in place.
            elif (func_expr.attr in _MUTATORS
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == param):
                _record(info.writes, target.attr, node.lineno)


def _extract_kernel_dispatch(node: ast.Call, info: StageInfo) -> None:
    """Resolve one ``ctx.kernel(...)`` call's dataflow, or record R205."""
    arg = node.args[0] if node.args else None
    if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
        info.kernel_issues.append((
            node.lineno,
            "ctx.kernel(...) dispatch with a non-literal kernel name "
            "(dataflow cannot be checked statically)",
        ))
        return
    effects = KERNEL_DISPATCH_EFFECTS.get(arg.value)
    if effects is None:
        known = ", ".join(sorted(KERNEL_DISPATCH_EFFECTS))
        info.kernel_issues.append((
            node.lineno,
            f"ctx.kernel({arg.value!r}) dispatches to an unknown kernel "
            f"(known: {known})",
        ))
        return
    reads, writes = effects
    for name in reads:
        _record(info.reads, name, node.lineno)
    for name in writes:
        _record(info.writes, name, node.lineno)


@register
class StageContractRule(Rule):
    """R201–R203, R205: per-class contract checks of every ``Stage`` subclass."""

    rule_id = "R201"
    title = "stage contract drift"

    def collect(self, module: ParsedModule, run: LintRun) -> None:
        """Gather every stage class declaration into the run state.

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state; ``run.stage_classes`` is populated.
        """
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_stage_class(node):
                run.stage_classes[node.name] = _extract_stage(node, module)

    def check(self, module: ParsedModule, run: LintRun) -> Iterator[Finding]:
        """Cross-check inferred dataflow against declared contracts.

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state with every collected stage class.

        Returns
        -------
        Iterator[Finding]
            R201 (undeclared read), R202 (undeclared write), R203
            (dead declaration) and R205 (unresolvable kernel dispatch)
            findings for stages in this module.
        """
        flowing = run.config.context_flowing
        path = str(module.path)
        for info in run.stage_classes.values():
            if info.module_posix != module.posix:
                continue
            child_provides: set = set()
            for child in info.child_classes:
                child_info = run.stage_classes.get(child)
                if child_info is not None:
                    child_provides |= child_info.provides
            declared = info.requires | info.provides | child_provides
            for name in sorted(set(info.reads) & flowing - declared):
                yield Finding(
                    path, info.reads[name], 0, "R201",
                    f"stage '{info.name}' reads ctx.{name} but declares it "
                    "in neither requires nor provides",
                    symbol=info.name,
                )
            for name in sorted(set(info.writes) - info.provides):
                yield Finding(
                    path, info.writes[name], 0, "R202",
                    f"stage '{info.name}' writes ctx.{name} without "
                    "declaring it in provides",
                    symbol=info.name,
                )
            for name in sorted((info.requires & flowing) - set(info.reads)):
                yield Finding(
                    path, info.lineno, 0, "R203",
                    f"stage '{info.name}' declares requires={name!r} but "
                    "never reads it (dead declaration)",
                    symbol=info.name,
                )
            for name in sorted(
                info.provides - set(info.writes) - child_provides
            ):
                yield Finding(
                    path, info.lineno, 0, "R203",
                    f"stage '{info.name}' declares provides={name!r} but "
                    "never writes it (dead declaration)",
                    symbol=info.name,
                )
            for lineno, message in info.kernel_issues:
                yield Finding(
                    path, lineno, 0, "R205",
                    f"stage '{info.name}': {message}",
                    symbol=info.name,
                )


@register
class PipelineOrderRule(Rule):
    """R204: mis-ordered statically visible pipeline compositions."""

    rule_id = "R204"
    title = "pipeline composition order"

    def check(self, module: ParsedModule, run: LintRun) -> Iterator[Finding]:
        """Validate literal ``SparsifyPipeline([...])`` stage lists.

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state with every collected stage class.

        Returns
        -------
        Iterator[Finding]
            One finding per requirement produced only by a later
            stage of the same composition.
        """
        flowing = run.config.context_flowing
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            callee = dotted_name(node.func)
            if callee is None or callee.split(".")[-1] != "SparsifyPipeline":
                continue
            stage_list = node.args[0]
            if not isinstance(stage_list, (ast.List, ast.Tuple)):
                continue
            infos = []
            for element in stage_list.elts:
                if not isinstance(element, ast.Call):
                    infos = []
                    break
                name = dotted_name(element.func)
                info = run.stage_classes.get(
                    name.split(".")[-1] if name else ""
                )
                if info is None:
                    infos = []
                    break
                infos.append(info)
            if not infos:
                continue  # not fully resolvable statically
            provided_later = [set() for _ in infos]
            running: set = set()
            for i in range(len(infos) - 1, -1, -1):
                provided_later[i] = set(running)
                running |= infos[i].provides
            available: set = set()
            for i, info in enumerate(infos):
                for req in sorted((info.requires & flowing) - available):
                    if req in provided_later[i]:
                        yield Finding(
                            str(module.path), stage_list.elts[i].lineno,
                            stage_list.elts[i].col_offset, "R204",
                            f"pipeline stage '{info.name}' requires "
                            f"'{req}', which only a later stage of this "
                            "composition provides (stages mis-ordered)",
                            symbol=info.name,
                        )
                available |= info.provides
