"""The typed result every lint rule emits.

A :class:`Finding` pins one rule violation to a ``file:line:col``
location with a stable rule identifier, so reporters, suppressions
and CI gates all speak the same currency.  Findings are immutable,
totally ordered (by location, then rule) and round-trip through plain
dicts for the JSON reporter.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Path of the offending file, as passed to the linter.
    line:
        1-based line of the violation (suppression comments on this
        line apply to it).
    col:
        0-based column offset, as reported by :mod:`ast`.
    rule:
        Stable rule identifier (``R101`` ... ``R403``).
    message:
        Human-readable description of the violation.
    symbol:
        Qualified name of the offending object when the rule knows it
        (R403 reports ``Class.method`` / ``function`` here so the
        docstring test suite can key on it); empty otherwise.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    symbol: str = ""

    def format(self) -> str:
        """Render the finding as one ``path:line:col: RULE message`` line.

        Returns
        -------
        str
            The text-reporter representation.
        """
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        """JSON-ready mapping of the finding's fields.

        Returns
        -------
        dict
            Plain ``{field: value}`` mapping, safe to ``json.dump``.
        """
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "Finding":
        """Rebuild a finding from :meth:`as_dict` output.

        Parameters
        ----------
        data:
            A mapping with the :class:`Finding` field names.

        Returns
        -------
        Finding
            The reconstructed finding.

        Raises
        ------
        ValueError
            If required fields are missing or of the wrong type.
        """
        try:
            return Finding(
                path=str(data["path"]),
                line=int(data["line"]),
                col=int(data["col"]),
                rule=str(data["rule"]),
                message=str(data["message"]),
                symbol=str(data.get("symbol", "")),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed finding record: {data!r}") from exc
