"""Project-specific static analysis: the ``repro lint`` subsystem.

An AST-level checker for the invariants the reproduction's test suite
can only probe at runtime: determinism of the filter loop (R1xx),
``Stage.requires``/``provides`` contract fidelity (R2xx), lock
discipline in the serving tier (R3xx) and public-API hygiene (R4xx).
See ``docs/LINTING.md`` for the rule catalogue and suppression syntax.

Typical use::

    from repro.analysis import lint_paths

    result = lint_paths(["src"])
    for finding in result.findings:
        print(finding.format())
"""

from repro.analysis.finding import Finding
from repro.analysis.framework import (
    CONTEXT_FLOWING,
    CONTEXT_KNOBS,
    LintConfig,
    LintResult,
    LintRun,
    ParsedModule,
    RULES,
    Rule,
    lint_files,
    lint_paths,
    register,
)
from repro.analysis.reporters import (
    findings_from_json,
    render_json,
    render_text,
)

__all__ = [
    "CONTEXT_FLOWING",
    "CONTEXT_KNOBS",
    "Finding",
    "LintConfig",
    "LintResult",
    "LintRun",
    "ParsedModule",
    "RULES",
    "Rule",
    "findings_from_json",
    "lint_files",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
]
