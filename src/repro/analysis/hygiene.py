"""R4 API-hygiene rules: exceptions, defaults and docstring contracts.

- **R401** — bare ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit`` and hides real failures behind fallback paths.
- **R402** — mutable default arguments (``def f(x=[])``) are shared
  across calls and leak state between invocations.
- **R403** — the public-docstring completeness contract previously
  enforced only by runtime reflection in ``tests/test_docstrings.py``,
  now derived from the AST so ``repro lint`` (and CI) can check it
  without importing the code.  The semantics intentionally mirror the
  runtime audit: public module-level functions and public methods
  (plus ``__call__``) of public classes in the audited packages need a
  docstring whose summary ends in punctuation (pydocstyle D415), a
  numpydoc ``Parameters`` section when the signature takes arguments
  beyond ``self``/``cls``, a ``Returns`` section when the return
  annotation is not ``None``, and a ``Raises`` section when the body
  raises (lines marked ``pragma: no cover`` are exempt).  Properties,
  static and class methods are skipped, exactly as the runtime walker
  (which only sees plain functions) skips them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.framework import (
    LintRun,
    ParsedModule,
    Rule,
    dotted_name,
    register,
)

__all__ = ["BareExceptRule", "MutableDefaultRule", "DocstringRule"]

_SECTION_UNDERLINE = "---"

#: Decorators that turn a ``def`` into a non-plain-function descriptor;
#: the runtime audit (``inspect.isfunction``) never sees those, so the
#: AST audit skips them too.
_SKIP_DECORATORS = frozenset({
    "property", "cached_property", "staticmethod", "classmethod",
    "setter", "getter", "deleter", "abstractmethod",
})


@register
class BareExceptRule(Rule):
    """R401: bare ``except:`` clauses."""

    rule_id = "R401"
    title = "bare except"

    def check(self, module: ParsedModule, run: LintRun) -> Iterator[Finding]:
        """Flag every exception handler without an exception type.

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state (unused).

        Returns
        -------
        Iterator[Finding]
            One finding per bare handler.
        """
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield Finding(
                    str(module.path), node.lineno, node.col_offset,
                    self.rule_id,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                    "name the exception type (or use 'except Exception:')",
                )


def _is_mutable_literal(node: ast.AST) -> bool:
    """Whether a default-value expression builds a fresh mutable object."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray")
    return False


@register
class MutableDefaultRule(Rule):
    """R402: mutable default argument values."""

    rule_id = "R402"
    title = "mutable default argument"

    def check(self, module: ParsedModule, run: LintRun) -> Iterator[Finding]:
        """Flag list/dict/set-valued parameter defaults.

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state (unused).

        Returns
        -------
        Iterator[Finding]
            One finding per mutable default.
        """
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    name = getattr(node, "name", "<lambda>")
                    yield Finding(
                        str(module.path), default.lineno, default.col_offset,
                        self.rule_id,
                        f"'{name}' has a mutable default argument "
                        "(shared across calls); default to None and build "
                        "the object in the body",
                        symbol=name,
                    )


def _decorator_names(func: ast.FunctionDef) -> set:
    """Trailing names of every decorator on a function."""
    names: set = set()
    for decorator in func.decorator_list:
        expr = decorator
        if isinstance(expr, ast.Call):
            expr = expr.func
        dotted = dotted_name(expr)
        if dotted is not None:
            names.add(dotted.split(".")[-1])
    return names


def _audited(func: ast.FunctionDef, *, method: bool) -> bool:
    """Whether the runtime docstring walker would audit this def."""
    if method:
        if func.name.startswith("_") and func.name != "__call__":
            return False
    elif func.name.startswith("_"):
        return False
    return not (_decorator_names(func) & _SKIP_DECORATORS)


def _has_section(doc: str, title: str) -> bool:
    """Whether a numpydoc section with ``---`` underline is present."""
    lines = doc.splitlines()
    for i, line in enumerate(lines[:-1]):
        if line.strip() == title and lines[i + 1].strip().startswith(
            _SECTION_UNDERLINE
        ):
            return True
    return False


def _wants_parameters(func: ast.FunctionDef) -> bool:
    """Whether the signature takes arguments beyond ``self``/``cls``."""
    args = func.args
    named = args.posonlyargs + args.args + args.kwonlyargs
    params = [a for a in named if a.arg not in ("self", "cls")]
    return bool(params) or args.vararg is not None or args.kwarg is not None


def _wants_returns(func: ast.FunctionDef) -> bool:
    """Whether the return annotation promises a value."""
    annotation = func.returns
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and annotation.value in (
        None, "None"
    ):
        return False
    return True


def _wants_raises(func: ast.FunctionDef, module: ParsedModule) -> bool:
    """Whether the body raises outside ``pragma: no cover`` lines."""
    for node in ast.walk(func):
        if isinstance(node, ast.Raise):
            line = ""
            if 1 <= node.lineno <= len(module.lines):
                line = module.lines[node.lineno - 1]
            if "pragma: no cover" not in line:
                return True
    return False


@register
class DocstringRule(Rule):
    """R403: public-docstring completeness in the audited packages."""

    rule_id = "R403"
    title = "public docstring contract"

    def check(self, module: ParsedModule, run: LintRun) -> Iterator[Finding]:
        """Audit public functions and methods of one module.

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state (provides the audited-package config).

        Returns
        -------
        Iterator[Finding]
            One finding per missing docstring or missing section.
        """
        if not module.in_any(run.config.docstring_packages):
            return
        stem = module.path.stem
        if stem.startswith("_") and stem != "__init__":
            return
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _audited(stmt, method=False):
                    yield from self._check_def(stmt, stmt.name, module)
            elif isinstance(stmt, ast.ClassDef) and not stmt.name.startswith(
                "_"
            ):
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        if _audited(member, method=True):
                            yield from self._check_def(
                                member, f"{stmt.name}.{member.name}", module
                            )

    def _check_def(
        self, func: ast.FunctionDef, symbol: str, module: ParsedModule
    ) -> Iterator[Finding]:
        """Apply the four docstring checks to one function."""
        path = str(module.path)
        doc = ast.get_docstring(func, clean=True)
        if not doc:
            yield Finding(
                path, func.lineno, func.col_offset, self.rule_id,
                f"public function '{symbol}' has no docstring",
                symbol=symbol,
            )
            return
        summary = doc.splitlines()[0].strip()
        if not summary or summary[-1] not in ".?!:":
            yield Finding(
                path, func.lineno, func.col_offset, self.rule_id,
                f"'{symbol}': docstring summary must end with punctuation "
                f"(D415): {summary!r}",
                symbol=symbol,
            )
        if _wants_parameters(func) and not _has_section(doc, "Parameters"):
            yield Finding(
                path, func.lineno, func.col_offset, self.rule_id,
                f"'{symbol}' takes arguments but its docstring has no "
                "numpydoc 'Parameters' section",
                symbol=symbol,
            )
        if _wants_returns(func) and not _has_section(doc, "Returns"):
            yield Finding(
                path, func.lineno, func.col_offset, self.rule_id,
                f"'{symbol}' returns a value but its docstring has no "
                "numpydoc 'Returns' section",
                symbol=symbol,
            )
        if _wants_raises(func, module) and not _has_section(doc, "Raises"):
            yield Finding(
                path, func.lineno, func.col_offset, self.rule_id,
                f"'{symbol}' raises but its docstring has no numpydoc "
                "'Raises' section",
                symbol=symbol,
            )
