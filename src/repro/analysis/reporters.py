"""Text and JSON reporters for lint results.

The text form is the one humans and CI logs read — one
``path:line:col: RULE message`` line per finding plus a summary line.
The JSON form is a versioned schema (``{"version": 1, ...}``) that
round-trips through :func:`findings_from_json`, so downstream tooling
can diff lint runs without scraping text.
"""

from __future__ import annotations

import json

from repro.analysis.finding import Finding
from repro.analysis.framework import LintResult

__all__ = ["render_text", "render_json", "findings_from_json"]

#: Schema version stamped into every JSON report.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """Render a lint result as human-readable lines.

    Parameters
    ----------
    result:
        The lint run's outcome.

    Returns
    -------
    str
        One line per finding, then a summary line.
    """
    lines = [finding.format() for finding in result.findings]
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"{len(result.findings)} {noun} in {result.files} files "
        f"({result.suppressed} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Render a lint result as a versioned JSON document.

    Parameters
    ----------
    result:
        The lint run's outcome.

    Returns
    -------
    str
        A JSON object with ``version``, ``files``, ``suppressed`` and
        ``findings`` keys.
    """
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files": result.files,
        "suppressed": result.suppressed,
        "findings": [finding.as_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def findings_from_json(text: str) -> tuple:
    """Parse a :func:`render_json` document back into findings.

    Parameters
    ----------
    text:
        JSON produced by :func:`render_json`.

    Returns
    -------
    tuple
        The reconstructed :class:`~repro.analysis.finding.Finding`
        objects, in document order.

    Raises
    ------
    ValueError
        If the document is not valid JSON, has an unknown schema
        version, or contains malformed finding records.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not a JSON lint report: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != (
        JSON_SCHEMA_VERSION
    ):
        raise ValueError(
            f"unsupported lint report version: {payload!r:.80}"
        )
    records = payload.get("findings")
    if not isinstance(records, list):
        raise ValueError("lint report has no 'findings' list")
    return tuple(Finding.from_dict(record) for record in records)
