"""Rule framework and driver of the ``repro lint`` static analyzer.

The linter is a project-specific AST checker: it parses every target
file once (:class:`ParsedModule`), runs the registered rules in two
passes — a *collect* pass that lets cross-file rules gather global
facts (the stage-contract rule needs every ``Stage`` declaration
before it can validate a pipeline composition in another file) and a
*check* pass that emits :class:`~repro.analysis.finding.Finding`
objects — and filters the result through per-line suppression
comments::

    risky_call()  # repro-lint: disable=R101
    another()     # repro-lint: disable=R101,R301
    third()       # repro-lint: disable=all

Rules register themselves with the :func:`register` decorator;
:data:`RULES` is the registry the driver and the documentation
generator iterate.  All configuration — which module may touch global
RNG state, which packages are order-sensitive or docstring-audited,
the pipeline-context dataflow names — lives in :class:`LintConfig` so
tests can lint fixture snippets under a tailored policy.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.finding import Finding

__all__ = [
    "LintConfig",
    "LintResult",
    "LintRun",
    "ParsedModule",
    "RULES",
    "Rule",
    "lint_files",
    "lint_paths",
    "register",
]

_SUPPRESS = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Context names that are always available on a fresh
#: :class:`~repro.core.context.PipelineContext` (constructor knobs and
#: defaulted bookkeeping) — stages may read them without declaring.
CONTEXT_KNOBS = frozenset({
    "graph", "rng", "sigma2", "tree_method", "t", "num_vectors",
    "power_iterations", "max_iterations", "max_edges_per_iteration",
    "similarity_mode", "solver_method", "max_update_rank",
    "amg_rebuild_every", "kernel_backend", "estimator_backend",
    "estimator_refresh", "probes", "reuse_embedding",
    "embedding_reused", "estimator_cache", "converged", "iterations",
    "profile",
})

#: Context names that *flow* between stages (None/NaN until a stage or
#: the caller defines them) — reads and writes of these are what the
#: ``requires``/``provides`` contract declares.
CONTEXT_FLOWING = frozenset({
    "initial_mask", "tree_indices", "state", "lambda_max", "lambda_min",
    "sigma2_estimate", "threshold", "off_tree", "heats", "candidates",
    "added", "edge_mask", "rescale",
})

#: Dataflow effects of ``PipelineContext`` helper methods: calling
#: ``ctx.ensure_state()`` reads the backbone and defines ``state``
#: (``initial_mask`` is an *optional* warm start of the helper, so it
#: is deliberately not treated as a contract requirement).
CONTEXT_METHOD_EFFECTS = {
    "ensure_state": (("tree_indices", "state"), ("state",)),
    "edge_cap": (("max_edges_per_iteration",), ()),
}

#: Dataflow effects of ``ctx.kernel("<name>")`` dispatch, per kernel:
#: ``name -> (reads, writes)``.  Must mirror the ``reads``/``writes``
#: declared by ``repro.kernels.registry.KERNELS`` exactly — the
#: cross-check test in ``tests/analysis`` pins the two tables to each
#: other — so stages that delegate their body to a kernel still lint
#: clean under the R201–R204 contract rules.  A dispatch with an
#: unknown or non-literal kernel name is flagged R205.
KERNEL_DISPATCH_EFFECTS = {
    "lsst": (
        ("graph", "rng", "tree_method"),
        ("tree_indices",),
    ),
    "embedding": (
        ("state", "rng", "graph", "t", "num_vectors",
         "reuse_embedding", "probes", "estimator_cache"),
        ("off_tree", "heats", "probes", "embedding_reused",
         "estimator_cache"),
    ),
    "estimator": (
        ("state", "rng", "power_iterations", "sigma2", "probes",
         "estimator_cache", "estimator_backend", "estimator_refresh"),
        ("lambda_max", "lambda_min", "sigma2_estimate",
         "reuse_embedding"),
    ),
    "filtering": (
        ("state", "off_tree", "heats", "lambda_max", "sigma2", "t"),
        ("threshold", "candidates", "lambda_min"),
    ),
    "scoring": (
        ("state", "graph", "candidates", "similarity_mode",
         "max_edges_per_iteration"),
        ("added",),
    ),
}


@dataclass(frozen=True)
class LintConfig:
    """Policy knobs of one lint run.

    Attributes
    ----------
    rng_module:
        Path suffix of the one module allowed to touch global NumPy /
        stdlib RNG state (rule R101 exempts it).
    order_sensitive:
        Path fragments of mask-/tree-producing packages where rule
        R102 flags iteration over sets (hash-order leaks into results).
    docstring_packages:
        Path fragments of the packages under the R403 public-docstring
        audit.
    locked_method_suffix:
        Methods whose name ends with this suffix are assumed to be
        called with the lock already held (rule R301 skips them).
    context_knobs, context_flowing:
        The pipeline-context name partition rules R201–R204 check
        against (defaults mirror ``repro.core.context``).
    rules:
        Optional subset of rule ids to run (``None`` runs every
        registered rule).
    """

    rng_module: str = "utils/rng.py"
    order_sensitive: tuple = (
        "repro/sparsify/", "repro/trees/", "repro/core/", "repro/stream/",
        "repro/kernels/",
    )
    docstring_packages: tuple = (
        "repro/sparsify/", "repro/solvers/", "repro/stream/",
        "repro/serve/", "repro/core/", "repro/analysis/",
        "repro/kernels/", "repro/obs/",
    )
    locked_method_suffix: str = "_locked"
    context_knobs: frozenset = CONTEXT_KNOBS
    context_flowing: frozenset = CONTEXT_FLOWING
    rules: tuple | None = None


class ParsedModule:
    """One target file, parsed once and shared by every rule.

    Attributes
    ----------
    path:
        The file's path as given to the linter (used in findings).
    source:
        Full source text.
    lines:
        Source split into lines (1-based access via ``lines[i - 1]``).
    tree:
        The parsed :class:`ast.Module`.
    suppressions:
        ``line -> {rule ids}`` parsed from ``# repro-lint: disable=``
        comments (the id ``all`` suppresses every rule on that line).
    """

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.suppressions: dict[int, set[str]] = {}
        for number, line in enumerate(self.lines, start=1):
            match = _SUPPRESS.search(line)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                self.suppressions[number] = {i for i in ids if i}

    @property
    def posix(self) -> str:
        """The path in POSIX form, for fragment matching."""
        return self.path.as_posix()

    def in_any(self, fragments: Iterable[str]) -> bool:
        """Whether the module path matches any configured fragment.

        Parameters
        ----------
        fragments:
            Path fragments (e.g. ``"repro/sparsify/"``).

        Returns
        -------
        bool
            True when any fragment occurs in the POSIX path.
        """
        posix = self.posix
        return any(fragment in posix for fragment in fragments)


@dataclass
class LintRun:
    """Cross-file state shared by both rule passes.

    Attributes
    ----------
    config:
        The run's :class:`LintConfig`.
    stage_classes:
        ``class name -> StageInfo`` gathered by the stage-contract
        rule's collect pass (see ``repro.analysis.contracts``).
    """

    config: LintConfig
    stage_classes: dict = field(default_factory=dict)


class Rule:
    """Base class of every lint rule.

    Subclasses set ``rule_id``/``title`` and implement :meth:`check`;
    rules that need cross-file facts gather them in :meth:`collect`,
    which the driver runs over *every* module before any check.
    """

    rule_id: str = "R000"
    title: str = "abstract rule"

    def collect(self, module: ParsedModule, run: LintRun) -> None:
        """Gather cross-file facts from one module (first pass).

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state to stash facts on.
        """
        return None

    def check(self, module: ParsedModule, run: LintRun) -> Iterator[Finding]:
        """Yield findings for one module (second pass).

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state (collect-pass facts and config).

        Returns
        -------
        Iterator[Finding]
            The rule's findings in this module.

        Raises
        ------
        NotImplementedError
            Always, on the base class.
        """
        raise NotImplementedError


#: Registry of every known rule, ``rule id -> rule class``.
RULES: dict[str, type] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a rule to :data:`RULES`.

    Parameters
    ----------
    rule_cls:
        A :class:`Rule` subclass with a unique ``rule_id``.

    Returns
    -------
    type
        The class, unchanged (decorator protocol).

    Raises
    ------
    ValueError
        If the rule id is already registered.
    """
    if rule_cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id!r}")
    RULES[rule_cls.rule_id] = rule_cls
    return rule_cls


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run.

    Attributes
    ----------
    findings:
        Unsuppressed findings, sorted by location then rule.
    suppressed:
        Number of findings silenced by ``# repro-lint: disable=``
        comments.
    files:
        Number of files analyzed.
    """

    findings: tuple
    suppressed: int
    files: int


def _iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(path)
    return files


def _parse(path: Path) -> ParsedModule:
    """Read and parse one file (syntax errors become ``ValueError``)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise ValueError(f"{path}: cannot parse: {exc.msg} (line {exc.lineno})")
    return ParsedModule(path, source, tree)


def lint_files(
    files: Sequence[str | Path], config: LintConfig | None = None
) -> LintResult:
    """Run the registered rules over an explicit file list.

    Parameters
    ----------
    files:
        Python files to analyze (no directory expansion).
    config:
        Lint policy (default :class:`LintConfig`).

    Returns
    -------
    LintResult
        Sorted unsuppressed findings plus run counters.

    Raises
    ------
    ValueError
        If a file cannot be parsed.
    """
    # Importing the rule modules registers them; deferred to avoid an
    # import cycle (rules import the framework).
    from repro.analysis import (  # noqa: F401
        contracts,
        determinism,
        hygiene,
        locks,
        observability,
    )

    config = config or LintConfig()
    modules = [_parse(Path(f)) for f in files]
    active = [
        cls()
        for rule_id, cls in sorted(RULES.items())
        if config.rules is None or rule_id in config.rules
    ]
    run = LintRun(config)
    for rule in active:
        for module in modules:
            rule.collect(module, run)
    findings: list[Finding] = []
    suppressed = 0
    for rule in active:
        for module in modules:
            for found in rule.check(module, run):
                silenced = module.suppressions.get(found.line, ())
                if "all" in silenced or found.rule in silenced:
                    suppressed += 1
                else:
                    findings.append(found)
    return LintResult(tuple(sorted(findings)), suppressed, len(modules))


def lint_paths(
    paths: Sequence[str | Path], config: LintConfig | None = None
) -> LintResult:
    """Run the registered rules over files and/or directory trees.

    Parameters
    ----------
    paths:
        Files or directories; directories are walked for ``*.py``.
    config:
        Lint policy (default :class:`LintConfig`).

    Returns
    -------
    LintResult
        Sorted unsuppressed findings plus run counters.

    Raises
    ------
    FileNotFoundError
        If a path does not exist.
    ValueError
        If a file cannot be parsed.
    """
    return lint_files(_iter_python_files(paths), config)


def dotted_name(node: ast.AST) -> str | None:
    """Flatten a ``Name``/``Attribute`` chain into ``"a.b.c"``.

    Parameters
    ----------
    node:
        An expression node (typically a call's ``func``).

    Returns
    -------
    str or None
        The dotted name, or ``None`` when the chain contains anything
        but names and attribute accesses.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
