"""R3 lock-discipline rule for the serving tier's shared state.

The registry, query engine and thread-pool sharding helpers guard
mutable shared state with ``threading.Lock``/``RLock`` attributes —
but only by convention.  **R301** makes the convention checkable: in
any class whose ``__init__`` creates a lock attribute, every method
that mutates another instance attribute must do so inside a
``with self.<lock>:`` block.

Two conventions from the serve package are honoured:

- Methods named ``*_locked`` (configurable suffix) are internal
  helpers documented as "caller holds the lock" and are skipped.
- ``__init__`` itself is skipped — no other thread can hold a
  reference during construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.framework import (
    LintRun,
    ParsedModule,
    Rule,
    dotted_name,
    register,
)

__all__ = ["LockDisciplineRule"]

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})

#: Call-method names that mutate the receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "clear", "pop",
    "popitem", "remove", "discard", "setdefault", "sort",
})


def _lock_attrs(init: ast.FunctionDef) -> set:
    """Names of ``self.<attr>`` bound to ``Lock()``/``RLock()`` calls."""
    attrs: set = set()
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        if not _creates_lock(node.value):
            continue
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                attrs.add(target.attr)
    return attrs


def _creates_lock(value: ast.AST) -> bool:
    """Whether an expression (possibly conditional) builds a lock."""
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] in _LOCK_FACTORIES:
                return True
    return False


def _self_attr(node: ast.AST) -> str | None:
    """The attribute name if ``node`` is exactly ``self.<attr>``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _root_self_attr(node: ast.AST) -> str | None:
    """The base ``self.<attr>`` of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        direct = _self_attr(node)
        if direct is not None:
            return direct
        node = node.value
    return None


def _holds_lock(node: ast.With, lock_attrs: set) -> bool:
    """Whether a ``with`` statement acquires one of the lock attrs."""
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):  # e.g. self.lock.acquire-style wrappers
            expr = expr.func if isinstance(expr.func, ast.Attribute) else expr
            if isinstance(expr, ast.Attribute):
                expr = expr.value
        attr = _self_attr(expr)
        if attr in lock_attrs:
            return True
    return False


def _mutations(node: ast.AST) -> Iterator[tuple[str, int]]:
    """Yield ``(attr, line)`` for every ``self.<attr>`` mutation in a node."""
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            attr = _root_self_attr(target)
            if attr is not None:
                yield attr, target.lineno
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attr = _root_self_attr(target)
            if attr is not None:
                yield attr, target.lineno
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATORS:
            attr = _root_self_attr(node.func.value)
            if attr is not None:
                yield attr, node.lineno


def _walk_unlocked(nodes: list, lock_attrs: set) -> Iterator[ast.AST]:
    """Walk statements, pruning subtrees under a lock-holding ``with``."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.With) and _holds_lock(node, lock_attrs):
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # nested defs execute later, under their caller's rules
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class LockDisciplineRule(Rule):
    """R301: shared-attribute mutation outside the instance lock."""

    rule_id = "R301"
    title = "lock discipline"

    def check(self, module: ParsedModule, run: LintRun) -> Iterator[Finding]:
        """Flag unguarded mutations in lock-holding classes.

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state (provides the config).

        Returns
        -------
        Iterator[Finding]
            One finding per unguarded ``self.<attr>`` mutation.
        """
        suffix = run.config.locked_method_suffix
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            init = next(
                (stmt for stmt in cls.body
                 if isinstance(stmt, ast.FunctionDef)
                 and stmt.name == "__init__"),
                None,
            )
            if init is None:
                continue
            lock_attrs = _lock_attrs(init)
            if not lock_attrs:
                continue
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                if method.name == "__init__" or method.name.endswith(suffix):
                    continue
                for node in _walk_unlocked(method.body, lock_attrs):
                    for attr, lineno in _mutations(node):
                        if attr in lock_attrs:
                            continue
                        yield Finding(
                            str(module.path), lineno, 0, self.rule_id,
                            f"'{cls.name}.{method.name}' mutates shared "
                            f"attribute self.{attr} outside 'with "
                            f"self.{sorted(lock_attrs)[0]}:'",
                            symbol=f"{cls.name}.{method.name}",
                        )
