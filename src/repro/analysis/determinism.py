"""R1 determinism rules: global RNG state and hash-ordered iteration.

The golden-parity suite pins sparsifier masks, trees and RNG states
bit-identical across refactors — which only holds while every draw of
randomness flows through one seeded :class:`numpy.random.Generator`
(``utils/rng.py``) and no result-shaping loop iterates in hash order.
These rules make both invariants machine-checked:

- **R101** forbids global-state RNG anywhere outside the designated
  RNG module: ``np.random.seed/rand/...`` (the legacy global stream),
  bare stdlib ``random.*`` calls, and ``default_rng()`` with no seed
  argument (fresh OS entropy — unreproducible by construction).
- **R102** flags ``for``-loops and comprehensions that iterate over a
  set in order-sensitive packages (sparsify/trees/core/stream): set
  iteration order depends on hash seeding, so any mask or tree built
  from it can differ run to run.  Dicts preserve insertion order in
  Python ≥ 3.7 and are therefore allowed; ``sorted(...)`` over a set
  is the canonical fix and naturally passes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.framework import (
    LintRun,
    ParsedModule,
    Rule,
    dotted_name,
    register,
)

__all__ = ["GlobalRngRule", "SetIterationRule"]

#: numpy.random attributes that are *not* global-state draws:
#: generator/bit-generator constructors and seed plumbing types.
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: stdlib random attributes that build *local* state rather than
#: drawing from the module-global stream.
_STD_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})


def _import_bindings(tree: ast.Module) -> tuple[set, set, set, dict, dict]:
    """Resolve local names bound to numpy / numpy.random / stdlib random."""
    numpy_names: set[str] = set()
    nprandom_names: set[str] = set()
    stdrandom_names: set[str] = set()
    np_direct: dict[str, str] = {}  # local name -> numpy.random attr
    std_direct: dict[str, str] = {}  # local name -> stdlib random attr
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "numpy":
                    numpy_names.add(bound)
                elif alias.name == "numpy.random":
                    if alias.asname is None:
                        numpy_names.add("numpy")
                    else:
                        nprandom_names.add(alias.asname)
                elif alias.name == "random":
                    stdrandom_names.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        nprandom_names.add(alias.asname or "random")
            elif node.module == "numpy.random":
                for alias in node.names:
                    np_direct[alias.asname or alias.name] = alias.name
            elif node.module == "random":
                for alias in node.names:
                    std_direct[alias.asname or alias.name] = alias.name
    return numpy_names, nprandom_names, stdrandom_names, np_direct, std_direct


@register
class GlobalRngRule(Rule):
    """R101: forbid global-state randomness outside ``utils/rng.py``."""

    rule_id = "R101"
    title = "global RNG state"

    def check(self, module: ParsedModule, run: LintRun) -> Iterator[Finding]:
        """Flag global-stream RNG calls and argless ``default_rng()``.

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state (provides the config).

        Returns
        -------
        Iterator[Finding]
            One finding per offending call.
        """
        if module.posix.endswith(run.config.rng_module):
            return
        numpy_names, nprandom_names, stdrandom_names, np_direct, std_direct = (
            _import_bindings(module.tree)
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            attr = None
            origin = None
            if len(parts) >= 3 and parts[0] in numpy_names and parts[1] == "random":
                attr, origin = parts[2], "numpy.random"
            elif len(parts) == 2 and parts[0] in nprandom_names:
                attr, origin = parts[1], "numpy.random"
            elif len(parts) == 2 and parts[0] in stdrandom_names:
                if parts[1] not in _STD_RANDOM_ALLOWED:
                    yield Finding(
                        str(module.path), node.lineno, node.col_offset,
                        self.rule_id,
                        f"'{name}()' draws from the process-global stdlib "
                        "random stream; take a seeded "
                        "numpy.random.Generator (utils/rng.as_rng) instead",
                    )
                continue
            elif len(parts) == 1 and parts[0] in np_direct:
                attr, origin = np_direct[parts[0]], "numpy.random"
            elif len(parts) == 1 and parts[0] in std_direct:
                if std_direct[parts[0]] not in _STD_RANDOM_ALLOWED:
                    yield Finding(
                        str(module.path), node.lineno, node.col_offset,
                        self.rule_id,
                        f"'{parts[0]}()' (stdlib random.{std_direct[parts[0]]}) "
                        "draws from the process-global stream; take a seeded "
                        "numpy.random.Generator (utils/rng.as_rng) instead",
                    )
                continue
            if attr is None or origin != "numpy.random":
                continue
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    yield Finding(
                        str(module.path), node.lineno, node.col_offset,
                        self.rule_id,
                        "argless default_rng() seeds from OS entropy and is "
                        "unreproducible; pass a seed or route through "
                        "utils/rng.as_rng",
                    )
            elif attr not in _NP_RANDOM_ALLOWED:
                yield Finding(
                    str(module.path), node.lineno, node.col_offset,
                    self.rule_id,
                    f"'np.random.{attr}()' mutates/draws the legacy global "
                    "NumPy stream; use a seeded Generator "
                    "(utils/rng.as_rng) instead",
                )


def _is_set_expr(node: ast.AST) -> bool:
    """Whether an expression certainly evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _walk_scope(nodes: list) -> Iterator[ast.AST]:
    """Yield nodes of one scope, not descending into nested def bodies."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register
class SetIterationRule(Rule):
    """R102: hash-ordered set iteration in order-sensitive packages."""

    rule_id = "R102"
    title = "set iteration order"

    def check(self, module: ParsedModule, run: LintRun) -> Iterator[Finding]:
        """Flag loops/comprehensions whose iterable is a set.

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state (provides the config).

        Returns
        -------
        Iterator[Finding]
            One finding per set-ordered iteration.
        """
        if not module.in_any(run.config.order_sensitive):
            return
        yield from self._scope(module, module.tree.body, set())

    def _scope(
        self, module: ParsedModule, body: list, outer_sets: set
    ) -> Iterator[Finding]:
        """Walk one scope, tracking names locally bound to sets."""
        local_sets = set(outer_sets)
        for node in _walk_scope(body):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_sets.add(target.id)
        for node in _walk_scope(body):
            iterables: list = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
            for it in iterables:
                if _is_set_expr(it) or (
                    isinstance(it, ast.Name) and it.id in local_sets
                ):
                    yield Finding(
                        str(module.path), it.lineno, it.col_offset,
                        self.rule_id,
                        "iterating a set here is hash-order dependent and can "
                        "leak nondeterminism into masks/trees; iterate "
                        "sorted(...) (or a list/dict) instead",
                    )
        # Nested scopes (functions, methods) track their own bindings.
        for node in _walk_scope(body):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                yield from self._scope(module, node.body, local_sets)
