"""R5 observability-discipline rules (span context, metric naming).

A span's interval is defined by its ``with`` block: ``Span.__exit__``
stops the clock and (for tracer-owned spans) pops the thread-local
stack and records the interval.  Driving a span by hand —

    span = tracer.span("stage")
    span.__enter__()
    ...
    span.__exit__(None, None, None)

— reintroduces exactly the failure the context manager removes: an
exception between enter and exit leaks the span, corrupts the tracer's
depth/parent bookkeeping for every later span on that thread, and
silently drops the interval from the trace.  **R501** makes the
convention checkable: every ``.span(...)`` call must be used directly
as a ``with``-item (``with tracer.span(...) as s:``).

**R502** enforces metric-name hygiene where families are declared —
``get_metrics().counter/gauge/histogram(...)`` call sites (including
module/local aliases of the registry): the name must be a string
literal (greppable, and the alert rules in :mod:`repro.obs.alerts`
reference metrics by exact name), must match ``repro_[a-z0-9_]*``
(one namespace on a shared Prometheus endpoint), counters must end in
``_total`` (the Prometheus counter convention the rate()-style queries
assume), and ``labelnames`` must be a literal tuple/list of string
literals (a computed label set is an unbounded-cardinality bug waiting
to happen).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.framework import (
    LintRun,
    ParsedModule,
    Rule,
    dotted_name,
    register,
)

__all__ = ["MetricNameRule", "SpanContextRule"]


def _with_item_calls(tree: ast.Module) -> set:
    """Identities of call nodes used directly as ``with``-items."""
    items: set = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                items.add(id(item.context_expr))
    return items


@register
class SpanContextRule(Rule):
    """R501: ``.span(...)`` call not used directly as a ``with``-item."""

    rule_id = "R501"
    title = "span context discipline"

    def check(self, module: ParsedModule, run: LintRun) -> Iterator[Finding]:
        """Flag manually driven spans.

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state (provides the config).

        Returns
        -------
        Iterator[Finding]
            One finding per ``.span(...)`` call that is not the context
            expression of a ``with`` statement.
        """
        allowed = _with_item_calls(module.tree)
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "span"
                    and id(node) not in allowed):
                yield Finding(
                    str(module.path), node.lineno, node.col_offset,
                    self.rule_id,
                    "span driven manually: use it as a 'with ...span(...)"
                    " as s:' item so __exit__ always records the interval",
                )


_REGISTRY_KINDS = ("counter", "gauge", "histogram")
_REGISTRY_SOURCES = ("get_metrics", "enable_metrics")
_METRIC_NAME = re.compile(r"^repro_[a-z][a-z0-9_]*$")


def _is_registry_call(node: ast.AST) -> bool:
    """Whether an expression is a ``get_metrics()``-style call."""
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] in _REGISTRY_SOURCES


def _registry_aliases(tree: ast.Module) -> set:
    """Names bound (anywhere) to a ``get_metrics()``-style call.

    Covers both the plain ``metrics = get_metrics()`` alias and the
    tuple-unpack form ``tracer, metrics = get_tracer(), get_metrics()``.
    """
    aliases: set = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and _is_registry_call(node.value):
                aliases.add(target.id)
            elif (isinstance(target, (ast.Tuple, ast.List))
                    and isinstance(node.value, (ast.Tuple, ast.List))
                    and len(target.elts) == len(node.value.elts)):
                for element, value in zip(target.elts, node.value.elts):
                    if (isinstance(element, ast.Name)
                            and _is_registry_call(value)):
                        aliases.add(element.id)
    return aliases


def _literal_str(node: ast.AST | None) -> str | None:
    """The value of a string-literal node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@register
class MetricNameRule(Rule):
    """R502: metric declarations must follow the naming conventions."""

    rule_id = "R502"
    title = "metric name hygiene"

    def check(self, module: ParsedModule, run: LintRun) -> Iterator[Finding]:
        """Flag unconventional metric declarations.

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state (provides the config).

        Returns
        -------
        Iterator[Finding]
            One finding per convention breach at a
            ``counter/gauge/histogram`` call on a metrics registry:
            non-literal or badly named metric, a counter without the
            ``_total`` suffix, or a non-literal ``labelnames``.
        """
        aliases = _registry_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _REGISTRY_KINDS):
                continue
            receiver = node.func.value
            if not (_is_registry_call(receiver)
                    or (isinstance(receiver, ast.Name)
                        and receiver.id in aliases)):
                continue
            kind = node.func.attr
            yield from self._check_call(module, node, kind)

    def _check_call(
        self, module: ParsedModule, node: ast.Call, kind: str
    ) -> Iterator[Finding]:
        """Apply the naming checks to one registry accessor call."""
        name_node = node.args[0] if node.args else next(
            (kw.value for kw in node.keywords if kw.arg == "name"), None
        )
        where = (str(module.path), node.lineno, node.col_offset, self.rule_id)
        name = _literal_str(name_node)
        if name is None:
            yield Finding(
                *where,
                f"{kind} name must be a string literal (alert rules and "
                f"dashboards reference metrics by exact name)",
            )
        elif not _METRIC_NAME.match(name):
            yield Finding(
                *where,
                f"metric name {name!r} must match 'repro_[a-z][a-z0-9_]*' "
                f"(project namespace, lower_snake_case)",
            )
        elif kind == "counter" and not name.endswith("_total"):
            yield Finding(
                *where,
                f"counter {name!r} must end in '_total' (Prometheus "
                f"counter convention)",
            )
        labelnames = next(
            (kw.value for kw in node.keywords if kw.arg == "labelnames"),
            None,
        )
        if labelnames is not None and not (
            isinstance(labelnames, (ast.Tuple, ast.List))
            and all(_literal_str(e) is not None for e in labelnames.elts)
        ):
            yield Finding(
                *where,
                "labelnames must be a literal tuple/list of string "
                "literals (computed label sets risk unbounded "
                "cardinality)",
            )
