"""R5 span-context rule for the observability layer.

A span's interval is defined by its ``with`` block: ``Span.__exit__``
stops the clock and (for tracer-owned spans) pops the thread-local
stack and records the interval.  Driving a span by hand —

    span = tracer.span("stage")
    span.__enter__()
    ...
    span.__exit__(None, None, None)

— reintroduces exactly the failure the context manager removes: an
exception between enter and exit leaks the span, corrupts the tracer's
depth/parent bookkeeping for every later span on that thread, and
silently drops the interval from the trace.  **R501** makes the
convention checkable: every ``.span(...)`` call must be used directly
as a ``with``-item (``with tracer.span(...) as s:``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.framework import LintRun, ParsedModule, Rule, register

__all__ = ["SpanContextRule"]


def _with_item_calls(tree: ast.Module) -> set:
    """Identities of call nodes used directly as ``with``-items."""
    items: set = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                items.add(id(item.context_expr))
    return items


@register
class SpanContextRule(Rule):
    """R501: ``.span(...)`` call not used directly as a ``with``-item."""

    rule_id = "R501"
    title = "span context discipline"

    def check(self, module: ParsedModule, run: LintRun) -> Iterator[Finding]:
        """Flag manually driven spans.

        Parameters
        ----------
        module:
            The parsed module.
        run:
            Shared run state (provides the config).

        Returns
        -------
        Iterator[Finding]
            One finding per ``.span(...)`` call that is not the context
            expression of a ``with`` statement.
        """
        allowed = _with_item_calls(module.tree)
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "span"
                    and id(node) not in allowed):
                yield Finding(
                    str(module.path), node.lineno, node.col_offset,
                    self.rule_id,
                    "span driven manually: use it as a 'with ...span(...)"
                    " as s:' item so __exit__ always records the interval",
                )
