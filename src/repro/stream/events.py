"""Typed edge events, batch coalescing and the event-log formats.

The streaming subsystem consumes an ordered stream of *edge events*
against a fixed vertex set:

- :class:`EdgeInsert` — a new edge ``(u, v)`` with positive weight;
- :class:`EdgeDelete` — an existing edge disappears;
- :class:`WeightUpdate` — an existing edge's weight is replaced.

Events are validated at construction (endpoint sanity, positive finite
weights) and again at apply time against the live graph (an insert of a
present edge or a delete of an absent one is a stream corruption and
raises).  :func:`coalesce` folds a batch into its *net* effect per edge
— an insert followed by a delete of the same edge cancels outright,
repeated weight updates collapse to the last, a delete followed by a
re-insert becomes a single weight update — so the repair machinery only
ever sees one event per edge.

Two event-log formats round-trip losslessly:

- **JSONL** (``*.jsonl``) — one event object per line, human-greppable,
  append-friendly for live capture;
- **NumPy archive** (``*.npz``) — columnar arrays, compact and fast for
  benchmark replay.

:func:`random_event_stream` generates valid, connectivity-preserving
streams for benchmarks and property tests (including spanning-tree
"backbone" deletions).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graphs.graph import Graph
from repro.utils.rng import as_rng

__all__ = [
    "EdgeInsert",
    "EdgeDelete",
    "WeightUpdate",
    "EdgeEvent",
    "coalesce",
    "apply_events",
    "read_event_log",
    "write_event_log",
    "random_event_stream",
]


def _check_endpoints(u: int, v: int) -> None:
    if not (isinstance(u, (int, np.integer)) and isinstance(v, (int, np.integer))):
        raise ValueError(f"endpoints must be integers, got {u!r}, {v!r}")
    if u < 0 or v < 0:
        raise ValueError(f"endpoints must be non-negative, got ({u}, {v})")
    if u == v:
        raise ValueError(f"self loops are not valid edge events (vertex {u})")


def _check_weight(w: float) -> None:
    if not math.isfinite(w):
        raise ValueError(f"edge weight must be finite, got {w}")
    if w <= 0:
        raise ValueError(f"edge weight must be strictly positive, got {w}")


@dataclass(frozen=True)
class EdgeInsert:
    """A new edge ``(u, v)`` with weight ``w`` appears.

    Attributes
    ----------
    u, v:
        Endpoints (any order; canonicalized on use).
    w:
        Strictly positive finite weight.
    """

    u: int
    v: int
    w: float

    def __post_init__(self) -> None:
        _check_endpoints(self.u, self.v)
        _check_weight(self.w)

    @property
    def endpoints(self) -> tuple[int, int]:
        """Canonical ``(min, max)`` endpoint pair."""
        return (min(self.u, self.v), max(self.u, self.v))


@dataclass(frozen=True)
class EdgeDelete:
    """An existing edge ``(u, v)`` disappears.

    Attributes
    ----------
    u, v:
        Endpoints (any order; canonicalized on use).
    """

    u: int
    v: int

    def __post_init__(self) -> None:
        _check_endpoints(self.u, self.v)

    @property
    def endpoints(self) -> tuple[int, int]:
        """Canonical ``(min, max)`` endpoint pair."""
        return (min(self.u, self.v), max(self.u, self.v))


@dataclass(frozen=True)
class WeightUpdate:
    """An existing edge ``(u, v)``'s weight is replaced by ``w``.

    ``w`` is the new *absolute* weight, not a delta — streams stay
    meaningful without knowing prior state.

    Attributes
    ----------
    u, v:
        Endpoints (any order; canonicalized on use).
    w:
        Strictly positive finite replacement weight.
    """

    u: int
    v: int
    w: float

    def __post_init__(self) -> None:
        _check_endpoints(self.u, self.v)
        _check_weight(self.w)

    @property
    def endpoints(self) -> tuple[int, int]:
        """Canonical ``(min, max)`` endpoint pair."""
        return (min(self.u, self.v), max(self.u, self.v))


EdgeEvent = EdgeInsert | EdgeDelete | WeightUpdate


def coalesce(events: Sequence[EdgeEvent]) -> list[EdgeEvent]:
    """Fold an event batch into its net per-edge effect.

    Rules (per canonical endpoint pair, in stream order):

    - ``Insert → Delete`` is a net-zero pair and vanishes entirely;
    - ``Insert → WeightUpdate(w)`` becomes ``Insert(w)``;
    - ``Delete → Insert(w)`` becomes ``WeightUpdate(w)`` (the edge
      existed before the batch and exists after it);
    - ``WeightUpdate → WeightUpdate`` keeps the last weight;
    - ``WeightUpdate → Delete`` becomes ``Delete``.

    Invalid sequences — double insert, double delete, updating a
    just-deleted edge — raise immediately, which catches stream
    corruption at the earliest possible point.  Net events are emitted
    in first-touch order, so coalescing is deterministic.

    Parameters
    ----------
    events:
        The raw event batch.

    Returns
    -------
    list
        One net event per surviving edge.

    Raises
    ------
    ValueError
        On an invalid per-edge event sequence.
    """
    net: dict[tuple[int, int], EdgeEvent | None] = {}
    for event in events:
        key = event.endpoints
        prior = net.get(key, _ABSENT)
        if prior is _ABSENT:
            net[key] = event
            continue
        if prior is None:
            # Insert+delete cancelled: the edge is absent at this point
            # of the stream, so only a fresh insert is valid.
            if isinstance(event, EdgeInsert):
                net[key] = event
                continue
            kind = "delete" if isinstance(event, EdgeDelete) else "update"
            raise ValueError(f"{kind} of already-deleted edge {key}")
        if isinstance(prior, EdgeInsert):
            if isinstance(event, EdgeDelete):
                net[key] = None  # net zero; slot kept for order stability
            elif isinstance(event, WeightUpdate):
                net[key] = EdgeInsert(prior.u, prior.v, event.w)
            else:
                raise ValueError(f"duplicate insert of edge {key}")
        elif isinstance(prior, EdgeDelete):
            if isinstance(event, EdgeInsert):
                net[key] = WeightUpdate(event.u, event.v, event.w)
            else:
                kind = "delete" if isinstance(event, EdgeDelete) else "update"
                raise ValueError(f"{kind} of already-deleted edge {key}")
        else:  # WeightUpdate
            if isinstance(event, WeightUpdate):
                net[key] = WeightUpdate(prior.u, prior.v, event.w)
            elif isinstance(event, EdgeDelete):
                net[key] = EdgeDelete(prior.u, prior.v)
            else:
                raise ValueError(f"insert of existing (updated) edge {key}")
    return [event for event in net.values() if event is not None]


_ABSENT = object()


def apply_events(graph: Graph, events: Iterable[EdgeEvent]) -> Graph:
    """Functionally replay an event stream, returning the final graph.

    The reference semantics of a stream — a simple per-edge fold with
    strict validation — used as the oracle the incremental
    :class:`~repro.stream.DynamicSparsifier` is tested against, and
    handy on its own to materialize "the graph after this log" without
    any sparsifier state.

    Parameters
    ----------
    graph:
        Starting graph (left unmodified; the vertex set is fixed).
    events:
        Events in stream order.

    Returns
    -------
    Graph
        A new graph with all events applied.

    Raises
    ------
    ValueError
        On an invalid event: insert of a present edge, delete/update of
        an absent one, or an endpoint outside ``[0, graph.n)``.
    """
    edges: dict[tuple[int, int], float] = {
        (int(a), int(b)): float(w)
        for a, b, w in zip(graph.u, graph.v, graph.w)
    }
    for event in events:
        key = event.endpoints
        if key[1] >= graph.n:
            raise ValueError(
                f"event endpoint {key[1]} out of range [0, {graph.n})"
            )
        if isinstance(event, EdgeInsert):
            if key in edges:
                raise ValueError(f"insert of existing edge {key}")
            edges[key] = event.w
        elif isinstance(event, EdgeDelete):
            if key not in edges:
                raise ValueError(f"delete of absent edge {key}")
            del edges[key]
        else:
            if key not in edges:
                raise ValueError(f"weight update of absent edge {key}")
            edges[key] = event.w
    return Graph(
        graph.n,
        np.array([k[0] for k in edges], dtype=np.int64),
        np.array([k[1] for k in edges], dtype=np.int64),
        np.array(list(edges.values()), dtype=np.float64),
    )


_TYPE_TO_CODE = {EdgeInsert: 0, EdgeDelete: 1, WeightUpdate: 2}
_TYPE_TO_NAME = {EdgeInsert: "insert", EdgeDelete: "delete", WeightUpdate: "update"}
_NAME_TO_TYPE = {name: t for t, name in _TYPE_TO_NAME.items()}


def write_event_log(path: str | Path, events: Iterable[EdgeEvent]) -> None:
    """Write an event log; the suffix picks the format.

    ``*.jsonl`` writes one JSON object per line (exact float round-trip
    via ``repr``-based JSON floats); ``*.npz`` writes columnar arrays
    (``kind``, ``u``, ``v``, ``w`` with NaN for deletes).

    Parameters
    ----------
    path:
        Target file ending in ``.jsonl`` or ``.npz``.
    events:
        Events in stream order.

    Raises
    ------
    ValueError
        On an unsupported suffix.
    """
    path = Path(path)
    events = list(events)
    if path.suffix == ".jsonl":
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                record: dict = {
                    "type": _TYPE_TO_NAME[type(event)],
                    "u": int(event.u),
                    "v": int(event.v),
                }
                if not isinstance(event, EdgeDelete):
                    record["w"] = float(event.w)
                handle.write(json.dumps(record) + "\n")
    elif path.suffix == ".npz":
        kind = np.array([_TYPE_TO_CODE[type(e)] for e in events], dtype=np.int8)
        u = np.array([e.u for e in events], dtype=np.int64)
        v = np.array([e.v for e in events], dtype=np.int64)
        w = np.array(
            [np.nan if isinstance(e, EdgeDelete) else e.w for e in events],
            dtype=np.float64,
        )
        np.savez_compressed(path, kind=kind, u=u, v=v, w=w)
    else:
        raise ValueError(
            f"unsupported event-log suffix {path.suffix!r} (use .jsonl or .npz)"
        )


def read_event_log(path: str | Path) -> list[EdgeEvent]:
    """Read an event log written by :func:`write_event_log`.

    Parameters
    ----------
    path:
        Source file ending in ``.jsonl`` or ``.npz``.

    Returns
    -------
    list
        Events in stream order.

    Raises
    ------
    ValueError
        On an unsupported suffix or a malformed record.
    """
    path = Path(path)
    events: list[EdgeEvent] = []
    if path.suffix == ".jsonl":
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.get("type")
                cls = _NAME_TO_TYPE.get(kind)
                if cls is None:
                    raise ValueError(
                        f"{path}:{line_no}: unknown event type {kind!r}"
                    )
                try:
                    if cls is EdgeDelete:
                        event = EdgeDelete(int(record["u"]), int(record["v"]))
                    else:
                        event = cls(
                            int(record["u"]), int(record["v"]),
                            float(record["w"]),
                        )
                except (KeyError, TypeError, ValueError) as exc:
                    raise ValueError(
                        f"{path}:{line_no}: malformed {kind} record "
                        f"({exc.__class__.__name__}: {exc})"
                    ) from exc
                events.append(event)
    elif path.suffix == ".npz":
        with np.load(path) as data:
            kind, u, v, w = data["kind"], data["u"], data["v"], data["w"]
        for k, uu, vv, ww in zip(kind, u, v, w):
            if k == 0:
                events.append(EdgeInsert(int(uu), int(vv), float(ww)))
            elif k == 1:
                events.append(EdgeDelete(int(uu), int(vv)))
            elif k == 2:
                events.append(WeightUpdate(int(uu), int(vv), float(ww)))
            else:
                raise ValueError(f"unknown event kind code {int(k)}")
    else:
        raise ValueError(
            f"unsupported event-log suffix {path.suffix!r} (use .jsonl or .npz)"
        )
    return events


def random_event_stream(
    graph: Graph,
    num_events: int,
    seed: int | np.random.Generator | None = None,
    p_insert: float = 0.3,
    p_delete: float = 0.3,
    weight_scale: float = 1.0,
) -> list[EdgeEvent]:
    """Generate a valid random event stream against ``graph``.

    Deletes target random existing edges but skip choices that would
    disconnect the evolving graph (checked with a union-find over the
    surviving edges), so the stream is always replayable end-to-end —
    including deletions of spanning-tree (backbone) edges.  Inserts draw
    uniformly random absent pairs; updates re-draw an existing edge's
    weight.  The remaining probability mass (``1 − p_insert −
    p_delete``) goes to weight updates.

    Parameters
    ----------
    graph:
        Starting graph (left unmodified).
    num_events:
        Number of event slots to fill.
    seed:
        Randomness for the stream.
    p_insert, p_delete:
        Per-event probabilities of insert/delete (update gets the rest).
    weight_scale:
        Scale of the lognormal weights drawn for inserts and updates.

    Returns
    -------
    list
        A stream of *at most* ``num_events`` events applicable in
        order.  A slot is silently skipped when its draw cannot be
        satisfied — every delete candidate tried was a bridge
        (bridge-heavy graphs) or no absent pair was found
        (near-complete graphs) — so callers sizing workloads must use
        ``len()`` of the returned stream, not ``num_events``.

    Raises
    ------
    ValueError
        If the probabilities are negative or exceed 1 combined.
    """
    if p_insert < 0 or p_delete < 0 or p_insert + p_delete > 1.0:
        raise ValueError(
            f"invalid probabilities: p_insert={p_insert}, p_delete={p_delete}"
        )
    rng = as_rng(seed)
    n = graph.n
    edges: dict[tuple[int, int], float] = {
        (int(a), int(b)): float(w) for a, b, w in zip(graph.u, graph.v, graph.w)
    }
    events: list[EdgeEvent] = []
    # Endpoint array cache for the vectorized connectivity check,
    # rebuilt lazily after structural changes (at most once per event,
    # however many delete attempts probe it).
    edge_arr: np.ndarray | None = None

    def still_connected_without(drop: tuple[int, int]) -> bool:
        nonlocal edge_arr
        if edge_arr is None:
            edge_arr = np.array(list(edges), dtype=np.int64).reshape(-1, 2)
        keep = ~((edge_arr[:, 0] == drop[0]) & (edge_arr[:, 1] == drop[1]))
        a, b = edge_arr[keep, 0], edge_arr[keep, 1]
        matrix = sp.csr_matrix(
            (np.ones(2 * a.size), (np.concatenate([a, b]),
                                   np.concatenate([b, a]))),
            shape=(n, n),
        )
        return (
            csgraph.connected_components(
                matrix, directed=False, return_labels=False
            )
            == 1
        )

    for _ in range(num_events):
        roll = rng.random()
        if roll < p_insert or len(edges) <= n - 1:
            # Insert (forced when deleting/updating would be too risky
            # on a tree-thin graph).
            for _attempt in range(64):
                a, b = int(rng.integers(n)), int(rng.integers(n))
                if a == b:
                    continue
                key = (min(a, b), max(a, b))
                if key not in edges:
                    w = float(weight_scale * rng.lognormal(0.0, 0.5))
                    edges[key] = w
                    edge_arr = None
                    events.append(EdgeInsert(key[0], key[1], w))
                    break
            else:  # pragma: no cover - only on near-complete graphs
                continue
        elif roll < p_insert + p_delete:
            keys = list(edges)
            for _attempt in range(32):
                key = keys[int(rng.integers(len(keys)))]
                if still_connected_without(key):
                    del edges[key]
                    edge_arr = None
                    events.append(EdgeDelete(key[0], key[1]))
                    break
            # All attempts hit bridges: silently skip this event slot.
        else:
            keys = list(edges)
            key = keys[int(rng.integers(len(keys)))]
            w = float(weight_scale * rng.lognormal(0.0, 0.5))
            edges[key] = w
            events.append(WeightUpdate(key[0], key[1], w))
    return events
