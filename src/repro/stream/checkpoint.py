"""Checkpointing: serialize/restore streaming state for warm restarts.

A serving process that maintains a :class:`~repro.stream.dynamic.DynamicSparsifier`
(or holds a batch :class:`~repro.sparsify.SparsifyResult`) can persist
its full state and resume after a restart without re-sparsifying.  Each
checkpoint is an ``npz`` + ``json`` sibling pair derived from one path:

- ``<stem>.npz`` — the arrays: host graph ``(n, u, v, w)``, edge mask,
  spanning-tree indices, cached sparsifier degrees — saved bit-exact;
- ``<stem>.json`` — the configuration, counters, quality estimate and
  the RNG bit-generator state, all values that round-trip exactly
  through JSON.

Determinism contract: saving flushes the incrementally corrected
solver (:meth:`DynamicSparsifier.flush_solver`), so the surviving live
instance and a restored one rebuild from the same pruned Laplacian and
follow **bit-identical** decision paths from the save point on.
Against a run that never checkpointed, the restored run's solves can
differ from the Woodbury-corrected solver's in the last ulps; since
estimates are only *compared* against thresholds, the masks still
match unless an estimate lands within that float noise of a decision
boundary — measure-zero in practice, and pinned by the seeded
equality tests in ``tests/stream``/``tests/property``.  The stream RNG
must use a bit generator whose state is JSON-serializable (the NumPy
default ``PCG64`` family is).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.graphs.graph import Graph
from repro.sparsify.densify import DensifyIteration
from repro.sparsify.similarity_aware import SparsifyResult
from repro.stream.dynamic import DynamicSparsifier
from repro.utils.rng import restore_rng, rng_state

__all__ = [
    "save_dynamic",
    "load_dynamic",
    "save_result",
    "load_result",
    "checkpoint_paths",
]

_FORMAT_VERSION = 1


def checkpoint_paths(path: str | Path) -> tuple[Path, Path]:
    """The ``(npz, json)`` sibling pair a checkpoint path maps to.

    Only a trailing ``.npz``/``.json`` is stripped; any other dotted
    segment is part of the name (``ckpt.day1`` maps to
    ``ckpt.day1.npz``/``ckpt.day1.json``, it is *not* collapsed to
    ``ckpt.npz``).

    Parameters
    ----------
    path:
        Any of ``stem``, ``stem.npz`` or ``stem.json``.

    Returns
    -------
    tuple
        ``(Path(stem.npz), Path(stem.json))``.
    """
    path = Path(path)
    if path.suffix in (".npz", ".json"):
        path = path.with_suffix("")
    return Path(f"{path}.npz"), Path(f"{path}.json")


def save_dynamic(path: str | Path, dyn: DynamicSparsifier) -> tuple[Path, Path]:
    """Persist a :class:`DynamicSparsifier` (flushes its solver first).

    Parameters
    ----------
    path:
        Checkpoint path (suffix ignored; siblings derived).
    dyn:
        The live instance to persist.

    Returns
    -------
    tuple
        The written ``(npz, json)`` paths.
    """
    npz_path, json_path = checkpoint_paths(path)
    dyn.flush_solver()
    np.savez_compressed(
        npz_path,
        n=np.int64(dyn.graph.n),
        u=dyn.graph.u,
        v=dyn.graph.v,
        w=dyn.graph.w,
        edge_mask=dyn.edge_mask,
        tree_indices=dyn.tree_indices,
        deg_p=dyn._deg_p,
    )
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": "dynamic_sparsifier",
        "config": {
            "sigma2": dyn.sigma2,
            "tree_method": dyn.tree_method,
            "drift_tolerance": dyn.drift_tolerance,
            "check_every": dyn.check_every,
            "tree_rebuild_threshold": dyn.tree_rebuild_threshold,
            "absorb_inserts": dyn.absorb_inserts,
            "solver_method": dyn.solver_method,
            "max_update_rank": dyn.max_update_rank,
            "amg_rebuild_every": dyn.amg_rebuild_every,
            "power_iterations": dyn.power_iterations,
            "kernel_backend": dyn.kernel_backend,
            "estimator_backend": dyn.estimator_backend,
            "estimator_refresh": dyn.estimator_refresh,
            "densify_options": dyn._densify_options,
        },
        "counters": {
            "batches_applied": dyn.batches_applied,
            "events_applied": dyn.events_applied,
            "solver_rebuilds": dyn.solver_rebuilds,
            "redensify_count": dyn.redensify_count,
            "tree_repair_count": dyn.tree_repair_count,
            "batches_since_check": dyn._batches_since_check,
        },
        "last_estimate": dyn.last_estimate,
        "rng_state": rng_state(dyn._rng),
    }
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2)
    return npz_path, json_path


def load_dynamic(path: str | Path) -> DynamicSparsifier:
    """Restore a :class:`DynamicSparsifier` saved by :func:`save_dynamic`.

    Parameters
    ----------
    path:
        Checkpoint path (suffix ignored; siblings derived).

    Returns
    -------
    DynamicSparsifier
        A live instance positioned exactly at the saved state.

    Raises
    ------
    ValueError
        If the checkpoint kind or format version is unknown.
    """
    npz_path, json_path = checkpoint_paths(path)
    with open(json_path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("kind") != "dynamic_sparsifier":
        raise ValueError(f"{json_path} is not a DynamicSparsifier checkpoint")
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format version {meta.get('format_version')}"
        )
    with np.load(npz_path) as data:
        graph = Graph(int(data["n"]), data["u"], data["v"], data["w"])
        edge_mask = data["edge_mask"].astype(bool)
        tree_indices = data["tree_indices"].astype(np.int64)
        deg_p = data["deg_p"].astype(np.float64)
    config = meta["config"]
    dyn = DynamicSparsifier(
        graph,
        sigma2=config["sigma2"],
        tree_method=config["tree_method"],
        drift_tolerance=config["drift_tolerance"],
        check_every=config["check_every"],
        tree_rebuild_threshold=config["tree_rebuild_threshold"],
        absorb_inserts=config["absorb_inserts"],
        solver_method=config["solver_method"],
        max_update_rank=config["max_update_rank"],
        amg_rebuild_every=config["amg_rebuild_every"],
        power_iterations=config["power_iterations"],
        kernel_backend=config.get("kernel_backend", "reference"),
        # Checkpoints written before the estimator kernel existed carry
        # no estimator slot; they ran the solve-backed path, so default
        # to it for an exact-behaviour restore.
        estimator_backend=config.get("estimator_backend", "reference"),
        estimator_refresh=config.get("estimator_refresh", 3),
        densify_options=config["densify_options"],
        _defer_init=True,
    )
    dyn.edge_mask = edge_mask
    dyn.tree_indices = tree_indices
    dyn._deg_p = deg_p
    dyn._rng = restore_rng(meta["rng_state"])
    counters = meta["counters"]
    dyn.batches_applied = counters["batches_applied"]
    dyn.events_applied = counters["events_applied"]
    dyn.solver_rebuilds = counters["solver_rebuilds"]
    dyn.redensify_count = counters["redensify_count"]
    dyn.tree_repair_count = counters["tree_repair_count"]
    dyn._batches_since_check = counters["batches_since_check"]
    dyn.last_estimate = meta["last_estimate"]
    return dyn


def save_result(path: str | Path, result: SparsifyResult) -> tuple[Path, Path]:
    """Persist a batch :class:`SparsifyResult` (mask, tree, stats).

    Parameters
    ----------
    path:
        Checkpoint path (suffix ignored; siblings derived).
    result:
        The sparsification result to persist.

    Returns
    -------
    tuple
        The written ``(npz, json)`` paths.
    """
    npz_path, json_path = checkpoint_paths(path)
    np.savez_compressed(
        npz_path,
        n=np.int64(result.graph.n),
        u=result.graph.u,
        v=result.graph.v,
        w=result.graph.w,
        edge_mask=np.asarray(result.edge_mask, dtype=bool),
        tree_indices=np.asarray(result.tree_indices, dtype=np.int64),
    )
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": "sparsify_result",
        "sigma2_target": result.sigma2_target,
        "sigma2_estimate": result.sigma2_estimate,
        "converged": bool(result.converged),
        "tree_seconds": result.tree_seconds,
        "densify_seconds": result.densify_seconds,
        "iterations": [dataclasses.asdict(it) for it in result.iterations],
    }
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2)
    return npz_path, json_path


def load_result(path: str | Path) -> SparsifyResult:
    """Restore a :class:`SparsifyResult` saved by :func:`save_result`.

    Parameters
    ----------
    path:
        Checkpoint path (suffix ignored; siblings derived).

    Returns
    -------
    SparsifyResult
        Reconstructed result (the sparsifier graph is re-derived from
        the mask, so masks and weights round-trip bit-exact).

    Raises
    ------
    ValueError
        If the checkpoint kind or format version is unknown.
    """
    npz_path, json_path = checkpoint_paths(path)
    with open(json_path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("kind") != "sparsify_result":
        raise ValueError(f"{json_path} is not a SparsifyResult checkpoint")
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format version {meta.get('format_version')}"
        )
    with np.load(npz_path) as data:
        graph = Graph(int(data["n"]), data["u"], data["v"], data["w"])
        edge_mask = data["edge_mask"].astype(bool)
        tree_indices = data["tree_indices"].astype(np.int64)
    return SparsifyResult(
        graph=graph,
        sparsifier=graph.edge_subgraph(edge_mask),
        edge_mask=edge_mask,
        tree_indices=tree_indices,
        sigma2_target=meta["sigma2_target"],
        sigma2_estimate=meta["sigma2_estimate"],
        converged=meta["converged"],
        iterations=[DensifyIteration(**it) for it in meta["iterations"]],
        tree_seconds=meta["tree_seconds"],
        densify_seconds=meta["densify_seconds"],
    )
