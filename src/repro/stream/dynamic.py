"""Dynamic sparsifier maintenance under edge insert/delete/reweight.

:class:`DynamicSparsifier` owns a live host :class:`~repro.graphs.Graph`
and its spectral sparsifier, and keeps the σ² similarity guarantee as
edge events stream in — without recomputing from scratch per change.
A batch costs a vectorized ``O(m)`` floor (canonical-graph rebuild,
index remap, drift-check solves) plus work proportional to the repairs
it triggers; the big win over per-batch re-sparsification is skipping
the tree build and densification loop except when drift demands them.
Each event batch runs through a **three-tier repair policy**:

1. **Local absorption** (cheapest, every batch): inserts, deletions of
   off-tree sparsifier edges and weight updates become signed weight
   deltas fed to the managed solver's
   :meth:`~repro.solvers.base.Solver.update` hook (Woodbury corrections
   for the direct solver), and ``O(batch)`` in-place updates of the
   sparsifier degrees and edge mask.
2. **Backbone repair** (only when a spanning-tree edge is deleted): the
   severed tree components are re-bridged by the best surviving
   crossing edges — greedy maximum-conductance selection via
   :func:`repro.trees.spanning.complete_forest` — so the sparsifier
   keeps spanning.  A batch that deletes more backbone edges than
   ``tree_rebuild_threshold`` instead falls back to re-running
   :func:`~repro.trees.lsst.low_stretch_tree` on the updated graph
   (bulk damage makes per-cut greedy repair both slow and
   low-quality).
3. **Drift-triggered re-densification** (GRASS-style monitor): after
   each checked batch the tracked relative-condition estimate
   ``λmax/λmin`` (power iteration + node-coloring, paper §3.6) is
   compared against ``drift_tolerance · σ²``; only when quality has
   drifted past the tolerance does the §3.7 densification loop resume
   from the current mask to pull in fresh off-tree edges.  The loop is
   the shared stage pipeline (:class:`repro.core.stages.DensifyStage`
   in its ``"drift"`` cadence) run against this instance's live state
   and carried incremental solver through :class:`_DynamicStateView` —
   the same stage bodies the batch/shard/serving paths execute.

The vertex set is fixed for the lifetime of the instance; events
reference existing vertices only.  Determinism: all randomness flows
through one generator that the checkpoint layer serializes exactly, so
for a fixed ``(initial graph, options, seed, event stream, checkpoint
schedule)`` the mask evolution is fully reproducible (see
:mod:`repro.stream.checkpoint` for the exact cross-checkpoint
contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.context import PipelineContext
from repro.core.pipeline import SparsifyPipeline
from repro.core.profile import PipelineProfile
from repro.core.stages import DensifyStage, TreeStage
from repro.graphs.graph import Graph
from repro.graphs.components import is_connected
from repro.solvers.amg import AMGSolver
from repro.solvers.base import Solver
from repro.solvers.cholesky import DirectSolver
from repro.sparsify.metrics import SimilarityEstimate
from repro.spectral.extreme import generalized_power_iteration
from repro.stream.events import (
    EdgeDelete,
    EdgeEvent,
    EdgeInsert,
    WeightUpdate,
    coalesce,
)
from repro.obs import get_metrics, get_tracer
from repro.trees.lsst import low_stretch_tree
from repro.trees.spanning import complete_forest
from repro.utils.rng import as_rng

__all__ = ["BatchReport", "DynamicSparsifier"]

_SOLVER_METHODS = ("auto", "cholesky", "amg")

# Densify knobs a DynamicSparsifier forwards into its pipeline contexts
# (the subset of PipelineContext fields that are per-run algorithm
# parameters rather than managed state).
_DENSIFY_OPTION_KEYS = (
    "t",
    "num_vectors",
    "max_iterations",
    "max_edges_per_iteration",
    "similarity_mode",
)


class _DynamicStateView:
    """Adapter mounting a live :class:`DynamicSparsifier` as pipeline state.

    Exposes the :class:`~repro.sparsify.state.SparsifierState` surface
    the core stages consume — mask, pencil Laplacians, the *carried*
    incremental solver, cached-degree λmin and in-place edge addition —
    so the tier-3 drift repair runs the shared filter loop without
    rebuilding a fresh state + factorization per trigger.
    """

    def __init__(self, dyn: "DynamicSparsifier") -> None:
        self._dyn = dyn
        # Hoist the host Laplacian once per repair run (the loop's LG).
        self.host_laplacian = dyn.graph.laplacian()

    @property
    def edge_mask(self) -> np.ndarray:
        return self._dyn.edge_mask

    @property
    def laplacian(self):
        return self._dyn.sparsifier().laplacian()

    @property
    def num_edges(self) -> int:
        return self._dyn.num_edges

    def subgraph(self) -> Graph:
        return self._dyn.sparsifier()

    def solver(self) -> Solver:
        return self._dyn._ensure_solver()

    def lambda_min(self) -> float:
        return self._dyn._lambda_min()

    def add_edges(self, edge_indices: np.ndarray) -> None:
        if edge_indices.size == 0:
            return
        dyn = self._dyn
        g = dyn.graph
        dyn.edge_mask[edge_indices] = True
        au, av, aw = g.u[edge_indices], g.v[edge_indices], g.w[edge_indices]
        np.add.at(dyn._deg_p, au, aw)
        np.add.at(dyn._deg_p, av, aw)
        if dyn._solver is not None and not dyn._solver.update(au, av, aw):
            dyn._solver = None


@dataclass(frozen=True)
class BatchReport:
    """Diagnostics of one applied event batch.

    Attributes
    ----------
    batch:
        1-based index of the batch since construction/restore.
    num_events / num_net_events:
        Raw and post-coalescing event counts.
    inserted / deleted / reweighted:
        Net structural changes applied to the host graph.
    tree_repairs:
        Bridging edges added by tier-2 backbone repair.
    tree_rebuilt:
        True when tier-2 fell back to a full backbone rebuild.
    solver_absorbed:
        True when the managed solver absorbed the batch incrementally
        (False also covers "no live solver to update").
    checked:
        Whether the tier-3 drift monitor ran on this batch.
    sigma2_estimate:
        Post-batch relative-condition estimate (NaN when unchecked).
    redensified:
        True when drift exceeded tolerance and densification resumed.
    densify_added:
        Off-tree edges added by the re-densification.
    num_edges:
        Sparsifier edge count after the batch.
    elapsed:
        Wall-clock seconds spent applying the batch.
    """

    batch: int
    num_events: int
    num_net_events: int
    inserted: int
    deleted: int
    reweighted: int
    tree_repairs: int
    tree_rebuilt: bool
    solver_absorbed: bool
    checked: bool
    sigma2_estimate: float
    redensified: bool
    densify_added: int
    num_edges: int
    elapsed: float


class DynamicSparsifier:
    """Maintains a σ²-similar sparsifier of a graph under edge events.

    Construction sparsifies the initial graph from scratch (tree +
    densification); thereafter :meth:`apply` folds event batches in
    far below re-sparsification cost (a vectorized ``O(m)`` floor per
    batch — see the module docstring), with quality watched by the
    drift monitor.

    Parameters
    ----------
    graph:
        Connected initial host graph (the vertex set stays fixed).
    sigma2:
        Target upper bound on the relative condition number
        ``κ(L_G, L_P)``, as in :func:`repro.sparsify.sparsify_graph`.
    tree_method:
        Backbone construction (``"akpw"``, ``"spt"``, ``"maxw"``,
        ``"random"``), used at init and by tier-2 full rebuilds.
    drift_tolerance:
        Tier-3 triggers re-densification when the tracked estimate
        exceeds ``drift_tolerance * sigma2`` (default 1.0 — repair as
        soon as the certificate is lost).
    check_every:
        Run the drift monitor every this many batches (tier-2 repairs
        force a check regardless).
    tree_rebuild_threshold:
        Backbone deletions per batch above which tier-2 rebuilds the
        whole tree instead of bridging per cut; default
        ``max(16, n // 100)``.
    absorb_inserts:
        When True (default) inserted edges join the sparsifier
        immediately (cheap, keeps quality trivially); when False they
        only join the host graph and the drift monitor decides when to
        pull candidates in via re-densification (smaller sparsifier,
        more tier-3 work).
    solver_method:
        ``"auto"``, ``"cholesky"`` or ``"amg"`` for the managed
        sparsifier solver.
    max_update_rank:
        Woodbury budget of the managed direct solver — batches are
        absorbed without re-factorizing until the accumulated rank
        crosses this.  Batches beyond the budget trigger a clean
        re-factorization instead, which is the *cheaper* choice for
        large batches (absorbing ``k`` edges costs ``k`` triangular
        solves, quickly outrunning one factorization), so keep this
        at small-batch scale.
    amg_rebuild_every:
        Update batches an AMG hierarchy absorbs before re-coarsening.
    power_iterations:
        Generalized power iterations per drift check.
    kernel_backend:
        Hot-kernel implementation family for the initial build and
        every drift repair (``"reference"``, ``"vectorized"``,
        ``"numba"``, ``"auto"``); bit-identical across backends, so
        replay and checkpoint parity are backend-independent.  The
        *requested* name is checkpointed and re-resolved on restore,
        so a checkpoint written on a numba machine loads anywhere.
    estimator_backend:
        σ² estimation strategy for builds and drift repairs
        (``"reference"``, ``"perturbation"``, ``"auto"``).  Unlike
        ``kernel_backend`` the perturbation backend is a
        quality-contracted algorithmic substitute, not bit-identical
        (see :mod:`repro.kernels.estimator`); the requested name is
        checkpointed and legacy checkpoints default to
        ``"reference"``.
    estimator_refresh:
        Maximum consecutive rounds the perturbation estimator reuses
        one probe embedding before forcing a fresh one.
    seed:
        Randomness for the initial sparsification and all repairs.
    densify_options:
        Extra keyword arguments forwarded to every
        :func:`~repro.sparsify.densify.densify` call (``t``,
        ``num_vectors``, ``similarity_mode``, ``max_iterations``, ...).
        Must be JSON-serializable for checkpointing.

    Examples
    --------
    >>> from repro.graphs import generators
    >>> from repro.stream import DynamicSparsifier, EdgeDelete
    >>> g = generators.grid2d(12, 12, weights="uniform", seed=0)
    >>> dyn = DynamicSparsifier(g, sigma2=150.0, seed=0)
    >>> report = dyn.apply([EdgeDelete(int(g.u[-1]), int(g.v[-1]))])
    >>> report.deleted
    1
    """

    def __init__(
        self,
        graph: Graph,
        sigma2: float = 100.0,
        *,
        tree_method: str = "akpw",
        drift_tolerance: float = 1.0,
        check_every: int = 1,
        tree_rebuild_threshold: int | None = None,
        absorb_inserts: bool = True,
        solver_method: str = "auto",
        max_update_rank: int = 64,
        amg_rebuild_every: int = 8,
        power_iterations: int = 10,
        kernel_backend: str = "reference",
        estimator_backend: str = "reference",
        estimator_refresh: int = 3,
        seed: int | np.random.Generator | None = None,
        densify_options: dict | None = None,
        _defer_init: bool = False,
    ) -> None:
        if sigma2 <= 1.0:
            raise ValueError(f"sigma2 must exceed 1, got {sigma2}")
        if drift_tolerance < 1.0:
            raise ValueError(
                f"drift_tolerance must be >= 1, got {drift_tolerance}"
            )
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        if solver_method not in _SOLVER_METHODS:
            raise ValueError(f"unknown solver method {solver_method!r}")
        from repro.kernels.registry import (
            resolve_backend,
            resolve_estimator_backend,
        )

        resolve_backend(kernel_backend)  # validate; keep the request
        resolve_estimator_backend(estimator_backend)
        self.sigma2 = float(sigma2)
        self.tree_method = tree_method
        self.drift_tolerance = float(drift_tolerance)
        self.check_every = int(check_every)
        self.tree_rebuild_threshold = tree_rebuild_threshold
        self.absorb_inserts = bool(absorb_inserts)
        self.solver_method = solver_method
        self.max_update_rank = int(max_update_rank)
        self.amg_rebuild_every = int(amg_rebuild_every)
        self.power_iterations = int(power_iterations)
        self.kernel_backend = kernel_backend
        self.estimator_backend = estimator_backend
        self.estimator_refresh = int(estimator_refresh)
        self._densify_options = dict(densify_options or {})
        unknown = set(self._densify_options) - set(_DENSIFY_OPTION_KEYS)
        if unknown:
            raise TypeError(
                f"unexpected densify option(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(_DENSIFY_OPTION_KEYS)}"
            )
        self._rng = as_rng(seed)
        self._solver: Solver | None = None
        self.profile = PipelineProfile()

        self.batches_applied = 0
        self.events_applied = 0
        self.solver_rebuilds = 0
        self.redensify_count = 0
        self.tree_repair_count = 0
        self.last_estimate = float("nan")
        self._batches_since_check = 0

        if _defer_init:
            # Checkpoint restore / from_result fill the state in.
            self.graph = graph
            self.edge_mask = np.zeros(graph.num_edges, dtype=bool)
            self.tree_indices = np.array([], dtype=np.int64)
            self._deg_p = np.zeros(graph.n, dtype=np.float64)
            return
        if graph.n < 2:
            raise ValueError("graph must have at least 2 vertices")
        if not is_connected(graph):
            raise ValueError(
                "initial graph must be connected (shard disconnected inputs "
                "with repro.sparsify.parallel before streaming)"
            )
        self.graph = graph
        ctx = self._pipeline_context()
        SparsifyPipeline([TreeStage(), DensifyStage()]).run(ctx)
        self.tree_indices = ctx.tree_indices
        self.edge_mask = ctx.edge_mask
        self.last_estimate = ctx.sigma2_estimate
        self._deg_p = self._compute_degrees()
        self.profile.merge(ctx.profile)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result,
        seed: int | np.random.Generator | None = None,
        **options,
    ) -> "DynamicSparsifier":
        """Wrap an existing :class:`~repro.sparsify.SparsifyResult`.

        Skips the from-scratch sparsification — the warm path for a
        serving process that already ran the batch pipeline.

        Parameters
        ----------
        result:
            A sparsification result for the *current* graph.
        seed:
            Randomness for subsequent repairs.
        options:
            Constructor keyword arguments (``sigma2`` defaults to the
            result's target).

        Returns
        -------
        DynamicSparsifier
            A live instance positioned at the result's state.
        """
        options.setdefault("sigma2", result.sigma2_target)
        dyn = cls(result.graph, seed=seed, _defer_init=True, **options)
        dyn.edge_mask = np.asarray(result.edge_mask, dtype=bool).copy()
        dyn.tree_indices = np.asarray(result.tree_indices, dtype=np.int64).copy()
        dyn.last_estimate = float(result.sigma2_estimate)
        dyn._deg_p = dyn._compute_degrees()
        if getattr(result, "profile", None) is not None:
            # Adopt the batch run's per-stage build profile so serving
            # stats show how the artifact was produced.
            dyn.profile.merge(result.profile)
        return dyn

    def _pipeline_context(self, state=None) -> PipelineContext:
        """A pipeline context over this instance's graph, RNG and knobs.

        With ``state=None`` (initial build) the densify stage
        constructs a fresh :class:`~repro.sparsify.state.SparsifierState`;
        with a mounted :class:`_DynamicStateView` (drift repair) the
        stages run against the live incremental state instead.
        """
        return PipelineContext(
            graph=self.graph,
            rng=self._rng,
            sigma2=self.sigma2,
            tree_method=self.tree_method,
            solver_method=self.solver_method,
            max_update_rank=self.max_update_rank,
            amg_rebuild_every=self.amg_rebuild_every,
            power_iterations=self.power_iterations,
            kernel_backend=self.kernel_backend,
            estimator_backend=self.estimator_backend,
            estimator_refresh=self.estimator_refresh,
            tree_indices=(
                self.tree_indices if state is not None else None
            ),
            state=state,
            **self._densify_options,
        )

    def _compute_degrees(self) -> np.ndarray:
        deg = np.zeros(self.graph.n, dtype=np.float64)
        idx = np.flatnonzero(self.edge_mask)
        np.add.at(deg, self.graph.u[idx], self.graph.w[idx])
        np.add.at(deg, self.graph.v[idx], self.graph.w[idx])
        return deg

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def sparsifier(self) -> Graph:
        """Materialize the current sparsifier (not cached).

        Returns
        -------
        Graph
            ``graph.edge_subgraph(edge_mask)`` at the current state.
        """
        return self.graph.edge_subgraph(self.edge_mask)

    @property
    def num_edges(self) -> int:
        """Current sparsifier edge count."""
        return int(self.edge_mask.sum())

    @property
    def state_token(self) -> tuple[int, int, int]:
        """Opaque token that changes whenever a batch commits.

        The serving layer (:mod:`repro.serve`) compares tokens to decide
        when query-side caches (spectral embeddings, derived views) must
        be invalidated.  Every :meth:`apply` call advances the token;
        out-of-band probes like :meth:`quality` do not.
        """
        return (self.batches_applied, self.events_applied, self.redensify_count)

    def solver(self) -> Solver:
        """The warm managed solver of the current sparsifier Laplacian.

        Built lazily on first use and carried across event batches —
        tier-1 repair absorbs edge deltas through its
        :meth:`~repro.solvers.base.Solver.update` hook instead of
        re-factorizing, which is what makes repeated queries against the
        live sparsifier nearly free.  The serving layer's
        :class:`~repro.serve.QueryEngine` answers all solve-backed
        queries through this handle.

        Returns
        -------
        Solver
            A solver applying ``L_P⁺`` for the current sparsifier
            (mean-free minimum-norm representative on singular
            Laplacians).
        """
        return self._ensure_solver()

    def quality(
        self, seed: int | np.random.Generator | None = 0
    ) -> SimilarityEstimate:
        """Out-of-band quality probe (does not advance the stream RNG).

        Parameters
        ----------
        seed:
            Randomness for the λmax power iteration (a fixed default so
            repeated probes agree).

        Returns
        -------
        SimilarityEstimate
            Estimated pencil extremes of ``(L_G, L_P)``.
        """
        lam_max = generalized_power_iteration(
            self.graph.laplacian(),
            self.sparsifier().laplacian(),
            self._ensure_solver(),
            iterations=self.power_iterations,
            seed=seed,
        )
        return SimilarityEstimate(lambda_max=lam_max, lambda_min=self._lambda_min())

    def _lambda_min(self) -> float:
        if np.any(self._deg_p <= 0):  # pragma: no cover - tree spans by invariant
            raise RuntimeError("sparsifier lost coverage of a vertex")
        return float(np.min(self.graph.weighted_degrees() / self._deg_p))

    # ------------------------------------------------------------------
    # Solver management
    # ------------------------------------------------------------------
    def _ensure_solver(self) -> Solver:
        if self._solver is None:
            lap = self.sparsifier().laplacian()
            method = self.solver_method
            if method == "auto":
                method = "cholesky" if self.graph.n <= 200_000 else "amg"
            if method == "cholesky":
                self._solver = DirectSolver(
                    lap.tocsc(), max_update_rank=self.max_update_rank
                )
            else:
                self._solver = AMGSolver(
                    lap, cycles=2, rebuild_every=self.amg_rebuild_every
                )
            self.solver_rebuilds += 1
        return self._solver

    def flush_solver(self) -> None:
        """Drop the incrementally corrected solver (rebuilt lazily).

        The checkpoint layer calls this on *save* so that a restored
        process and the continuing live process both rebuild from the
        same pruned Laplacian — keeping their subsequent numerics (and
        therefore their masks) bit-identical to each other.
        """
        self._solver = None

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, events: Sequence[EdgeEvent]) -> BatchReport:
        """Apply one event batch through the three repair tiers.

        Parameters
        ----------
        events:
            Edge events in stream order; coalesced before application.

        Returns
        -------
        BatchReport
            Per-batch diagnostics (counts, repair tiers, quality).

        Raises
        ------
        ValueError
            On invalid events (unknown edge deleted/updated, existing
            edge inserted, endpoint out of range) or deletions that
            disconnect the host graph.
        """
        events = list(events)
        with get_tracer().span("stream.batch", category="stream") as span:
            report = self._apply(events)
            span.annotate(
                num_events=len(events),
                num_net_events=report["num_net_events"],
                redensified=report["redensified"],
            )
        return BatchReport(**report, num_events=len(events), elapsed=span.elapsed)

    @staticmethod
    def _validate_stream(og: Graph, events: Sequence[EdgeEvent]) -> None:
        """Validate the *raw* event sequence against the live graph.

        Same semantics as :func:`repro.stream.events.apply_events`
        without materializing the result.  Running before coalescing
        matters: an invalid pair like "insert an edge that already
        exists, then delete it" nets to zero and would otherwise slip
        through silently.
        """
        present: dict[tuple[int, int], bool] = {}
        for event in events:
            a, b = event.endpoints
            if b >= og.n:
                raise ValueError(
                    f"event endpoint {b} out of range [0, {og.n}) — the "
                    "vertex set is fixed for the stream's lifetime"
                )
            state = present.get((a, b))
            if state is None:
                state = bool(
                    og.edge_indices(np.array([a]), np.array([b]))[0] >= 0
                )
            if isinstance(event, EdgeInsert):
                if state:
                    raise ValueError(
                        f"insert of edge ({a}, {b}) already in the graph"
                    )
                present[(a, b)] = True
            elif isinstance(event, EdgeDelete):
                if not state:
                    raise ValueError(f"delete of absent edge ({a}, {b})")
                present[(a, b)] = False
            else:
                if not state:
                    raise ValueError(
                        f"weight update of absent edge ({a}, {b})"
                    )
                present[(a, b)] = True

    def _apply(self, events: Sequence[EdgeEvent]) -> dict:
        og = self.graph
        self._validate_stream(og, events)
        net = coalesce(list(events))
        inserts = [e for e in net if isinstance(e, EdgeInsert)]
        deletes = [e for e in net if isinstance(e, EdgeDelete)]
        updates = [e for e in net if isinstance(e, WeightUpdate)]

        ins_u = np.array([e.endpoints[0] for e in inserts], dtype=np.int64)
        ins_v = np.array([e.endpoints[1] for e in inserts], dtype=np.int64)
        ins_w = np.array([e.w for e in inserts], dtype=np.float64)

        del_u = np.array([e.endpoints[0] for e in deletes], dtype=np.int64)
        del_v = np.array([e.endpoints[1] for e in deletes], dtype=np.int64)
        del_idx = og.edge_indices(del_u, del_v)

        upd_u = np.array([e.endpoints[0] for e in updates], dtype=np.int64)
        upd_v = np.array([e.endpoints[1] for e in updates], dtype=np.int64)
        upd_w = np.array([e.w for e in updates], dtype=np.float64)
        upd_idx = og.edge_indices(upd_u, upd_v)
        # Raw-sequence validation guarantees every net delete/update
        # targets a live edge and every net insert targets an absent
        # pair (a net delete/update can only arise from a raw event
        # that saw the edge present in the graph).
        if np.any(del_idx < 0) or np.any(upd_idx < 0):  # pragma: no cover
            raise RuntimeError("validated event batch references absent edges")
        # Replacing a weight by itself is a no-op; drop it so the solver
        # never sees a zero delta.
        changed = og.w[upd_idx] != upd_w
        upd_idx, upd_w = upd_idx[changed], upd_w[changed]

        old_mask = self.edge_mask
        tree_mask = np.zeros(og.num_edges, dtype=bool)
        tree_mask[self.tree_indices] = True
        deleted_tree = int(np.count_nonzero(tree_mask[del_idx]))

        # ---- build the updated host graph and index mappings --------
        survivors = np.ones(og.num_edges, dtype=bool)
        survivors[del_idx] = False
        surv_idx = np.flatnonzero(survivors)
        new_w_old_edges = og.w.copy()
        new_w_old_edges[upd_idx] = upd_w
        if del_idx.size == 0 and ins_u.size == 0:
            # Reweight-only batch: the canonical edge list is unchanged,
            # so skip the re-canonicalization lookup — the index map is
            # the identity.
            ng = og.reweighted(new_w_old_edges)
            old_to_new = np.arange(og.num_edges, dtype=np.int64)
        else:
            ng = Graph(
                og.n,
                np.concatenate([og.u[surv_idx], ins_u]),
                np.concatenate([og.v[surv_idx], ins_v]),
                np.concatenate([new_w_old_edges[surv_idx], ins_w]),
            )
            old_to_new = np.full(og.num_edges, -1, dtype=np.int64)
            old_to_new[surv_idx] = ng.edge_indices(og.u[surv_idx], og.v[surv_idx])

        new_mask = np.zeros(ng.num_edges, dtype=bool)
        new_mask[old_to_new[surv_idx]] = old_mask[surv_idx]
        new_tree = old_to_new[self.tree_indices]
        new_tree = np.sort(new_tree[new_tree >= 0])
        ins_idx = (
            ng.edge_indices(ins_u, ins_v) if inserts else np.array([], dtype=np.int64)
        )
        if self.absorb_inserts:
            new_mask[ins_idx] = True

        # ---- tier-1 solver deltas (w.r.t. the old sparsifier L_P) ----
        deltas_u: list[np.ndarray] = []
        deltas_v: list[np.ndarray] = []
        deltas_w: list[np.ndarray] = []
        masked_del = del_idx[old_mask[del_idx]]
        if masked_del.size:
            deltas_u.append(og.u[masked_del])
            deltas_v.append(og.v[masked_del])
            deltas_w.append(-og.w[masked_del])
        masked_upd = old_mask[upd_idx]
        if np.any(masked_upd):
            sel = upd_idx[masked_upd]
            deltas_u.append(og.u[sel])
            deltas_v.append(og.v[sel])
            deltas_w.append(upd_w[masked_upd] - og.w[sel])
        if self.absorb_inserts and ins_idx.size:
            deltas_u.append(ins_u)
            deltas_v.append(ins_v)
            deltas_w.append(ins_w)

        # ---- tier-2 backbone repair ----------------------------------
        tree_repairs = 0
        tree_rebuilt = False
        if deleted_tree:
            threshold = self.tree_rebuild_threshold
            if threshold is None:
                threshold = max(16, ng.n // 100)
            if deleted_tree > threshold:
                new_tree = low_stretch_tree(
                    ng, method=self.tree_method, seed=self._rng
                )
                new_mask[new_tree] = True
                tree_rebuilt = True
            else:
                bridges = complete_forest(ng, new_tree)
                fresh = bridges[~new_mask[bridges]]
                new_mask[fresh] = True
                if fresh.size:
                    deltas_u.append(ng.u[fresh])
                    deltas_v.append(ng.v[fresh])
                    deltas_w.append(ng.w[fresh])
                new_tree = np.sort(np.concatenate([new_tree, bridges]))
                tree_repairs = int(bridges.size)
                self.tree_repair_count += tree_repairs

        # ---- commit --------------------------------------------------
        self.graph = ng
        self.edge_mask = new_mask
        self.tree_indices = new_tree
        if tree_rebuilt:
            # Bulk rebuild: recompute instead of chasing deltas.
            self._deg_p = self._compute_degrees()
            self._solver = None
            solver_absorbed = False
        else:
            if deltas_u:
                du = np.concatenate(deltas_u)
                dv = np.concatenate(deltas_v)
                dw = np.concatenate(deltas_w)
                np.add.at(self._deg_p, du, dw)
                np.add.at(self._deg_p, dv, dw)
                if self._solver is not None:
                    if self._solver.update(du, dv, dw):
                        solver_absorbed = True
                    else:
                        self._solver = None
                        solver_absorbed = False
                else:
                    solver_absorbed = False
            else:
                solver_absorbed = self._solver is not None

        self.batches_applied += 1
        self.events_applied += len(net)
        self._batches_since_check += 1

        # ---- tier-3 drift monitor ------------------------------------
        checked = False
        redensified = False
        densify_added = 0
        sigma2_estimate = float("nan")
        if self._batches_since_check >= self.check_every or deleted_tree:
            checked = True
            self._batches_since_check = 0
            lam_max = generalized_power_iteration(
                ng.laplacian(),
                self.sparsifier().laplacian(),
                self._ensure_solver(),
                iterations=self.power_iterations,
                seed=self._rng,
            )
            sigma2_estimate = lam_max / self._lambda_min()
            if sigma2_estimate > self.drift_tolerance * self.sigma2:
                sigma2_estimate, densify_added = self._redensify(lam_max)
                redensified = True
                self.redensify_count += 1
            self.last_estimate = sigma2_estimate

        # ---- observability (passive: counters and gauges only) -------
        metrics = get_metrics()
        metrics.counter(
            "repro_stream_batches_total",
            "Event batches applied by DynamicSparsifier.",
        ).inc()
        metrics.counter(
            "repro_stream_events_total",
            "Net edge events applied after per-batch coalescing.",
        ).inc(len(net))
        metrics.counter(
            "repro_stream_coalesced_events_total",
            "Raw events eliminated by per-batch coalescing.",
        ).inc(len(events) - len(net))
        repairs = metrics.counter(
            "repro_stream_repairs_total",
            "Repair-tier activations: solver_absorb (tier 1 Woodbury), "
            "tree_repair/tree_rebuild (tier 2 backbone), redensify "
            "(tier 3 drift response).",
            labelnames=("tier",),
        )
        if solver_absorbed and deltas_u:
            repairs.inc(tier="solver_absorb")
        if tree_repairs:
            repairs.inc(tree_repairs, tier="tree_repair")
        if tree_rebuilt:
            repairs.inc(tier="tree_rebuild")
        if redensified:
            repairs.inc(tier="redensify")
        if checked:
            metrics.gauge(
                "repro_stream_drift_ratio",
                "Tracked σ² estimate over the target σ² at the most "
                "recent drift check (tier 3 fires above "
                "drift_tolerance).",
            ).set(sigma2_estimate / self.sigma2)

        return dict(
            batch=self.batches_applied,
            num_net_events=len(net),
            inserted=len(inserts),
            deleted=len(deletes),
            reweighted=int(upd_idx.size),
            tree_repairs=tree_repairs,
            tree_rebuilt=tree_rebuilt,
            solver_absorbed=solver_absorbed,
            checked=checked,
            sigma2_estimate=sigma2_estimate,
            redensified=redensified,
            densify_added=densify_added,
            num_edges=self.num_edges,
        )

    def _redensify(self, lam_max: float) -> tuple[float, int]:
        """Tier-3 targeted re-densification against the carried solver.

        The §3.7 loop — θ_σ filter, dissimilarity check, estimate —
        runs as the shared stage pipeline
        (:class:`~repro.core.stages.DensifyStage` in its ``"drift"``
        cadence) mounted on this instance's live state: edge batches
        are absorbed through the managed solver's Woodbury/patch hook
        instead of rebuilding a fresh :class:`SparsifierState` +
        factorization per trigger, so a drift repair costs a few
        solves, not a from-scratch densification.  Per-stage timings
        accumulate into :attr:`profile`.

        Parameters
        ----------
        lam_max:
            The drift check's λmax estimate (reused for the first
            iteration's threshold).

        Returns
        -------
        tuple
            ``(final sigma2 estimate, off-tree edges added)``.
        """
        ctx = self._pipeline_context(state=_DynamicStateView(self))
        ctx.lambda_max = float(lam_max)
        SparsifyPipeline([DensifyStage(mode="drift")]).run(ctx)
        self.profile.merge(ctx.profile)
        report = ctx.profile.reports["densify"]
        return ctx.sigma2_estimate, int(report.counters.get("added", 0))

    def apply_log(
        self, events: Iterable[EdgeEvent], batch_size: int = 100
    ) -> list[BatchReport]:
        """Replay an event log in fixed-size batches.

        Parameters
        ----------
        events:
            The full event stream (e.g. from
            :func:`repro.stream.events.read_event_log`).
        batch_size:
            Events per :meth:`apply` call (the last batch may be
            shorter).

        Returns
        -------
        list
            One :class:`BatchReport` per applied batch.

        Raises
        ------
        ValueError
            If ``batch_size`` is not positive.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        events = list(events)
        return [
            self.apply(events[start : start + batch_size])
            for start in range(0, len(events), batch_size)
        ]

    def checkpoint(self, path) -> None:
        """Persist the full state for warm restart (npz + json).

        Flushes the incremental solver first (see :meth:`flush_solver`)
        so continuing live and restoring from disk follow bit-identical
        paths.

        Parameters
        ----------
        path:
            Checkpoint path; ``.npz``/``.json`` siblings are derived
            from it (see :mod:`repro.stream.checkpoint`).
        """
        from repro.stream.checkpoint import save_dynamic

        save_dynamic(path, self)
