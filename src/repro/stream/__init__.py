"""Streaming subsystem: dynamic sparsifier maintenance under edge events.

Turns the batch pipeline into a live service: a
:class:`DynamicSparsifier` consumes streams of
:class:`EdgeInsert`/:class:`EdgeDelete`/:class:`WeightUpdate` events and
keeps its sparsifier σ²-similar through a three-tier repair policy
(local solver absorption, backbone repair, drift-triggered
re-densification), with full-state checkpointing for warm restarts.
See :mod:`repro.stream.dynamic` for the policy details.
"""

from repro.stream.events import (
    EdgeDelete,
    EdgeEvent,
    EdgeInsert,
    WeightUpdate,
    apply_events,
    coalesce,
    random_event_stream,
    read_event_log,
    write_event_log,
)
from repro.stream.dynamic import BatchReport, DynamicSparsifier
from repro.stream.checkpoint import (
    checkpoint_paths,
    load_dynamic,
    load_result,
    save_dynamic,
    save_result,
)

__all__ = [
    "EdgeInsert",
    "EdgeDelete",
    "WeightUpdate",
    "EdgeEvent",
    "coalesce",
    "apply_events",
    "read_event_log",
    "write_event_log",
    "random_event_stream",
    "BatchReport",
    "DynamicSparsifier",
    "save_dynamic",
    "load_dynamic",
    "save_result",
    "load_result",
    "checkpoint_paths",
]
