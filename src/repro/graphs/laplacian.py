"""Laplacian construction, SDD conversion and null-space handling.

Implements the paper's matrix-to-graph rule (Section 4: *"If the original
matrix is not a graph Laplacian, it will be converted into a graph
Laplacian by setting each edge weight using the absolute value of each
nonzero entry in the lower triangular matrix"*) plus the grounding and
projection plumbing every solver needs because a connected graph's
Laplacian has null space ``span(1)``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.utils.validation import check_square, check_symmetric

__all__ = [
    "laplacian",
    "graph_from_laplacian",
    "graph_from_matrix",
    "sdd_split",
    "is_laplacian",
    "is_sdd",
    "ground_matrix",
    "project_out_ones",
    "normalized_laplacian",
]


def laplacian(graph: Graph) -> sp.csr_matrix:
    """Graph Laplacian ``L = D - A`` of :class:`Graph` (Eq. 1)."""
    return graph.laplacian()


def graph_from_laplacian(L: sp.spmatrix, tol: float = 1e-12) -> Graph:
    """Recover the :class:`Graph` whose Laplacian is ``L``.

    Off-diagonal entries must be non-positive; entries with magnitude at
    most ``tol`` (relative to the largest) are treated as zero.
    """
    check_symmetric(L, "L")
    coo = sp.tril(L.tocoo(), k=-1).tocoo()
    if coo.nnz:
        scale = float(np.max(np.abs(coo.data)))
        mask = np.abs(coo.data) > tol * max(scale, 1.0)
        data = coo.data[mask]
        if np.any(data > 0):
            raise ValueError("off-diagonal Laplacian entries must be <= 0")
        return Graph(L.shape[0], coo.row[mask], coo.col[mask], -data)
    return Graph(L.shape[0])


def graph_from_matrix(A: sp.spmatrix) -> Graph:
    """Paper's Section-4 conversion of an arbitrary sparse matrix.

    Each nonzero ``A[i, j]`` with ``i > j`` becomes an edge ``(i, j)`` with
    weight ``|A[i, j]|``; if the matrix stores only one triangle the other
    is inferred.  Diagonal entries are ignored.
    """
    check_square(A, "A")
    lower = sp.tril(A.tocoo(), k=-1).tocoo()
    if lower.nnz == 0:
        lower = sp.triu(A.tocoo(), k=1).T.tocoo()
    mask = lower.data != 0
    return Graph(A.shape[0], lower.row[mask], lower.col[mask], np.abs(lower.data[mask]))


def sdd_split(A: sp.spmatrix, tol: float = 1e-12) -> tuple[Graph, np.ndarray]:
    """Split an SDD matrix into ``(graph, slack)`` with ``A = L_graph + diag(slack)``.

    ``slack`` is the diagonal excess ``A[i,i] - sum_j |A[i,j]|``; it is
    clipped at zero with a tolerance so exactly-singular Laplacians give a
    zero slack vector.  Positive off-diagonals are folded in by absolute
    value (the standard SDD-to-Laplacian reduction used in the paper's
    experimental setup).
    """
    check_symmetric(A, "A")
    graph = graph_from_matrix(A)
    diag = np.asarray(A.diagonal(), dtype=np.float64)
    slack = diag - graph.weighted_degrees()
    scale = float(np.max(np.abs(diag))) if diag.size else 1.0
    slack[np.abs(slack) <= tol * max(scale, 1.0)] = 0.0
    if np.any(slack < 0):
        raise ValueError("matrix is not symmetric diagonally dominant")
    return graph, slack


def is_laplacian(A: sp.spmatrix, tol: float = 1e-9) -> bool:
    """True when ``A`` is symmetric with zero row sums and non-positive off-diagonals."""
    try:
        check_symmetric(A, "A", tol=tol)
    except ValueError:
        return False
    coo = sp.tril(A.tocoo(), k=-1)
    scale = max(1.0, float(np.max(np.abs(A.diagonal()))) if A.shape[0] else 1.0)
    if coo.nnz and np.any(coo.data > tol * scale):
        return False
    row_sums = np.asarray(A.sum(axis=1)).ravel()
    return bool(np.all(np.abs(row_sums) <= tol * scale))


def is_sdd(A: sp.spmatrix, tol: float = 1e-9) -> bool:
    """True when ``A`` is symmetric and (weakly) diagonally dominant."""
    try:
        check_symmetric(A, "A", tol=tol)
    except ValueError:
        return False
    diag = np.asarray(A.diagonal(), dtype=np.float64)
    off = A - sp.diags(diag)
    abs_row = np.asarray(np.abs(off).sum(axis=1)).ravel()
    scale = max(1.0, float(np.max(np.abs(diag))) if diag.size else 1.0)
    return bool(np.all(diag - abs_row >= -tol * scale))


def ground_matrix(L: sp.spmatrix, vertex: int = 0) -> sp.csc_matrix:
    """Delete row/column ``vertex`` — the standard grounding that makes a
    connected Laplacian non-singular (positive definite)."""
    n = L.shape[0]
    check_square(L, "L")
    if not 0 <= vertex < n:
        raise ValueError(f"ground vertex {vertex} out of range [0, {n})")
    keep = np.ones(n, dtype=bool)
    keep[vertex] = False
    csr = L.tocsr()
    return csr[keep][:, keep].tocsc()


def project_out_ones(x: np.ndarray) -> np.ndarray:
    """Orthogonal projection of vector(s) onto ``1⊥`` (columns if 2-D).

    This is the null-space deflation applied after every solve and power
    step; it keeps iterates inside the subspace where the Laplacian
    pencil is positive definite.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        return x - x.mean()
    return x - x.mean(axis=0, keepdims=True)


def normalized_laplacian(graph: Graph) -> sp.csr_matrix:
    """Symmetrically normalized Laplacian ``D^{-1/2} L D^{-1/2}``.

    Used by the spectral partitioning experiments (the paper partitions
    with the normalized Laplacian's Fiedler vector, [18, 20]).
    Isolated vertices get a zero row/column.
    """
    deg = graph.weighted_degrees()
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(np.maximum(deg, 1e-300)), 0.0)
    D = sp.diags(inv_sqrt)
    return (D @ graph.laplacian() @ D).tocsr()
