"""Graph containers, Laplacian algebra, generators, I/O and operations."""

from repro.graphs.graph import Graph
from repro.graphs.laplacian import (
    graph_from_laplacian,
    graph_from_matrix,
    ground_matrix,
    is_laplacian,
    is_sdd,
    laplacian,
    normalized_laplacian,
    project_out_ones,
    sdd_split,
)
from repro.graphs.components import (
    bfs_order,
    bfs_tree_edges,
    connected_components,
    is_connected,
    largest_component,
)
from repro.graphs.operations import (
    contract,
    degree_statistics,
    disjoint_union,
    induced_subgraph,
    relabel,
    remove_edges,
    union,
)

__all__ = [
    "Graph",
    "laplacian",
    "graph_from_laplacian",
    "graph_from_matrix",
    "sdd_split",
    "is_laplacian",
    "is_sdd",
    "ground_matrix",
    "project_out_ones",
    "normalized_laplacian",
    "connected_components",
    "is_connected",
    "largest_component",
    "bfs_order",
    "bfs_tree_edges",
    "induced_subgraph",
    "union",
    "disjoint_union",
    "contract",
    "relabel",
    "remove_edges",
    "degree_statistics",
]
